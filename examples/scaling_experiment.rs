//! A strong/weak scaling experiment combining *real* simulated-MPI runs
//! (at rank counts a laptop can hold) with the calibrated cluster model
//! that regenerates the paper's 1–128-node curves (§IV-D/E).
//!
//! ```sh
//! cargo run --release --example scaling_experiment
//! ```

use mpix::perf::machine::{archer2_node, tursa_a100};
use mpix::perf::scaling::{efficiency, strong_scaling, Mode};
use mpix::prelude::*;
use mpix::solvers::{KernelKind, ModelSpec, Propagator};
use mpix_bench::profiles::{cpu_domain, profile_for};

fn main() {
    // ---- Part 1: real runs, 1..8 simulated ranks -----------------------
    println!("## Real simulated-MPI strong scaling (acoustic so-8, 24³+ABC, wall-clock)");
    let spec = ModelSpec::new(&[24, 24, 24]).with_nbl(4);
    let prop = Propagator::build(KernelKind::Acoustic, spec, 8);
    let nt = 20i64;
    let pref = &prop;
    let mut base = None;
    for nranks in [1usize, 2, 4, 8] {
        let opts = prop
            .apply_options(nt)
            .with_mode(HaloMode::Diagonal)
            .with_ranks(nranks);
        let t0 = std::time::Instant::now();
        let stats = prop
            .op
            .run(
                &opts,
                move |ws| pref.init(ws),
                |ws| ws.last_stats.clone().unwrap(),
            )
            .results;
        let wall = t0.elapsed().as_secs_f64();
        let halo: f64 = stats.iter().map(|s| s.halo_secs).sum::<f64>() / nranks as f64;
        let base_t = *base.get_or_insert(wall);
        println!(
            "  {nranks} ranks: {wall:.3}s wall ({:.0}% of linear), avg halo time {halo:.3}s",
            100.0 * base_t / (wall * nranks as f64)
        );
    }
    println!("  (ranks are threads on one machine — wall-clock scaling here measures");
    println!("   overhead structure, not parallel speedup; the cluster model below");
    println!("   extrapolates with calibrated machine parameters)\n");

    // ---- Part 2: modeled paper-scale curves ----------------------------
    println!("## Modeled CPU strong scaling, SDO 8 (paper Figs 8-11)");
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let m = archer2_node();
        let global = cpu_domain(kind);
        print!("{:<14}", kind.name());
        let mut best_modes = Vec::new();
        for units in [1usize, 8, 64, 128] {
            let (mode, pt) = Mode::all()
                .iter()
                .map(|&mo| (mo, strong_scaling(&prof, &m, mo, units, &global)))
                .max_by(|a, b| a.1.gpts.partial_cmp(&b.1.gpts).unwrap())
                .unwrap();
            print!("  {units:>3}n: {:7.1} GPts/s ({})", pt.gpts, mode.label());
            best_modes.push(mode);
        }
        println!();
    }

    println!("\n## Modeled GPU vs CPU at 128 units, SDO 8 (paper §IV-F)");
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let cpu = strong_scaling(&prof, &archer2_node(), Mode::Basic, 128, &cpu_domain(kind));
        let gpu = strong_scaling(&prof, &tursa_a100(), Mode::Basic, 128, &cpu_domain(kind));
        let pts: Vec<_> = [1, 128]
            .iter()
            .map(|&u| strong_scaling(&prof, &archer2_node(), Mode::Basic, u, &cpu_domain(kind)))
            .collect();
        println!(
            "  {:<14} CPU {:7.1} GPts/s (eff {:4.0}%)   GPU {:7.1} GPts/s ({:.1}x)",
            kind.name(),
            cpu.gpts,
            efficiency(&pts)[1] * 100.0,
            gpu.gpts,
            gpu.gpts / cpu.gpts
        );
    }
}
