//! Custom domain-decomposition topologies (paper Fig. 2) and sparse-point
//! ownership at shared rank boundaries (paper Fig. 3).
//!
//! ```sh
//! cargo run --example custom_topology
//! ```

use std::sync::Arc;

use mpix::prelude::*;

fn main() {
    // --- Fig. 2: three 16-rank topologies over a 3-D grid ---------------
    let global = [32usize, 32, 32];
    for topology in [vec![4, 2, 2], vec![2, 2, 4], vec![4, 4, 1]] {
        let dc = Decomposition::new(&global, &topology);
        println!("topology={topology:?}:");
        // Show the shard shape of rank 0 and the neighbour structure of a
        // middle rank.
        let shard = dc.local_shape(&topology.iter().map(|_| 0).collect::<Vec<_>>());
        println!("  rank (0,0,0) owns a {shard:?} shard");
        let out = Universe::run(16, |comm| {
            let cart = CartComm::new(comm, &topology);
            (
                cart.coords().to_vec(),
                cart.face_neighbors().len(),
                cart.all_neighbors().len(),
            )
        });
        let (coords, faces, all) = out.iter().max_by_key(|(_, _, all)| *all).unwrap();
        println!("  best-connected rank {coords:?}: {faces} face neighbours, {all} total");
    }

    // --- Fig. 3: sparse point ownership ---------------------------------
    // An 8x8 grid over 2x2 ranks; the ownership boundary is at index 4.
    let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
    let spacing = vec![1.0, 1.0];
    let named = [
        ("A (interior of rank 0)", vec![1.4, 1.6]),
        ("B (shared x-boundary)", vec![3.5, 1.0]),
        ("C (shared corner)", vec![3.5, 3.5]),
        ("D (shared y-boundary)", vec![1.0, 3.5]),
    ];
    println!("\nsparse point ownership (Fig. 3):");
    for (name, coords) in named {
        let sp = SparsePoints::new(vec![coords.clone()], spacing.clone());
        let owners = sp.owner_coords(0, &dc);
        println!("  point {name} at {coords:?}: owned by ranks {owners:?}");
    }

    // Injection across a shared corner deposits exactly the source value.
    let sp = SparsePoints::new(vec![vec![3.5, 3.5]], spacing);
    let mut total = 0.0f64;
    for ci in 0..2 {
        for cj in 0..2 {
            let mut arr = DistArray::new(Arc::clone(&dc), &[ci, cj], 2);
            if sp.is_owner(0, &dc, &[ci, cj]) {
                sp.inject(0, 42.0, &mut arr);
            }
            total += arr.raw().iter().map(|&v| v as f64).sum::<f64>();
        }
    }
    println!("\ninjected 42.0 at the shared corner; sum over all shards = {total:.3}");
    assert!((total - 42.0).abs() < 1e-4);
    println!("each grid node written exactly once across the replication set ✓");
}
