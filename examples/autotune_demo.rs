//! The paper's §IV-F future-work items, implemented: automated selection
//! of the MPI pattern, the cache-blocking tile, and the *full*-mode
//! topology, all by short timed trials on the real simulated cluster.
//!
//! ```sh
//! cargo run --release --example autotune_demo
//! ```

use mpix::prelude::*;
use mpix::solvers::{KernelKind, ModelSpec, Propagator};

fn main() {
    let spec = ModelSpec::new(&[28, 28, 28]).with_nbl(4);
    let prop = Propagator::build(KernelKind::Acoustic, spec.clone(), 8);
    let base = prop.apply_options(0);

    println!("## Automated MPI-pattern selection (paper §IV-F future work)");
    let pref = &prop;
    let report = prop
        .op
        .autotune_mode(8, None, &base, 4, move |ws| pref.init(ws));
    for (mode, secs) in &report.trials {
        let marker = if *mode == report.best {
            "  <-- best"
        } else {
            ""
        };
        println!("  {mode:?}: {secs:.3}s{marker}");
    }

    println!("\n## Automated loop-blocking tile selection (paper §IV-C autotuning)");
    let report = prop
        .op
        .autotune_block(&base, 2, &[0, 4, 8, 16, 32], move |ws| pref.init(ws));
    for (block, secs) in &report.trials {
        let label = if *block == 0 {
            "unblocked".to_string()
        } else {
            format!("tile {block}")
        };
        let marker = if *block == report.best {
            "  <-- best"
        } else {
            ""
        };
        println!("  {label}: {secs:.3}s{marker}");
    }

    println!("\n## Joint tile x lane-width sweep (blocking + simd-strip engine)");
    let report = prop
        .op
        .autotune_exec(&base, 2, &[0, 8, 16], &[0, 8, 16, 32], move |ws| {
            pref.init(ws)
        });
    for ((block, vw), secs) in &report.trials {
        let marker = if (*block, *vw) == report.best {
            "  <-- best"
        } else {
            ""
        };
        println!("  block={block} vw={vw}: {secs:.3}s{marker}");
    }

    println!("\n## Automated topology selection for full mode (paper §IV-F)");
    let base_full = base.clone().with_mode(HaloMode::Full);
    let report = prop
        .op
        .autotune_topology(8, &base_full, 3, move |ws| pref.init(ws));
    for (topo, secs) in &report.trials {
        let marker = if *topo == report.best {
            "  <-- best"
        } else {
            ""
        };
        println!("  topology {topo:?}: {secs:.3}s{marker}");
    }
    println!(
        "\nchosen: topology {:?} — \"customizing the decomposition to only\n\
         split in x and y\" trades bigger messages for unbroken vector strides,\n\
         exactly the trade-off the paper discusses.",
        report.best
    );

    println!("\n## Environment-driven configuration (like the paper's job scripts)");
    println!("  MPIX_MPI=diag2 MPIX_BLOCK=16 MPIX_THREADS=4 MPIX_VW=16 <binary>");
    let env_opts = ApplyOptions::from_env();
    println!(
        "  current env resolves to mode={:?}, block={}, threads={}, vector_width={}",
        env_opts.mode, env_opts.block, env_opts.threads, env_opts.vector_width
    );
}
