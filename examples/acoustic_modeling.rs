//! Forward seismic modeling with the isotropic acoustic propagator —
//! the paper's flagship workload (FWI/RTM forward step): Ricker point
//! source, absorbing boundary layer, a line of receivers, run across
//! simulated MPI ranks in all three exchange modes.
//!
//! ```sh
//! cargo run --release --example acoustic_modeling
//! ```

use mpix::prelude::*;
use mpix::solvers::{KernelKind, ModelSpec, Propagator};

fn main() {
    let spec = ModelSpec::new(&[36, 36, 36]).with_nbl(6);
    let so = 8;
    let prop = Propagator::build(KernelKind::Acoustic, spec.clone(), so);
    let nt = 60i64;
    println!(
        "acoustic so-{so}: {} points, dt = {:.3e}s, {} timesteps",
        spec.padded_shape().iter().product::<usize>(),
        prop.dt,
        nt
    );
    println!(
        "compiler says: {} flops/pt, OI {:.2}, {} fields, exchange radius {}",
        prop.op.op_counts().flops(),
        prop.op.op_counts().oi(),
        prop.op.op_counts().working_set(),
        so / 2
    );

    // Receivers: a line across the top of the physical domain.
    let spacing = vec![spec.spacing; 3];
    let nrec = 8;
    let rec_coords: Vec<Vec<f64>> = (0..nrec)
        .map(|i| {
            vec![
                (spec.nbl + 2) as f64 * spec.spacing,
                (spec.nbl as f64 + i as f64 * 4.0) * spec.spacing,
                (spec.padded_shape()[2] / 2) as f64 * spec.spacing,
            ]
        })
        .collect();

    let mut results = Vec::new();
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        let opts = prop
            .apply_options(nt)
            .with_mode(mode)
            .with_ranks(8)
            .with_trace(TraceLevel::Summary);
        let pref = &prop;
        let rc = rec_coords.clone();
        let sp = spacing.clone();
        let t0 = std::time::Instant::now();
        let applied = prop.op.run(
            &opts,
            move |ws| {
                pref.init(ws);
                pref.add_ricker_source(ws, 12.0, nt as usize);
                ws.add_receivers("u", SparsePoints::new(rc.clone(), sp.clone()));
            },
            |ws| {
                let field = ws.gather("u");
                let shots = ws.take_samples(1);
                let stats = ws.cart.comm().stats();
                (field, shots, stats.msgs_sent, stats.bytes_sent)
            },
        );
        let wall = t0.elapsed().as_secs_f64();
        let out = applied.results;
        let (field, _, _, _) = &out[0];
        let energy: f64 = field.iter().map(|&v| (v as f64) * (v as f64)).sum();
        let msgs: u64 = out.iter().map(|(_, _, m, _)| m).sum();
        let bytes: u64 = out.iter().map(|(_, _, _, b)| b).sum();
        println!(
            "{mode:?}: {wall:.2}s wall, field energy {energy:.4e}, {msgs} msgs / {:.1} MB total",
            bytes as f64 / 1e6
        );
        // Merge the receiver gather (each point recorded on one rank).
        let mut gathered = vec![vec![0.0f32; nrec]; nt as usize];
        for (_, shots, _, _) in &out {
            for (t, row) in shots.iter().enumerate() {
                for (p, &v) in row.iter().enumerate() {
                    if !v.is_nan() {
                        gathered[t][p] = v;
                    }
                }
            }
        }
        let peak = gathered
            .iter()
            .flatten()
            .fold(0.0f32, |a, &b| a.max(b.abs()));
        println!("         receiver gather peak amplitude {peak:.4e}");
        println!(
            "         halo.wait {:.1}% of slowest rank's time",
            applied.summary.halo_wait_fraction * 100.0
        );
        results.push(field.clone());
    }
    // All three modes must produce the same physics.
    for (a, b) in results[0].iter().zip(&results[1]) {
        assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
    }
    for (a, b) in results[0].iter().zip(&results[2]) {
        assert!((a - b).abs() <= 1e-5 * b.abs().max(1.0));
    }
    println!("basic, diagonal and full modes agree numerically ✓");
}
