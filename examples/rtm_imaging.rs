//! Reverse-time migration (RTM) — the industrial application the paper's
//! introduction motivates ("full-waveform inversion (FWI), high-frequency
//! reverse-time migration (RTM)"). A complete 2-D imaging experiment on
//! the DSL:
//!
//! 1. forward-model a shot over a two-layer velocity model (the "true"
//!    earth) and record receivers;
//! 2. forward-model over the smooth background and record again — the
//!    difference isolates the reflection;
//! 3. back-propagate the time-reversed residual with the (self-adjoint)
//!    wave operator, cross-correlating with the saved background
//!    wavefield at every step (the zero-lag imaging condition);
//! 4. the resulting image peaks at the reflector depth.
//!
//! ```sh
//! cargo run --release --example rtm_imaging
//! ```

use mpix::prelude::*;
use mpix::solvers::ricker_wavelet;

const NX: usize = 81; // depth points
const NY: usize = 81; // lateral points
const H: f64 = 0.01; // km
const V_TOP: f64 = 1.5;
const V_BOTTOM: f64 = 2.2;
const REFLECTOR_DEPTH: usize = 48;

fn build_operator() -> Operator {
    let mut ctx = Context::new();
    let extent = [(NX - 1) as f64 * H, (NY - 1) as f64 * H];
    let grid = Grid::new(&[NX, NY], &extent);
    let u = ctx.add_time_function("u", &grid, 8, 2);
    let m = ctx.add_function("m", &grid, 8);
    let damp = ctx.add_function("damp", &grid, 8);
    let pde = m.center() * u.dt2() - u.laplace() + damp.center() * u.dt();
    let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
    Operator::build(ctx, grid, vec![st]).unwrap()
}

/// Quadratic sponge on all sides but the top (free surface-ish).
fn fill_damp(ws: &mut Workspace, nbl: usize) {
    let coeff = 3.0 * V_BOTTOM * (1000.0f64).ln() / (2.0 * nbl as f64 * H);
    for i in 0..NX {
        for j in 0..NY {
            let d_bot = (NX - 1 - i).min(j).min(NY - 1 - j);
            let v = if d_bot < nbl {
                let r = (nbl - d_bot) as f64 / nbl as f64;
                coeff * r * r
            } else {
                0.0
            };
            ws.field_data_mut("damp", 0).set_global(&[i, j], v as f32);
        }
    }
}

fn fill_velocity(ws: &mut Workspace, layered: bool) {
    for i in 0..NX {
        for j in 0..NY {
            let v = if layered && i >= REFLECTOR_DEPTH {
                V_BOTTOM
            } else {
                V_TOP
            };
            let m = 1.0 / (v * v);
            ws.field_data_mut("m", 0).set_global(&[i, j], m as f32);
        }
    }
}

struct Shot {
    /// `gather[t][r]`
    gather: Vec<Vec<f32>>,
    /// Forward wavefield snapshots `snaps[t][x*NY+y]` (background model
    /// run only).
    snaps: Option<Vec<Vec<f32>>>,
}

fn receiver_coords() -> Vec<Vec<f64>> {
    (0..16)
        .map(|r| vec![2.0 * H, (8 + r * 4) as f64 * H])
        .collect()
}

/// Forward-model one shot; optionally save snapshots for imaging.
fn forward(op: &Operator, nt: usize, dt: f64, layered: bool, save: bool) -> Shot {
    let wavelet = ricker_wavelet(12.0, dt, nt);
    let run_opts = ApplyOptions::default()
        .with_nt(0)
        .with_dt(dt)
        .with_ranks(4)
        .with_topology(&[2, 2]);
    let out = op
        .run(
            &run_opts,
            |_| {},
            move |ws| {
                fill_velocity(ws, layered);
                fill_damp(ws, 10);
                let spacing = vec![H, H];
                let src =
                    SparsePoints::new(vec![vec![2.0 * H, (NY / 2) as f64 * H]], spacing.clone());
                let scale = (dt * dt * V_TOP * V_TOP) as f32;
                ws.add_injection("u", src, wavelet.clone(), vec![scale]);
                ws.add_receivers("u", SparsePoints::new(receiver_coords(), spacing));
                // Step externally so snapshots can be captured.
                let exec =
                    op.executable_for(&ApplyOptions::default().with_mode(HaloMode::Diagonal));
                let mut snaps = Vec::new();
                for k in 0..nt {
                    let opts = ApplyOptions::default()
                        .with_nt(1)
                        .with_t0(k as i64)
                        .with_dt(dt)
                        .with_mode(HaloMode::Diagonal);
                    op.apply(ws, &exec, &opts);
                    if save {
                        snaps.push(
                            ws.field_data("u", (k + 1) as i64)
                                .gather_global(ws.cart.comm()),
                        );
                    }
                }
                let gather = ws.take_samples(1);
                (gather, if save { Some(snaps) } else { None })
            },
        )
        .results;
    // Merge receiver rows across ranks (one non-NaN owner per point).
    let nrec = receiver_coords().len();
    let mut gather = vec![vec![0.0f32; nrec]; nt];
    for (g, _) in &out {
        for (t, row) in g.iter().enumerate() {
            for (r, &v) in row.iter().enumerate() {
                if !v.is_nan() {
                    gather[t][r] = v;
                }
            }
        }
    }
    Shot {
        gather,
        snaps: out.into_iter().next().unwrap().1,
    }
}

/// Back-propagate the residual and apply the imaging condition.
fn migrate(
    op: &Operator,
    nt: usize,
    dt: f64,
    residual: &[Vec<f32>],
    snaps: &[Vec<f32>],
) -> Vec<f64> {
    let nrec = receiver_coords().len();
    let run_opts = ApplyOptions::default()
        .with_nt(0)
        .with_dt(dt)
        .with_ranks(4)
        .with_topology(&[2, 2]);
    let out = op.run(
        &run_opts,
        |_| {},
        move |ws| {
            fill_velocity(ws, false);
            fill_damp(ws, 10);
            let spacing = vec![H, H];
            // The adjoint source: every receiver injects its own
            // time-reversed residual trace.
            let coords = receiver_coords();
            let nrec = coords.len();
            let traces: Vec<Vec<f32>> = (0..nrec)
                .map(|r| (0..nt).map(|t| residual[nt - 1 - t][r]).collect())
                .collect();
            ws.add_injection_traces(
                "u",
                SparsePoints::new(coords, spacing),
                traces,
                vec![(dt * dt * V_TOP * V_TOP) as f32; nrec],
            );
            let exec = op.executable_for(&ApplyOptions::default().with_mode(HaloMode::Diagonal));
            let mut image = vec![0.0f64; NX * NY];
            for s in 0..nt {
                let opts = ApplyOptions::default()
                    .with_nt(1)
                    .with_t0(s as i64)
                    .with_dt(dt)
                    .with_mode(HaloMode::Diagonal);
                op.apply(ws, &exec, &opts);
                let v = ws
                    .field_data("u", (s + 1) as i64)
                    .gather_global(ws.cart.comm());
                // Zero-lag cross-correlation: adjoint time s ~ forward
                // time nt-1-s.
                let fwd = &snaps[nt - 1 - s];
                for (px, (&a, &b)) in image.iter_mut().zip(fwd.iter().zip(&v)) {
                    *px += (a as f64) * (b as f64);
                }
            }
            image
        },
    );
    let _ = nrec;
    out.results.into_iter().next().unwrap()
}

fn main() {
    let op = build_operator();
    let dt = 0.4 * H / (V_BOTTOM * 2.0f64.sqrt());
    let nt = 700;
    println!("RTM demo: {NX}x{NY} grid, reflector at depth index {REFLECTOR_DEPTH}, {nt} steps");

    println!("  forward modeling (true two-layer model)...");
    let observed = forward(&op, nt, dt, true, false);
    println!("  forward modeling (smooth background, saving wavefield)...");
    let background = forward(&op, nt, dt, false, true);

    // Residual isolates the reflection event.
    let residual: Vec<Vec<f32>> = observed
        .gather
        .iter()
        .zip(&background.gather)
        .map(|(o, b)| o.iter().zip(b).map(|(x, y)| x - y).collect())
        .collect();
    let res_energy: f64 = residual
        .iter()
        .flatten()
        .map(|&v| (v as f64) * (v as f64))
        .sum();
    println!("  residual energy: {res_energy:.4e}");
    // Diagnostics: when does the reflection arrive, and where is the
    // forward wavefield over time?
    let rmax = residual
        .iter()
        .enumerate()
        .map(|(t, row)| (t, row.iter().fold(0.0f32, |a, &b| a.max(b.abs()))))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "  residual peak at forward step {} (amp {:.2e})",
        rmax.0, rmax.1
    );
    let dmax = observed
        .gather
        .iter()
        .enumerate()
        .map(|(t, row)| (t, row.iter().fold(0.0f32, |a, &b| a.max(b.abs()))))
        .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
        .unwrap();
    println!(
        "  direct-wave peak at forward step {} (amp {:.2e})",
        dmax.0, dmax.1
    );
    let snaps_ref = background.snaps.as_ref().unwrap();
    for t in (60..nt).step_by(60) {
        let row48: f32 = (0..NY)
            .map(|j| snaps_ref[t][REFLECTOR_DEPTH * NY + j].abs())
            .fold(0.0, f32::max);
        let row20: f32 = (0..NY)
            .map(|j| snaps_ref[t][20 * NY + j].abs())
            .fold(0.0, f32::max);
        println!("  fwd snap t={t}: max|u| at depth 20 = {row20:.2e}, at depth 48 = {row48:.2e}");
    }
    assert!(res_energy > 0.0, "no reflection recorded");

    println!("  migrating residual (adjoint + imaging condition)...");
    let image = migrate(&op, nt, dt, &residual, background.snaps.as_ref().unwrap());

    // Standard RTM post-processing: the raw cross-correlation image is
    // dominated by the smooth, low-wavenumber source-side artifact
    // (forward and adjoint waves travelling together down from the
    // surface). A Laplacian filter suppresses it and sharpens the
    // reflector.
    let mut filtered = vec![0.0f64; NX * NY];
    for i in 1..NX - 1 {
        for j in 1..NY - 1 {
            filtered[i * NY + j] = 4.0 * image[i * NY + j]
                - image[(i - 1) * NY + j]
                - image[(i + 1) * NY + j]
                - image[i * NY + j - 1]
                - image[i * NY + j + 1];
        }
    }

    // Depth profile: RMS over the lateral axis, interior only.
    let mut profile = vec![0.0f64; NX];
    for (i, p) in profile.iter_mut().enumerate() {
        let mut acc = 0.0;
        for j in 12..NY - 12 {
            acc += filtered[i * NY + j] * filtered[i * NY + j];
        }
        *p = acc.sqrt();
    }
    // Peak below the source region must sit near the reflector.
    let search_from = 20usize;
    let peak = (search_from..NX - 10)
        .max_by(|&a, &b| profile[a].partial_cmp(&profile[b]).unwrap())
        .unwrap();
    println!("  image depth profile peak at index {peak} (true reflector {REFLECTOR_DEPTH})");
    for i in (16..NX - 10).step_by(4) {
        let bar = "#".repeat((60.0 * profile[i] / profile[peak]) as usize);
        println!("    depth {i:>3} | {bar}");
    }
    assert!(
        (peak as i64 - REFLECTOR_DEPTH as i64).abs() <= 6,
        "image peak {peak} too far from reflector {REFLECTOR_DEPTH}"
    );
    println!("RTM image localizes the reflector ✓");
}
