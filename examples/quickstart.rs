//! Quickstart: the paper's Listing 1 — a 2-D heat-diffusion operator —
//! run serially and then on 4 simulated MPI ranks with zero changes to
//! the "user code", reproducing the distributed data views of
//! Listings 2 and 3.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use mpix::prelude::*;

fn main() {
    // --- Listing 1: symbolic problem definition -------------------------
    let (nx, ny) = (4usize, 4usize);
    let nu = 0.5;
    let sigma = 0.25;
    let (dx, dy) = (2.0 / (nx - 1) as f64, 2.0 / (ny - 1) as f64);
    let dt = sigma * dx * dy / nu;

    let mut ctx = Context::new();
    let grid = Grid::new(&[nx, ny], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);

    // u.dt = u.laplace  ->  explicit update via solve()
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();

    println!(
        "=== Schedule tree (paper Listing 4) ===\n{}",
        op.schedule_tree()
    );
    println!(
        "=== IET with HaloSpots (paper Listing 5) ===\n{}",
        op.iet_string()
    );

    // --- Listing 2: distributed slice write ------------------------------
    // u.data[1:-1, 1:-1] = 1 across 4 ranks; each rank prints its local
    // view, matching the paper's stdout exactly. One ApplyOptions carries
    // the whole runtime configuration: mode, ranks, topology, trace level.
    let opts = ApplyOptions::default()
        .with_nt(0)
        .with_dt(dt)
        .with_ranks(4)
        .with_topology(&[2, 2])
        .with_label("quickstart-diffusion");
    let views = op
        .run(
            &opts,
            |ws| {
                ws.field_data_mut("u", 0)
                    .fill_global_slice(&[1..3, 1..3], 1.0);
            },
            |ws| ws.field_data("u", 0).local_view_string(),
        )
        .results;
    println!("=== Listing 2: per-rank views after the slice write ===");
    for (r, v) in views.iter().enumerate() {
        println!("[stdout:{r}]\n{v}\n");
    }

    // --- Listing 3: one operator application -----------------------------
    let opts = opts.with_nt(1).with_trace(TraceLevel::Summary);
    let applied = op.run(
        &opts,
        |ws| {
            ws.field_data_mut("u", 0)
                .fill_global_slice(&[1..3, 1..3], 1.0);
        },
        |ws| (ws.field_final("u").local_view_string(), ws.gather("u")),
    );
    println!("=== Listing 3: per-rank views after one operator step ===");
    for (r, (v, _)) in applied.results.iter().enumerate() {
        println!("[stdout:{r}]\n{v}\n");
    }

    // The same run hands back a per-rank performance summary for free.
    println!("=== Per-rank performance summary (MPIX_TRACE=summary) ===");
    println!("{}", applied.summary.table());

    // Serial run must agree exactly with the distributed one.
    let serial_opts = ApplyOptions::default()
        .with_nt(1)
        .with_dt(dt)
        .with_label("quickstart-serial");
    let serial = op
        .run(
            &serial_opts,
            |ws| {
                ws.field_data_mut("u", 0)
                    .fill_global_slice(&[1..3, 1..3], 1.0);
            },
            |ws| ws.gather("u"),
        )
        .results
        .remove(0);
    assert_eq!(applied.results[0].1, serial, "distributed != serial");
    println!("serial and 4-rank runs agree bit-for-bit ✓");
}
