//! Inspect every compiler IR level for the paper's running example:
//! schedule tree (Listing 4), IET with HaloSpots (Listing 5), the
//! mode-lowered IET (Listing 6), and the generated C (Listing 11) for
//! each of the three MPI modes.
//!
//! ```sh
//! cargo run --example codegen_inspect
//! ```

use mpix::prelude::*;

fn main() {
    let mut ctx = Context::new();
    let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    println!("explicit update: {} = {}\n", stencil.lhs, stencil.rhs);

    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();

    println!("=== Cluster-level metrics ===");
    let c = op.op_counts();
    println!(
        "flops/pt = {} (adds {}, muls {}, divs {}), streams r/w = {}/{}, OI = {:.3}\n",
        c.flops(),
        c.adds,
        c.muls,
        c.divs,
        c.read_streams,
        c.write_streams,
        c.oi()
    );

    println!("=== Schedule tree (Listing 4) ===\n{}", op.schedule_tree());
    println!(
        "=== IET with HaloSpots (Listing 5) ===\n{}",
        op.iet_string()
    );

    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        println!("=== Generated C, {mode:?} mode (Listing 11) ===");
        println!(
            "{}",
            op.c_code_for(&ApplyOptions::default().with_mode(mode))
        );
    }
}
