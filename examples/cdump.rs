use mpix::prelude::*;
fn main() {
    let mut ctx = Context::new();
    let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
    let op = Operator::build(ctx, grid, vec![stencil]).unwrap();
    print!(
        "{}",
        op.c_code_for(&ApplyOptions::default().with_mode(HaloMode::Basic))
    );
}
