//! Admission pricing for the serve layer: a roofline estimate of what a
//! solver job will cost *before* it runs, so the scheduler can reject
//! work that would monopolize the rank pool.
//!
//! The estimate reuses the same analytic machinery as the scaling model
//! (§IV): per-point cost is the roofline maximum of the compute time
//! (`flops / peak`) and the streaming time (`bytes / bw`) on the
//! reference machine, multiplied out over grid points and time steps.
//! It is deliberately a *bound*, not a prediction — admission control
//! needs a stable, monotone price (more points / more steps / more work
//! per point never gets cheaper), and the single-flight compile cache
//! means the price must not depend on warm-up state.

use mpix_json::{json, Value};

use crate::machine::MachineSpec;

/// The admission price of one job, in rank-seconds on the reference
/// machine (the unit the pool scheduler budgets in: a job using `r`
/// ranks for `s` seconds consumes `r·s` rank-seconds of pool capacity).
#[derive(Clone, Debug)]
pub struct JobCost {
    /// Estimated wall seconds on `ranks` ranks (perfect strong scaling —
    /// a lower bound on time, an upper bound on parallel efficiency).
    pub est_secs: f64,
    /// Total sequential work: `est_secs × ranks`. Invariant under the
    /// rank count, which is what makes it a fair admission currency.
    pub rank_seconds: f64,
    /// Whether the roofline bound was the compute ceiling (`true`) or
    /// the memory-bandwidth ceiling (`false`).
    pub compute_bound: bool,
}

impl JobCost {
    /// Machine-readable form, embedded in serve job records.
    pub fn to_json(&self) -> Value {
        json!({
            "est_secs": self.est_secs,
            "rank_seconds": self.rank_seconds,
            "compute_bound": self.compute_bound,
        })
    }
}

/// Price a job from its compile-time operation counts.
///
/// * `flops_per_pt` / `bytes_per_pt` — per-grid-point work and streaming
///   traffic (from `OpCounts::flops()` / `OpCounts::bytes()`).
/// * `points` — global grid points updated per time step.
/// * `nt` — number of time steps.
/// * `ranks` — ranks the job requests from the pool.
pub fn price_job(
    flops_per_pt: f64,
    bytes_per_pt: f64,
    points: u64,
    nt: u64,
    ranks: usize,
    machine: &MachineSpec,
) -> JobCost {
    let compute = flops_per_pt / machine.rank_flops();
    let memory = bytes_per_pt / machine.rank_bw();
    let per_point = compute.max(memory);
    let rank_seconds = per_point * points as f64 * nt as f64;
    JobCost {
        est_secs: rank_seconds / ranks.max(1) as f64,
        rank_seconds,
        compute_bound: compute >= memory,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::archer2_node;

    #[test]
    fn price_is_monotone_in_work() {
        let m = archer2_node();
        let base = price_job(100.0, 40.0, 1_000_000, 10, 8, &m);
        assert!(base.rank_seconds > 0.0);
        // More points, more steps, more flops: never cheaper.
        assert!(price_job(100.0, 40.0, 2_000_000, 10, 8, &m).rank_seconds > base.rank_seconds);
        assert!(price_job(100.0, 40.0, 1_000_000, 20, 8, &m).rank_seconds > base.rank_seconds);
        assert!(price_job(200.0, 40.0, 1_000_000, 10, 8, &m).rank_seconds >= base.rank_seconds);
    }

    #[test]
    fn rank_seconds_invariant_under_rank_count() {
        let m = archer2_node();
        let a = price_job(100.0, 40.0, 1_000_000, 10, 1, &m);
        let b = price_job(100.0, 40.0, 1_000_000, 10, 16, &m);
        assert!((a.rank_seconds - b.rank_seconds).abs() < 1e-12);
        assert!(b.est_secs < a.est_secs);
    }

    #[test]
    fn roofline_picks_the_binding_ceiling() {
        let m = archer2_node();
        // Very high OI: compute-bound. Very low OI: memory-bound.
        assert!(price_job(1e6, 4.0, 1000, 1, 1, &m).compute_bound);
        assert!(!price_job(1.0, 4000.0, 1000, 1, 1, &m).compute_bound);
    }
}
