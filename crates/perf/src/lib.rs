//! # mpix-perf
//!
//! The cluster performance model that regenerates the paper's evaluation
//! (§IV) at 1–128 nodes/GPUs — the substitution for Archer2 and Tursa
//! documented in `DESIGN.md`.
//!
//! The model is analytic but *driven by the real compiler*: every kernel
//! characteristic it consumes (flops/point, memory streams, exchange
//! radius, per-step exchange plan, cluster count) comes from the
//! compiled operators via [`KernelProfile`]. Four per-kernel single-node
//! efficiency factors are calibrated against the paper's own single-node
//! rooflines (Fig. 7) — see `EXPERIMENTS.md`; everything else (strong /
//! weak scaling curves, which exchange mode wins where, CPU-vs-GPU
//! factors) *emerges* from:
//!
//! * a roofline compute model ([`machine`], [`roofline`]),
//! * an alpha–beta (Hockney) network model with per-message CPU overhead
//!   and per-mode message structure ([`network`]): *basic* = `ndim`
//!   sequential rounds of 2 face messages with halo-extended slabs,
//!   *diagonal* = one round of `3^d − 1` messages, *full* = the diagonal
//!   exchange overlapped with CORE compute plus a strided-access penalty
//!   on the REMAINDER points,
//! * the NVLink/InfiniBand hierarchy for multi-GPU runs ([`machine`]).

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod admission;
pub mod machine;
pub mod network;
pub mod profile;
pub mod roofline;
pub mod scaling;

pub use admission::{price_job, JobCost};
pub use machine::{archer2_node, tursa_a100, MachineSpec};
pub use network::{collective_time, comm_time_per_step, CommBreakdown};
pub use profile::KernelProfile;
pub use roofline::{single_unit_gpts, RooflinePoint};
pub use scaling::{strong_scaling, weak_scaling, Mode, ScalePoint};
