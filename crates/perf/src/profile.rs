//! Kernel profiles: the compiler-derived characteristics the performance
//! model consumes.

use mpix_json::{json, Value};

/// Everything the scaling model needs to know about one compiled
/// operator. Constructed by the benchmark harness from real
/// `mpix_core::Operator`s (`Operator::op_counts`, `Operator::halo_plan`);
/// the synthetic constructors below exist for unit tests only.
#[derive(Clone, Debug)]
pub struct KernelProfile {
    pub name: String,
    /// Spatial discretization order.
    pub sdo: u32,
    /// Floating-point operations per grid point per time step (all
    /// clusters).
    pub flops_per_pt: f64,
    /// Streaming traffic per grid point per step, bytes (distinct
    /// read+write streams × 4).
    pub bytes_per_pt: f64,
    /// Total stencil loads per point before cache reuse (pressure
    /// signal).
    pub raw_loads: usize,
    /// Number of arrays in the working set (the paper's "fields").
    pub working_set: usize,
    /// Buffers exchanged per time step (Σ over clusters of the halo
    /// plan).
    pub exchanged_buffers: usize,
    /// Distinct exchange positions per step (clusters preceded by a
    /// non-empty exchange set) — each pays the latency/handshake terms.
    pub exchange_phases: usize,
    /// Exchange radius (stencil radius = sdo/2).
    pub radius: usize,
    /// Loop nests per time step (sync points).
    pub clusters: usize,
    /// Single-unit efficiency calibration vs. the roofline bound:
    /// `(cpu, gpu)`. Calibrated once against the paper's Fig. 7 /
    /// single-node table entries; see EXPERIMENTS.md.
    pub efficiency: (f64, f64),
}

impl KernelProfile {
    /// Calibrated single-unit efficiency factors for the four paper
    /// kernels, keyed by kernel name. The staggered, many-cluster
    /// kernels sustain a smaller fraction of the streaming roofline —
    /// the paper's Fig. 7 shows exactly this spread.
    pub fn calibrated_efficiency(name: &str) -> (f64, f64) {
        // Derived from the paper's single-unit SDO-8 entries divided by
        // the roofline ceilings of the machine specs (see EXPERIMENTS.md
        // for the arithmetic).
        // Note: these are a *whole-curve* fit (mean |log2 ratio| over all
        // published entries), not a pure single-node fit — the paper's
        // curves lose more efficiency at scale than the network model
        // alone explains, so a single-node-exact calibration would
        // overshoot everywhere else. See EXPERIMENTS.md.
        match name {
            "acoustic" => (0.73, 0.39),
            "tti" => (0.60, 0.65),
            "elastic" => (0.45, 0.29),
            "viscoelastic" => (0.43, 0.24),
            _ => (0.8, 0.5),
        }
    }

    /// A synthetic memory-bound profile (unit tests).
    pub fn synthetic_memory_bound() -> KernelProfile {
        KernelProfile {
            name: "synthetic-mem".into(),
            sdo: 8,
            flops_per_pt: 40.0,
            bytes_per_pt: 20.0,
            raw_loads: 30,
            working_set: 5,
            exchanged_buffers: 1,
            exchange_phases: 1,
            radius: 4,
            clusters: 1,
            efficiency: (1.0, 1.0),
        }
    }

    /// A synthetic compute-bound profile (unit tests).
    pub fn synthetic_compute_bound() -> KernelProfile {
        KernelProfile {
            name: "synthetic-flop".into(),
            sdo: 8,
            flops_per_pt: 4000.0,
            bytes_per_pt: 60.0,
            raw_loads: 700,
            working_set: 14,
            exchanged_buffers: 3,
            exchange_phases: 1,
            radius: 4,
            clusters: 1,
            efficiency: (1.0, 1.0),
        }
    }

    /// Operational intensity (flops per byte).
    pub fn oi(&self) -> f64 {
        self.flops_per_pt / self.bytes_per_pt
    }

    /// Machine-readable form for the experiment dumps.
    pub fn to_json(&self) -> Value {
        json!({
            "name": &self.name,
            "sdo": self.sdo,
            "flops_per_pt": self.flops_per_pt,
            "bytes_per_pt": self.bytes_per_pt,
            "raw_loads": self.raw_loads,
            "working_set": self.working_set,
            "exchanged_buffers": self.exchanged_buffers,
            "exchange_phases": self.exchange_phases,
            "radius": self.radius,
            "clusters": self.clusters,
            "efficiency": vec![self.efficiency.0, self.efficiency.1],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oi_ordering_of_synthetics() {
        assert!(
            KernelProfile::synthetic_compute_bound().oi()
                > KernelProfile::synthetic_memory_bound().oi()
        );
    }

    #[test]
    fn calibration_covers_all_paper_kernels() {
        for k in ["acoustic", "tti", "elastic", "viscoelastic"] {
            let (c, g) = KernelProfile::calibrated_efficiency(k);
            assert!(c > 0.0 && c <= 1.0 && g > 0.0 && g <= 1.0, "{k}");
        }
    }
}
