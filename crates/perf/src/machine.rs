//! Machine descriptions for the paper's two systems (§IV-A).

/// One scalable compute unit (a CPU node or a GPU device) plus its
/// interconnect characteristics.
#[derive(Clone, Debug)]
pub struct MachineSpec {
    pub name: String,
    /// Peak FP32 throughput per unit (flop/s).
    pub peak_flops: f64,
    /// Sustained memory bandwidth per unit (B/s).
    pub mem_bw: f64,
    /// MPI ranks per unit (8 per Archer2 node; 1 per GPU).
    pub ranks_per_unit: usize,
    /// Network latency per message (s).
    pub net_alpha: f64,
    /// Per-message CPU/NIC injection overhead (s) — what makes many
    /// small messages expensive.
    pub net_msg_overhead: f64,
    /// Network bandwidth per rank (B/s).
    pub net_beta: f64,
    /// Fast intra-unit-group fabric (NVLink): bandwidth per rank (B/s).
    /// `None` for CPU clusters.
    pub intra_beta: Option<f64>,
    /// Units sharing the fast fabric (4 GPUs per Tursa node).
    pub intra_group: usize,
    /// Fixed per-loop-nest launch/sync overhead per time step (s) —
    /// kernel launches on GPUs, OpenMP barriers on CPUs.
    pub nest_overhead: f64,
    /// Relative throughput of REMAINDER-area points in *full* mode
    /// (strided accesses, poor vectorization — §III h). 1.0 = no
    /// penalty; the paper's discussion implies a substantial one.
    pub remainder_efficiency: f64,
    /// Last-level cache capacity per rank (bytes); strong scaling goes
    /// superlinear once the per-rank working set drops below this (the
    /// paper's acoustic rows jump >2x from 64 to 128 nodes).
    pub cache_per_rank: f64,
    /// Bandwidth multiplier once the working set is cache-resident.
    pub cache_bw_boost: f64,
}

/// An Archer2 compute node: dual AMD EPYC 7742 (128 cores), 8 NUMA
/// ranks × 16 OpenMP threads, HPE Slingshot (200 Gb/s, dragonfly).
pub fn archer2_node() -> MachineSpec {
    MachineSpec {
        name: "Archer2-node".into(),
        // 128 cores * 2.25 GHz * 2 FMA units * 2 flops * 8-wide f32.
        peak_flops: 9.2e12,
        // 8 DDR4-3200 channels x 2 sockets ~ 410 GB/s peak, ~85% stream.
        mem_bw: 350.0e9,
        ranks_per_unit: 8,
        net_alpha: 2.0e-6,
        net_msg_overhead: 1.0e-6,
        // 2x 200 Gb/s NICs per node = 50 GB/s, shared by 8 ranks.
        net_beta: 6.25e9,
        intra_beta: None,
        intra_group: 1,
        nest_overhead: 4.0e-6,
        remainder_efficiency: 0.25,
        // 16 MB L3 per 4 cores, 16 cores per rank -> 64 MB nominal;
        // halos and conflict misses make ~48 MB usable.
        cache_per_rank: 32.0e6,
        cache_bw_boost: 2.2,
    }
}

/// A Tursa A100-80 GPU: 19.5 TF FP32, 2 TB/s HBM2e, NVLink within the
/// 4-GPU node, 4×200 Gb/s InfiniBand out of the node.
pub fn tursa_a100() -> MachineSpec {
    MachineSpec {
        name: "Tursa-A100".into(),
        peak_flops: 19.5e12,
        mem_bw: 1.6e12,
        ranks_per_unit: 1,
        net_alpha: 3.5e-6,
        net_msg_overhead: 1.5e-6,
        // 4x 200 Gb/s IB per node / 4 GPUs = 25 GB/s per GPU.
        net_beta: 25.0e9,
        // NVLink3: ~250 GB/s effective per GPU pair.
        intra_beta: Some(250.0e9),
        intra_group: 4,
        nest_overhead: 10.0e-6,
        remainder_efficiency: 0.25,
        // 40 MB L2 on A100 — small next to HBM working sets; the boost
        // is rarely reached on the GPU problem sizes.
        cache_per_rank: 40.0e6,
        cache_bw_boost: 1.5,
    }
}

impl MachineSpec {
    /// Peak flops available to a single rank.
    pub fn rank_flops(&self) -> f64 {
        self.peak_flops / self.ranks_per_unit as f64
    }
    /// Memory bandwidth available to a single rank.
    pub fn rank_bw(&self) -> f64 {
        self.mem_bw / self.ranks_per_unit as f64
    }
    /// Effective per-rank bandwidth for a given per-rank working set:
    /// ramps from DRAM speed up to `cache_bw_boost`x as the working set
    /// falls below the last-level-cache capacity.
    pub fn rank_bw_for(&self, working_set_bytes: f64) -> f64 {
        let base = self.rank_bw();
        let ratio = working_set_bytes / self.cache_per_rank;
        let boost = if ratio >= 0.8 {
            1.0
        } else if ratio <= 0.2 {
            self.cache_bw_boost
        } else {
            // Linear ramp between 0.8x and 0.2x the cache capacity.
            1.0 + (self.cache_bw_boost - 1.0) * (0.8 - ratio) / 0.6
        };
        base * boost
    }
    /// Effective network bandwidth per rank given the number of units:
    /// GPU groups use NVLink while the job fits inside one group.
    pub fn effective_beta(&self, units: usize) -> f64 {
        match self.intra_beta {
            Some(fast) if units <= self.intra_group => fast,
            // Beyond one group, traffic mixes NVLink and IB; the slow
            // links dominate the critical path.
            _ => self.net_beta,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn archer2_is_memory_bound_for_low_oi() {
        let m = archer2_node();
        // machine balance ~ 26 flops/byte
        assert!(m.peak_flops / m.mem_bw > 5.0);
        assert_eq!(m.ranks_per_unit, 8);
    }

    #[test]
    fn tursa_nvlink_only_inside_group() {
        let g = tursa_a100();
        assert!(g.effective_beta(2) > g.effective_beta(8));
        assert_eq!(g.effective_beta(4), 250.0e9);
        assert_eq!(g.effective_beta(5), 25.0e9);
    }

    #[test]
    fn gpu_unit_is_faster_than_cpu_node_on_bandwidth() {
        // The paper's weak scaling: GPUs ~4x faster for the same points.
        let c = archer2_node();
        let g = tursa_a100();
        let ratio = g.mem_bw / c.mem_bw;
        assert!(ratio > 3.0 && ratio < 6.0, "{ratio}");
    }
}
