//! Alpha–beta communication cost model with per-mode message structure
//! (§III h / Table I).

use crate::machine::MachineSpec;
use crate::profile::KernelProfile;
use crate::scaling::Mode;

/// Breakdown of one rank's per-step communication cost.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct CommBreakdown {
    /// Messages sent per step.
    pub messages: usize,
    /// Bytes sent per step.
    pub bytes: f64,
    /// Modeled wall-clock time of the exchange (s).
    pub time: f64,
}

/// Halo bytes crossing one face perpendicular to `d`, for one buffer.
fn face_bytes(local: &[usize], d: usize, radius: usize, extended: bool) -> f64 {
    let mut area = 1.0f64;
    for (e, &n) in local.iter().enumerate() {
        if e == d {
            continue;
        }
        // basic mode packs halo-extended slabs for already-exchanged dims.
        let span = if extended && e < d { n + 2 * radius } else { n };
        area *= span as f64;
    }
    area * radius as f64 * 4.0
}

/// Communication cost of one time step for a rank with `local` owned
/// points, given the exchange mode. Boundary ranks send fewer messages;
/// we model the interior rank (the critical path).
pub fn comm_time_per_step(
    profile: &KernelProfile,
    machine: &MachineSpec,
    units: usize,
    local: &[usize],
    mode: Mode,
) -> CommBreakdown {
    if units * machine.ranks_per_unit <= 1 {
        return CommBreakdown::default();
    }
    let nd = local.len();
    let alpha = machine.net_alpha;
    let oh = machine.net_msg_overhead;
    let r = profile.radius;
    let nb = profile.exchanged_buffers as f64;
    // Neighbours inside the same unit exchange through shared memory (or
    // NVLink); only the remainder crosses the network. With 8 ranks per
    // node in a 2x2x2 block, about half of a rank's faces stay local.
    let shmem_beta = machine.mem_bw / machine.ranks_per_unit as f64 / 2.0;
    let intra_frac = if units == 1 {
        1.0
    } else if machine.ranks_per_unit > 1 {
        0.5
    } else {
        0.0
    };
    let net_beta = machine.effective_beta(units);
    // Effective per-byte cost mixing local and network links.
    let per_byte = (1.0 - intra_frac) / net_beta + intra_frac / shmem_beta;
    // Runtime (C-land) buffer allocation for basic mode: malloc + OS
    // zeroing + pack + free every call is several memory passes over the
    // packed bytes (Table I's "buffer allocation" column;
    // diagonal/full preallocate in Python-land).
    let alloc_per_byte = 3.0 / machine.rank_bw();
    // Packing into and unpacking out of message buffers is one memory
    // pass over the halo bytes on each side (threaded, but still
    // traffic) — paid by every mode.
    let pack_per_byte = 2.0 / machine.rank_bw();
    // Per-destination handshake/rendezvous overhead. It grows with the
    // job size (connection state, matching, congestion on the dragonfly)
    // and is paid once per neighbour, not per buffer — concurrent
    // messages to one peer pipeline.
    let ranks = (units * machine.ranks_per_unit) as f64;
    let oh_dest = oh * (1.0 + ranks / 128.0).min(10.0);
    // Each cluster-level exchange position pays the latency/handshake
    // terms separately (e.g. elastic: stress exchange, then fresh
    // velocities between the two loop nests).
    let phases = profile.exchange_phases.max(1) as f64;

    match mode {
        Mode::Basic => {
            // nd sequential rounds; both directions of a round overlap on
            // a full-duplex link, so a round costs one latency plus the
            // slab transfer, but per-message overheads serialize at the
            // sender.
            // All buffers' messages for one dimension go out together
            // (one round, 2 destinations); rounds are sequential and each
            // pays a blocking-handshake latency (Sync, multi-step in
            // Table I), plus the C-land allocation passes.
            let mut time = 0.0;
            let mut bytes = 0.0;
            let mut messages = 0usize;
            for d in 0..nd {
                let fb = face_bytes(local, d, r, true) * nb;
                bytes += 2.0 * fb;
                messages += (2.0 * nb) as usize;
                time += phases * (2.0 * alpha + 2.0 * oh_dest)
                    + 2.0 * fb * (per_byte + alloc_per_byte + pack_per_byte);
            }
            CommBreakdown {
                messages,
                bytes,
                time,
            }
        }
        Mode::Diagonal | Mode::Full => {
            // Single-step: 3^d - 1 messages per buffer, all posted at
            // once. Faces carry almost all the bytes; edges/corners are
            // radius^2/radius^3-sized.
            let mut bytes = 0.0;
            for d in 0..nd {
                bytes += 2.0 * face_bytes(local, d, r, false);
            }
            // Edge strips (2-D: corners; 3-D: 12 edges + 8 corners).
            if nd == 3 {
                for d in 0..nd {
                    bytes += 4.0 * (local[d] as f64) * (r * r) as f64 * 4.0;
                }
                bytes += 8.0 * (r * r * r) as f64 * 4.0;
            } else if nd == 2 {
                bytes += 4.0 * (r * r) as f64 * 4.0;
            }
            let msgs_per_buf = 3usize.pow(nd as u32) - 1;
            let messages = (msgs_per_buf as f64 * nb) as usize;
            // All buffers' messages go out in one shot: one latency, one
            // handshake per *destination* (messages to a peer pipeline),
            // then the bandwidth term (buffers preallocated: no
            // allocation pass).
            let time = phases * (alpha + msgs_per_buf as f64 * oh_dest)
                + bytes * nb * (per_byte + pack_per_byte);
            CommBreakdown {
                messages,
                bytes: bytes * nb,
                time,
            }
        }
    }
}

/// Modeled wall-clock cost of one collective call on `units` nodes,
/// given the algorithm label the substrate records in
/// `CommStats::collective_algos`. Accepts either the bare algorithm
/// name (`"binomial"`, `"kary4"`, `"ring"`) or the full stats key
/// (`"allreduce_f32/ring"`) — the part after the `/` is what's modeled.
///
/// Cost structure per algorithm for P ranks and an n-byte payload:
///
/// * binomial — `2·ceil(log2 P)` rounds (reduce up, broadcast down) of
///   one n-byte message each: `2·log2 P · (α + n·β⁻¹)`;
/// * k-ary — `2·ceil(log_k P)` levels, but an inner node serializes k
///   child messages per level: `2·log_k P · (α + k·n·β⁻¹)` — half the
///   latency terms of binomial at k = 4, at the price of fan-out
///   bandwidth;
/// * ring — `2·(P-1)` rounds of n/P-byte chunks:
///   `2·(P-1) · (α + (n/P)·β⁻¹)` — bandwidth-optimal (every rank moves
///   `~2n` bytes total regardless of P), latency-worst.
///
/// This is the attribution hook for the ranks-sweep benchmark and the
/// scaling model: given which algorithm the run actually used (from the
/// stats) the model says what it should have cost, and the deltas
/// between algorithms explain the substrate's topology-aware selection.
pub fn collective_time(
    machine: &MachineSpec,
    units: usize,
    algo: &str,
    payload_bytes: usize,
) -> f64 {
    let p = (units * machine.ranks_per_unit).max(1) as f64;
    if p <= 1.0 {
        return 0.0;
    }
    let alpha = machine.net_alpha + machine.net_msg_overhead;
    let inv_beta = 1.0 / machine.effective_beta(units);
    let n = payload_bytes as f64;
    let algo = algo.rsplit('/').next().unwrap_or(algo);
    if algo == "binomial" {
        let rounds = p.log2().ceil();
        2.0 * rounds * (alpha + n * inv_beta)
    } else if let Some(k) = algo
        .strip_prefix("kary")
        .and_then(|k| k.parse::<f64>().ok())
    {
        let levels = (p.ln() / k.ln()).ceil().max(1.0);
        2.0 * levels * (alpha + k * n * inv_beta)
    } else if algo == "ring" {
        2.0 * (p - 1.0) * (alpha + n / p * inv_beta)
    } else {
        panic!("unknown collective algorithm label {algo:?}");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::archer2_node;

    fn prof() -> KernelProfile {
        KernelProfile::synthetic_memory_bound()
    }

    #[test]
    fn single_rank_costs_nothing() {
        let cb = comm_time_per_step(&prof(), &archer2_node(), 1, &[64, 64, 64], Mode::Basic);
        // 1 unit * 8 ranks > 1, so basic DOES cost; but one rank total:
        let mut m = archer2_node();
        m.ranks_per_unit = 1;
        let cb1 = comm_time_per_step(&prof(), &m, 1, &[64, 64, 64], Mode::Basic);
        assert_eq!(cb1, CommBreakdown::default());
        assert!(cb.time > 0.0);
    }

    #[test]
    fn message_counts_match_table1() {
        let m = archer2_node();
        let b = comm_time_per_step(&prof(), &m, 4, &[64, 64, 64], Mode::Basic);
        let d = comm_time_per_step(&prof(), &m, 4, &[64, 64, 64], Mode::Diagonal);
        assert_eq!(b.messages, 6);
        assert_eq!(d.messages, 26);
    }

    #[test]
    fn byte_volumes_nearly_equal_across_modes() {
        // basic's halo-extended slabs carry the same edge/corner data
        // diagonal routes as separate small messages: total volume is
        // nearly identical, the difference is batching and latency.
        let m = archer2_node();
        let local = [64usize, 64, 64];
        let b = comm_time_per_step(&prof(), &m, 4, &local, Mode::Basic);
        let d = comm_time_per_step(&prof(), &m, 4, &local, Mode::Diagonal);
        let ratio = d.bytes / b.bytes;
        assert!((0.9..1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn basic_beats_diagonal_for_tiny_messages() {
        // At extreme strong scale messages are tiny; diagonal's 26
        // injection overheads dominate its single-latency advantage.
        let m = archer2_node();
        let local = [8usize, 8, 8];
        let b = comm_time_per_step(&prof(), &m, 128, &local, Mode::Basic);
        let d = comm_time_per_step(&prof(), &m, 128, &local, Mode::Diagonal);
        assert!(b.time < d.time, "{} !< {}", b.time, d.time);
    }

    #[test]
    fn diagonal_beats_basic_for_large_messages() {
        let m = archer2_node();
        let local = [512usize, 512, 512];
        let b = comm_time_per_step(&prof(), &m, 4, &local, Mode::Basic);
        let d = comm_time_per_step(&prof(), &m, 4, &local, Mode::Diagonal);
        assert!(d.time < b.time, "{} !< {}", d.time, b.time);
    }

    #[test]
    fn collective_model_matches_selection_regimes() {
        let m = archer2_node();
        // Bandwidth regime (16 MiB at 16 nodes): the ring's 2n bytes per
        // rank beat every tree; exactly why the substrate selects it for
        // large payloads on parallel hosts.
        let big = 16 * 1024 * 1024;
        let ring = collective_time(&m, 16, "ring", big);
        let binom = collective_time(&m, 16, "binomial", big);
        let kary = collective_time(&m, 16, "kary4", big);
        assert!(ring < binom, "{ring} !< {binom}");
        assert!(ring < kary, "{ring} !< {kary}");
        // Latency regime (8-byte scalar at 128 nodes): trees win, and
        // kary4's halved level count beats binomial.
        let ring = collective_time(&m, 128, "ring", 8);
        let binom = collective_time(&m, 128, "binomial", 8);
        let kary = collective_time(&m, 128, "kary4", 8);
        assert!(binom < ring, "{binom} !< {ring}");
        assert!(kary < binom, "{kary} !< {binom}");
        // Full stats keys resolve to the same model as bare labels.
        assert_eq!(
            collective_time(&m, 16, "allreduce_f32/ring", big),
            collective_time(&m, 16, "ring", big)
        );
    }

    #[test]
    fn bytes_scale_with_radius() {
        let m = archer2_node();
        let mut p4 = prof();
        p4.radius = 2;
        let mut p16 = prof();
        p16.radius = 8;
        let a = comm_time_per_step(&p4, &m, 4, &[64, 64, 64], Mode::Diagonal);
        let b = comm_time_per_step(&p16, &m, 4, &[64, 64, 64], Mode::Diagonal);
        assert!(b.bytes > 3.0 * a.bytes);
    }
}
