//! Single-unit roofline data (paper Fig. 7).

use crate::machine::MachineSpec;
use crate::profile::KernelProfile;
use crate::scaling::{strong_scaling, Mode};

/// One kernel's position on the roofline plot.
#[derive(Clone, Debug)]
pub struct RooflinePoint {
    pub kernel: String,
    /// Operational intensity (flops/byte), computed at compile time from
    /// the AST as in §IV-C.
    pub oi: f64,
    /// Achieved GFlops/s on one unit.
    pub gflops: f64,
    /// Achieved GPts/s on one unit.
    pub gpts: f64,
    /// The bandwidth-bound ceiling at this OI (GFlops/s).
    pub bw_ceiling: f64,
    /// The peak-compute ceiling (GFlops/s).
    pub peak_ceiling: f64,
}

/// Single-unit throughput of a kernel (GPts/s).
pub fn single_unit_gpts(profile: &KernelProfile, machine: &MachineSpec, global: &[usize]) -> f64 {
    strong_scaling(profile, machine, Mode::Basic, 1, global).gpts
}

/// Build the Fig. 7 roofline point for a kernel.
pub fn roofline_point(
    profile: &KernelProfile,
    machine: &MachineSpec,
    global: &[usize],
) -> RooflinePoint {
    let gpts = single_unit_gpts(profile, machine, global);
    RooflinePoint {
        kernel: profile.name.clone(),
        oi: profile.oi(),
        gflops: gpts * profile.flops_per_pt,
        gpts,
        bw_ceiling: machine.mem_bw * profile.oi() / 1e9,
        peak_ceiling: machine.peak_flops / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::archer2_node;

    #[test]
    fn achieved_stays_under_the_roofline() {
        let m = archer2_node();
        for p in [
            KernelProfile::synthetic_memory_bound(),
            KernelProfile::synthetic_compute_bound(),
        ] {
            let pt = roofline_point(&p, &m, &[512, 512, 512]);
            let ceiling = pt.bw_ceiling.min(pt.peak_ceiling);
            assert!(
                pt.gflops <= ceiling * 1.001,
                "{}: {} > ceiling {}",
                pt.kernel,
                pt.gflops,
                ceiling
            );
            assert!(pt.gflops > 0.0);
        }
    }

    #[test]
    fn memory_bound_kernel_sits_on_bandwidth_slope() {
        let m = archer2_node();
        let p = KernelProfile::synthetic_memory_bound();
        let pt = roofline_point(&p, &m, &[512, 512, 512]);
        // efficiency 1.0 synthetic: achieved approaches the bw ceiling;
        // the gap is the (real) intra-node halo traffic of the 8 ranks
        // plus nest overhead.
        assert!(pt.gflops > 0.75 * pt.bw_ceiling.min(pt.peak_ceiling));
    }
}
