//! Strong and weak scaling generation (paper §IV-D, §IV-E).

use crate::machine::MachineSpec;
use crate::network::comm_time_per_step;
use crate::profile::KernelProfile;

/// Exchange mode (mirror of the runtime's `HaloMode`; kept local so the
/// model crate has no runtime dependency).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    Basic,
    Diagonal,
    Full,
}

impl Mode {
    pub fn all() -> [Mode; 3] {
        [Mode::Basic, Mode::Diagonal, Mode::Full]
    }
    pub fn label(self) -> &'static str {
        match self {
            Mode::Basic => "Basic",
            Mode::Diagonal => "Diag",
            Mode::Full => "Full",
        }
    }
}

/// One point of a scaling curve.
#[derive(Clone, Debug)]
pub struct ScalePoint {
    pub units: usize,
    /// Modeled time per time step (s).
    pub step_time: f64,
    /// Throughput in GPts/s over the global domain.
    pub gpts: f64,
    /// Fraction of compute time spent in communication (exposed).
    pub comm_fraction: f64,
}

/// Balanced factorization (MPI_Dims_create-like, non-increasing).
pub fn balanced_dims(nranks: usize, ndims: usize) -> Vec<usize> {
    let mut dims = vec![1usize; ndims];
    let mut factors = Vec::new();
    let mut n = nranks;
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            factors.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        factors.push(n);
    }
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let i = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap();
        dims[i] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// Per-rank local shape for a global domain over `ranks` ranks
/// (largest shard — the critical path).
fn local_shape(global: &[usize], ranks: usize) -> Vec<usize> {
    let dims = balanced_dims(ranks, global.len());
    global
        .iter()
        .zip(&dims)
        .map(|(&g, &p)| g.div_ceil(p))
        .collect()
}

/// Roofline time per point for one rank (s), with the kernel's
/// calibrated single-unit efficiency applied and the cache-residency
/// bandwidth boost for small per-rank working sets.
fn time_per_point(
    profile: &KernelProfile,
    machine: &MachineSpec,
    is_gpu: bool,
    local_pts: f64,
) -> f64 {
    let working_set = local_pts * profile.working_set as f64 * 4.0;
    let t_flop = profile.flops_per_pt / machine.rank_flops();
    let t_mem = profile.bytes_per_pt / machine.rank_bw_for(working_set);
    let eff = if is_gpu {
        profile.efficiency.1
    } else {
        profile.efficiency.0
    };
    t_flop.max(t_mem) / eff
}

/// Model one strong-scaling point: fixed `global` domain over `units`
/// nodes/GPUs.
pub fn strong_scaling(
    profile: &KernelProfile,
    machine: &MachineSpec,
    mode: Mode,
    units: usize,
    global: &[usize],
) -> ScalePoint {
    let ranks = units * machine.ranks_per_unit;
    let local = local_shape(global, ranks);
    let local_pts: f64 = local.iter().map(|&n| n as f64).product();
    let is_gpu = machine.intra_beta.is_some();
    let t_pt = time_per_point(profile, machine, is_gpu, local_pts);
    let nests = machine.nest_overhead * profile.clusters as f64;

    let comm = comm_time_per_step(profile, machine, units, &local, mode_net(mode));
    let step_time = match mode {
        Mode::Basic | Mode::Diagonal => local_pts * t_pt + comm.time + nests,
        Mode::Full => {
            // CORE overlaps the exchange; REMAINDER runs afterwards at
            // reduced efficiency (strided accesses, §III h / §IV-F).
            let r = profile.radius as f64;
            let core_pts: f64 = local
                .iter()
                .map(|&n| (n as f64 - 2.0 * r).max(0.0))
                .product();
            let rem_pts = (local_pts - core_pts).max(0.0);
            let core_time = core_pts * t_pt;
            let rem_time = rem_pts * t_pt / machine.remainder_efficiency;
            core_time.max(comm.time) + rem_time + 2.0 * nests
        }
    };
    let global_pts: f64 = global.iter().map(|&n| n as f64).product();
    ScalePoint {
        units,
        step_time,
        gpts: global_pts / step_time / 1e9,
        comm_fraction: (comm.time / step_time).min(1.0),
    }
}

fn mode_net(m: Mode) -> Mode {
    m
}

/// Model one weak-scaling point: `per_unit` points per node/GPU, domain
/// grown with the unit count (paper §IV-E: 256³ per unit, doubling one
/// dimension at a time). Returns the runtime for `nt` steps.
pub fn weak_scaling(
    profile: &KernelProfile,
    machine: &MachineSpec,
    mode: Mode,
    units: usize,
    per_unit: &[usize],
    nt: usize,
) -> (ScalePoint, f64) {
    // Grow the global domain by doubling dimensions cyclically.
    let mut global = per_unit.to_vec();
    let mut n = units;
    let mut d = 0;
    while n > 1 {
        assert!(n % 2 == 0, "weak scaling expects power-of-two units");
        global[d] *= 2;
        d = (d + 1) % global.len();
        n /= 2;
    }
    let p = strong_scaling(profile, machine, mode, units, &global);
    let runtime = p.step_time * nt as f64;
    (p, runtime)
}

/// Parallel efficiency of a strong-scaling curve vs. linear scaling from
/// its first point.
pub fn efficiency(points: &[ScalePoint]) -> Vec<f64> {
    if points.is_empty() {
        return Vec::new();
    }
    let base = points[0].gpts / points[0].units as f64;
    points
        .iter()
        .map(|p| p.gpts / (base * p.units as f64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{archer2_node, tursa_a100};

    fn mem() -> KernelProfile {
        KernelProfile::synthetic_memory_bound()
    }
    fn flop() -> KernelProfile {
        KernelProfile::synthetic_compute_bound()
    }

    const G: [usize; 3] = [1024, 1024, 1024];

    #[test]
    fn balanced_dims_examples() {
        assert_eq!(balanced_dims(16, 3), vec![4, 2, 2]);
        assert_eq!(balanced_dims(1024, 3), vec![16, 8, 8]);
        assert_eq!(balanced_dims(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn throughput_increases_with_units() {
        let m = archer2_node();
        let p = mem();
        let g1 = strong_scaling(&p, &m, Mode::Basic, 1, &G).gpts;
        let g16 = strong_scaling(&p, &m, Mode::Basic, 16, &G).gpts;
        let g128 = strong_scaling(&p, &m, Mode::Basic, 128, &G).gpts;
        assert!(g16 > 4.0 * g1, "{g16} vs {g1}");
        assert!(g128 > g16);
    }

    #[test]
    fn efficiency_decays_with_scale() {
        let m = archer2_node();
        let p = mem();
        let pts: Vec<ScalePoint> = [1, 2, 4, 8, 16, 32, 64, 128]
            .iter()
            .map(|&u| strong_scaling(&p, &m, Mode::Basic, u, &G))
            .collect();
        let eff = efficiency(&pts);
        assert!(eff[0] > 0.99);
        assert!(eff[7] < eff[0]);
        assert!(eff[7] > 0.2, "unreasonably bad: {}", eff[7]);
    }

    #[test]
    fn compute_bound_kernel_scales_better() {
        // TTI-like kernels have a higher compute/comm ratio -> higher
        // strong-scaling efficiency (paper Fig. 10 narrative).
        let m = archer2_node();
        let e_mem = {
            let pts: Vec<_> = [1, 128]
                .iter()
                .map(|&u| strong_scaling(&mem(), &m, Mode::Diagonal, u, &G))
                .collect();
            efficiency(&pts)[1]
        };
        let e_flop = {
            let pts: Vec<_> = [1, 128]
                .iter()
                .map(|&u| strong_scaling(&flop(), &m, Mode::Diagonal, u, &G))
                .collect();
            efficiency(&pts)[1]
        };
        assert!(e_flop > e_mem, "{e_flop} !> {e_mem}");
    }

    #[test]
    fn full_mode_loses_when_communication_is_cheap() {
        // Acoustic-like kernel at small scale: the remainder penalty
        // outweighs the hidden communication (paper Fig. 8).
        let m = archer2_node();
        let p = mem();
        let f = strong_scaling(&p, &m, Mode::Full, 4, &G).gpts;
        let b = strong_scaling(&p, &m, Mode::Basic, 4, &G).gpts;
        assert!(b > f * 0.95, "basic {b} vs full {f}");
    }

    #[test]
    fn gpu_strong_scaling_less_efficient_but_faster() {
        let c = archer2_node();
        let g = tursa_a100();
        let p = mem();
        let cpu1 = strong_scaling(&p, &c, Mode::Basic, 1, &G);
        let gpu1 = strong_scaling(&p, &g, Mode::Basic, 1, &G);
        assert!(gpu1.gpts > 2.0 * cpu1.gpts, "GPU single-unit advantage");
        let cpu_eff = {
            let pts: Vec<_> = [1, 128]
                .iter()
                .map(|&u| strong_scaling(&p, &c, Mode::Basic, u, &G))
                .collect();
            efficiency(&pts)[1]
        };
        let gpu_eff = {
            let pts: Vec<_> = [1, 128]
                .iter()
                .map(|&u| strong_scaling(&p, &g, Mode::Basic, u, &G))
                .collect();
            efficiency(&pts)[1]
        };
        assert!(
            gpu_eff < cpu_eff,
            "GPUs scale less efficiently: {gpu_eff} vs {cpu_eff}"
        );
    }

    #[test]
    fn weak_scaling_runtime_is_nearly_flat() {
        let m = archer2_node();
        let p = mem();
        let (_, t1) = weak_scaling(&p, &m, Mode::Basic, 1, &[256, 256, 256], 290);
        let (_, t128) = weak_scaling(&p, &m, Mode::Basic, 128, &[256, 256, 256], 290);
        let ratio = t128 / t1;
        assert!(
            (0.9..1.6).contains(&ratio),
            "weak scaling should be near-flat: {ratio}"
        );
    }

    #[test]
    fn weak_scaling_gpu_is_about_4x_faster() {
        let c = archer2_node();
        let g = tursa_a100();
        let p = mem();
        let (_, tc) = weak_scaling(&p, &c, Mode::Basic, 8, &[256, 256, 256], 290);
        let (_, tg) = weak_scaling(&p, &g, Mode::Basic, 8, &[256, 256, 256], 290);
        let speedup = tc / tg;
        // The paper's text says ~4x; its own single-unit table entries
        // imply ~2.4x. The model lands in between (see EXPERIMENTS.md).
        assert!(
            (2.0..7.0).contains(&speedup),
            "paper: GPUs markedly faster in weak scaling, got {speedup}"
        );
    }
}

/// Find the smallest unit count in `units` at which `a` becomes at least
/// as fast as `b` and stays so through the end of the sweep — the
/// crossover the paper's §IV-D discussion revolves around (e.g. *basic*
/// overtaking *diagonal* for the acoustic kernel at high node counts).
/// Returns `None` if `a` never permanently overtakes `b`.
pub fn mode_crossover(
    profile: &KernelProfile,
    machine: &MachineSpec,
    global: &[usize],
    a: Mode,
    b: Mode,
    units: &[usize],
) -> Option<usize> {
    let wins: Vec<bool> = units
        .iter()
        .map(|&u| {
            strong_scaling(profile, machine, a, u, global).gpts
                >= strong_scaling(profile, machine, b, u, global).gpts
        })
        .collect();
    // Last index where a loses; crossover is the next sweep point.
    match wins.iter().rposition(|&w| !w) {
        None => units.first().copied(),
        Some(last_loss) if last_loss + 1 < units.len() => Some(units[last_loss + 1]),
        Some(_) => None,
    }
}

#[cfg(test)]
mod crossover_tests {
    use super::*;
    use crate::machine::archer2_node;
    use crate::profile::KernelProfile;

    const UNITS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

    #[test]
    fn acoustic_like_kernel_crosses_to_basic_at_scale() {
        // Memory-bound single-buffer kernel: diagonal wins mid-range,
        // basic overtakes once messages shrink (paper Tables III/V).
        let p = KernelProfile::synthetic_memory_bound();
        let m = archer2_node();
        let x = mode_crossover(
            &p,
            &m,
            &[1024, 1024, 1024],
            Mode::Basic,
            Mode::Diagonal,
            &UNITS,
        );
        assert!(x.is_some(), "basic must eventually overtake diagonal");
        assert!(x.unwrap() >= 16, "crossover should be at scale, got {x:?}");
    }

    #[test]
    fn full_does_not_overtake_diagonal_early() {
        // The remainder penalty keeps full behind diagonal until
        // communication dominates — if it ever overtakes, only at scale
        // (the paper's acoustic so-4 row shows exactly this: full beats
        // diag at 128 nodes but nowhere before 16).
        let p = KernelProfile::synthetic_memory_bound();
        let m = archer2_node();
        let x = mode_crossover(
            &p,
            &m,
            &[1024, 1024, 1024],
            Mode::Full,
            Mode::Diagonal,
            &UNITS,
        );
        assert!(
            x.is_none() || x.unwrap() >= 32,
            "full overtook diagonal too early: {x:?}"
        );
    }
}
