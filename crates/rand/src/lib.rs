//! Local stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so this workspace-internal
//! crate provides exactly the slice of the `rand 0.8` API our tests use:
//! `rngs::StdRng`, `SeedableRng::seed_from_u64`, and `Rng::gen_range` over
//! half-open ranges. The generator is splitmix64 — deterministic, seedable,
//! and plenty for test-input shuffling (not cryptographic).

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface, mirroring the subset of `rand::Rng` we use.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range. Panics on empty ranges.
    fn gen_range<T: SampleUniform>(&mut self, range: std::ops::Range<T>) -> T {
        T::sample(self.next_u64(), &range)
    }
}

/// Types that can be drawn uniformly from a `Range` by [`Rng::gen_range`].
pub trait SampleUniform: Copy + PartialOrd {
    fn sample(word: u64, range: &std::ops::Range<Self>) -> Self;
}

macro_rules! uniform_int {
    ($($t:ty => $wide:ty),*) => {
        $(impl SampleUniform for $t {
            fn sample(word: u64, range: &std::ops::Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range on empty range");
                let span = (range.end as $wide).wrapping_sub(range.start as $wide) as u64;
                // Modulo bias is irrelevant at test-input scales.
                (range.start as $wide).wrapping_add((word % span) as $wide) as $t
            }
        })*
    };
}
uniform_int!(u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
             i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64);

impl SampleUniform for f64 {
    fn sample(word: u64, range: &std::ops::Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range on empty range");
        let unit = (word >> 11) as f64 / (1u64 << 53) as f64;
        range.start + unit * (range.end - range.start)
    }
}

impl SampleUniform for f32 {
    fn sample(word: u64, range: &std::ops::Range<Self>) -> Self {
        f64::sample(word, &((range.start as f64)..(range.end as f64))) as f32
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seedable generator (splitmix64).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            StdRng {
                state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let u = rng.gen_range(0usize..17);
            assert!(u < 17);
            let i = rng.gen_range(-8i32..8);
            assert!((-8..8).contains(&i));
            let f = rng.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
