//! The communicator: point-to-point messaging, requests, matching.
//!
//! ## Zero-copy typed payloads and the buffer pools
//!
//! `f32` traffic — the halo-exchange hot path — travels natively: an
//! [`Comm::isend_f32`] copies the payload once into a pooled `Vec<f32>`
//! envelope (the "wire" copy), and a typed receive either moves that
//! vector out wholesale ([`RecvRequest::wait_f32`]) or copies it into a
//! caller-owned preallocated buffer and recycles the envelope
//! ([`PersistentRecv::wait_into`], the `MPI_Recv_init` analogue). In
//! steady state the pools serve every envelope, so a halo exchange
//! performs **zero heap allocations**; [`CommStats::bufs_allocated`]
//! counts the misses so the contract is testable.
//!
//! Pools are **per sending rank** (receivers release an envelope back to
//! the pool of the rank that acquired it), so steady-state sends on
//! different ranks never serialize on one pool lock and the pooled
//! capacity scales with the rank count. `MPIX_COMM_SHARDS=1` collapses
//! to the pre-shard layout: one global capacity-capped pool.
//!
//! ## Sharded bucketed matching
//!
//! Each rank's mailbox is a power-of-two array of *shards* (default 16,
//! `MPIX_COMM_SHARDS`), each with its own mutex, condvar and set of
//! per-`(source, tag)` FIFO queues; a stream hashes to exactly one shard,
//! preserving MPI's non-overtaking guarantee per `(source, tag)` pair
//! while concurrent senders from different peers land on different locks.
//! Matching is an O(1) front pop; persistent requests resolve their
//! `(shard, slot)` address once at init and skip even the hash on every
//! message. `MPI_Waitany`-style completion uses a lock-free eventcount
//! (an atomic push counter plus an advertised-waiter count), so the
//! arrival-order drain loop in `dmp::halo` costs senders one atomic
//! add + one atomic load when nobody is parked.
//!
//! ## Fail-fast poison semantics
//!
//! When a rank's closure panics, [`crate::Universe`] poisons the world:
//! every blocked receive and barrier wait wakes up and unwinds promptly
//! instead of hitting the receive timeout, and the *original* panic
//! payload is re-raised to the `Universe::run` caller.

use std::any::Any;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpix_san::{San, SendKind};
use mpix_trace::{MsgDir, MsgRecord};

use crate::stats::{CommStats, StatsInner};
use crate::tuning::CommTuning;

// Re-exported for path compatibility: callers historically imported the
// reduction ops from here, before the collectives grew their own module.
pub use crate::collectives::ReduceOp;

/// Message tag. User tags must stay below [`RESERVED_TAG_BASE`].
pub type Tag = u32;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: Tag = 1 << 30;

/// Panic message used when a wait unwinds because a *peer* rank panicked
/// (the world was poisoned). `Universe::run` swallows these secondary
/// panics and re-raises the original payload instead.
pub const POISONED_MSG: &str = "world poisoned: a peer rank panicked";

/// Upper bound on pooled envelope buffers in the *global* pool layout
/// (`MPIX_COMM_SHARDS=1`). Sized so a 3-D diagonal exchange on a few
/// dozen ranks (26 messages each) stays fully pooled; beyond that the
/// pool degrades gracefully to occasional allocation rather than
/// unbounded memory.
const POOL_MAX: usize = 1024;

/// Upper bound on pooled envelope buffers per *rank* in the sharded
/// layout. A rank's in-flight window is its neighbour count times the
/// pipelining depth (26 × a few for 3-D diagonal), so 256 keeps the
/// steady state allocation-free at any rank count while capping memory
/// at O(ranks), not O(ranks²).
const POOL_MAX_PER_RANK: usize = 256;

/// A message payload. `f32` traffic (the halo hot path) is carried
/// natively so typed receives never round-trip through bytes; the byte
/// representation survives for small control traffic (`f64` reductions).
#[derive(Debug)]
enum Payload {
    Bytes(Vec<u8>),
    F32(Vec<f32>),
}

impl Payload {
    fn len_bytes(&self) -> usize {
        match self {
            Payload::Bytes(b) => b.len(),
            Payload::F32(v) => v.len() * 4,
        }
    }
}

#[derive(Debug)]
struct Envelope {
    payload: Payload,
    /// When the sender enqueued this message; receivers derive the
    /// enqueue→match latency logged at `TraceLevel::Full`. Only stamped
    /// while some rank has message logging on — a clock read per message
    /// is measurable on the halo hot path.
    sent_at: Option<Instant>,
}

/// One shard of a mailbox: an independent set of per-`(source, tag)`
/// FIFO queues under its own lock.
#[derive(Default)]
struct ShardInner {
    /// Per-(source, tag) FIFO queues. A slot, once created for a stream,
    /// lives for the world's lifetime, so persistent requests resolve
    /// their `(shard, slot)` address at init time and skip the hash
    /// lookup on every message; a pop is an O(1) front pop.
    slots: Vec<VecDeque<Envelope>>,
    /// `(source, tag)` → slot index, consulted once per persistent
    /// request (at init) and once per non-persistent message.
    index: HashMap<(usize, Tag), usize>,
    queued: usize,
    /// Threads currently parked on this shard's `arrived` condvar.
    /// Senders skip the (syscall-priced) wake entirely when nobody is
    /// parked — in a healthy exchange most messages land before the
    /// receiver blocks.
    waiters: usize,
}

impl ShardInner {
    /// Slot index of the `(src, tag)` stream, creating it on first use.
    fn slot_of(&mut self, src: usize, tag: Tag) -> usize {
        if let Some(&s) = self.index.get(&(src, tag)) {
            return s;
        }
        self.slots.push(VecDeque::new());
        let s = self.slots.len() - 1;
        self.index.insert((src, tag), s);
        s
    }

    fn push_slot(&mut self, slot: usize, env: Envelope) {
        self.slots[slot].push_back(env);
        self.queued += 1;
    }

    fn pop_slot(&mut self, slot: usize) -> Option<Envelope> {
        let env = self.slots[slot].pop_front()?;
        self.queued -= 1;
        Some(env)
    }

    fn pop(&mut self, src: usize, tag: Tag) -> Option<Envelope> {
        let &s = self.index.get(&(src, tag))?;
        self.pop_slot(s)
    }
}

struct Shard {
    inner: Mutex<ShardInner>,
    arrived: Condvar,
}

/// One mailbox per rank; senders push, the owner matches and pops.
///
/// Matching state is split across `shards.len()` (a power of two)
/// independently-locked shards keyed by a hash of `(source, tag)`, so
/// concurrent senders targeting one rank from different streams never
/// contend on one mutex. The `MPI_Waitany` path rides on a mailbox-wide
/// *eventcount*: `pushes` counts arrivals across all shards, and a
/// parked any-waiter advertises itself in `any_waiters` before
/// re-checking the counter — the SeqCst ordering of both sides makes a
/// lost wakeup impossible (see [`wait_arrival_beyond`]).
pub(crate) struct Mailbox {
    shards: Box<[Shard]>,
    mask: usize,
    /// Monotone arrival counter across all shards (the eventcount word).
    pushes: AtomicU64,
    /// Threads inside `wait_arrival_beyond` that are about to park (or
    /// parked) on `any_arrived`. Senders skip the wake when zero.
    any_waiters: AtomicUsize,
    any_lock: Mutex<()>,
    any_arrived: Condvar,
}

impl Mailbox {
    pub(crate) fn new(shards: usize) -> Mailbox {
        debug_assert!(shards.is_power_of_two());
        Mailbox {
            shards: (0..shards)
                .map(|_| Shard {
                    inner: Mutex::new(ShardInner::default()),
                    arrived: Condvar::new(),
                })
                .collect(),
            mask: shards - 1,
            pushes: AtomicU64::new(0),
            any_waiters: AtomicUsize::new(0),
            any_lock: Mutex::new(()),
            any_arrived: Condvar::new(),
        }
    }

    /// Shard index of the `(src, tag)` stream. A multiplicative hash of
    /// both coordinates so that one peer's many tags *and* one tag's
    /// many peers both spread across shards.
    fn shard_of(&self, src: usize, tag: Tag) -> usize {
        let h = (src as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ (tag as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
        ((h >> 32) as usize) & self.mask
    }

    /// Resolve the `(shard, slot)` address of a stream, creating the
    /// slot on first use (persistent-request init).
    fn slot_addr(&self, src: usize, tag: Tag) -> (usize, usize) {
        let si = self.shard_of(src, tag);
        let slot = self.shards[si].inner.lock().unwrap().slot_of(src, tag);
        (si, slot)
    }

    /// Enqueue one envelope. `addr` is the pre-resolved `(shard, slot)`
    /// for persistent sends; `None` falls back to the hash + index
    /// lookup. Bumps the eventcount and performs both waiter-gated
    /// wakes (the stream's shard condvar and the any-arrival condvar).
    fn push(&self, addr: Option<(usize, usize)>, src: usize, tag: Tag, env: Envelope) {
        let si = match addr {
            Some((si, _)) => si,
            None => self.shard_of(src, tag),
        };
        let shard = &self.shards[si];
        let wake = {
            let mut g = shard.inner.lock().unwrap();
            match addr {
                Some((_, slot)) => g.push_slot(slot, env),
                None => {
                    let slot = g.slot_of(src, tag);
                    g.push_slot(slot, env);
                }
            }
            g.waiters > 0
        };
        // Eventcount publish, strictly after the envelope is enqueued
        // (under the shard lock above) and strictly before the
        // any-waiter check below — see `wait_arrival_beyond` for why the
        // SeqCst pairing makes lost wakeups impossible.
        self.pushes.fetch_add(1, Ordering::SeqCst);
        if wake {
            shard.arrived.notify_all();
        }
        if self.any_waiters.load(Ordering::SeqCst) > 0 {
            let _g = self.any_lock.lock().unwrap();
            self.any_arrived.notify_all();
        }
    }

    /// Human-readable digest of queued-but-unmatched envelopes across
    /// all shards, so a receive timeout reads as the tag-mismatch it
    /// usually is rather than a lost message.
    fn queued_summary(&self) -> String {
        let mut entries: Vec<(usize, Tag, usize)> = Vec::new();
        let mut queued = 0usize;
        for shard in self.shards.iter() {
            let g = shard.inner.lock().unwrap();
            queued += g.queued;
            for (&(src, tag), &slot) in g.index.iter() {
                for env in &g.slots[slot] {
                    entries.push((src, tag, env.payload.len_bytes()));
                }
            }
        }
        if queued == 0 {
            return "mailbox is empty".to_string();
        }
        entries.sort_unstable();
        let mut out = format!("mailbox holds {queued} unmatched message(s):");
        for (i, (src, tag, bytes)) in entries.iter().enumerate() {
            if i == 16 {
                let _ = write!(out, " …");
                break;
            }
            let _ = write!(out, " (src={src}, tag={tag}, {bytes} bytes)");
        }
        out
    }

    /// Wake every waiter on every shard plus the any-arrival condvar
    /// (poison path).
    fn wake_all(&self) {
        for shard in self.shards.iter() {
            let _g = shard.inner.lock().unwrap();
            shard.arrived.notify_all();
        }
        let _g = self.any_lock.lock().unwrap();
        self.any_arrived.notify_all();
    }
}

/// Recycles envelope buffers between sends and typed receives so the
/// steady-state message path allocates nothing. `acquire` is best-fit:
/// it picks the smallest pooled buffer whose capacity covers the
/// request, so mixed message sizes stabilize after warm-up.
struct BufferPool {
    inner: Mutex<PoolInner>,
    max: usize,
}

/// Free buffers keyed by capacity so `acquire` is an `O(log n)` best-fit
/// lookup instead of a linear scan — the hot send path hits this once per
/// message.
#[derive(Default)]
struct PoolInner {
    by_cap: BTreeMap<usize, Vec<Vec<f32>>>,
    total: usize,
}

impl BufferPool {
    fn new(max: usize) -> BufferPool {
        BufferPool {
            inner: Mutex::new(PoolInner::default()),
            max,
        }
    }

    /// Returns `(buffer, allocated)` where `allocated` reports whether a
    /// heap allocation (fresh buffer or capacity growth) was needed.
    fn acquire(&self, len: usize) -> (Vec<f32>, bool) {
        let mut pool = self.inner.lock().unwrap();
        // Best fit: the smallest pooled capacity that covers the request.
        let fit = pool
            .by_cap
            .range(len..)
            .find(|(_, q)| !q.is_empty())
            .map(|(&cap, _)| cap);
        if let Some(cap) = fit {
            let buf = pool.by_cap.get_mut(&cap).unwrap().pop().unwrap();
            pool.total -= 1;
            return (buf, false);
        }
        // No adequate buffer: grow the largest undersized one (keeps the
        // pool population stable) or allocate fresh if the pool is empty.
        let biggest = pool
            .by_cap
            .iter()
            .rev()
            .find(|(_, q)| !q.is_empty())
            .map(|(&cap, _)| cap);
        if let Some(cap) = biggest {
            let mut buf = pool.by_cap.get_mut(&cap).unwrap().pop().unwrap();
            pool.total -= 1;
            buf.reserve(len);
            (buf, true)
        } else {
            (Vec::with_capacity(len), true)
        }
    }

    fn release(&self, mut buf: Vec<f32>) {
        buf.clear();
        let mut pool = self.inner.lock().unwrap();
        if pool.total < self.max {
            pool.total += 1;
            pool.by_cap.entry(buf.capacity()).or_default().push(buf);
        }
    }

    /// Pre-populate the pool with `count` buffers of `len` elements each
    /// (up to the pool cap). The halo plans call this at build time so
    /// steady-state exchanges are deterministically allocation-free: the
    /// warm-up cost is paid once, under the caller's control.
    fn reserve(&self, count: usize, len: usize) {
        let mut pool = self.inner.lock().unwrap();
        for _ in 0..count {
            if pool.total >= self.max {
                break;
            }
            let buf = Vec::with_capacity(len);
            pool.total += 1;
            pool.by_cap.entry(buf.capacity()).or_default().push(buf);
        }
    }
}

/// Condvar-based, poison-aware barrier. Unlike `std::sync::Barrier`,
/// waiters wake up and unwind when the world is poisoned instead of
/// blocking forever on a rank that will never arrive.
pub(crate) struct PoisonBarrier {
    n: usize,
    inner: Mutex<BarrierInner>,
    cv: Condvar,
}

#[derive(Default)]
struct BarrierInner {
    arrived: usize,
    generation: u64,
}

impl PoisonBarrier {
    fn new(n: usize) -> PoisonBarrier {
        PoisonBarrier {
            n,
            inner: Mutex::new(BarrierInner::default()),
            cv: Condvar::new(),
        }
    }

    fn wait(&self, poisoned: &AtomicBool) {
        let mut g = self.inner.lock().unwrap();
        if poisoned.load(Ordering::SeqCst) {
            drop(g);
            panic!("{POISONED_MSG}");
        }
        g.arrived += 1;
        if g.arrived == self.n {
            g.arrived = 0;
            g.generation += 1;
            self.cv.notify_all();
            return;
        }
        let gen = g.generation;
        while g.generation == gen {
            g = self.cv.wait(g).unwrap();
            if poisoned.load(Ordering::SeqCst) {
                drop(g);
                panic!("{POISONED_MSG}");
            }
        }
    }

    fn poison_notify(&self) {
        let _g = self.inner.lock().unwrap();
        self.cv.notify_all();
    }
}

/// Shared state for a set of ranks (the "world").
pub(crate) struct World {
    /// Process-unique id, assigned at construction. Every `Universe::run`
    /// builds a fresh `World`, so two concurrently running jobs can prove
    /// their communicators are disjoint by comparing ids — the serve
    /// layer's tenant-isolation test does exactly this.
    pub(crate) id: u64,
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) barrier: PoisonBarrier,
    pub(crate) stats: Vec<Mutex<StatsInner>>,
    pub(crate) tuning: CommTuning,
    /// Envelope-buffer pools: one per rank (indexed by the *sending*
    /// rank; receivers release a buffer back to its origin pool), or a
    /// single global pool when `tuning.mailbox_shards == 1` (the
    /// pre-shard baseline layout).
    pools: Box<[BufferPool]>,
    poisoned: AtomicBool,
    /// True once any rank enables message logging; senders stamp
    /// envelopes with `sent_at` only while set.
    log_any: AtomicBool,
    panic_payload: Mutex<Option<Box<dyn Any + Send>>>,
    /// Happens-before sanitizer, when enabled for this world
    /// (`MPIX_SAN` / `ApplyOptions::sanitize`). `None` — the default —
    /// costs exactly one branch per hooked operation.
    pub(crate) san: Option<Arc<San>>,
}

/// Monotonic source of [`World::id`]s. Starts at 1 so 0 can mean
/// "no world" in diagnostics.
static NEXT_WORLD_ID: AtomicU64 = AtomicU64::new(1);

impl World {
    pub(crate) fn new(n: usize, san: Option<Arc<San>>, tuning: CommTuning) -> World {
        let shards = tuning.mailbox_shards;
        let pools: Box<[BufferPool]> = if shards <= 1 {
            // Unsharded baseline: one global capacity-capped pool.
            Box::new([BufferPool::new(POOL_MAX)])
        } else {
            (0..n).map(|_| BufferPool::new(POOL_MAX_PER_RANK)).collect()
        };
        World {
            id: NEXT_WORLD_ID.fetch_add(1, Ordering::Relaxed),
            mailboxes: (0..n).map(|_| Mailbox::new(shards)).collect(),
            barrier: PoisonBarrier::new(n),
            stats: (0..n).map(|_| Mutex::new(StatsInner::default())).collect(),
            tuning,
            pools,
            poisoned: AtomicBool::new(false),
            log_any: AtomicBool::new(false),
            panic_payload: Mutex::new(None),
            san,
        }
    }

    /// The envelope pool owned by (sending) `rank`. Collapses to the one
    /// global pool in the unsharded layout.
    fn pool_for(&self, rank: usize) -> &BufferPool {
        &self.pools[rank % self.pools.len()]
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::SeqCst)
    }

    /// Mark the world dead after a rank panic: store the first (original)
    /// panic payload and wake every blocked waiter so peers unwind
    /// promptly instead of deadlocking.
    pub(crate) fn poison(&self, payload: Box<dyn Any + Send>) {
        {
            let mut slot = self.panic_payload.lock().unwrap();
            if slot.is_none() {
                *slot = Some(payload);
            }
        }
        // Tell the sanitizer the run is unwinding: peers legitimately
        // abandon in-flight traffic now, so the finalize-time leak check
        // must not fire, but reports already collected stay flushable.
        if let Some(san) = &self.san {
            san.set_poisoned();
        }
        self.poisoned.store(true, Ordering::SeqCst);
        for mb in &self.mailboxes {
            mb.wake_all();
        }
        self.barrier.poison_notify();
    }

    /// The original panic payload, if any rank panicked.
    pub(crate) fn take_panic_payload(&self) -> Option<Box<dyn Any + Send>> {
        self.panic_payload.lock().unwrap().take()
    }
}

/// Shared blocking-match loop: spin-yield, then park on the stream's
/// shard condvar until `pop` produces an envelope. Poison-aware and
/// deadline-guarded; on expiry the panic lists every queued-but-unmatched
/// envelope in the mailbox (tag-mismatch diagnosis instead of a bare
/// "deadlock").
fn wait_match(
    world: &World,
    rank: usize,
    shard_idx: usize,
    timeout: Duration,
    mut pop: impl FnMut(&mut ShardInner) -> Option<Envelope>,
    describe: impl Fn() -> String,
) -> Envelope {
    let mailbox = &world.mailboxes[rank];
    let shard = &mailbox.shards[shard_idx];
    // Cooperative phase: donate the timeslice to whichever peer owes us
    // the message before paying for a futex park.
    for _ in 0..world.tuning.spin_yields {
        if let Some(env) = pop(&mut shard.inner.lock().unwrap()) {
            return env;
        }
        if world.is_poisoned() {
            panic!("{POISONED_MSG}");
        }
        std::thread::yield_now();
    }
    let deadline = Instant::now() + timeout;
    let mut inner = shard.inner.lock().unwrap();
    loop {
        if let Some(env) = pop(&mut inner) {
            return env;
        }
        if world.is_poisoned() {
            drop(inner);
            panic!("{POISONED_MSG}");
        }
        let now = Instant::now();
        if now >= deadline {
            drop(inner);
            let queued = mailbox.queued_summary();
            panic!(
                "rank {rank} deadlocked waiting for {}; {queued}",
                describe()
            );
        }
        inner.waiters += 1;
        // `stats[rank]` is only ever locked by its owning thread (and
        // we are it), so taking it under the shard lock cannot deadlock.
        world.stats[rank].lock().unwrap().recv_parks += 1;
        let (mut g, _) = shard.arrived.wait_timeout(inner, deadline - now).unwrap();
        g.waiters -= 1;
        inner = g;
    }
}

/// Block until a `(src, tag)` message arrives in `rank`'s mailbox.
/// Unwinds with [`POISONED_MSG`] if a peer rank panics while we wait, and
/// with a queued-envelope digest if `timeout` expires.
fn wait_envelope(world: &World, rank: usize, src: usize, tag: Tag, timeout: Duration) -> Envelope {
    let si = world.mailboxes[rank].shard_of(src, tag);
    wait_match(
        world,
        rank,
        si,
        timeout,
        |g| g.pop(src, tag),
        || format!("(src={src}, tag={tag})"),
    )
}

/// Non-blocking variant of [`wait_envelope`].
fn try_envelope(world: &World, rank: usize, src: usize, tag: Tag) -> Option<Envelope> {
    let mailbox = &world.mailboxes[rank];
    let si = mailbox.shard_of(src, tag);
    mailbox.shards[si].inner.lock().unwrap().pop(src, tag)
}

/// Current value of `rank`'s mailbox arrival counter (see
/// [`wait_arrival_beyond`]).
fn arrival_seq(world: &World, rank: usize) -> u64 {
    world.mailboxes[rank].pushes.load(Ordering::SeqCst)
}

/// Park until `rank`'s mailbox has seen a push beyond `seq` — the
/// `MPI_Waitany` building block: snapshot the counter, try every pending
/// request, and park here only if none completed. Returns immediately if
/// the counter already moved, so no arrival between snapshot and park can
/// be lost.
///
/// Lost-wakeup proof (eventcount): the waiter advertises itself in
/// `any_waiters` (SeqCst) and only *then* re-reads `pushes`; the sender
/// bumps `pushes` (SeqCst) and only *then* reads `any_waiters`. If the
/// waiter's re-read misses the sender's bump, the bump is after the
/// re-read in the total SeqCst order, hence after the advertisement, so
/// the sender's `any_waiters` read sees it and the sender takes
/// `any_lock` to notify — a lock the waiter holds continuously from
/// before its re-read until it parks, so the notify cannot slip into
/// the gap. Poison-aware and deadline-guarded like [`wait_envelope`].
fn wait_arrival_beyond(world: &World, rank: usize, seq: u64) {
    let mailbox = &world.mailboxes[rank];
    // Cooperative phase, as in `wait_match`.
    for _ in 0..world.tuning.spin_yields {
        if mailbox.pushes.load(Ordering::SeqCst) != seq {
            return;
        }
        if world.is_poisoned() {
            panic!("{POISONED_MSG}");
        }
        std::thread::yield_now();
    }
    let deadline = Instant::now() + world.tuning.recv_timeout;
    let mut g = mailbox.any_lock.lock().unwrap();
    loop {
        if mailbox.pushes.load(Ordering::SeqCst) != seq {
            return;
        }
        if world.is_poisoned() {
            drop(g);
            panic!("{POISONED_MSG}");
        }
        let now = Instant::now();
        if now >= deadline {
            drop(g);
            let queued = mailbox.queued_summary();
            panic!("rank {rank} deadlocked waiting for any arrival; {queued}");
        }
        mailbox.any_waiters.fetch_add(1, Ordering::SeqCst);
        // Advertised-waiter re-check: closes the race against a sender
        // that bumped `pushes` before seeing our advertisement.
        if mailbox.pushes.load(Ordering::SeqCst) != seq {
            mailbox.any_waiters.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        world.stats[rank].lock().unwrap().recv_parks += 1;
        let (g2, _) = mailbox.any_arrived.wait_timeout(g, deadline - now).unwrap();
        mailbox.any_waiters.fetch_sub(1, Ordering::SeqCst);
        g = g2;
    }
}

/// Book a completed receive into `rank`'s stats. `copied` is the number
/// of payload bytes physically copied on completion (0 for moves).
/// `persistent` says which matching discipline completed the message
/// (persistent-plan slot vs ad-hoc request) — every successful match in
/// the crate funnels through here, which makes this the sanitizer's one
/// receive hook.
fn record_recv(
    world: &World,
    rank: usize,
    src: usize,
    tag: Tag,
    env: &Envelope,
    copied: usize,
    persistent: bool,
) {
    if let Some(san) = &world.san {
        let kind = if persistent {
            SendKind::Persistent
        } else {
            SendKind::Adhoc
        };
        san.on_recv(rank, src, tag, kind);
    }
    let bytes = env.payload.len_bytes();
    let mut s = world.stats[rank].lock().unwrap();
    s.msgs_received += 1;
    s.bytes_received += bytes as u64;
    s.bytes_copied += copied as u64;
    if s.log_messages {
        s.msg_log.push(MsgRecord {
            dir: MsgDir::Received,
            peer: src,
            tag,
            bytes,
            latency_secs: env.sent_at.map_or(0.0, |t| t.elapsed().as_secs_f64()),
        });
    }
}

/// Complete a received envelope into a caller-owned buffer, recycling
/// the envelope's storage through its origin rank's pool. Zero
/// allocations when `out` has sufficient capacity.
fn complete_into(world: &World, origin: usize, payload: Payload, out: &mut Vec<f32>) {
    out.clear();
    match payload {
        Payload::F32(v) => {
            out.extend_from_slice(&v);
            world.pool_for(origin).release(v);
        }
        Payload::Bytes(b) => {
            assert_eq!(b.len() % 4, 0, "payload not a whole number of f32s");
            out.extend(
                b.chunks_exact(4)
                    .map(|c| f32::from_le_bytes(c.try_into().unwrap())),
            );
        }
    }
}

/// A per-rank communicator handle. Clone-free by design: each rank thread
/// owns exactly one.
pub struct Comm {
    pub(crate) rank: usize,
    pub(crate) size: usize,
    pub(crate) world: Arc<World>,
}

/// Completed-on-creation send request (eager delivery), kept for API
/// symmetry with MPI's `MPI_Isend`.
#[derive(Debug)]
pub struct SendRequest {
    pub(crate) bytes: usize,
}

impl SendRequest {
    /// Eager sends complete immediately.
    pub fn test(&self) -> bool {
        true
    }
    pub fn wait(self) {}
    /// Number of payload bytes the message carried.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// A pending non-blocking receive. Poll with [`RecvRequest::test`] (the
/// paper's progress thread calls `MPI_Test` between tile blocks) or block
/// with [`RecvRequest::wait`].
pub struct RecvRequest {
    src: usize,
    tag: Tag,
    world: Arc<World>,
    rank: usize,
    done: Option<Payload>,
}

impl RecvRequest {
    /// Try to complete the receive without blocking. Returns `true` once
    /// the message has been matched (idempotent afterwards).
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        if let Some(env) = try_envelope(&self.world, self.rank, self.src, self.tag) {
            record_recv(&self.world, self.rank, self.src, self.tag, &env, 0, false);
            self.done = Some(env.payload);
            true
        } else {
            false
        }
    }

    /// Non-blocking: if the message has arrived (or was already matched
    /// by a previous [`test`](Self::test)), take its payload as bytes.
    /// The request must not be used again after this returns `Some`.
    pub fn try_take(&mut self) -> Option<Vec<u8>> {
        if self.test() {
            Some(self.take_bytes())
        } else {
            None
        }
    }

    /// Typed variant of [`try_take`](Self::try_take): the payload as
    /// `f32`s (a move, not a copy, for natively-typed messages).
    pub fn try_take_f32(&mut self) -> Option<Vec<f32>> {
        if self.test() {
            Some(self.take_f32())
        } else {
            None
        }
    }

    /// Block until the message arrives and return its payload.
    pub fn wait(self) -> Vec<u8> {
        let timeout = self.world.tuning.recv_timeout;
        self.wait_timeout(timeout)
    }

    /// [`wait`](Self::wait) with an explicit deadlock timeout; on expiry
    /// the panic lists the mailbox's queued-but-unmatched envelopes.
    pub fn wait_timeout(mut self, timeout: Duration) -> Vec<u8> {
        self.fill(timeout);
        self.take_bytes()
    }

    /// Like [`wait`](Self::wait) but interpreting the payload as `f32`s.
    /// Natively-typed messages are moved out without conversion.
    pub fn wait_f32(mut self) -> Vec<f32> {
        self.fill(self.world.tuning.recv_timeout);
        self.take_f32()
    }

    /// Complete into a caller-owned preallocated buffer (cleared first).
    /// Allocation-free when `out` has capacity; the envelope's storage
    /// returns to its origin rank's pool.
    pub fn wait_into_f32(mut self, out: &mut Vec<f32>) {
        self.fill(self.world.tuning.recv_timeout);
        let payload = self.done.take().unwrap();
        let copied = payload.len_bytes();
        {
            let mut s = self.world.stats[self.rank].lock().unwrap();
            s.bytes_copied += copied as u64;
        }
        complete_into(&self.world, self.src, payload, out);
    }

    fn fill(&mut self, timeout: Duration) {
        if self.done.is_none() {
            let env = wait_envelope(&self.world, self.rank, self.src, self.tag, timeout);
            record_recv(&self.world, self.rank, self.src, self.tag, &env, 0, false);
            self.done = Some(env.payload);
        }
    }

    fn take_bytes(&mut self) -> Vec<u8> {
        match self.done.take().unwrap() {
            Payload::Bytes(b) => b,
            Payload::F32(v) => {
                // Conversion allocates; count it so the zero-copy path's
                // advantage stays visible in the stats.
                self.world.stats[self.rank].lock().unwrap().bufs_allocated += 1;
                f32_to_bytes(&v)
            }
        }
    }

    fn take_f32(&mut self) -> Vec<f32> {
        match self.done.take().unwrap() {
            Payload::F32(v) => v,
            Payload::Bytes(b) => {
                self.world.stats[self.rank].lock().unwrap().bufs_allocated += 1;
                bytes_to_f32(&b)
            }
        }
    }
}

/// A persistent receive request — the `MPI_Recv_init` analogue. Built
/// once per (peer, tag) by [`Comm::recv_init`]; each call to
/// [`wait_into`](Self::wait_into) completes one matching message into a
/// caller-owned preallocated buffer with zero allocations.
pub struct PersistentRecv {
    src: usize,
    tag: Tag,
    /// Mailbox `(shard, slot)` address resolved at init, skipping both
    /// the shard hash and the per-message index lookup on every
    /// completion (and every failed poll).
    shard: usize,
    slot: usize,
    rank: usize,
    world: Arc<World>,
}

impl PersistentRecv {
    /// The matched source rank.
    pub fn source(&self) -> usize {
        self.src
    }

    /// Block for the next matching message and complete it into `out`
    /// (cleared first). The envelope's storage returns to the pool.
    pub fn wait_into(&self, out: &mut Vec<f32>) {
        let env = self.wait_slot();
        let copied = env.payload.len_bytes();
        record_recv(
            &self.world,
            self.rank,
            self.src,
            self.tag,
            &env,
            copied,
            true,
        );
        complete_into(&self.world, self.src, env.payload, out);
    }

    /// Non-blocking [`wait_into`](Self::wait_into): returns `false` when
    /// no matching message has arrived yet.
    pub fn try_into_buf(&self, out: &mut Vec<f32>) -> bool {
        match self.try_slot() {
            Some(env) => {
                let copied = env.payload.len_bytes();
                record_recv(
                    &self.world,
                    self.rank,
                    self.src,
                    self.tag,
                    &env,
                    copied,
                    true,
                );
                complete_into(&self.world, self.src, env.payload, out);
                true
            }
            None => false,
        }
    }

    /// Block for the next matching message and hand the payload slice to
    /// `f` in place — no intermediate staging buffer, so completion costs
    /// a single copy (whatever `f` itself writes). The envelope's storage
    /// returns to the pool afterwards.
    pub fn wait_with<R>(&self, f: impl FnOnce(&[f32]) -> R) -> R {
        let env = self.wait_slot();
        let copied = env.payload.len_bytes();
        record_recv(
            &self.world,
            self.rank,
            self.src,
            self.tag,
            &env,
            copied,
            true,
        );
        complete_with(&self.world, self.rank, self.src, env.payload, f)
    }

    /// Non-blocking [`wait_with`](Self::wait_with): returns `None` when
    /// no matching message has arrived yet.
    pub fn try_with<R>(&self, f: impl FnOnce(&[f32]) -> R) -> Option<R> {
        let env = self.try_slot()?;
        let copied = env.payload.len_bytes();
        record_recv(
            &self.world,
            self.rank,
            self.src,
            self.tag,
            &env,
            copied,
            true,
        );
        Some(complete_with(
            &self.world,
            self.rank,
            self.src,
            env.payload,
            f,
        ))
    }

    /// Blocking matched-envelope fetch through the cached `(shard,
    /// slot)` address (no per-message hash), sharing the poison/timeout
    /// semantics of [`wait_envelope`].
    fn wait_slot(&self) -> Envelope {
        let timeout = self.world.tuning.recv_timeout;
        let slot = self.slot;
        wait_match(
            &self.world,
            self.rank,
            self.shard,
            timeout,
            |g| g.pop_slot(slot),
            || format!("(src={}, tag={})", self.src, self.tag),
        )
    }

    /// Non-blocking variant of [`wait_slot`](Self::wait_slot).
    fn try_slot(&self) -> Option<Envelope> {
        self.world.mailboxes[self.rank].shards[self.shard]
            .inner
            .lock()
            .unwrap()
            .pop_slot(self.slot)
    }

    /// Snapshot of the owning rank's mailbox arrival counter, paired with
    /// [`wait_any_arrival`](Self::wait_any_arrival) for `MPI_Waitany`-style
    /// completion loops: snapshot, [`try_with`](Self::try_with) every
    /// pending request, then park only if none completed.
    pub fn arrival_seq(&self) -> u64 {
        arrival_seq(&self.world, self.rank)
    }

    /// Park until any message (for any request) lands in the owning
    /// rank's mailbox after the [`arrival_seq`](Self::arrival_seq)
    /// snapshot `seq`. Returns immediately if one already has.
    pub fn wait_any_arrival(&self, seq: u64) {
        wait_arrival_beyond(&self.world, self.rank, seq);
    }
}

/// Complete a received envelope by lending its payload slice to `f`,
/// recycling the envelope's storage through its origin rank's pool.
/// Zero allocations for typed payloads.
fn complete_with<R>(
    world: &World,
    rank: usize,
    origin: usize,
    payload: Payload,
    f: impl FnOnce(&[f32]) -> R,
) -> R {
    match payload {
        Payload::F32(v) => {
            let r = f(&v);
            world.pool_for(origin).release(v);
            r
        }
        Payload::Bytes(b) => {
            assert_eq!(b.len() % 4, 0, "payload not a whole number of f32s");
            world.stats[rank].lock().unwrap().bufs_allocated += 1;
            f(&bytes_to_f32(&b))
        }
    }
}

/// A persistent send request — the `MPI_Send_init` analogue. Each
/// [`start`](Self::start) ships the caller's buffer through a pooled
/// envelope (one wire copy, zero allocations in steady state).
pub struct PersistentSend {
    dest: usize,
    tag: Tag,
    /// Destination-mailbox `(shard, slot)` address resolved at init,
    /// skipping the per-message hash lookup.
    shard: usize,
    slot: usize,
    rank: usize,
    world: Arc<World>,
}

impl PersistentSend {
    pub fn dest(&self) -> usize {
        self.dest
    }

    /// Send `data` to the bound (dest, tag); completes eagerly.
    pub fn start(&self, data: &[f32]) -> SendRequest {
        send_pooled_with(
            &self.world,
            self.rank,
            self.dest,
            self.tag,
            Some((self.shard, self.slot)),
            data.len(),
            |buf| buf.extend_from_slice(data),
        )
    }

    /// Send by letting `fill` pack up to `len` floats straight into the
    /// pooled wire buffer — the analogue of packing into a persistent
    /// request's registered buffer. Saves the staging copy that
    /// [`start`](Self::start) pays.
    pub fn start_with(&self, len: usize, fill: impl FnOnce(&mut Vec<f32>)) -> SendRequest {
        send_pooled_with(
            &self.world,
            self.rank,
            self.dest,
            self.tag,
            Some((self.shard, self.slot)),
            len,
            fill,
        )
    }
}

/// The shared typed-send path: acquire a pooled envelope buffer, copy
/// the payload in (the single wire copy), enqueue, notify.
pub(crate) fn send_f32_pooled(
    world: &World,
    rank: usize,
    dest: usize,
    tag: Tag,
    data: &[f32],
) -> SendRequest {
    send_pooled_with(world, rank, dest, tag, None, data.len(), |buf| {
        buf.extend_from_slice(data)
    })
}

/// Typed-send core: acquire a pooled buffer sized for `len` floats, let
/// `fill` write the payload (the single wire copy), enqueue, notify.
/// `addr` is the destination-mailbox `(shard, slot)` when the caller
/// resolved it at init time (persistent sends); `None` falls back to the
/// hash lookup.
fn send_pooled_with(
    world: &World,
    rank: usize,
    dest: usize,
    tag: Tag,
    addr: Option<(usize, usize)>,
    len: usize,
    fill: impl FnOnce(&mut Vec<f32>),
) -> SendRequest {
    assert!(
        dest != rank,
        "self-send unsupported (as in the generated code)"
    );
    if world.is_poisoned() {
        panic!("{POISONED_MSG}");
    }
    let (mut buf, allocated) = world.pool_for(rank).acquire(len);
    fill(&mut buf);
    let bytes = buf.len() * 4;
    {
        let mut s = world.stats[rank].lock().unwrap();
        s.msgs_sent += 1;
        s.bytes_sent += bytes as u64;
        s.bytes_copied += bytes as u64;
        if allocated {
            s.bufs_allocated += 1;
        }
        s.bump_peer(dest);
        if s.log_messages {
            s.msg_log.push(MsgRecord {
                dir: MsgDir::Sent,
                peer: dest,
                tag,
                bytes,
                latency_secs: 0.0,
            });
        }
    }
    // Sanitizer send event, strictly before the mailbox push: once the
    // envelope is visible the receiver may match it, and the sanitizer's
    // per-channel FIFO must already hold this send. `addr` is `Some` iff
    // this is a persistent-plan start — exactly the reuse/matching
    // discipline the detectors distinguish.
    if let Some(san) = &world.san {
        let kind = if addr.is_some() {
            SendKind::Persistent
        } else {
            SendKind::Adhoc
        };
        san.on_send(rank, dest, tag, kind);
    }
    let env = Envelope {
        payload: Payload::F32(buf),
        // Relaxed is sufficient (audited): `log_any` is a sticky
        // monotonic false->true flag guarding only whether we pay for
        // an `Instant::now` stamp. The stamp itself travels inside
        // the envelope under the shard mutex, which releases/
        // acquires it properly; a racing sender that still reads
        // `false` merely emits one unstamped record (latency 0.0),
        // never a torn or unsynchronized value. No happens-before
        // edge is built on this load — the sanitizer's clocks ride
        // on the shard mutex, not on this flag.
        sent_at: world.log_any.load(Ordering::Relaxed).then(Instant::now),
    };
    world.mailboxes[dest].push(addr, rank, tag, env);
    SendRequest { bytes }
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, world: Arc<World>) -> Comm {
        Comm { rank, size, world }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Process-unique id of the world this communicator belongs to.
    /// Each `Universe::run` builds a fresh world, so ids differ across
    /// jobs even when they run concurrently — the communicator-isolation
    /// witness for multi-tenant serving.
    pub fn world_id(&self) -> u64 {
        self.world.id
    }

    /// The tuning this world was built with (shard count, spin yields,
    /// receive timeout).
    pub fn tuning(&self) -> &CommTuning {
        &self.world.tuning
    }

    /// The happens-before sanitizer attached to this world, if enabled.
    /// Higher layers (halo plans, the executor) use this to report
    /// array-level events; `None` — the default — makes every hook a
    /// single predictable branch.
    pub fn san(&self) -> Option<&Arc<San>> {
        self.world.san.as_ref()
    }

    // ---------------------------------------------------------------- P2P

    /// Blocking (eager, buffered) send of raw bytes.
    pub fn send(&self, dest: usize, tag: Tag, data: &[u8]) {
        self.isend(dest, tag, data).wait();
    }

    /// Non-blocking send of raw bytes; completes eagerly. The byte path
    /// always allocates its envelope — typed `f32` traffic should use
    /// [`isend_f32`](Self::isend_f32), which is pooled.
    pub fn isend(&self, dest: usize, tag: Tag, data: &[u8]) -> SendRequest {
        assert!(dest < self.size, "send to out-of-range rank {dest}");
        assert!(
            dest != self.rank,
            "self-send unsupported (as in the generated code)"
        );
        if self.world.is_poisoned() {
            panic!("{POISONED_MSG}");
        }
        {
            let mut s = self.world.stats[self.rank].lock().unwrap();
            s.msgs_sent += 1;
            s.bytes_sent += data.len() as u64;
            s.bytes_copied += data.len() as u64;
            s.bufs_allocated += 1;
            s.bump_peer(dest);
            if s.log_messages {
                s.msg_log.push(MsgRecord {
                    dir: MsgDir::Sent,
                    peer: dest,
                    tag,
                    bytes: data.len(),
                    latency_secs: 0.0,
                });
            }
        }
        // Sanitizer send event before the push, as in `send_pooled_with`.
        // The byte path is always ad-hoc (collectives and user traffic).
        if let Some(san) = &self.world.san {
            san.on_send(self.rank, dest, tag, SendKind::Adhoc);
        }
        let env = Envelope {
            payload: Payload::Bytes(data.to_vec()),
            // Relaxed is sufficient (audited): same contract as the
            // typed path in `send_pooled_with` — a sticky best-effort
            // flag deciding whether to stamp `sent_at`; the stamp
            // synchronizes via the shard mutex, so no ordering edge is
            // needed here.
            sent_at: self
                .world
                .log_any
                .load(Ordering::Relaxed)
                .then(Instant::now),
        };
        self.world.mailboxes[dest].push(None, self.rank, tag, env);
        SendRequest { bytes: data.len() }
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.irecv(src, tag).wait()
    }

    /// Post a non-blocking receive.
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        assert!(src < self.size, "recv from out-of-range rank {src}");
        RecvRequest {
            src,
            tag,
            world: Arc::clone(&self.world),
            rank: self.rank,
            done: None,
        }
    }

    /// Typed convenience: send a slice of `f32` (natively, no byte
    /// round-trip, pooled envelope).
    pub fn send_f32(&self, dest: usize, tag: Tag, data: &[f32]) {
        self.isend_f32(dest, tag, data).wait();
    }

    /// Typed convenience: non-blocking `f32` send through the pool.
    pub fn isend_f32(&self, dest: usize, tag: Tag, data: &[f32]) -> SendRequest {
        assert!(dest < self.size, "send to out-of-range rank {dest}");
        send_f32_pooled(&self.world, self.rank, dest, tag, data)
    }

    /// Typed convenience: blocking `f32` receive.
    pub fn recv_f32(&self, src: usize, tag: Tag) -> Vec<f32> {
        self.irecv(src, tag).wait_f32()
    }

    /// Blocking receive completed into a caller-owned preallocated
    /// buffer; allocation-free when `out` has capacity.
    pub fn recv_into_f32(&self, src: usize, tag: Tag, out: &mut Vec<f32>) {
        self.irecv(src, tag).wait_into_f32(out);
    }

    /// Build a persistent receive request bound to `(src, tag)` — the
    /// `MPI_Recv_init` analogue used by the halo plans.
    pub fn recv_init(&self, src: usize, tag: Tag) -> PersistentRecv {
        assert!(src < self.size, "recv from out-of-range rank {src}");
        let (shard, slot) = self.world.mailboxes[self.rank].slot_addr(src, tag);
        PersistentRecv {
            src,
            tag,
            shard,
            slot,
            rank: self.rank,
            world: Arc::clone(&self.world),
        }
    }

    /// Pre-populate this rank's envelope-buffer pool with `count`
    /// message buffers of `len` `f32`s each (the `MPI_Buffer_attach`
    /// analogue). Halo plans call this once at build time so every
    /// steady-state send finds a pooled buffer and
    /// [`CommStats::bufs_allocated`] stays flat.
    pub fn reserve_msg_buffers(&self, count: usize, len: usize) {
        self.world.pool_for(self.rank).reserve(count, len);
    }

    /// Build a persistent send request bound to `(dest, tag)` — the
    /// `MPI_Send_init` analogue used by the halo plans.
    pub fn send_init(&self, dest: usize, tag: Tag) -> PersistentSend {
        assert!(dest < self.size, "send to out-of-range rank {dest}");
        assert!(
            dest != self.rank,
            "self-send unsupported (as in the generated code)"
        );
        let (shard, slot) = self.world.mailboxes[dest].slot_addr(self.rank, tag);
        PersistentSend {
            dest,
            tag,
            shard,
            slot,
            rank: self.rank,
            world: Arc::clone(&self.world),
        }
    }

    // ---------------------------------------------------------- collectives

    /// Synchronize all ranks. Poison-aware: unwinds promptly if a peer
    /// rank panics while we wait. (The tree/ring collectives live in
    /// [`crate::collectives`].)
    pub fn barrier(&self) {
        // Arrive strictly before blocking: every rank's clock is folded
        // into the generation's accumulator before any rank can depart,
        // so departure hands each rank the lub of all arrivals — the
        // all-pairs happens-before edge a barrier promises.
        if let Some(san) = &self.world.san {
            san.barrier_arrive(self.rank);
        }
        self.world.barrier.wait(&self.world.poisoned);
        if let Some(san) = &self.world.san {
            san.barrier_depart(self.rank);
        }
    }

    // --------------------------------------------------------------- stats

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        self.world.stats[self.rank]
            .lock()
            .unwrap()
            .snapshot(self.rank)
    }

    /// Reset this rank's traffic counters (the message log and its
    /// enable flag survive the reset).
    pub fn reset_stats(&self) {
        let mut s = self.world.stats[self.rank].lock().unwrap();
        let log_messages = s.log_messages;
        let msg_log = std::mem::take(&mut s.msg_log);
        *s = StatsInner {
            log_messages,
            msg_log,
            ..StatsInner::default()
        };
    }

    /// Enable or disable this rank's per-message log. Off by default;
    /// the executor switches it on at `TraceLevel::Full`.
    pub fn set_msg_log(&self, on: bool) {
        self.world.stats[self.rank].lock().unwrap().log_messages = on;
        if on {
            // Sticky: senders on other ranks must start stamping
            // envelopes; clearing would need a world-wide census and the
            // stamp is cheap relative to logging itself.
            //
            // Relaxed is sufficient (audited): this store needs no
            // release edge because nothing is published *through* the
            // flag — readers act on it alone (pay for a stamp or not),
            // and `log_messages` itself is read under the stats mutex.
            // The worst cost of the weak ordering is a brief window in
            // which other ranks' sends go unstamped (latency 0.0 in the
            // log), which the logging contract already allows.
            self.world.log_any.store(true, Ordering::Relaxed);
        }
    }

    /// Drain this rank's message log (records accumulated since the log
    /// was enabled or last drained).
    pub fn take_msg_log(&self) -> Vec<MsgRecord> {
        std::mem::take(&mut self.world.stats[self.rank].lock().unwrap().msg_log)
    }
}

/// Reinterpret an `f32` slice as little-endian bytes.
pub fn f32_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterpret little-endian bytes as `f32`s.
pub fn bytes_to_f32(data: &[u8]) -> Vec<f32> {
    assert_eq!(data.len() % 4, 0, "payload not a whole number of f32s");
    data.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn bytes_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MAX];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&v)), v);
    }

    #[test]
    fn ping_pong() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 5, &[42.0]);
                let r = c.recv_f32(1, 6);
                assert_eq!(r, vec![43.0]);
            } else {
                let r = c.recv_f32(0, 5);
                assert_eq!(r, vec![42.0]);
                c.send_f32(0, 6, &[43.0]);
            }
        });
    }

    #[test]
    fn tag_matching_is_selective() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send_f32(1, 2, &[2.0]);
                c.send_f32(1, 1, &[1.0]);
            } else {
                assert_eq!(c.recv_f32(0, 1), vec![1.0]);
                assert_eq!(c.recv_f32(0, 2), vec![2.0]);
            }
        });
    }

    #[test]
    fn same_tag_preserves_order() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send_f32(1, 9, &[i as f32]);
                }
            } else {
                for i in 0..10 {
                    assert_eq!(c.recv_f32(0, 9), vec![i as f32]);
                }
            }
        });
    }

    #[test]
    fn irecv_test_polls_without_blocking() {
        Universe::run(2, |c| {
            if c.rank() == 1 {
                let mut req = c.irecv(0, 3);
                // Might not have arrived yet — poll until it does.
                let mut spins = 0u64;
                while !req.test() {
                    std::hint::spin_loop();
                    spins += 1;
                    assert!(spins < 1_000_000_000, "never arrived");
                }
                assert_eq!(req.wait_f32(), vec![7.0]);
            } else {
                c.send_f32(1, 3, &[7.0]);
            }
        });
    }

    #[test]
    fn recv_into_reuses_caller_buffer() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 4, &[1.0, 2.0, 3.0]);
                c.send_f32(1, 4, &[4.0, 5.0]);
            } else {
                let mut buf = Vec::with_capacity(8);
                c.recv_into_f32(0, 4, &mut buf);
                assert_eq!(buf, vec![1.0, 2.0, 3.0]);
                let ptr = buf.as_ptr();
                c.recv_into_f32(0, 4, &mut buf);
                assert_eq!(buf, vec![4.0, 5.0]);
                assert_eq!(ptr, buf.as_ptr(), "buffer must be reused in place");
            }
        });
    }

    #[test]
    fn persistent_requests_cycle_through_pool_without_allocating() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                let send = c.send_init(1, 12);
                let data = vec![3.5f32; 64];
                for _ in 0..10 {
                    send.start(&data);
                }
                c.barrier();
                // Warm-up allocates; after the pool is primed the sends
                // must be allocation-free.
                c.reset_stats();
                for _ in 0..10 {
                    send.start(&data);
                }
                c.barrier();
                c.barrier();
                assert_eq!(c.stats().bufs_allocated, 0, "steady-state send allocated");
            } else {
                let recv = c.recv_init(0, 12);
                let mut buf = Vec::with_capacity(64);
                for _ in 0..10 {
                    recv.wait_into(&mut buf);
                    assert_eq!(buf, vec![3.5f32; 64]);
                }
                c.barrier();
                c.reset_stats();
                for _ in 0..10 {
                    recv.wait_into(&mut buf);
                }
                c.barrier();
                assert_eq!(c.stats().bufs_allocated, 0, "steady-state recv allocated");
                c.barrier();
            }
        });
    }

    /// The pool-recycling contract must hold in the unsharded baseline
    /// layout too (one global pool, `MPIX_COMM_SHARDS=1`).
    #[test]
    fn unsharded_layout_keeps_steady_state_allocation_free() {
        let tuning = CommTuning::default().with_shards(1).with_spin_yields(4);
        Universe::run_cfg(2, tuning, None, |c| {
            assert_eq!(c.tuning().mailbox_shards, 1);
            if c.rank() == 0 {
                let send = c.send_init(1, 12);
                let data = vec![1.0f32; 32];
                for _ in 0..8 {
                    send.start(&data);
                }
                c.barrier();
                c.reset_stats();
                for _ in 0..8 {
                    send.start(&data);
                }
                c.barrier();
                c.barrier();
                assert_eq!(c.stats().bufs_allocated, 0);
            } else {
                let recv = c.recv_init(0, 12);
                let mut buf = Vec::with_capacity(32);
                for _ in 0..8 {
                    recv.wait_into(&mut buf);
                }
                c.barrier();
                c.reset_stats();
                for _ in 0..8 {
                    recv.wait_into(&mut buf);
                }
                c.barrier();
                assert_eq!(c.stats().bufs_allocated, 0);
                c.barrier();
            }
        });
    }

    #[test]
    fn recv_timeout_panic_lists_unmatched_envelopes() {
        let result = std::panic::catch_unwind(|| {
            Universe::run(2, |c| {
                if c.rank() == 0 {
                    // Wrong tag: receiver waits on 8, we send 7.
                    c.send_f32(1, 7, &[1.0, 2.0]);
                    // Keep rank 0 parked so the timeout fires first on 1.
                    c.barrier();
                } else {
                    c.irecv(0, 8).wait_timeout(Duration::from_millis(200));
                }
            });
        });
        let err = result.expect_err("receive must time out");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| err.downcast_ref::<&str>().unwrap().to_string());
        assert!(msg.contains("(src=0, tag=8)"), "wanted target in {msg:?}");
        assert!(
            msg.contains("src=0, tag=7, 8 bytes"),
            "wanted queued envelope digest in {msg:?}"
        );
    }

    #[test]
    fn recv_timeout_is_env_tunable_per_run() {
        let tuning = CommTuning::default().with_recv_timeout(Duration::from_millis(100));
        let start = Instant::now();
        let result = std::panic::catch_unwind(|| {
            Universe::run_cfg(2, tuning, None, |c| {
                if c.rank() == 1 {
                    c.recv_f32(0, 3); // never sent
                } else {
                    c.barrier();
                }
            });
        });
        result.expect_err("receive must time out");
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "short recv_timeout was not honored: {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 1, &[0.0; 10]);
                c.send_f32(1, 1, &[0.0; 6]);
            } else {
                c.recv_f32(0, 1);
                c.recv_f32(0, 1);
            }
            c.barrier();
            c.stats()
        });
        assert_eq!(out[0].msgs_sent, 2);
        assert_eq!(out[0].bytes_sent, 64);
        assert_eq!(out[1].msgs_received, 2);
        assert_eq!(out[1].bytes_received, 64);
    }

    #[test]
    fn msg_log_records_both_directions() {
        let out = Universe::run(2, |c| {
            c.set_msg_log(true);
            if c.rank() == 0 {
                c.send_f32(1, 11, &[1.0; 4]);
            } else {
                c.recv_f32(0, 11);
            }
            c.barrier();
            c.take_msg_log()
        });
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0].dir, MsgDir::Sent);
        assert_eq!(
            (out[0][0].peer, out[0][0].tag, out[0][0].bytes),
            (1, 11, 16)
        );
        assert_eq!(out[0][0].latency_secs, 0.0);
        assert_eq!(out[1].len(), 1);
        assert_eq!(out[1][0].dir, MsgDir::Received);
        assert_eq!(
            (out[1][0].peer, out[1][0].tag, out[1][0].bytes),
            (0, 11, 16)
        );
        assert!(out[1][0].latency_secs >= 0.0);
    }

    #[test]
    fn msg_log_off_by_default_and_survives_reset() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 1, &[0.0]);
            } else {
                c.recv_f32(0, 1);
            }
            c.barrier();
            c.set_msg_log(true);
            c.reset_stats();
            if c.rank() == 0 {
                c.send_f32(1, 2, &[0.0]);
            } else {
                c.recv_f32(0, 2);
            }
            c.barrier();
            (c.take_msg_log(), c.stats())
        });
        // The first exchange predates set_msg_log; only the second is logged,
        // and reset_stats keeps the flag (and any already-logged records).
        assert_eq!(out[0].0.len(), 1);
        assert_eq!(out[0].0[0].tag, 2);
        assert_eq!(out[0].1.msgs_sent, 1);
    }

    #[test]
    #[should_panic]
    fn self_send_rejected() {
        Universe::run(1, |c| {
            c.send_f32(0, 0, &[1.0]);
        });
    }
}
