//! The communicator: point-to-point messaging, requests, collectives.

use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use mpix_trace::{MsgDir, MsgRecord};

use crate::stats::{CommStats, StatsInner};

/// Message tag. User tags must stay below [`RESERVED_TAG_BASE`].
pub type Tag = u32;

/// Tags at or above this value are reserved for collectives.
pub const RESERVED_TAG_BASE: Tag = 1 << 30;

/// How long a blocking receive waits before declaring deadlock. Generous
/// for slow CI machines while still failing fast on real bugs.
const RECV_TIMEOUT: Duration = Duration::from_secs(60);

#[derive(Debug)]
struct Envelope {
    src: usize,
    tag: Tag,
    data: Vec<u8>,
    /// When the sender enqueued this message; receivers derive the
    /// enqueue→match latency logged at `TraceLevel::Full`.
    sent_at: Instant,
}

#[derive(Default)]
struct MailboxInner {
    queue: Vec<Envelope>,
}

/// One mailbox per rank; senders push, the owner matches and pops.
pub(crate) struct Mailbox {
    inner: Mutex<MailboxInner>,
    arrived: Condvar,
}

impl Mailbox {
    pub(crate) fn new() -> Mailbox {
        Mailbox {
            inner: Mutex::new(MailboxInner::default()),
            arrived: Condvar::new(),
        }
    }
}

/// Shared state for a set of ranks (the "world").
pub(crate) struct World {
    pub(crate) mailboxes: Vec<Mailbox>,
    pub(crate) barrier: std::sync::Barrier,
    pub(crate) stats: Vec<Mutex<StatsInner>>,
}

impl World {
    pub(crate) fn new(n: usize) -> World {
        World {
            mailboxes: (0..n).map(|_| Mailbox::new()).collect(),
            barrier: std::sync::Barrier::new(n),
            stats: (0..n).map(|_| Mutex::new(StatsInner::default())).collect(),
        }
    }
}

/// A per-rank communicator handle. Clone-free by design: each rank thread
/// owns exactly one.
pub struct Comm {
    rank: usize,
    size: usize,
    world: Arc<World>,
}

/// Completed-on-creation send request (eager delivery), kept for API
/// symmetry with MPI's `MPI_Isend`.
#[derive(Debug)]
pub struct SendRequest {
    pub(crate) bytes: usize,
}

impl SendRequest {
    /// Eager sends complete immediately.
    pub fn test(&self) -> bool {
        true
    }
    pub fn wait(self) {}
    /// Number of payload bytes the message carried.
    pub fn bytes(&self) -> usize {
        self.bytes
    }
}

/// A pending non-blocking receive. Poll with [`RecvRequest::test`] (the
/// paper's progress thread calls `MPI_Test` between tile blocks) or block
/// with [`RecvRequest::wait`].
pub struct RecvRequest {
    src: usize,
    tag: Tag,
    world: Arc<World>,
    rank: usize,
    done: Option<Vec<u8>>,
}

impl RecvRequest {
    /// Try to complete the receive without blocking. Returns `true` once
    /// the message has been matched (idempotent afterwards).
    pub fn test(&mut self) -> bool {
        if self.done.is_some() {
            return true;
        }
        let mailbox = &self.world.mailboxes[self.rank];
        let mut inner = mailbox.inner.lock().unwrap();
        if let Some(pos) = inner
            .queue
            .iter()
            .position(|e| e.src == self.src && e.tag == self.tag)
        {
            let env = inner.queue.remove(pos);
            drop(inner);
            self.record_recv(&env);
            self.done = Some(env.data);
            true
        } else {
            false
        }
    }

    /// Non-blocking: if the message has arrived (or was already matched
    /// by a previous [`test`](Self::test)), take its payload. The request
    /// must not be used again after this returns `Some`.
    pub fn try_take(&mut self) -> Option<Vec<u8>> {
        if self.test() {
            self.done.take()
        } else {
            None
        }
    }

    /// Block until the message arrives and return its payload.
    pub fn wait(mut self) -> Vec<u8> {
        if let Some(d) = self.done.take() {
            return d;
        }
        let mailbox = &self.world.mailboxes[self.rank];
        let mut inner = mailbox.inner.lock().unwrap();
        loop {
            if let Some(pos) = inner
                .queue
                .iter()
                .position(|e| e.src == self.src && e.tag == self.tag)
            {
                let env = inner.queue.remove(pos);
                drop(inner);
                self.record_recv(&env);
                return env.data;
            }
            let (guard, timeout) = mailbox.arrived.wait_timeout(inner, RECV_TIMEOUT).unwrap();
            assert!(
                !timeout.timed_out(),
                "rank {} deadlocked waiting for (src={}, tag={})",
                self.rank,
                self.src,
                self.tag
            );
            inner = guard;
        }
    }

    /// Like [`wait`](Self::wait) but interpreting the payload as `f32`s.
    pub fn wait_f32(self) -> Vec<f32> {
        bytes_to_f32(&self.wait())
    }

    fn record_recv(&self, env: &Envelope) {
        let mut s = self.world.stats[self.rank].lock().unwrap();
        s.msgs_received += 1;
        s.bytes_received += env.data.len() as u64;
        if s.log_messages {
            s.msg_log.push(MsgRecord {
                dir: MsgDir::Received,
                peer: env.src,
                tag: env.tag,
                bytes: env.data.len(),
                latency_secs: env.sent_at.elapsed().as_secs_f64(),
            });
        }
    }
}

impl Comm {
    pub(crate) fn new(rank: usize, size: usize, world: Arc<World>) -> Comm {
        Comm { rank, size, world }
    }

    /// This rank's id, `0..size`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of ranks in the world.
    pub fn size(&self) -> usize {
        self.size
    }

    // ---------------------------------------------------------------- P2P

    /// Blocking (eager, buffered) send of raw bytes.
    pub fn send(&self, dest: usize, tag: Tag, data: &[u8]) {
        self.isend(dest, tag, data).wait();
    }

    /// Non-blocking send; completes eagerly.
    pub fn isend(&self, dest: usize, tag: Tag, data: &[u8]) -> SendRequest {
        assert!(dest < self.size, "send to out-of-range rank {dest}");
        assert!(
            dest != self.rank,
            "self-send unsupported (as in the generated code)"
        );
        {
            let mut s = self.world.stats[self.rank].lock().unwrap();
            s.msgs_sent += 1;
            s.bytes_sent += data.len() as u64;
            *s.per_peer_msgs.entry(dest).or_insert(0) += 1;
            if s.log_messages {
                s.msg_log.push(MsgRecord {
                    dir: MsgDir::Sent,
                    peer: dest,
                    tag,
                    bytes: data.len(),
                    latency_secs: 0.0,
                });
            }
        }
        let mailbox = &self.world.mailboxes[dest];
        {
            let mut inner = mailbox.inner.lock().unwrap();
            inner.queue.push(Envelope {
                src: self.rank,
                tag,
                data: data.to_vec(),
                sent_at: Instant::now(),
            });
        }
        mailbox.arrived.notify_all();
        SendRequest { bytes: data.len() }
    }

    /// Blocking receive of a message from `src` with `tag`.
    pub fn recv(&self, src: usize, tag: Tag) -> Vec<u8> {
        self.irecv(src, tag).wait()
    }

    /// Post a non-blocking receive.
    pub fn irecv(&self, src: usize, tag: Tag) -> RecvRequest {
        assert!(src < self.size, "recv from out-of-range rank {src}");
        RecvRequest {
            src,
            tag,
            world: Arc::clone(&self.world),
            rank: self.rank,
            done: None,
        }
    }

    /// Typed convenience: send a slice of `f32`.
    pub fn send_f32(&self, dest: usize, tag: Tag, data: &[f32]) {
        self.send(dest, tag, &f32_to_bytes(data));
    }

    /// Typed convenience: non-blocking `f32` send.
    pub fn isend_f32(&self, dest: usize, tag: Tag, data: &[f32]) -> SendRequest {
        self.isend(dest, tag, &f32_to_bytes(data))
    }

    /// Typed convenience: blocking `f32` receive.
    pub fn recv_f32(&self, src: usize, tag: Tag) -> Vec<f32> {
        bytes_to_f32(&self.recv(src, tag))
    }

    // ---------------------------------------------------------- collectives

    /// Synchronize all ranks.
    pub fn barrier(&self) {
        self.world.barrier.wait();
    }

    /// All-reduce a single `f64` with the given associative op.
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        const TAG_UP: Tag = RESERVED_TAG_BASE + 1;
        const TAG_DOWN: Tag = RESERVED_TAG_BASE + 2;
        if self.rank == 0 {
            let mut acc = value;
            for src in 1..self.size {
                let v = f64::from_le_bytes(self.recv(src, TAG_UP).try_into().unwrap());
                acc = op.apply(acc, v);
            }
            for dest in 1..self.size {
                self.send(dest, TAG_DOWN, &acc.to_le_bytes());
            }
            acc
        } else {
            self.send(0, TAG_UP, &value.to_le_bytes());
            f64::from_le_bytes(self.recv(0, TAG_DOWN).try_into().unwrap())
        }
    }

    /// Gather variable-length `f32` buffers on `root`; other ranks get
    /// `None`.
    pub fn gather_f32(&self, root: usize, data: &[f32]) -> Option<Vec<Vec<f32>>> {
        const TAG: Tag = RESERVED_TAG_BASE + 3;
        if self.rank == root {
            let mut out = vec![Vec::new(); self.size];
            out[root] = data.to_vec();
            for src in 0..self.size {
                if src != root {
                    out[src] = self.recv_f32(src, TAG);
                }
            }
            Some(out)
        } else {
            self.send_f32(root, TAG, data);
            None
        }
    }

    /// Broadcast a `f32` buffer from `root` to everyone; returns the data
    /// on all ranks.
    pub fn bcast_f32(&self, root: usize, data: &[f32]) -> Vec<f32> {
        const TAG: Tag = RESERVED_TAG_BASE + 4;
        if self.rank == root {
            for dest in 0..self.size {
                if dest != root {
                    self.send_f32(dest, TAG, data);
                }
            }
            data.to_vec()
        } else {
            self.recv_f32(root, TAG)
        }
    }

    // --------------------------------------------------------------- stats

    /// Snapshot of this rank's traffic counters.
    pub fn stats(&self) -> CommStats {
        self.world.stats[self.rank]
            .lock()
            .unwrap()
            .snapshot(self.rank)
    }

    /// Reset this rank's traffic counters (the message log and its
    /// enable flag survive the reset).
    pub fn reset_stats(&self) {
        let mut s = self.world.stats[self.rank].lock().unwrap();
        let log_messages = s.log_messages;
        let msg_log = std::mem::take(&mut s.msg_log);
        *s = StatsInner {
            log_messages,
            msg_log,
            ..StatsInner::default()
        };
    }

    /// Enable or disable this rank's per-message log. Off by default;
    /// the executor switches it on at `TraceLevel::Full`.
    pub fn set_msg_log(&self, on: bool) {
        self.world.stats[self.rank].lock().unwrap().log_messages = on;
    }

    /// Drain this rank's message log (records accumulated since the log
    /// was enabled or last drained).
    pub fn take_msg_log(&self) -> Vec<MsgRecord> {
        std::mem::take(&mut self.world.stats[self.rank].lock().unwrap().msg_log)
    }
}

/// Reduction operators for [`Comm::allreduce_f64`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

/// Reinterpret an `f32` slice as little-endian bytes.
pub fn f32_to_bytes(data: &[f32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len() * 4);
    for v in data {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Reinterpret little-endian bytes as `f32`s.
pub fn bytes_to_f32(data: &[u8]) -> Vec<f32> {
    assert_eq!(data.len() % 4, 0, "payload not a whole number of f32s");
    data.chunks_exact(4)
        .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn bytes_roundtrip() {
        let v = vec![1.5f32, -2.25, 0.0, f32::MAX];
        assert_eq!(bytes_to_f32(&f32_to_bytes(&v)), v);
    }

    #[test]
    fn ping_pong() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 5, &[42.0]);
                let r = c.recv_f32(1, 6);
                assert_eq!(r, vec![43.0]);
            } else {
                let r = c.recv_f32(0, 5);
                assert_eq!(r, vec![42.0]);
                c.send_f32(0, 6, &[43.0]);
            }
        });
    }

    #[test]
    fn tag_matching_is_selective() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1; receiver asks for 1 first.
                c.send_f32(1, 2, &[2.0]);
                c.send_f32(1, 1, &[1.0]);
            } else {
                assert_eq!(c.recv_f32(0, 1), vec![1.0]);
                assert_eq!(c.recv_f32(0, 2), vec![2.0]);
            }
        });
    }

    #[test]
    fn same_tag_preserves_order() {
        Universe::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..10 {
                    c.send_f32(1, 9, &[i as f32]);
                }
            } else {
                for i in 0..10 {
                    assert_eq!(c.recv_f32(0, 9), vec![i as f32]);
                }
            }
        });
    }

    #[test]
    fn irecv_test_polls_without_blocking() {
        Universe::run(2, |c| {
            if c.rank() == 1 {
                let mut req = c.irecv(0, 3);
                // Might not have arrived yet — poll until it does.
                let mut spins = 0u64;
                while !req.test() {
                    std::hint::spin_loop();
                    spins += 1;
                    assert!(spins < 1_000_000_000, "never arrived");
                }
                assert_eq!(req.wait_f32(), vec![7.0]);
            } else {
                c.send_f32(1, 3, &[7.0]);
            }
        });
    }

    #[test]
    fn allreduce_sum_min_max() {
        let out = Universe::run(5, |c| {
            let v = c.rank() as f64 + 1.0;
            (
                c.allreduce_f64(v, ReduceOp::Sum),
                c.allreduce_f64(v, ReduceOp::Min),
                c.allreduce_f64(v, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in out {
            assert_eq!(s, 15.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 5.0);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(4, |c| c.gather_f32(0, &[c.rank() as f32; 2]));
        assert!(out[1].is_none());
        let g = out[0].as_ref().unwrap();
        for (r, buf) in g.iter().enumerate() {
            assert_eq!(buf, &vec![r as f32; 2]);
        }
    }

    #[test]
    fn bcast_reaches_everyone() {
        let out = Universe::run(3, |c| c.bcast_f32(1, &[9.0, 8.0]));
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn stats_count_messages_and_bytes() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 1, &[0.0; 10]);
                c.send_f32(1, 1, &[0.0; 6]);
            } else {
                c.recv_f32(0, 1);
                c.recv_f32(0, 1);
            }
            c.barrier();
            c.stats()
        });
        assert_eq!(out[0].msgs_sent, 2);
        assert_eq!(out[0].bytes_sent, 64);
        assert_eq!(out[1].msgs_received, 2);
        assert_eq!(out[1].bytes_received, 64);
    }

    #[test]
    fn msg_log_records_both_directions() {
        let out = Universe::run(2, |c| {
            c.set_msg_log(true);
            if c.rank() == 0 {
                c.send_f32(1, 11, &[1.0; 4]);
            } else {
                c.recv_f32(0, 11);
            }
            c.barrier();
            c.take_msg_log()
        });
        assert_eq!(out[0].len(), 1);
        assert_eq!(out[0][0].dir, MsgDir::Sent);
        assert_eq!(
            (out[0][0].peer, out[0][0].tag, out[0][0].bytes),
            (1, 11, 16)
        );
        assert_eq!(out[0][0].latency_secs, 0.0);
        assert_eq!(out[1].len(), 1);
        assert_eq!(out[1][0].dir, MsgDir::Received);
        assert_eq!(
            (out[1][0].peer, out[1][0].tag, out[1][0].bytes),
            (0, 11, 16)
        );
        assert!(out[1][0].latency_secs >= 0.0);
    }

    #[test]
    fn msg_log_off_by_default_and_survives_reset() {
        let out = Universe::run(2, |c| {
            if c.rank() == 0 {
                c.send_f32(1, 1, &[0.0]);
            } else {
                c.recv_f32(0, 1);
            }
            c.barrier();
            c.set_msg_log(true);
            c.reset_stats();
            if c.rank() == 0 {
                c.send_f32(1, 2, &[0.0]);
            } else {
                c.recv_f32(0, 2);
            }
            c.barrier();
            (c.take_msg_log(), c.stats())
        });
        // The first exchange predates set_msg_log; only the second is logged,
        // and reset_stats keeps the flag (and any already-logged records).
        assert_eq!(out[0].0.len(), 1);
        assert_eq!(out[0].0[0].tag, 2);
        assert_eq!(out[0].1.msgs_sent, 1);
    }

    #[test]
    #[should_panic]
    fn self_send_rejected() {
        Universe::run(1, |c| {
            c.send_f32(0, 0, &[1.0]);
        });
    }
}
