//! Rank spawning: the analogue of `mpirun -np N`.

use std::sync::Arc;

use crate::comm::{Comm, World};

/// Entry point for simulated multi-rank execution.
///
/// `Universe::run(n, f)` plays the role of
/// `mpirun -np <n> <executable>` in the paper: it spawns `n` rank threads,
/// hands each a [`Comm`], and joins them, returning the per-rank results
/// in rank order. Panics in any rank are propagated to the caller.
pub struct Universe;

impl Universe {
    /// Run `f` on `n` ranks. The closure may borrow from the environment
    /// (scoped threads); shared captures must be `Sync`.
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(n >= 1, "need at least one rank");
        let world = Arc::new(World::new(n));
        let f = &f;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let world = Arc::clone(&world);
                handles.push(scope.spawn(move || f(Comm::new(rank, n, world))));
            }
            handles
                .into_iter()
                .map(|h| match h.join() {
                    Ok(r) => r,
                    Err(payload) => std::panic::resume_unwind(payload),
                })
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_rank_order() {
        let out = Universe::run(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn closures_can_borrow_environment() {
        let base = 100usize;
        let out = Universe::run(3, |c| base + c.rank());
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn single_rank_works() {
        let out = Universe::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.barrier();
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panics_propagate() {
        Universe::run(2, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }
}
