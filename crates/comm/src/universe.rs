//! Rank spawning: the analogue of `mpirun -np N`.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

use mpix_san::San;

use crate::comm::{Comm, World};
use crate::tuning::CommTuning;

/// Entry point for simulated multi-rank execution.
///
/// `Universe::run(n, f)` plays the role of
/// `mpirun -np <n> <executable>` in the paper: it spawns `n` rank threads,
/// hands each a [`Comm`], and joins them, returning the per-rank results
/// in rank order.
///
/// ## Fail-fast panic propagation
///
/// When any rank's closure panics, the world is *poisoned*: peers blocked
/// in `barrier` or a receive wake up and unwind promptly (no 60 s
/// deadlock timeout, no forever-blocked `Barrier::wait`), and the
/// **original** panic payload is re-raised to the caller. The secondary
/// "world poisoned" unwinds of the peers are absorbed — mirroring
/// `mpirun`, which kills the job and reports the first failing rank.
pub struct Universe;

impl Universe {
    /// Run `f` on `n` ranks. The closure may borrow from the environment
    /// (scoped threads); shared captures must be `Sync`.
    ///
    /// Honors `MPIX_SAN=1`: the happens-before sanitizer is attached for
    /// the duration of the run and any findings are printed to stderr
    /// (never panicking — the sanitizer observes, the caller decides).
    /// For programmatic access to the reports, build a
    /// [`San`](mpix_san::San) yourself and use
    /// [`run_with_san`](Self::run_with_san).
    /// Comm-layer tuning (mailbox shards, spin yields, receive timeout)
    /// is read from the environment once per run — see
    /// [`CommTuning::from_env`]; [`run_cfg`](Self::run_cfg) takes an
    /// explicit [`CommTuning`].
    pub fn run<R, F>(n: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::run_with_san(n, San::from_env(n), f)
    }

    /// [`run`](Self::run) with an explicit sanitizer attachment (`None`
    /// disables; one branch per hooked operation). On clean completion
    /// the sanitizer's finalize-time checks run (leaked requests) and
    /// pending reports are flushed to stderr; on a rank panic the
    /// reports collected so far are flushed *before* the original panic
    /// payload is re-raised, so diagnostics are not lost on exactly the
    /// runs that fail.
    pub fn run_with_san<R, F>(n: usize, san: Option<Arc<San>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        Self::run_cfg(n, CommTuning::from_env(), san, f)
    }

    /// [`run_with_san`](Self::run_with_san) with explicit comm-layer
    /// tuning, bypassing the environment entirely. The ranks-sweep
    /// benchmark drives both arms (sharded vs the `with_shards(1)`
    /// baseline layout) through this in one process.
    pub fn run_cfg<R, F>(n: usize, tuning: CommTuning, san: Option<Arc<San>>, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(Comm) -> R + Send + Sync,
    {
        assert!(n >= 1, "need at least one rank");
        if let Some(s) = &san {
            assert_eq!(
                s.nranks(),
                n,
                "sanitizer was built for {} rank(s), universe has {n}",
                s.nranks()
            );
        }
        let world = Arc::new(World::new(n, san.clone(), tuning));
        let f = &f;
        let results: Vec<Option<R>> = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(n);
            for rank in 0..n {
                let world = Arc::clone(&world);
                handles.push(scope.spawn(move || {
                    let comm = Comm::new(rank, n, Arc::clone(&world));
                    match catch_unwind(AssertUnwindSafe(|| f(comm))) {
                        Ok(r) => Some(r),
                        Err(payload) => {
                            // First panic stores its payload; later
                            // (secondary) poison unwinds are dropped.
                            world.poison(payload);
                            None
                        }
                    }
                }));
            }
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread itself must not die"))
                .collect()
        });
        if let Some(payload) = world.take_panic_payload() {
            // Poison path: flush what the sanitizer saw before
            // re-raising — `World::poison` already marked it poisoned,
            // which also disables the finalize-time leak check (peers
            // legitimately abandon in-flight traffic while unwinding).
            if let Some(s) = &san {
                s.flush_to_stderr();
            }
            resume_unwind(payload);
        }
        if let Some(s) = &san {
            s.finalize();
            s.flush_to_stderr();
        }
        results
            .into_iter()
            .map(|r| r.expect("no panic recorded but a rank produced no result"))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comm::POISONED_MSG;
    use std::time::{Duration, Instant};

    #[test]
    fn results_are_in_rank_order() {
        let out = Universe::run(6, |c| c.rank() * 10);
        assert_eq!(out, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn closures_can_borrow_environment() {
        let base = 100usize;
        let out = Universe::run(3, |c| base + c.rank());
        assert_eq!(out, vec![100, 101, 102]);
    }

    #[test]
    fn single_rank_works() {
        let out = Universe::run(1, |c| {
            assert_eq!(c.size(), 1);
            c.barrier();
            "ok"
        });
        assert_eq!(out, vec!["ok"]);
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn rank_panics_propagate() {
        Universe::run(2, |c| {
            if c.rank() == 1 {
                panic!("boom");
            }
        });
    }

    /// The original ISSUE bug: a rank panics while its peers sit in
    /// `barrier()`. Before the poison protocol this deadlocked forever
    /// (std Barrier waits for a rank that will never arrive).
    #[test]
    fn panic_unblocks_peers_stuck_in_barrier() {
        let start = Instant::now();
        let result = std::panic::catch_unwind(|| {
            Universe::run(4, |c| {
                if c.rank() == 2 {
                    panic!("boom");
                }
                c.barrier();
            });
        });
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom", "original payload must survive, not {msg:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "propagation took {:?}",
            start.elapsed()
        );
    }

    /// Same, but peers block in a receive that will never be satisfied.
    /// Before the poison protocol this took the full 60 s RECV_TIMEOUT.
    #[test]
    fn panic_unblocks_peers_stuck_in_recv() {
        let start = Instant::now();
        let result = std::panic::catch_unwind(|| {
            Universe::run(3, |c| {
                if c.rank() == 0 {
                    // Let peers get parked in recv first.
                    std::thread::sleep(Duration::from_millis(50));
                    panic!("boom");
                }
                // Rank 0 never sends: blocks until poisoned.
                c.recv_f32(0, 42);
            });
        });
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "boom", "original payload must survive, not {msg:?}");
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "propagation took {:?}",
            start.elapsed()
        );
    }

    /// Sends into a poisoned world unwind too (a panicking peer means the
    /// job is dead); the secondary message is the poison marker, and the
    /// caller still sees only the original payload.
    #[test]
    fn poisoned_sends_unwind_with_marker() {
        let result = std::panic::catch_unwind(|| {
            Universe::run(2, |c| {
                if c.rank() == 1 {
                    panic!("first failure");
                }
                std::thread::sleep(Duration::from_millis(50));
                loop {
                    c.send_f32(1, 0, &[1.0]);
                }
            });
        });
        let err = result.expect_err("panic must propagate");
        let msg = err.downcast_ref::<&str>().copied().unwrap_or("");
        assert_eq!(msg, "first failure");
        // The marker itself must exist as a distinct message so tooling
        // can tell primary from secondary failures.
        assert!(POISONED_MSG.contains("poisoned"));
    }
}
