//! Per-rank communication statistics.
//!
//! The performance model (`mpix-perf`) consumes these counters to relate
//! observed message counts/volumes to the analytic cost model; tests use
//! them to assert the paper's Table I message counts (6 vs 26 in 3-D).

use std::collections::BTreeMap;

use mpix_trace::MsgRecord;

/// Internal mutable counters (one per rank, behind a lock).
#[derive(Default, Debug, Clone)]
pub(crate) struct StatsInner {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub bytes_received: u64,
    pub per_peer_msgs: BTreeMap<usize, u64>,
    /// When set, every send/receive appends a [`MsgRecord`] to `msg_log`.
    /// Off by default so the counters stay cheap.
    pub log_messages: bool,
    pub msg_log: Vec<MsgRecord>,
}

impl StatsInner {
    pub(crate) fn snapshot(&self, rank: usize) -> CommStats {
        CommStats {
            rank,
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            msgs_received: self.msgs_received,
            bytes_received: self.bytes_received,
            per_peer_msgs: self.per_peer_msgs.clone(),
        }
    }
}

/// An immutable snapshot of one rank's traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    pub rank: usize,
    /// Messages this rank sent.
    pub msgs_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank received.
    pub msgs_received: u64,
    /// Payload bytes this rank received.
    pub bytes_received: u64,
    /// Messages sent per destination rank.
    pub per_peer_msgs: BTreeMap<usize, u64>,
}

impl CommStats {
    /// Number of distinct peers this rank sent to.
    pub fn peer_count(&self) -> usize {
        self.per_peer_msgs.len()
    }
}
