//! Per-rank communication statistics.
//!
//! The performance model (`mpix-perf`) consumes these counters to relate
//! observed message counts/volumes to the analytic cost model; tests use
//! them to assert the paper's Table I message counts (6 vs 26 in 3-D) and
//! the zero-allocation steady-state contract of the persistent halo plans
//! (via [`CommStats::bufs_allocated`]).

use std::collections::BTreeMap;

use mpix_trace::MsgRecord;

/// Internal mutable counters (one per rank, behind a lock).
#[derive(Default, Debug, Clone)]
pub(crate) struct StatsInner {
    pub msgs_sent: u64,
    pub bytes_sent: u64,
    pub msgs_received: u64,
    pub bytes_received: u64,
    /// Heap buffers the comm layer had to allocate (or grow) because the
    /// shared pool could not serve the request: envelope buffers on the
    /// send side, conversion/ownership buffers on the receive side. The
    /// persistent-plan halo path must keep this flat in steady state.
    pub bufs_allocated: u64,
    /// Payload bytes physically copied by the comm layer (the "wire"
    /// copy into the envelope on send, plus the copy into the caller's
    /// buffer on `wait_into`-style receives).
    pub bytes_copied: u64,
    /// Messages sent per destination, indexed by rank (0 = no traffic).
    /// A flat vector so the hot send path pays an index bump, not a map
    /// lookup; the public snapshot converts to a sparse map.
    pub per_peer_msgs: Vec<u64>,
    /// Times a blocking receive (or waitany) actually parked on a
    /// condvar after exhausting its yield budget. Parks are the futex
    /// round-trips the waiter-gated wake optimization exists to avoid,
    /// so parks-per-exchange is the ranks-sweep bench's contention
    /// column.
    pub recv_parks: u64,
    /// Collective calls per `"{op}/{algo}"` key (e.g.
    /// `"allreduce_f32/ring"`), recording which algorithm the
    /// size/rank-count selection actually ran.
    pub collectives: BTreeMap<String, u64>,
    /// When set, every send/receive appends a [`MsgRecord`] to `msg_log`.
    /// Off by default so the counters stay cheap.
    pub log_messages: bool,
    pub msg_log: Vec<MsgRecord>,
}

impl StatsInner {
    /// Count one message sent to `dest`.
    #[inline]
    pub(crate) fn bump_peer(&mut self, dest: usize) {
        if self.per_peer_msgs.len() <= dest {
            self.per_peer_msgs.resize(dest + 1, 0);
        }
        self.per_peer_msgs[dest] += 1;
    }

    pub(crate) fn snapshot(&self, rank: usize) -> CommStats {
        CommStats {
            rank,
            msgs_sent: self.msgs_sent,
            bytes_sent: self.bytes_sent,
            msgs_received: self.msgs_received,
            bytes_received: self.bytes_received,
            bufs_allocated: self.bufs_allocated,
            bytes_copied: self.bytes_copied,
            per_peer_msgs: self
                .per_peer_msgs
                .iter()
                .enumerate()
                .filter(|(_, &c)| c > 0)
                .map(|(d, &c)| (d, c))
                .collect(),
            recv_parks: self.recv_parks,
            collective_algos: self.collectives.clone(),
        }
    }
}

/// An immutable snapshot of one rank's traffic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommStats {
    pub rank: usize,
    /// Messages this rank sent.
    pub msgs_sent: u64,
    /// Payload bytes this rank sent.
    pub bytes_sent: u64,
    /// Messages this rank received.
    pub msgs_received: u64,
    /// Payload bytes this rank received.
    pub bytes_received: u64,
    /// Comm-layer heap buffer allocations attributed to this rank (see
    /// `StatsInner::bufs_allocated`). Zero growth across steady-state
    /// halo exchanges is the persistent-plan contract.
    pub bufs_allocated: u64,
    /// Payload bytes physically copied by the comm layer on behalf of
    /// this rank (wire copy on send + completion copy on typed receive).
    pub bytes_copied: u64,
    /// Messages sent per destination rank.
    pub per_peer_msgs: BTreeMap<usize, u64>,
    /// Times a blocking receive parked on a condvar (futex round-trips
    /// after the yield budget ran out) — the contention signal of the
    /// ranks-sweep benchmark.
    pub recv_parks: u64,
    /// Collective calls per `"{op}/{algo}"` key, exposing which
    /// algorithm (binomial / k-ary / ring) each collective selected so
    /// `mpix-perf` can attribute collective cost.
    pub collective_algos: BTreeMap<String, u64>,
}

impl CommStats {
    /// Number of distinct peers this rank sent to.
    pub fn peer_count(&self) -> usize {
        self.per_peer_msgs.len()
    }
}
