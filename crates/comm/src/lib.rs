//! # mpix-comm
//!
//! An in-process message-passing substrate with MPI semantics.
//!
//! The paper's system generates MPI calls into C code and runs them with
//! Cray MPICH on a cluster. This crate is the substitution documented in
//! `DESIGN.md`: ranks are OS threads inside one process, and the API
//! mirrors the MPI subset the generated code needs:
//!
//! * blocking point-to-point with tag matching ([`Comm::send`],
//!   [`Comm::recv`]),
//! * non-blocking operations returning request objects
//!   ([`Comm::isend`], [`Comm::irecv`], [`RecvRequest::test`],
//!   [`RecvRequest::wait`]) — exactly what the *full* (overlap) pattern
//!   needs to progress communication during computation,
//! * collectives ([`Comm::barrier`], [`Comm::allreduce_f64`],
//!   [`Comm::gather_f32`], [`Comm::bcast_f32`]),
//! * Cartesian topologies ([`CartComm`], [`dims_create`]) including the
//!   26-neighbour (3-D) shifts that the *diagonal* pattern uses,
//! * per-rank traffic statistics ([`CommStats`]) consumed by the
//!   performance model.
//!
//! Message delivery is *eager*: `send`/`isend` copy into the destination
//! mailbox immediately and complete. Receives match `(source, tag)` pairs
//! in arrival order, as MPI does for a fixed source/tag. Matching is
//! O(1): each mailbox keeps one FIFO queue per `(source, tag)` pair.
//!
//! Two additions serve the zero-copy halo plans (`mpix-dmp`):
//!
//! * typed `f32` payloads travel natively (no byte round-trip) through a
//!   shared buffer pool, and
//! * persistent requests ([`Comm::recv_init`] / [`Comm::send_init`], the
//!   `MPI_Recv_init`/`MPI_Send_init` analogue) complete into caller-owned
//!   preallocated buffers, so steady-state exchanges allocate nothing —
//!   a contract the [`CommStats::bufs_allocated`] counter makes testable.
//!
//! A rank panic *poisons* the world: peers blocked in `barrier`/`recv`
//! unwind promptly and [`Universe::run`] re-raises the original payload.
//!
//! ## Example
//!
//! ```
//! use mpix_comm::Universe;
//!
//! let sums = Universe::run(4, |comm| {
//!     // Ring: everyone sends its rank to the right, receives from the left.
//!     let right = (comm.rank() + 1) % comm.size();
//!     let left = (comm.rank() + comm.size() - 1) % comm.size();
//!     comm.send_f32(right, 7, &[comm.rank() as f32]);
//!     let got = comm.recv_f32(left, 7);
//!     got[0] as usize
//! });
//! assert_eq!(sums, vec![3, 0, 1, 2]);
//! ```

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod cart;
pub mod collectives;
pub mod comm;
pub mod stats;
pub mod tuning;
pub mod universe;

pub use cart::{dims_create, CartComm};
pub use collectives::{CollectiveAlgo, ReduceOp};
pub use comm::{Comm, PersistentRecv, PersistentSend, RecvRequest, SendRequest, Tag};
pub use stats::CommStats;
pub use tuning::CommTuning;
pub use universe::Universe;
