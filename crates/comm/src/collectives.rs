//! Topology-aware collectives: binomial, k-ary and ring algorithms with
//! size/rank-count-based selection.
//!
//! The paper's generated code leans on `MPI_Allreduce` (adjoint source
//! terms, norms) and `MPI_Bcast`/`MPI_Gatherv` (model distribution and
//! result assembly); real MPI implementations pick among several
//! algorithms per call based on the communicator size and payload. This
//! module reproduces that structure:
//!
//! * **binomial tree** — the latency-optimal doubling tree, best at
//!   small rank counts (`log2 P` rounds of one message each);
//! * **k-ary tree** (`k = 4`) — shallower than binomial in *rounds a
//!   given rank participates in* (a node talks to `k` children in one
//!   round instead of one child per round), which wins once hundreds of
//!   oversubscribed ranks each pay a scheduling latency per round;
//! * **ring** (reduce-scatter + allgather, allreduce only) — the
//!   bandwidth-optimal algorithm for large payloads: every rank sends
//!   `2·(P-1)/P · n` bytes total instead of the tree's `log2 P · n`.
//!
//! Selection is automatic ([`CollectiveAlgo::select_tree`] /
//! [`CollectiveAlgo::select_allreduce`]) and topology-aware: besides
//! rank count and payload size it consults the host's parallelism,
//! because the ring's bandwidth advantage only exists when neighbouring
//! ranks transfer concurrently — on an oversubscribed single-core host
//! its `2·(P-1)` serialized rounds lose badly to a tree, so the ring is
//! gated on [`RING_MIN_CORES`]. Every collective records
//! the algorithm it ran under `CommStats::collective_algos` (as
//! `"{op}/{algo}"` counts), so `mpix-perf` and the ranks-sweep benchmark
//! can attribute collective cost to the algorithm actually used. The
//! `_with` variants force an algorithm — the equivalence tests drive
//! every algorithm against the binomial oracle through them.
//!
//! All algorithms produce bitwise-identical results for payloads whose
//! reduction is exact (integer-valued floats); for general floats they
//! differ only in association order, as MPI's do.

use crate::comm::{Comm, Tag, RESERVED_TAG_BASE};

/// Which algorithm a collective ran. See the module docs for the
/// trade-offs; [`label`](Self::label) is the stable string used in
/// `CommStats::collective_algos` keys and benchmark tables.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CollectiveAlgo {
    /// Recursive-doubling tree: `log2 P` rounds, one message per round.
    Binomial,
    /// k-ary tree of the given degree: `log_k P` levels, `k` messages
    /// per inner node per direction.
    Kary(usize),
    /// Reduce-scatter + allgather ring: `2·(P-1)` rounds of `n/P`-sized
    /// messages (allreduce only).
    Ring,
}

/// Rank count at and above which tree collectives switch from binomial
/// to k-ary: below this, `log2 P` single-message rounds beat fan-out.
pub const KARY_MIN_RANKS: usize = 16;

/// Fan-out degree of the k-ary tree. Four children per node quarters the
/// number of rounds a rank sits through relative to binomial at P=256
/// while keeping per-node fan-out far below the thundering-herd regime.
pub const KARY_DEGREE: usize = 4;

/// Payload size (bytes) at and above which allreduce switches to the
/// bandwidth-optimal ring. Below it the ring's `2·(P-1)` latency terms
/// dominate the tree's `2·log2 P`.
pub const RING_MIN_BYTES: usize = 16 * 1024;

/// Minimum rank count for the ring: at tiny P the chunking overhead
/// cannot win over one tree round.
pub const RING_MIN_RANKS: usize = 4;

/// Minimum host parallelism for the ring: its `2·(P-1)` rounds only beat
/// a tree when neighbouring ranks genuinely transfer in parallel. On an
/// oversubscribed single-core host every round serializes and the ring's
/// extra messages are pure loss, so auto-selection falls back to trees.
pub const RING_MIN_CORES: usize = 2;

impl CollectiveAlgo {
    /// Stable name used in stats keys and benchmark output.
    pub fn label(&self) -> String {
        match self {
            CollectiveAlgo::Binomial => "binomial".to_string(),
            CollectiveAlgo::Kary(k) => format!("kary{k}"),
            CollectiveAlgo::Ring => "ring".to_string(),
        }
    }

    /// Algorithm for rooted tree collectives (bcast, scalar reduce):
    /// binomial below [`KARY_MIN_RANKS`] ranks, k-ary above.
    pub fn select_tree(ranks: usize) -> CollectiveAlgo {
        if ranks < KARY_MIN_RANKS {
            CollectiveAlgo::Binomial
        } else {
            CollectiveAlgo::Kary(KARY_DEGREE)
        }
    }

    /// Algorithm for vector allreduce: ring for large payloads (the
    /// bandwidth regime), otherwise the tree choice of
    /// [`select_tree`](Self::select_tree). Topology-aware: the ring only
    /// pays off when its `2·(P-1)` chunk transfers actually overlap, so
    /// the selection consults the host's parallelism
    /// ([`select_allreduce_for`](Self::select_allreduce_for) takes it
    /// explicitly for deterministic tests).
    pub fn select_allreduce(ranks: usize, payload_bytes: usize) -> CollectiveAlgo {
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        Self::select_allreduce_for(ranks, payload_bytes, cores)
    }

    /// [`select_allreduce`](Self::select_allreduce) with the core count
    /// as an explicit parameter. The ring moves `2·(P-1)/P · n` bytes
    /// per rank — less than the tree's `log2 P · n` — but spends
    /// `2·(P-1)` serialized rounds doing it. With ranks pinned to real
    /// cores those rounds overlap across the ring and bandwidth wins;
    /// with every rank time-slicing one core the rounds execute back to
    /// back and the per-message overhead of `P·2·(P-1)` small sends
    /// dwarfs any copy savings (measured 4x slower than binomial at
    /// P = 128 on one core). Hence the ring additionally requires the
    /// host to run at least [`RING_MIN_CORES`] workers in parallel.
    pub fn select_allreduce_for(
        ranks: usize,
        payload_bytes: usize,
        cores: usize,
    ) -> CollectiveAlgo {
        if ranks >= RING_MIN_RANKS && payload_bytes >= RING_MIN_BYTES && cores >= RING_MIN_CORES {
            CollectiveAlgo::Ring
        } else {
            Self::select_tree(ranks)
        }
    }
}

/// Reduction operators for [`Comm::allreduce_f64`] /
/// [`Comm::allreduce_f32`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceOp {
    Sum,
    Min,
    Max,
}

impl ReduceOp {
    fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }

    fn apply_f32(self, a: f32, b: f32) -> f32 {
        match self {
            ReduceOp::Sum => a + b,
            ReduceOp::Min => a.min(b),
            ReduceOp::Max => a.max(b),
        }
    }
}

// Collective tag block (all ≥ RESERVED_TAG_BASE, disjoint from user
// tags). Tree up/down phases and the two ring phases get distinct tags
// so back-to-back collectives on the same communicator cannot
// cross-match even when a fast rank races ahead a call.
const TAG_UP: Tag = RESERVED_TAG_BASE + 1;
const TAG_DOWN: Tag = RESERVED_TAG_BASE + 2;
const TAG_GATHER: Tag = RESERVED_TAG_BASE + 3;
const TAG_BCAST: Tag = RESERVED_TAG_BASE + 4;
const TAG_UP32: Tag = RESERVED_TAG_BASE + 5;
const TAG_DOWN32: Tag = RESERVED_TAG_BASE + 6;
const TAG_RING_RS: Tag = RESERVED_TAG_BASE + 7;
const TAG_RING_AG: Tag = RESERVED_TAG_BASE + 8;

/// Count one collective call under its `"{op}/{algo}"` stats key.
fn note_algo(comm: &Comm, op: &str, algo: CollectiveAlgo) {
    let mut s = comm.world.stats[comm.rank].lock().unwrap();
    *s.collectives
        .entry(format!("{op}/{}", algo.label()))
        .or_insert(0) += 1;
}

impl Comm {
    /// All-reduce a single `f64` with the given associative op. The
    /// algorithm is selected by rank count (a scalar payload is never in
    /// the ring's bandwidth regime); force one with
    /// [`allreduce_f64_with`](Self::allreduce_f64_with).
    pub fn allreduce_f64(&self, value: f64, op: ReduceOp) -> f64 {
        self.allreduce_f64_with(value, op, CollectiveAlgo::select_tree(self.size))
    }

    /// [`allreduce_f64`](Self::allreduce_f64) under a caller-chosen
    /// algorithm. `Ring` is a vector algorithm and is rejected here.
    pub fn allreduce_f64_with(&self, value: f64, op: ReduceOp, algo: CollectiveAlgo) -> f64 {
        note_algo(self, "allreduce_f64", algo);
        if self.size == 1 {
            return value;
        }
        match algo {
            CollectiveAlgo::Binomial => self.allreduce_f64_binomial(value, op),
            CollectiveAlgo::Kary(k) => self.allreduce_f64_kary(value, op, k),
            CollectiveAlgo::Ring => {
                panic!("ring allreduce needs a vector payload; use allreduce_f32")
            }
        }
    }

    /// Binomial-tree scalar allreduce (O(log P) rounds: reduce to rank
    /// 0, broadcast back) — the oracle the other algorithms are tested
    /// against.
    fn allreduce_f64_binomial(&self, value: f64, op: ReduceOp) -> f64 {
        let size = self.size;
        let vr = self.rank; // tree rooted at rank 0
        let mut acc = value;
        // Reduce up the tree: each node absorbs its children (vr + mask
        // for every mask below its lowest set bit), then reports to its
        // parent (vr - lowest set bit).
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                self.send(vr - mask, TAG_UP, &acc.to_le_bytes());
                break;
            }
            let child = vr + mask;
            if child < size {
                let v = f64::from_le_bytes(self.recv(child, TAG_UP).try_into().unwrap());
                acc = op.apply(acc, v);
            }
            mask <<= 1;
        }
        // Broadcast the result down the same tree.
        if vr != 0 {
            acc = f64::from_le_bytes(self.recv(vr - mask, TAG_DOWN).try_into().unwrap());
        } else {
            while mask < size {
                mask <<= 1;
            }
        }
        let mut m = mask >> 1;
        while m > 0 {
            if vr + m < size {
                self.send(vr + m, TAG_DOWN, &acc.to_le_bytes());
            }
            m >>= 1;
        }
        acc
    }

    /// k-ary-tree scalar allreduce: node `v`'s children are
    /// `v·k+1 ..= v·k+k`, its parent `(v-1)/k`. Children are combined in
    /// increasing rank order so the association order is deterministic.
    fn allreduce_f64_kary(&self, value: f64, op: ReduceOp, k: usize) -> f64 {
        assert!(k >= 2, "k-ary tree needs degree >= 2");
        let size = self.size;
        let vr = self.rank; // tree rooted at rank 0
        let mut acc = value;
        for child in (vr * k + 1)..=(vr * k + k) {
            if child < size {
                let v = f64::from_le_bytes(self.recv(child, TAG_UP).try_into().unwrap());
                acc = op.apply(acc, v);
            }
        }
        if vr != 0 {
            let parent = (vr - 1) / k;
            self.send(parent, TAG_UP, &acc.to_le_bytes());
            acc = f64::from_le_bytes(self.recv(parent, TAG_DOWN).try_into().unwrap());
        }
        for child in (vr * k + 1)..=(vr * k + k) {
            if child < size {
                self.send(child, TAG_DOWN, &acc.to_le_bytes());
            }
        }
        acc
    }

    /// Element-wise all-reduce of an `f32` vector (all ranks pass
    /// equal-length slices; all receive the reduced vector). Selects the
    /// ring for large payloads (bandwidth regime) and a tree otherwise —
    /// the MPI-style size-based dispatch the ranks-sweep bench measures.
    pub fn allreduce_f32(&self, data: &[f32], op: ReduceOp) -> Vec<f32> {
        let algo = CollectiveAlgo::select_allreduce(self.size, data.len() * 4);
        self.allreduce_f32_with(data, op, algo)
    }

    /// [`allreduce_f32`](Self::allreduce_f32) under a caller-chosen
    /// algorithm.
    pub fn allreduce_f32_with(&self, data: &[f32], op: ReduceOp, algo: CollectiveAlgo) -> Vec<f32> {
        note_algo(self, "allreduce_f32", algo);
        if self.size == 1 {
            return data.to_vec();
        }
        match algo {
            CollectiveAlgo::Binomial => self.allreduce_f32_binomial(data, op),
            CollectiveAlgo::Kary(k) => self.allreduce_f32_kary(data, op, k),
            CollectiveAlgo::Ring => self.allreduce_f32_ring(data, op),
        }
    }

    /// Binomial-tree vector allreduce (the vector twin of the scalar
    /// oracle).
    fn allreduce_f32_binomial(&self, data: &[f32], op: ReduceOp) -> Vec<f32> {
        let size = self.size;
        let vr = self.rank;
        let mut acc = data.to_vec();
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                self.send_f32(vr - mask, TAG_UP32, &acc);
                break;
            }
            let child = vr + mask;
            if child < size {
                let v = self.recv_f32(child, TAG_UP32);
                combine(&mut acc, &v, op);
            }
            mask <<= 1;
        }
        if vr != 0 {
            acc = self.recv_f32(vr - mask, TAG_DOWN32);
        } else {
            while mask < size {
                mask <<= 1;
            }
        }
        let mut m = mask >> 1;
        while m > 0 {
            if vr + m < size {
                self.send_f32(vr + m, TAG_DOWN32, &acc);
            }
            m >>= 1;
        }
        acc
    }

    /// k-ary-tree vector allreduce (children combined in increasing rank
    /// order, like the scalar variant).
    fn allreduce_f32_kary(&self, data: &[f32], op: ReduceOp, k: usize) -> Vec<f32> {
        assert!(k >= 2, "k-ary tree needs degree >= 2");
        let size = self.size;
        let vr = self.rank;
        let mut acc = data.to_vec();
        for child in (vr * k + 1)..=(vr * k + k) {
            if child < size {
                let v = self.recv_f32(child, TAG_UP32);
                combine(&mut acc, &v, op);
            }
        }
        if vr != 0 {
            let parent = (vr - 1) / k;
            self.send_f32(parent, TAG_UP32, &acc);
            acc = self.recv_f32(parent, TAG_DOWN32);
        }
        for child in (vr * k + 1)..=(vr * k + k) {
            if child < size {
                self.send_f32(child, TAG_DOWN32, &acc);
            }
        }
        acc
    }

    /// Ring allreduce: reduce-scatter then allgather, `2·(P-1)` rounds
    /// of `≈n/P`-element messages. Eager sends make the send-then-recv
    /// ring deadlock-free, and per-`(src, tag)` FIFO lets each phase
    /// reuse one tag: round `s+1`'s message from the left neighbour
    /// cannot overtake round `s`'s.
    fn allreduce_f32_ring(&self, data: &[f32], op: ReduceOp) -> Vec<f32> {
        let p = self.size;
        let r = self.rank;
        let mut acc = data.to_vec();
        let len = acc.len();
        // Chunk i spans bound(i)..bound(i+1); uneven divisions (and even
        // empty chunks when len < P) fall out naturally.
        let bound = |i: usize| i * len / p;
        let right = (r + 1) % p;
        let left = (r + p - 1) % p;
        // Reduce-scatter: after step s, our chunk (r-s-1) mod P holds the
        // partial sum of s+2 ranks; after P-1 steps, chunk (r+1) mod P is
        // fully reduced on us.
        for s in 0..p - 1 {
            let send_c = (r + p - s) % p;
            let recv_c = (r + p - s - 1) % p;
            self.isend_f32(right, TAG_RING_RS, &acc[bound(send_c)..bound(send_c + 1)]);
            let v = self.recv_f32(left, TAG_RING_RS);
            combine(&mut acc[bound(recv_c)..bound(recv_c + 1)], &v, op);
        }
        // Allgather: circulate the completed chunks.
        for s in 0..p - 1 {
            let send_c = (r + 1 + p - s) % p;
            let recv_c = (r + p - s) % p;
            self.isend_f32(right, TAG_RING_AG, &acc[bound(send_c)..bound(send_c + 1)]);
            let v = self.recv_f32(left, TAG_RING_AG);
            acc[bound(recv_c)..bound(recv_c + 1)].copy_from_slice(&v);
        }
        acc
    }

    /// Broadcast a `f32` buffer from `root` to everyone; returns the
    /// data on all ranks. Tree algorithm selected by rank count.
    pub fn bcast_f32(&self, root: usize, data: &[f32]) -> Vec<f32> {
        self.bcast_f32_with(root, data, CollectiveAlgo::select_tree(self.size))
    }

    /// [`bcast_f32`](Self::bcast_f32) under a caller-chosen algorithm
    /// (`Ring` is allreduce-only and rejected here).
    pub fn bcast_f32_with(&self, root: usize, data: &[f32], algo: CollectiveAlgo) -> Vec<f32> {
        note_algo(self, "bcast_f32", algo);
        if self.size == 1 {
            return data.to_vec();
        }
        match algo {
            CollectiveAlgo::Binomial => self.bcast_f32_binomial(root, data),
            CollectiveAlgo::Kary(k) => self.bcast_f32_kary(root, data, k),
            CollectiveAlgo::Ring => panic!("ring is an allreduce algorithm; bcast uses trees"),
        }
    }

    /// Binomial-tree broadcast (O(log P) rounds).
    fn bcast_f32_binomial(&self, root: usize, data: &[f32]) -> Vec<f32> {
        let size = self.size;
        let vr = (self.rank + size - root) % size;
        let buf: Vec<f32>;
        let mut mask = 1usize;
        if vr == 0 {
            buf = data.to_vec();
            while mask < size {
                mask <<= 1;
            }
        } else {
            // Receive from the parent (clear our lowest set bit).
            while vr & mask == 0 {
                mask <<= 1;
            }
            let parent = (vr - mask + root) % size;
            buf = self.recv_f32(parent, TAG_BCAST);
        }
        let mut m = mask >> 1;
        while m > 0 {
            if vr + m < size {
                self.send_f32((vr + m + root) % size, TAG_BCAST, &buf);
            }
            m >>= 1;
        }
        buf
    }

    /// k-ary-tree broadcast: each inner node feeds `k` children, so a
    /// rank sits through `log_k P` levels instead of `log2 P` rounds.
    fn bcast_f32_kary(&self, root: usize, data: &[f32], k: usize) -> Vec<f32> {
        assert!(k >= 2, "k-ary tree needs degree >= 2");
        let size = self.size;
        let vr = (self.rank + size - root) % size;
        let abs = |v: usize| (v + root) % size;
        let buf = if vr == 0 {
            data.to_vec()
        } else {
            self.recv_f32(abs((vr - 1) / k), TAG_BCAST)
        };
        for child in (vr * k + 1)..=(vr * k + k) {
            if child < size {
                self.send_f32(abs(child), TAG_BCAST, &buf);
            }
        }
        buf
    }

    /// Gather variable-length `f32` buffers on `root` over a binomial
    /// tree; other ranks get `None`. Subtree contributions travel as one
    /// merged message per tree edge (O(log P) rounds). Binomial-only:
    /// the merged-subtree payload already amortizes the tree's latency,
    /// and result assembly is not on any hot path.
    pub fn gather_f32(&self, root: usize, data: &[f32]) -> Option<Vec<Vec<f32>>> {
        note_algo(self, "gather_f32", CollectiveAlgo::Binomial);
        let size = self.size;
        let vr = (self.rank + size - root) % size;
        // (original rank, values) contributions accumulated from our
        // subtree; serialized as [count, (rank, len, values…)…].
        let mut parts: Vec<(usize, Vec<f32>)> = vec![(self.rank, data.to_vec())];
        let mut mask = 1usize;
        while mask < size {
            if vr & mask != 0 {
                let parent = (vr - mask + root) % size;
                let payload_len: usize = 1 + parts.iter().map(|(_, v)| 2 + v.len()).sum::<usize>();
                let mut buf = Vec::with_capacity(payload_len);
                buf.push(parts.len() as f32);
                for (r, vals) in &parts {
                    buf.push(*r as f32);
                    buf.push(vals.len() as f32);
                    buf.extend_from_slice(vals);
                }
                self.send_f32(parent, TAG_GATHER, &buf);
                break;
            }
            let child = vr + mask;
            if child < size {
                let buf = self.recv_f32((child + root) % size, TAG_GATHER);
                let n = buf[0] as usize;
                let mut i = 1;
                for _ in 0..n {
                    let r = buf[i] as usize;
                    let len = buf[i + 1] as usize;
                    i += 2;
                    parts.push((r, buf[i..i + len].to_vec()));
                    i += len;
                }
            }
            mask <<= 1;
        }
        if self.rank == root {
            let mut out = vec![Vec::new(); size];
            for (r, vals) in parts {
                out[r] = vals;
            }
            Some(out)
        } else {
            None
        }
    }
}

/// `acc[i] = op(acc[i], v[i])` — the element-wise reduction step shared
/// by every vector algorithm.
fn combine(acc: &mut [f32], v: &[f32], op: ReduceOp) {
    assert_eq!(acc.len(), v.len(), "allreduce payload lengths must match");
    for (a, b) in acc.iter_mut().zip(v) {
        *a = op.apply_f32(*a, *b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn allreduce_sum_min_max() {
        let out = Universe::run(5, |c| {
            let v = c.rank() as f64 + 1.0;
            (
                c.allreduce_f64(v, ReduceOp::Sum),
                c.allreduce_f64(v, ReduceOp::Min),
                c.allreduce_f64(v, ReduceOp::Max),
            )
        });
        for (s, mn, mx) in out {
            assert_eq!(s, 15.0);
            assert_eq!(mn, 1.0);
            assert_eq!(mx, 5.0);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = Universe::run(4, |c| c.gather_f32(0, &[c.rank() as f32; 2]));
        assert!(out[1].is_none());
        let g = out[0].as_ref().unwrap();
        for (r, buf) in g.iter().enumerate() {
            assert_eq!(buf, &vec![r as f32; 2]);
        }
    }

    #[test]
    fn gather_supports_nonzero_root_and_uneven_lengths() {
        let out = Universe::run(5, |c| {
            let data: Vec<f32> = (0..c.rank()).map(|i| i as f32).collect();
            c.gather_f32(3, &data)
        });
        for (r, o) in out.iter().enumerate() {
            if r == 3 {
                let g = o.as_ref().unwrap();
                for (src, buf) in g.iter().enumerate() {
                    let want: Vec<f32> = (0..src).map(|i| i as f32).collect();
                    assert_eq!(buf, &want, "root view of rank {src}");
                }
            } else {
                assert!(o.is_none());
            }
        }
    }

    #[test]
    fn bcast_reaches_everyone() {
        let out = Universe::run(3, |c| c.bcast_f32(1, &[9.0, 8.0]));
        for v in out {
            assert_eq!(v, vec![9.0, 8.0]);
        }
    }

    #[test]
    fn selection_picks_documented_algorithms() {
        assert_eq!(CollectiveAlgo::select_tree(8), CollectiveAlgo::Binomial);
        assert_eq!(
            CollectiveAlgo::select_tree(KARY_MIN_RANKS),
            CollectiveAlgo::Kary(KARY_DEGREE)
        );
        // Core count pinned so the test is deterministic on any host.
        assert_eq!(
            CollectiveAlgo::select_allreduce_for(8, 64, 8),
            CollectiveAlgo::Binomial
        );
        assert_eq!(
            CollectiveAlgo::select_allreduce_for(64, 64, 8),
            CollectiveAlgo::Kary(KARY_DEGREE)
        );
        assert_eq!(
            CollectiveAlgo::select_allreduce_for(64, RING_MIN_BYTES, 8),
            CollectiveAlgo::Ring
        );
        // Tiny communicators never ring: chunking can't amortize.
        assert_eq!(
            CollectiveAlgo::select_allreduce_for(2, RING_MIN_BYTES, 8),
            CollectiveAlgo::Binomial
        );
        // Oversubscribed single-core hosts never ring either: the
        // 2·(P-1) rounds serialize and the tree wins on message count.
        assert_eq!(
            CollectiveAlgo::select_allreduce_for(64, RING_MIN_BYTES, 1),
            CollectiveAlgo::Kary(KARY_DEGREE)
        );
        // The public entry point agrees with the explicit-core variant
        // for whatever this host reports.
        let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
        assert_eq!(
            CollectiveAlgo::select_allreduce(64, RING_MIN_BYTES),
            CollectiveAlgo::select_allreduce_for(64, RING_MIN_BYTES, cores)
        );
    }

    #[test]
    fn collective_stats_record_selected_algorithm() {
        let out = Universe::run(3, |c| {
            c.allreduce_f64(1.0, ReduceOp::Sum);
            c.bcast_f32(0, &[1.0]);
            c.stats()
        });
        for s in out {
            assert_eq!(s.collective_algos.get("allreduce_f64/binomial"), Some(&1));
            assert_eq!(s.collective_algos.get("bcast_f32/binomial"), Some(&1));
        }
    }
}
