//! Cartesian process topologies.
//!
//! The paper (§III a) partitions the grid with MPI's Cartesian topology
//! abstraction; users may override the default factorization with
//! `Grid(..., topology=(…))`. [`dims_create`] reproduces
//! `MPI_Dims_create`'s balanced factorization, and [`CartComm`] provides
//! coordinates and neighbour lookup — including the diagonal neighbours
//! (8 in 2-D, 26 in 3-D) that the *diagonal* and *full* exchange patterns
//! message with.

use crate::comm::Comm;

/// Balanced factorization of `nranks` into `ndims` factors, mirroring
/// `MPI_Dims_create`: factors are as close together as possible and
/// returned in non-increasing order.
pub fn dims_create(nranks: usize, ndims: usize) -> Vec<usize> {
    assert!(nranks >= 1 && ndims >= 1);
    let mut dims = vec![1usize; ndims];
    // Distribute prime factors largest-first onto the currently smallest
    // dimension.
    let mut factors = prime_factors(nranks);
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let smallest = dims
            .iter()
            .enumerate()
            .min_by_key(|(_, &v)| v)
            .map(|(i, _)| i)
            .unwrap();
        dims[smallest] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut d = 2;
    while d * d <= n {
        while n % d == 0 {
            out.push(d);
            n /= d;
        }
        d += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

/// A communicator with Cartesian structure (non-periodic, as the paper's
/// wave-propagation domains are bounded).
pub struct CartComm {
    comm: Comm,
    dims: Vec<usize>,
    coords: Vec<usize>,
}

impl CartComm {
    /// Attach a Cartesian topology to a communicator. `dims` must
    /// multiply to `comm.size()`.
    pub fn new(comm: Comm, dims: &[usize]) -> CartComm {
        let prod: usize = dims.iter().product();
        assert_eq!(
            prod,
            comm.size(),
            "topology {:?} does not cover {} ranks",
            dims,
            comm.size()
        );
        let coords = Self::coords_of(dims, comm.rank());
        CartComm {
            comm,
            dims: dims.to_vec(),
            coords,
        }
    }

    /// Attach the default (`dims_create`) topology.
    pub fn with_default_topology(comm: Comm, ndims: usize) -> CartComm {
        let dims = dims_create(comm.size(), ndims);
        CartComm::new(comm, &dims)
    }

    /// The underlying point-to-point communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    pub fn rank(&self) -> usize {
        self.comm.rank()
    }
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The process grid shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// This rank's Cartesian coordinates.
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }

    /// Row-major coordinates of an arbitrary rank.
    pub fn coords_of(dims: &[usize], rank: usize) -> Vec<usize> {
        let mut coords = vec![0; dims.len()];
        let mut r = rank;
        for d in (0..dims.len()).rev() {
            coords[d] = r % dims[d];
            r /= dims[d];
        }
        coords
    }

    /// Row-major rank of Cartesian coordinates.
    pub fn rank_of(dims: &[usize], coords: &[usize]) -> usize {
        let mut rank = 0;
        for d in 0..dims.len() {
            debug_assert!(coords[d] < dims[d]);
            rank = rank * dims[d] + coords[d];
        }
        rank
    }

    /// Neighbour rank at relative Cartesian displacement `disp`
    /// (entries in `{-1, 0, 1}` typically). `None` when the displacement
    /// leaves the process grid (MPI_PROC_NULL: the physical domain
    /// boundary).
    pub fn neighbor(&self, disp: &[i32]) -> Option<usize> {
        assert_eq!(disp.len(), self.dims.len());
        let mut coords = Vec::with_capacity(self.dims.len());
        for d in 0..self.dims.len() {
            let c = self.coords[d] as i64 + disp[d] as i64;
            if c < 0 || c >= self.dims[d] as i64 {
                return None;
            }
            coords.push(c as usize);
        }
        Some(Self::rank_of(&self.dims, &coords))
    }

    /// The 2·ndim face neighbours (the *basic* pattern's peers),
    /// as `(displacement, rank)` pairs; boundary directions omitted.
    pub fn face_neighbors(&self) -> Vec<(Vec<i32>, usize)> {
        let nd = self.dims.len();
        let mut out = Vec::with_capacity(2 * nd);
        for d in 0..nd {
            for s in [-1i32, 1] {
                let mut disp = vec![0i32; nd];
                disp[d] = s;
                if let Some(r) = self.neighbor(&disp) {
                    out.push((disp, r));
                }
            }
        }
        out
    }

    /// All `3^ndim - 1` neighbours including diagonals (the *diagonal*
    /// and *full* patterns' peers); boundary directions omitted.
    pub fn all_neighbors(&self) -> Vec<(Vec<i32>, usize)> {
        let nd = self.dims.len();
        let mut out = Vec::new();
        let total = 3usize.pow(nd as u32);
        for code in 0..total {
            let mut c = code;
            let mut disp = vec![0i32; nd];
            for d in (0..nd).rev() {
                disp[d] = (c % 3) as i32 - 1;
                c /= 3;
            }
            if disp.iter().all(|&x| x == 0) {
                continue;
            }
            if let Some(r) = self.neighbor(&disp) {
                out.push((disp, r));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::universe::Universe;

    #[test]
    fn dims_create_is_balanced() {
        assert_eq!(dims_create(16, 3), vec![4, 2, 2]);
        assert_eq!(dims_create(8, 3), vec![2, 2, 2]);
        assert_eq!(dims_create(64, 3), vec![4, 4, 4]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(7, 2), vec![7, 1]);
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
    }

    #[test]
    fn dims_create_covers_all_ranks() {
        for n in 1..=128 {
            for nd in 1..=3 {
                let d = dims_create(n, nd);
                assert_eq!(d.iter().product::<usize>(), n, "n={n} nd={nd}");
                assert_eq!(d.len(), nd);
            }
        }
    }

    #[test]
    fn coords_rank_roundtrip() {
        let dims = vec![4, 2, 2];
        for r in 0..16 {
            let c = CartComm::coords_of(&dims, r);
            assert_eq!(CartComm::rank_of(&dims, &c), r);
        }
    }

    #[test]
    fn face_neighbor_counts_interior_and_corner() {
        // 4x2x2 topology of Fig. 2a.
        let out = Universe::run(16, |c| {
            let cart = CartComm::new(c, &[4, 2, 2]);
            (
                cart.coords().to_vec(),
                cart.face_neighbors().len(),
                cart.all_neighbors().len(),
            )
        });
        for (coords, faces, all) in out {
            // Corner rank (0,0,0): 3 face neighbours, 7 total.
            if coords == vec![0, 0, 0] {
                assert_eq!(faces, 3);
                assert_eq!(all, 7);
            }
            // Interior in x only (y,z are size-2 so no interior there).
            if coords == vec![1, 0, 0] {
                assert_eq!(faces, 4);
            }
        }
    }

    #[test]
    fn interior_rank_has_26_neighbors_in_3d() {
        let out = Universe::run(27, |c| {
            let cart = CartComm::new(c, &[3, 3, 3]);
            (
                cart.coords().to_vec(),
                cart.all_neighbors().len(),
                cart.face_neighbors().len(),
            )
        });
        for (coords, all, faces) in out {
            if coords == vec![1, 1, 1] {
                assert_eq!(all, 26, "paper Table I: 26 messages in 3D");
                assert_eq!(faces, 6, "paper Table I: 6 messages in 3D basic");
            }
        }
    }

    #[test]
    fn neighbor_is_symmetric() {
        let out = Universe::run(8, |c| {
            let cart = CartComm::with_default_topology(c, 3);
            let mut pairs = Vec::new();
            for (disp, r) in cart.all_neighbors() {
                pairs.push((cart.rank(), disp, r));
            }
            pairs
        });
        // For each (a -> b at disp), b must see (b -> a at -disp).
        let all: Vec<_> = out.into_iter().flatten().collect();
        for (a, disp, b) in &all {
            let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
            assert!(
                all.iter().any(|(x, d, y)| x == b && y == a && *d == inv),
                "asymmetric neighbour {a}->{b}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn topology_must_cover_ranks() {
        Universe::run(4, |c| {
            CartComm::new(c, &[3, 2]);
        });
    }
}
