//! Runtime-tunable knobs for the communication substrate.
//!
//! Eight ranks in CI and 512 oversubscribed ranks on a laptop want very
//! different waiting behavior, so the former compile-time constants
//! (`RECV_TIMEOUT`, the yield-before-park spin count) and the mailbox
//! shard count are configurable per [`crate::Universe`] run:
//!
//! | env var               | default | meaning                                   |
//! |-----------------------|---------|-------------------------------------------|
//! | `MPIX_COMM_SHARDS`    | 16      | mailbox shards per rank (rounded up to a power of two; `1` = the unsharded single-lock layout) |
//! | `MPIX_SPIN_YIELDS`    | 32      | sched-yields a blocked receive donates before parking on a futex |
//! | `MPIX_RECV_TIMEOUT_MS`| 60000   | blocking-receive deadlock timeout         |
//!
//! The environment is read once per world (`Universe::run` →
//! [`CommTuning::from_env`]), so benchmarks can vary the knobs between
//! runs inside one process; [`crate::Universe::run_cfg`] takes an
//! explicit [`CommTuning`] for callers that want no env coupling at all.

use std::time::Duration;

/// Tunables fixed for the lifetime of one world. See the module docs for
/// the corresponding environment variables.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommTuning {
    /// Mailbox shards per rank. Always a power of two; `1` collapses to
    /// the pre-shard layout (one lock per mailbox, one global buffer
    /// pool) and is the honest baseline arm of the ranks-sweep bench.
    pub mailbox_shards: usize,
    /// How many times a blocked receive yields the core before parking
    /// on the condvar. On oversubscribed hosts the matching send is
    /// usually one scheduler handoff away, and a yield is far cheaper
    /// than a futex park/wake round-trip; `0` parks immediately (best
    /// when hundreds of ranks share a few cores and yield-storms would
    /// burn the timeslice).
    pub spin_yields: usize,
    /// How long a blocking receive waits before declaring deadlock.
    /// Generous for slow CI machines while still failing fast on real
    /// bugs.
    pub recv_timeout: Duration,
}

impl Default for CommTuning {
    fn default() -> CommTuning {
        CommTuning {
            mailbox_shards: 16,
            spin_yields: 32,
            recv_timeout: Duration::from_secs(60),
        }
    }
}

impl CommTuning {
    /// Defaults overridden by `MPIX_COMM_SHARDS`, `MPIX_SPIN_YIELDS` and
    /// `MPIX_RECV_TIMEOUT_MS`. A malformed value panics — silently
    /// ignoring a typo'd job script is worse than failing it.
    pub fn from_env() -> CommTuning {
        let mut t = CommTuning::default();
        if let Some(v) = read_usize("MPIX_COMM_SHARDS") {
            assert!(
                (1..=1024).contains(&v),
                "MPIX_COMM_SHARDS={v}: expected 1..=1024"
            );
            t.mailbox_shards = v.next_power_of_two();
        }
        if let Some(v) = read_usize("MPIX_SPIN_YIELDS") {
            assert!(v <= 1 << 20, "MPIX_SPIN_YIELDS={v}: unreasonably large");
            t.spin_yields = v;
        }
        if let Some(v) = read_usize("MPIX_RECV_TIMEOUT_MS") {
            assert!(v >= 1, "MPIX_RECV_TIMEOUT_MS must be >= 1");
            t.recv_timeout = Duration::from_millis(v as u64);
        }
        t
    }

    /// Builder-style shard-count override (rounded up to a power of two).
    pub fn with_shards(mut self, shards: usize) -> CommTuning {
        assert!((1..=1024).contains(&shards), "shards out of range");
        self.mailbox_shards = shards.next_power_of_two();
        self
    }

    /// Builder-style spin-count override.
    pub fn with_spin_yields(mut self, yields: usize) -> CommTuning {
        self.spin_yields = yields;
        self
    }

    /// Builder-style receive-timeout override.
    pub fn with_recv_timeout(mut self, timeout: Duration) -> CommTuning {
        self.recv_timeout = timeout;
        self
    }
}

fn read_usize(name: &str) -> Option<usize> {
    match std::env::var(name) {
        Ok(v) => Some(
            v.parse()
                .unwrap_or_else(|_| panic!("{name}={v:?}: expected an unsigned integer")),
        ),
        Err(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_documented_values() {
        let t = CommTuning::default();
        assert_eq!(t.mailbox_shards, 16);
        assert_eq!(t.spin_yields, 32);
        assert_eq!(t.recv_timeout, Duration::from_secs(60));
    }

    #[test]
    fn shard_counts_round_up_to_powers_of_two() {
        assert_eq!(CommTuning::default().with_shards(1).mailbox_shards, 1);
        assert_eq!(CommTuning::default().with_shards(3).mailbox_shards, 4);
        assert_eq!(CommTuning::default().with_shards(16).mailbox_shards, 16);
        assert_eq!(CommTuning::default().with_shards(100).mailbox_shards, 128);
    }
}
