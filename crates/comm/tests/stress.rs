//! Stress and ordering tests for the message substrate: many ranks, many
//! tags, interleaved nonblocking traffic, collectives under contention.

use mpix_comm::{comm::ReduceOp, CartComm, CollectiveAlgo, CommTuning, Universe};
use proptest::prelude::*;
use rand::{rngs::StdRng, Rng, SeedableRng};

#[test]
fn message_storm_all_to_all_is_delivered_exactly_once() {
    // Every rank sends `per_pair` messages to every other rank with
    // payloads encoding (src, seq); receivers verify count and order.
    let n = 6;
    let per_pair = 25;
    Universe::run(n, |c| {
        let me = c.rank();
        for dst in 0..n {
            if dst == me {
                continue;
            }
            for seq in 0..per_pair {
                c.isend_f32(dst, 7, &[me as f32, seq as f32]);
            }
        }
        for src in 0..n {
            if src == me {
                continue;
            }
            for seq in 0..per_pair {
                let msg = c.recv_f32(src, 7);
                assert_eq!(msg[0] as usize, src);
                assert_eq!(msg[1] as usize, seq, "order violated from {src}");
            }
        }
    });
}

#[test]
fn interleaved_tags_do_not_cross_match() {
    Universe::run(4, |c| {
        let me = c.rank();
        let peer = me ^ 1; // pairs (0,1), (2,3)
                           // Send on 8 tags in a scrambled order.
        let order = [5u32, 2, 7, 0, 3, 6, 1, 4];
        for &t in &order {
            c.send_f32(peer, t, &[t as f32 * 10.0 + me as f32]);
        }
        // Receive in ascending tag order.
        for t in 0..8u32 {
            let v = c.recv_f32(peer, t);
            assert_eq!(v[0], t as f32 * 10.0 + peer as f32);
        }
    });
}

#[test]
fn pending_irecvs_complete_in_any_poll_order() {
    Universe::run(2, |c| {
        if c.rank() == 0 {
            for t in 0..16u32 {
                c.send_f32(1, t, &[t as f32]);
            }
        } else {
            let mut reqs: Vec<_> = (0..16u32).map(|t| c.irecv(0, t)).collect();
            // Poll in reverse until all complete.
            let mut done = [false; 16];
            let mut spins = 0u64;
            while done.iter().any(|d| !d) {
                for (i, r) in reqs.iter_mut().enumerate().rev() {
                    if !done[i] {
                        if let Some(data) = r.try_take() {
                            let v = mpix_comm::comm::bytes_to_f32(&data);
                            assert_eq!(v[0], i as f32);
                            done[i] = true;
                        }
                    }
                }
                spins += 1;
                assert!(spins < 10_000_000);
            }
        }
    });
}

#[test]
fn collectives_interleave_with_p2p() {
    let out = Universe::run(5, |c| {
        let me = c.rank();
        // P2P ring traffic around a reduction.
        let right = (me + 1) % 5;
        let left = (me + 4) % 5;
        c.isend_f32(right, 99, &[me as f32]);
        let sum = c.allreduce_f64(me as f64, ReduceOp::Sum);
        let got = c.recv_f32(left, 99);
        c.barrier();
        (sum, got[0] as usize)
    });
    for (r, (sum, from)) in out.iter().enumerate() {
        assert_eq!(*sum, 10.0);
        assert_eq!(*from, (r + 4) % 5);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]
    #[test]
    fn prop_random_traffic_conserves_payload_sum(seed in 0u64..1000) {
        // Random sends between random pairs; total payload received must
        // equal total sent (per receiver bookkeeping via gather).
        let n = 4usize;
        let plan: Vec<(usize, usize, f32)> = {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..40)
                .map(|_| {
                    let s = rng.gen_range(0..n);
                    let mut d = rng.gen_range(0..n - 1);
                    if d >= s { d += 1; }
                    (s, d, rng.gen_range(-8i32..8) as f32)
                })
                .collect()
        };
        let plan_ref = &plan;
        let sums = Universe::run(n, move |c| {
            let me = c.rank();
            for (i, &(s, d, v)) in plan_ref.iter().enumerate() {
                if s == me {
                    c.isend_f32(d, i as u32, &[v]);
                }
            }
            let mut acc = 0.0f32;
            for (i, &(_, d, _)) in plan_ref.iter().enumerate() {
                if d == me {
                    let src = plan_ref[i].0;
                    acc += c.recv_f32(src, i as u32)[0];
                }
            }
            acc
        });
        let total_sent: f32 = plan.iter().map(|&(_, _, v)| v).sum();
        let total_recv: f32 = sums.iter().sum();
        prop_assert_eq!(total_sent, total_recv);
    }
}

#[test]
fn many_small_messages_keep_fifo_order_per_src_tag() {
    // The bucketed mailbox must preserve MPI's non-overtaking guarantee:
    // for a fixed (source, tag), messages arrive in send order — even
    // under a storm of tiny messages from many sources on many tags.
    let n = 5;
    let tags = 7u32;
    let per_stream = 200;
    Universe::run(n, |c| {
        let me = c.rank();
        for seq in 0..per_stream {
            for dst in 0..n {
                if dst == me {
                    continue;
                }
                for t in 0..tags {
                    c.isend_f32(dst, t, &[me as f32, t as f32, seq as f32]);
                }
            }
        }
        // Drain streams in a scrambled (src, tag) order; each stream must
        // still be internally FIFO.
        for t in (0..tags).rev() {
            for src in 0..n {
                if src == me {
                    continue;
                }
                for seq in 0..per_stream {
                    let v = c.recv_f32(src, t);
                    assert_eq!(v, vec![src as f32, t as f32, seq as f32]);
                }
            }
        }
    });
}

/// Tree collectives must match the old serial-through-rank-0 results.
/// Integer-valued payloads make the sum exact regardless of the
/// reduction tree's association order.
#[test]
fn tree_collectives_match_serial_reference() {
    for p in [2usize, 3, 5, 8] {
        let out = Universe::run(p, |c| {
            let me = c.rank();
            let v = (me * 3 + 1) as f64;
            let sum = c.allreduce_f64(v, ReduceOp::Sum);
            let min = c.allreduce_f64(v, ReduceOp::Min);
            let max = c.allreduce_f64(v, ReduceOp::Max);
            let bc = c.bcast_f32(p - 1, &[me as f32 + 0.5]);
            let data: Vec<f32> = (0..me + 1).map(|i| (me * 10 + i) as f32).collect();
            let gathered = c.gather_f32(0, &data);
            (sum, min, max, bc, gathered)
        });
        // Serial references.
        let want_sum: f64 = (0..p).map(|r| (r * 3 + 1) as f64).sum();
        for (r, (sum, min, max, bc, gathered)) in out.iter().enumerate() {
            assert_eq!(*sum, want_sum, "P={p} rank {r} sum");
            assert_eq!(*min, 1.0, "P={p} rank {r} min");
            assert_eq!(*max, ((p - 1) * 3 + 1) as f64, "P={p} rank {r} max");
            assert_eq!(bc, &vec![(p - 1) as f32 + 0.5], "P={p} rank {r} bcast");
            if r == 0 {
                let g = gathered.as_ref().expect("root gets gather result");
                assert_eq!(g.len(), p);
                for (src, buf) in g.iter().enumerate() {
                    let want: Vec<f32> = (0..src + 1).map(|i| (src * 10 + i) as f32).collect();
                    assert_eq!(buf, &want, "P={p} gather from {src}");
                }
            } else {
                assert!(gathered.is_none(), "P={p} rank {r} must not get gather");
            }
        }
    }
}

/// Every collective algorithm must bitwise-match the binomial-tree
/// oracle at rank counts where the selection actually switches
/// algorithms (16 = k-ary threshold, 33 = odd/non-power-of-two, 64 =
/// deep trees). Integer-valued payloads make every association order
/// exact, so "bitwise" is meaningful.
#[test]
fn collective_algorithms_match_binomial_oracle_at_scale() {
    for p in [16usize, 33, 64] {
        // Heavily oversubscribed: park immediately instead of burning
        // the timeslice in yield loops.
        let tuning = CommTuning::default().with_spin_yields(0);
        let out = Universe::run_cfg(p, tuning, None, |c| {
            let me = c.rank();
            let v = (me * 3 + 1) as f64;
            let oracle_sum = c.allreduce_f64_with(v, ReduceOp::Sum, CollectiveAlgo::Binomial);
            let kary_sum = c.allreduce_f64_with(v, ReduceOp::Sum, CollectiveAlgo::Kary(4));
            let kary_min = c.allreduce_f64_with(v, ReduceOp::Min, CollectiveAlgo::Kary(4));
            let oracle_min = c.allreduce_f64_with(v, ReduceOp::Min, CollectiveAlgo::Binomial);

            // Vector payload long enough that ring chunks are non-trivial
            // and short enough to keep 64 oversubscribed ranks fast.
            let data: Vec<f32> = (0..200).map(|i| ((me + i) % 17) as f32).collect();
            let oracle_vec = c.allreduce_f32_with(&data, ReduceOp::Sum, CollectiveAlgo::Binomial);
            let kary_vec = c.allreduce_f32_with(&data, ReduceOp::Sum, CollectiveAlgo::Kary(4));
            let ring_vec = c.allreduce_f32_with(&data, ReduceOp::Sum, CollectiveAlgo::Ring);
            let ring_max = c.allreduce_f32_with(&data, ReduceOp::Max, CollectiveAlgo::Ring);
            let oracle_max = c.allreduce_f32_with(&data, ReduceOp::Max, CollectiveAlgo::Binomial);

            let root = p / 2; // non-zero root exercises the rotation
            let payload = [me as f32; 3];
            let bc_oracle = c.bcast_f32_with(root, &payload, CollectiveAlgo::Binomial);
            let bc_kary = c.bcast_f32_with(root, &payload, CollectiveAlgo::Kary(4));

            (
                (oracle_sum, kary_sum, oracle_min, kary_min),
                (oracle_vec, kary_vec, ring_vec),
                (oracle_max, ring_max),
                (bc_oracle, bc_kary),
            )
        });
        let want_sum: f64 = (0..p).map(|r| (r * 3 + 1) as f64).sum();
        for (r, (scalar, vec_sum, vec_max, bc)) in out.iter().enumerate() {
            let (oracle_sum, kary_sum, oracle_min, kary_min) = scalar;
            assert_eq!(*oracle_sum, want_sum, "P={p} rank {r} oracle sum");
            assert_eq!(kary_sum, oracle_sum, "P={p} rank {r} kary sum");
            assert_eq!(kary_min, oracle_min, "P={p} rank {r} kary min");
            let (oracle_vec, kary_vec, ring_vec) = vec_sum;
            assert_eq!(kary_vec, oracle_vec, "P={p} rank {r} kary vector sum");
            assert_eq!(ring_vec, oracle_vec, "P={p} rank {r} ring vector sum");
            let (oracle_max, ring_max) = vec_max;
            assert_eq!(ring_max, oracle_max, "P={p} rank {r} ring vector max");
            let (bc_oracle, bc_kary) = bc;
            assert_eq!(bc_oracle, &vec![(p / 2) as f32; 3], "P={p} rank {r} bcast");
            assert_eq!(bc_kary, bc_oracle, "P={p} rank {r} kary bcast");
        }
    }
}

/// The auto-selected algorithms (rank-count + payload-size dispatch)
/// agree with the forced binomial oracle end-to-end at a rank count
/// where k-ary and ring are actually chosen.
#[test]
fn auto_selected_collectives_match_oracle() {
    let p = 24;
    let tuning = CommTuning::default().with_spin_yields(0);
    let out = Universe::run_cfg(p, tuning, None, |c| {
        let me = c.rank();
        // 8192 floats = 32 KiB >= RING_MIN_BYTES: the bandwidth regime
        // (ring on parallel hosts, kary on oversubscribed single cores).
        let big: Vec<f32> = (0..8192).map(|i| ((me * 7 + i) % 13) as f32).collect();
        let auto_big = c.allreduce_f32(&big, ReduceOp::Sum);
        let oracle_big = c.allreduce_f32_with(&big, ReduceOp::Sum, CollectiveAlgo::Binomial);
        let auto_scalar = c.allreduce_f64(me as f64, ReduceOp::Sum);
        let stats = c.stats();
        (auto_big, oracle_big, auto_scalar, stats)
    });
    // The selection is topology-aware (ring only with real parallelism),
    // so compute the promised label for *this* host rather than
    // hardcoding one — the point is that the stats attribute each call
    // to exactly the algorithm the selection reports.
    let big_algo = CollectiveAlgo::select_allreduce(p, 8192 * 4).label();
    for (r, (auto_big, oracle_big, auto_scalar, stats)) in out.iter().enumerate() {
        assert_eq!(auto_big, oracle_big, "rank {r} auto vs oracle");
        assert_eq!(*auto_scalar, (p * (p - 1) / 2) as f64, "rank {r} scalar");
        assert_eq!(
            stats
                .collective_algos
                .get(&format!("allreduce_f32/{big_algo}")),
            Some(&1),
            "rank {r} {big_algo} attribution: {:?}",
            stats.collective_algos
        );
        assert_eq!(
            stats.collective_algos.get("allreduce_f64/kary4"),
            Some(&1),
            "rank {r} kary attribution: {:?}",
            stats.collective_algos
        );
    }
}

/// Many senders × many tags into one receiver draining with the
/// `MPI_Waitany`-style arrival loop: the sharded mailbox must preserve
/// FIFO per (src, tag) even though the streams land on different shards
/// and the drain order is arrival-driven.
#[test]
fn sharded_mailbox_preserves_fifo_under_waitany_drain() {
    let n = 9; // 8 senders, 1 receiver
    let tags = 11u32;
    let per_stream = 40;
    let tuning = CommTuning::default().with_spin_yields(1);
    Universe::run_cfg(n, tuning, None, |c| {
        let me = c.rank();
        if me == 0 {
            // One persistent request per (src, tag) stream, like a halo
            // plan's receive side.
            let recvs: Vec<_> = (1..n)
                .flat_map(|src| (0..tags).map(move |t| (src, t)))
                .map(|(src, t)| (src, t, c.recv_init(src, t)))
                .collect();
            let mut next_seq = vec![0usize; n * tags as usize];
            let total = (n - 1) * tags as usize * per_stream;
            let mut completed = 0usize;
            while completed < total {
                let seq = recvs[0].2.arrival_seq();
                let mut progressed = false;
                for (src, t, r) in &recvs {
                    let stream = src * tags as usize + *t as usize;
                    // Drain everything pending on this stream.
                    while r
                        .try_with(|payload| {
                            assert_eq!(payload[0] as usize, *src, "src stamp");
                            assert_eq!(payload[1], *t as f32, "tag stamp");
                            assert_eq!(
                                payload[2] as usize, next_seq[stream],
                                "FIFO violated on (src={src}, tag={t})"
                            );
                        })
                        .is_some()
                    {
                        next_seq[stream] += 1;
                        completed += 1;
                        progressed = true;
                    }
                }
                if !progressed {
                    recvs[0].2.wait_any_arrival(seq);
                }
            }
        } else {
            let sends: Vec<_> = (0..tags).map(|t| c.send_init(0, t)).collect();
            for seq in 0..per_stream {
                for (t, s) in sends.iter().enumerate() {
                    s.start(&[me as f32, t as f32, seq as f32]);
                }
            }
        }
    });
}

#[test]
fn cart_comm_survives_repeated_exchanges() {
    // Long-running loop mixing face and diagonal neighbours.
    Universe::run(8, |c| {
        let cart = CartComm::new(c, &[2, 2, 2]);
        for step in 0..50u32 {
            for (_, peer) in cart.all_neighbors() {
                cart.comm().isend_f32(peer, step % 8, &[step as f32]);
            }
            for (_, peer) in cart.all_neighbors() {
                let v = cart.comm().recv_f32(peer, step % 8);
                assert_eq!(v[0], step as f32);
            }
        }
    });
}
