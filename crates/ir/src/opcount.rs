//! Compile-time operation and traffic counting.
//!
//! The paper (§IV-C) computes CPU operational intensity at compile time
//! "by examining the code's abstract syntax tree to identify operations
//! and memory accesses and compute the ratio of computation to the
//! amount of memory traffic". This module does exactly that over the
//! Cluster IR: per-point flop counts and a streaming memory-traffic
//! model (each distinct `(field, time buffer)` array is one stream read
//! or written once per point; neighbouring stencil loads hit cache).

use std::collections::BTreeSet;

use mpix_symbolic::FieldId;

use crate::cluster::{Cluster, Stmt};
use crate::iexpr::IExpr;

/// Per-grid-point operation counts for a set of clusters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct OpCounts {
    /// Additions/subtractions per point.
    pub adds: usize,
    /// Multiplications per point.
    pub muls: usize,
    /// Divisions per point (negative powers that survived hoisting).
    pub divs: usize,
    /// Transcendental/elementary function calls per point.
    pub funcs: usize,
    /// Distinct `(field, time offset)` streams read per point.
    pub read_streams: usize,
    /// Distinct `(field, time offset)` streams written per point.
    pub write_streams: usize,
    /// Distinct `(field, time offset)` streams touched at all (union of
    /// reads and writes) — the number of arrays in the working set.
    pub unique_streams: usize,
    /// Total loads appearing per point (before cache reuse).
    pub raw_loads: usize,
}

impl OpCounts {
    /// Total floating-point operations per point (divisions and
    /// elementary functions weighted 1).
    pub fn flops(&self) -> usize {
        self.adds + self.muls + self.divs + self.funcs
    }

    /// Streaming memory traffic per point, in bytes (`f32` arrays, each
    /// stream touched once; writes counted once — write-allocate
    /// traffic is ignored, as in the paper's compile-time model).
    pub fn bytes(&self) -> usize {
        4 * (self.read_streams + self.write_streams)
    }

    /// Operational intensity: flops per byte of streaming traffic.
    pub fn oi(&self) -> f64 {
        self.flops() as f64 / self.bytes() as f64
    }

    /// Number of distinct arrays in the working set (read or written) —
    /// the paper's per-model "fields" count driving communication volume.
    pub fn working_set(&self) -> usize {
        self.unique_streams
    }
}

/// Count operations over all clusters (one "time step" worth of work).
pub fn op_counts(clusters: &[Cluster]) -> OpCounts {
    let mut out = OpCounts::default();
    let mut reads: BTreeSet<(FieldId, i32)> = BTreeSet::new();
    let mut writes: BTreeSet<(FieldId, i32)> = BTreeSet::new();
    for cl in clusters {
        for s in &cl.stmts {
            count_expr(s.value(), &mut out);
            s.value().visit_loads(&mut |a| {
                out.raw_loads += 1;
                reads.insert((a.field, a.time_offset));
            });
            if let Stmt::Store { target, .. } = s {
                writes.insert((target.field, target.time_offset));
            }
        }
    }
    out.read_streams = reads.len();
    out.write_streams = writes.len();
    out.unique_streams = reads.union(&writes).count();
    out
}

fn count_expr(e: &IExpr, out: &mut OpCounts) {
    match e {
        IExpr::Add(xs) => {
            out.adds += xs.len() - 1;
            xs.iter().for_each(|x| count_expr(x, out));
        }
        IExpr::Mul(xs) => {
            out.muls += xs.len() - 1;
            xs.iter().for_each(|x| count_expr(x, out));
        }
        IExpr::Pow(b, e2) => {
            // x^n: |n|-1 multiplies, plus a divide if negative.
            let n = e2.unsigned_abs() as usize;
            out.muls += n.saturating_sub(1);
            if *e2 < 0 {
                out.divs += 1;
            }
            count_expr(b, out);
        }
        IExpr::Func(_, b) => {
            out.funcs += 1;
            count_expr(b, out);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clusterize;
    use crate::lowering::lower_equations;
    use mpix_symbolic::{Context, Eq, Grid};

    fn acoustic_counts(so: u32) -> OpCounts {
        let mut ctx = Context::new();
        let g = Grid::new(&[64, 64, 64], &[1.0, 1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, so, 2);
        let m = ctx.add_function("m", &g, so);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        op_counts(&cls)
    }

    #[test]
    fn acoustic_streams_match_field_structure() {
        let c = acoustic_counts(8);
        // Reads: u[t], u[t-1], m; writes: u[t+1].
        assert_eq!(c.read_streams, 3);
        assert_eq!(c.write_streams, 1);
        assert_eq!(c.bytes(), 16);
    }

    #[test]
    fn flops_grow_with_space_order() {
        let c4 = acoustic_counts(4);
        let c8 = acoustic_counts(8);
        let c16 = acoustic_counts(16);
        assert!(c8.flops() > c4.flops());
        assert!(c16.flops() > c8.flops());
        // OI grows with SDO for fixed streams (paper Fig. 6/7 narrative).
        assert!(c16.oi() > c4.oi());
    }

    #[test]
    fn raw_loads_count_stencil_points() {
        let c = acoustic_counts(8);
        // 3-D so-8 star: 3*(8+1) - 2 = 25 loads of u[t] + u[t-1] + m >= 27.
        assert!(c.raw_loads >= 27, "raw loads {}", c.raw_loads);
    }

    #[test]
    fn hoisted_params_reduce_divisions() {
        let mut ctx = Context::new();
        let g = Grid::new(&[16, 16], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let mut cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let before = op_counts(&cls);
        let mut next = 0;
        crate::passes::cse_cluster(&mut cls[0], &mut next);
        let after = op_counts(&cls);
        assert!(
            after.divs <= before.divs,
            "divisions must not increase: {} -> {}",
            before.divs,
            after.divs
        );
        assert!(after.flops() <= before.flops());
    }
}
