//! Compiler passes: flop-reducing transformations at the Cluster level
//! and HaloSpot lowering at the IET level (paper §II, §III g/h).

use std::collections::HashMap;

use crate::cluster::{Cluster, Stmt};
use crate::iet::{Node, RegionKind};
use crate::iexpr::IExpr;

/// Halo-exchange pattern selector shared with the DMP layer. Redefined
/// here (rather than importing `mpix-dmp`) to keep the compiler free of a
/// runtime dependency; the executor maps between the two.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum MpiMode {
    #[default]
    Basic,
    Diagonal,
    Full,
}

// ---------------------------------------------------------------------------
// Cluster-level: parameter extraction + CSE
// ---------------------------------------------------------------------------

/// Extract loop-invariant sub-expressions into parameters (`r0 = 1/dt`,
/// `r1 = 1/(h_x*h_x)`, … — loop-invariant code motion) and repeated
/// grid-varying sub-expressions into per-point temporaries (`tmp0 =
/// -2*u[t0][x+2][y+2]` — CSE), as in Listing 11.
///
/// `next_param` numbers parameters globally across clusters.
pub fn cse_cluster(cl: &mut Cluster, next_param: &mut usize) {
    extract_params(cl, next_param);
    extract_temps(cl);
}

fn extract_params(cl: &mut Cluster, next_param: &mut usize) {
    // Collect maximal grid-invariant, non-trivial subtrees.
    let mut defs: Vec<IExpr> = Vec::new();
    let mut index: HashMap<String, usize> = HashMap::new();
    let params_base = *next_param;
    for s in &mut cl.stmts {
        let v = s.value().clone();
        let rewritten = hoist_invariant(&v, &mut defs, &mut index, params_base);
        *s.value_mut() = rewritten;
    }
    for (i, def) in defs.into_iter().enumerate() {
        cl.params.push((params_base + i, def));
    }
    *next_param = params_base + cl.params.len();
}

/// Replace maximal invariant subtrees with `Param` references.
fn hoist_invariant(
    e: &IExpr,
    defs: &mut Vec<IExpr>,
    index: &mut HashMap<String, usize>,
    base: usize,
) -> IExpr {
    if e.is_grid_invariant() && worth_hoisting(e) {
        let key = format!("{e}");
        let id = *index.entry(key).or_insert_with(|| {
            defs.push(e.clone());
            base + defs.len() - 1
        });
        return IExpr::Param(id);
    }
    match e {
        IExpr::Add(xs) => IExpr::Add(
            xs.iter()
                .map(|x| hoist_invariant(x, defs, index, base))
                .collect(),
        ),
        IExpr::Mul(xs) => {
            // Group the invariant factors of a mixed product, so
            // `c * (1/h_x^2) * load` hoists `c/h_x^2` as one parameter.
            let (inv, var): (Vec<&IExpr>, Vec<&IExpr>) =
                xs.iter().partition(|x| x.is_grid_invariant());
            let mut out: Vec<IExpr> = Vec::with_capacity(xs.len());
            if inv.len() >= 2 || (inv.len() == 1 && worth_hoisting(inv[0])) {
                let packed = if inv.len() == 1 {
                    inv[0].clone()
                } else {
                    IExpr::Mul(inv.into_iter().cloned().collect())
                };
                out.push(hoist_invariant(&packed, defs, index, base));
            } else {
                out.extend(inv.into_iter().cloned());
            }
            for v in var {
                out.push(hoist_invariant(v, defs, index, base));
            }
            if out.len() == 1 {
                out.pop().unwrap()
            } else {
                IExpr::Mul(out)
            }
        }
        IExpr::Pow(b, e2) => IExpr::Pow(Box::new(hoist_invariant(b, defs, index, base)), *e2),
        IExpr::Func(fx, b) => IExpr::Func(*fx, Box::new(hoist_invariant(b, defs, index, base))),
        other => other.clone(),
    }
}

/// Hoist only if it saves work at run time: divisions (negative powers),
/// powers, or compound expressions.
fn worth_hoisting(e: &IExpr) -> bool {
    matches!(
        e,
        IExpr::Pow(_, _) | IExpr::Add(_) | IExpr::Mul(_) | IExpr::Func(_, _)
    )
}

fn extract_temps(cl: &mut Cluster) {
    // Count non-trivial grid-varying subtrees across all stores.
    let mut counts: HashMap<String, (IExpr, usize)> = HashMap::new();
    for s in &cl.stmts {
        count_subtrees(s.value(), &mut counts);
    }
    // Temps are hoisted to the top of the point body, so a candidate must
    // not load a buffer this cluster writes (the load would then observe
    // the pre-store value).
    let written: Vec<(mpix_symbolic::FieldId, i32)> = cl.writes();
    let reads_written = |e: &IExpr| {
        let mut hit = false;
        e.visit_loads(&mut |a| {
            if written.contains(&(a.field, a.time_offset)) {
                hit = true;
            }
        });
        hit
    };
    // Candidates: seen >= 2 times, contain at least one load, size >= 2.
    let mut cands: Vec<(String, IExpr)> = counts
        .into_iter()
        .filter(|(_, (e, n))| {
            *n >= 2 && !e.is_grid_invariant() && e.size() >= 2 && !reads_written(e)
        })
        .map(|(k, (e, _))| (k, e))
        .collect();
    // Deterministic order; smaller subtrees first so bigger candidates
    // can reference the temps of smaller ones: a contained subtree is
    // strictly smaller, so by the time a candidate is substituted every
    // candidate inside it has already been replaced — in the statements
    // AND in this candidate's own definition, which is rewritten in
    // lockstep so its key keeps matching the statements.
    cands.sort_by_key(|(k, e)| (e.size(), k.clone()));
    if cands.is_empty() {
        return;
    }
    let mut cands: Vec<IExpr> = cands.into_iter().map(|(_, e)| e).collect();
    let temp_base = cl.num_temps;
    let mut lets: Vec<Stmt> = Vec::new();
    for i in 0..cands.len() {
        let temp = temp_base + i;
        let (head, tail) = cands.split_at_mut(i + 1);
        let key = format!("{}", head[i]);
        let subst = |x: &IExpr| {
            if format!("{x}") == key {
                Some(IExpr::Temp(temp))
            } else {
                None
            }
        };
        for s in &mut cl.stmts {
            let v = s.value().rewrite(&subst);
            *s.value_mut() = v;
        }
        for later in tail.iter_mut() {
            *later = later.rewrite(&subst);
        }
        lets.push(Stmt::Let {
            temp,
            value: head[i].clone(),
        });
    }
    // Dead-let elimination: a candidate whose occurrences all sat inside
    // other candidates can end up with zero remaining reads; emitting it
    // would compute a per-point value nobody consumes (MPX008). Liveness
    // flows backward — later lets may read earlier temps, never the
    // reverse — then survivors are renumbered densely.
    let mut live = vec![false; lets.len()];
    let mark = |e: &IExpr, live: &mut Vec<bool>| {
        e.visit_temps(&mut |t| {
            if t >= temp_base {
                live[t - temp_base] = true;
            }
        })
    };
    for s in &cl.stmts {
        mark(s.value(), &mut live);
    }
    for i in (0..lets.len()).rev() {
        if live[i] {
            let v = lets[i].value().clone();
            mark(&v, &mut live);
        }
    }
    let mut remap: HashMap<usize, usize> = HashMap::new();
    let mut kept: Vec<Stmt> = Vec::new();
    for (i, l) in lets.into_iter().enumerate() {
        if live[i] {
            remap.insert(temp_base + i, temp_base + remap.len());
            kept.push(l);
        }
    }
    let renumber = |x: &IExpr| match x {
        IExpr::Temp(t) => remap.get(t).map(|&n| IExpr::Temp(n)),
        _ => None,
    };
    for s in kept.iter_mut().chain(cl.stmts.iter_mut()) {
        let v = s.value().rewrite(&renumber);
        *s.value_mut() = v;
    }
    cl.num_temps = temp_base + kept.len();
    // Prepend lets (their definitions contain no temps of later lets by
    // the sort order above).
    kept.append(&mut cl.stmts);
    cl.stmts = kept;
}

fn count_subtrees(e: &IExpr, counts: &mut HashMap<String, (IExpr, usize)>) {
    match e {
        IExpr::Add(xs) | IExpr::Mul(xs) => {
            for x in xs {
                count_subtrees(x, counts);
            }
        }
        IExpr::Pow(b, _) => count_subtrees(b, counts),
        IExpr::Func(_, b) => count_subtrees(b, counts),
        _ => {}
    }
    if !e.is_grid_invariant() && e.size() >= 2 {
        let key = format!("{e}");
        counts
            .entry(key)
            .and_modify(|(_, n)| *n += 1)
            .or_insert((e.clone(), 1));
    }
}

// ---------------------------------------------------------------------------
// IET-level: HaloSpot lowering per MPI mode
// ---------------------------------------------------------------------------

/// Lower `HaloSpot` nodes to exchange calls according to the selected
/// pattern (§III g/h):
///
/// * **basic / diagonal** — `HaloUpdate` (synchronous) followed by the
///   spot's body unchanged (Listing 6 / Listing 7);
/// * **full** — `HaloUpdate[async]`, the body's loop nest restricted to
///   CORE, `HaloWait`, then the same nest over REMAINDER (Listing 8).
///   Spots with no enclosed loop (hoisted pre-loop exchanges) lower
///   synchronously in every mode.
pub fn lower_halo_spots(iet: Node, mode: MpiMode) -> Node {
    iet.map_children(&|n| match n {
        Node::HaloSpot { exchanges, body } => {
            if exchanges.is_empty() {
                return body;
            }
            let has_loop = body.iter().any(|b| matches!(b, Node::SpaceLoop { .. }));
            match mode {
                MpiMode::Basic | MpiMode::Diagonal => {
                    let mut out = vec![Node::HaloUpdate {
                        exchanges,
                        is_async: false,
                    }];
                    out.extend(body);
                    out
                }
                MpiMode::Full if has_loop => {
                    let mut out = vec![Node::HaloUpdate {
                        exchanges: exchanges.clone(),
                        is_async: true,
                    }];
                    // CORE copies of each loop.
                    for b in &body {
                        if let Node::SpaceLoop {
                            cluster,
                            block,
                            parallel,
                            ..
                        } = b
                        {
                            out.push(Node::SpaceLoop {
                                cluster: cluster.clone(),
                                region: RegionKind::Core,
                                block: *block,
                                parallel: *parallel,
                            });
                        }
                    }
                    out.push(Node::HaloWait {
                        exchanges: exchanges.clone(),
                    });
                    for b in body {
                        if let Node::SpaceLoop {
                            cluster,
                            block,
                            parallel,
                            ..
                        } = b
                        {
                            out.push(Node::SpaceLoop {
                                cluster,
                                region: RegionKind::Remainder,
                                block,
                                parallel,
                            });
                        } else {
                            out.push(b);
                        }
                    }
                    vec![Node::Section {
                        name: "overlap".into(),
                        body: out,
                    }]
                }
                MpiMode::Full => {
                    let mut out = vec![Node::HaloUpdate {
                        exchanges,
                        is_async: false,
                    }];
                    out.extend(body);
                    out
                }
            }
        }
        other => vec![other],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clusterize;
    use crate::halo::detect_halo_exchanges;
    use crate::iet::build_iet;
    use crate::lowering::lower_equations;
    use mpix_symbolic::{Context, Eq, Grid};

    fn diffusion_clusters() -> (Vec<Cluster>, Context) {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        (clusterize(&lower_equations(&[st], &ctx).unwrap()), ctx)
    }

    #[test]
    fn params_are_extracted_for_spacing_terms() {
        let (mut cls, _ctx) = diffusion_clusters();
        let mut next = 0;
        cse_cluster(&mut cls[0], &mut next);
        // Listing 11: r0 = 1/dt-like and 1/h^2-like parameters appear.
        assert!(!cls[0].params.is_empty(), "no parameters extracted");
        // All parameter definitions are grid-invariant.
        for (_, def) in &cls[0].params {
            assert!(def.is_grid_invariant());
        }
        // Statement values no longer contain raw spacing symbols inside
        // products with loads (they reference Params instead).
        let mut found_param = false;
        for s in &cls[0].stmts {
            let mut walk = |e: &IExpr| {
                if matches!(e, IExpr::Param(_)) {
                    found_param = true;
                }
            };
            fn visit(e: &IExpr, f: &mut impl FnMut(&IExpr)) {
                f(e);
                match e {
                    IExpr::Add(xs) | IExpr::Mul(xs) => xs.iter().for_each(|x| visit(x, f)),
                    IExpr::Pow(b, _) => visit(b, f),
                    _ => {}
                }
            }
            visit(s.value(), &mut walk);
        }
        assert!(found_param);
    }

    #[test]
    fn repeated_subtrees_become_temps() {
        use crate::iexpr::IdxAccess;
        use mpix_symbolic::FieldId;
        // Build a cluster with a deliberately repeated compound subtree.
        let load = IExpr::Load(IdxAccess {
            field: FieldId(0),
            time_offset: 0,
            deltas: vec![0, 0],
        });
        let rep = IExpr::Mul(vec![IExpr::Const(-2.0), load.clone()]);
        let mut cl = Cluster {
            stmts: vec![Stmt::Store {
                target: IdxAccess {
                    field: FieldId(0),
                    time_offset: 1,
                    deltas: vec![0, 0],
                },
                value: IExpr::Add(vec![
                    rep.clone(),
                    IExpr::Mul(vec![IExpr::Sym("a".into()), rep]),
                ]),
            }],
            params: vec![],
            num_temps: 0,
        };
        let mut next = 0;
        cse_cluster(&mut cl, &mut next);
        assert!(
            cl.num_temps >= 1,
            "expected a temp for the repeated subtree"
        );
        assert!(matches!(cl.stmts[0], Stmt::Let { .. }));
    }

    #[test]
    fn basic_lowering_emits_sync_update() {
        let (cls, ctx) = diffusion_clusters();
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "Kernel", 0, true);
        let low = lower_halo_spots(iet, MpiMode::Basic);
        assert_eq!(low.count(&|n| matches!(n, Node::HaloSpot { .. })), 0);
        assert_eq!(
            low.count(&|n| matches!(
                n,
                Node::HaloUpdate {
                    is_async: false,
                    ..
                }
            )),
            1
        );
        assert_eq!(low.count(&|n| matches!(n, Node::HaloWait { .. })), 0);
    }

    #[test]
    fn full_lowering_splits_core_and_remainder() {
        let (cls, ctx) = diffusion_clusters();
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "Kernel", 0, true);
        let low = lower_halo_spots(iet, MpiMode::Full);
        assert_eq!(
            low.count(&|n| matches!(n, Node::HaloUpdate { is_async: true, .. })),
            1
        );
        assert_eq!(low.count(&|n| matches!(n, Node::HaloWait { .. })), 1);
        assert_eq!(
            low.count(&|n| matches!(
                n,
                Node::SpaceLoop {
                    region: RegionKind::Core,
                    ..
                }
            )),
            1
        );
        assert_eq!(
            low.count(&|n| matches!(
                n,
                Node::SpaceLoop {
                    region: RegionKind::Remainder,
                    ..
                }
            )),
            1
        );
        // Order inside the overlap section: update, core, wait, remainder.
        fn find_section(n: &Node) -> Option<&Vec<Node>> {
            match n {
                Node::Section { name, body } if name == "overlap" => Some(body),
                Node::Callable { body, .. } | Node::TimeLoop { body } => {
                    body.iter().find_map(find_section)
                }
                _ => None,
            }
        }
        let body = find_section(&low).expect("overlap section");
        assert!(matches!(body[0], Node::HaloUpdate { is_async: true, .. }));
        assert!(matches!(
            body[1],
            Node::SpaceLoop {
                region: RegionKind::Core,
                ..
            }
        ));
        assert!(matches!(body[2], Node::HaloWait { .. }));
        assert!(matches!(
            body[3],
            Node::SpaceLoop {
                region: RegionKind::Remainder,
                ..
            }
        ));
    }

    #[test]
    fn empty_halospot_dissolves() {
        let iet = Node::Callable {
            name: "k".into(),
            params: vec![],
            body: vec![Node::HaloSpot {
                exchanges: vec![],
                body: vec![],
            }],
        };
        let low = lower_halo_spots(iet, MpiMode::Basic);
        assert_eq!(low.count(&|n| matches!(n, Node::HaloUpdate { .. })), 0);
    }
}
