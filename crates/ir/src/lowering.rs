//! Equation lowering: symbolic user equations → indexed statements.
//!
//! Corresponds to the paper's *Equations lowering* stage (Fig. 1):
//! derivatives are discretized, staggered offsets resolved to array-index
//! deltas, and access alignment metadata recorded (the `+ halo` shift
//! itself is applied by the backends so indices stay relative here).

use mpix_symbolic::{discretize, Context, DiscretizeError, Eq, Expr, FieldId, Stagger};

use crate::iexpr::{IExpr, IdxAccess};

/// A lowered, indexed, explicit update statement.
#[derive(Clone, Debug)]
pub struct LoweredEq {
    /// The written access (time offset `+1` for updates, `0` for
    /// time-invariant precomputations).
    pub target: IdxAccess,
    pub rhs: IExpr,
    /// Evaluation lattice (the target field's staggering): needed to map
    /// any later symbolic rewrites consistently.
    pub eval_stagger: Vec<Stagger>,
}

/// Lowering failures.
#[derive(Debug, Clone, PartialEq)]
pub enum LoweringError {
    Discretize(DiscretizeError),
    /// The left-hand side is not a plain access.
    TargetNotAccess,
    /// The target carries spatial offsets (unsupported write pattern).
    OffsetWrite,
}

impl From<DiscretizeError> for LoweringError {
    fn from(e: DiscretizeError) -> Self {
        LoweringError::Discretize(e)
    }
}

/// Lower a list of already-explicit equations (LHS = forward access).
pub fn lower_equations(eqs: &[Eq], ctx: &Context) -> Result<Vec<LoweredEq>, LoweringError> {
    eqs.iter().map(|eq| lower_equation(eq, ctx)).collect()
}

/// Lower one equation.
pub fn lower_equation(eq: &Eq, ctx: &Context) -> Result<LoweredEq, LoweringError> {
    let target_acc = match &eq.lhs {
        Expr::Acc(a) => a.clone(),
        _ => return Err(LoweringError::TargetNotAccess),
    };
    if target_acc.offsets_h.iter().any(|&o| o != 0) {
        return Err(LoweringError::OffsetWrite);
    }
    let eval_stagger = ctx.field(target_acc.field).stagger.clone();
    let lowered = discretize(eq, ctx)?;
    let target = IdxAccess {
        field: target_acc.field,
        time_offset: target_acc.time_offset,
        deltas: vec![0; target_acc.offsets_h.len()],
    };
    let rhs = IExpr::from_symbolic(&lowered.rhs, ctx, &eval_stagger);
    Ok(LoweredEq {
        target,
        rhs,
        eval_stagger,
    })
}

impl LoweredEq {
    /// Every `(field, time_offset)` pair read, with the per-dimension
    /// stencil radius over all its loads.
    pub fn reads(&self) -> Vec<(FieldId, i32, Vec<usize>)> {
        let mut map: std::collections::BTreeMap<(FieldId, i32), Vec<usize>> = Default::default();
        self.rhs.visit_loads(&mut |a: &IdxAccess| {
            let e = map
                .entry((a.field, a.time_offset))
                .or_insert_with(|| vec![0; a.deltas.len()]);
            for d in 0..a.deltas.len() {
                e[d] = e[d].max(a.radius(d));
            }
        });
        map.into_iter().map(|((f, t), r)| (f, t, r)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_symbolic::Grid;

    #[test]
    fn lower_diffusion_equation() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[2.0, 2.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let low = lower_equation(&st, &ctx).unwrap();
        assert_eq!(low.target.time_offset, 1);
        assert_eq!(low.target.deltas, vec![0, 0]);
        let reads = low.reads();
        // Reads u at t+0 with radius 1 in both dims.
        let r = reads
            .iter()
            .find(|(f, t, _)| *f == u.id() && *t == 0)
            .expect("reads u[t]");
        assert_eq!(r.2, vec![1, 1]);
        // Never reads the written buffer.
        assert!(!reads.iter().any(|(f, t, _)| *f == u.id() && *t == 1));
    }

    #[test]
    fn lower_rejects_non_access_lhs() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.center() + u.forward(), u.center());
        assert!(matches!(
            lower_equation(&eq, &ctx),
            Err(LoweringError::TargetNotAccess)
        ));
    }

    #[test]
    fn radius_scales_with_space_order() {
        for so in [2u32, 4, 8, 16] {
            let mut ctx = Context::new();
            let g = Grid::new(&[64, 64], &[1.0, 1.0]);
            let u = ctx.add_time_function("u", &g, so, 2);
            let eq = Eq::new(u.dt2(), u.laplace());
            let st = eq.solve_for(&u.forward(), &ctx).unwrap();
            let low = lower_equation(&st, &ctx).unwrap();
            let reads = low.reads();
            let r = reads.iter().find(|(_, t, _)| *t == 0).unwrap();
            assert_eq!(r.2, vec![so as usize / 2, so as usize / 2], "so={so}");
        }
    }
}
