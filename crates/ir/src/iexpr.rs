//! Indexed expressions: the post-lowering expression form.
//!
//! After discretization and index alignment, every field access is a
//! concrete array access: a field, a relative time-buffer offset, and an
//! integer index delta per dimension. This is the form the paper's
//! generated C operates on (`u[t0][x + 2][y + 2]`), before the `+ halo`
//! alignment shift which the backends apply when emitting/executing.

use std::fmt;

use mpix_symbolic::{Context, FieldId, UnaryFn};

/// A concrete array access.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct IdxAccess {
    pub field: FieldId,
    /// Relative time-buffer offset (`+1` = the buffer being written).
    pub time_offset: i32,
    /// Array-index delta per spatial dimension.
    pub deltas: Vec<i32>,
}

impl IdxAccess {
    /// Largest absolute delta along `d` — the stencil radius
    /// contribution of this access.
    pub fn radius(&self, d: usize) -> usize {
        self.deltas[d].unsigned_abs() as usize
    }
}

/// An indexed expression: like [`mpix_symbolic::Expr`] but with concrete
/// accesses, per-point temporaries and precomputed parameters.
#[derive(Clone, PartialEq, Debug)]
pub enum IExpr {
    Const(f64),
    /// A named runtime scalar (`dt`, `h_x`, …).
    Sym(String),
    /// A field load.
    Load(IdxAccess),
    /// A per-point temporary introduced by CSE (`r3` in Listing 11).
    Temp(usize),
    /// A loop-invariant precomputed parameter (`r0`, `r1` in Listing 11).
    Param(usize),
    Add(Vec<IExpr>),
    Mul(Vec<IExpr>),
    Pow(Box<IExpr>, i32),
    /// A pointwise elementary function (`sqrt`, `sin`, …).
    Func(UnaryFn, Box<IExpr>),
}

impl IExpr {
    /// Convert a fully lowered symbolic expression, mapping each access's
    /// half-step offsets to array-index deltas relative to the given
    /// evaluation lattice.
    pub fn from_symbolic(
        e: &mpix_symbolic::Expr,
        ctx: &Context,
        eval_stagger: &[mpix_symbolic::Stagger],
    ) -> IExpr {
        use mpix_symbolic::Expr as E;
        match e {
            E::Const(c) => IExpr::Const(*c),
            E::Sym(s) => IExpr::Sym(s.name().to_string()),
            E::Acc(a) => IExpr::Load(IdxAccess {
                field: a.field,
                time_offset: a.time_offset,
                deltas: mpix_symbolic::eq::access_index_deltas(a, ctx, eval_stagger),
            }),
            E::Add(xs) => IExpr::Add(
                xs.iter()
                    .map(|x| IExpr::from_symbolic(x, ctx, eval_stagger))
                    .collect(),
            ),
            E::Mul(xs) => IExpr::Mul(
                xs.iter()
                    .map(|x| IExpr::from_symbolic(x, ctx, eval_stagger))
                    .collect(),
            ),
            E::Pow(b, e2) => IExpr::Pow(Box::new(IExpr::from_symbolic(b, ctx, eval_stagger)), *e2),
            E::Func(fx, b) => {
                IExpr::Func(*fx, Box::new(IExpr::from_symbolic(b, ctx, eval_stagger)))
            }
            E::Deriv { .. } => panic!("cannot index an underived expression"),
        }
    }

    /// Visit every load in the expression.
    pub fn visit_loads(&self, f: &mut impl FnMut(&IdxAccess)) {
        self.visit(&mut |e| {
            if let IExpr::Load(a) = e {
                f(a)
            }
        });
    }

    /// Pre-order walk over every node of the expression tree. The
    /// generic traversal the dataflow lints (`mpix-analysis::lint`) and
    /// ad-hoc passes build on, so each analysis does not re-implement
    /// the recursion over the node shapes.
    pub fn visit(&self, f: &mut impl FnMut(&IExpr)) {
        f(self);
        match self {
            IExpr::Add(xs) | IExpr::Mul(xs) => xs.iter().for_each(|x| x.visit(f)),
            IExpr::Pow(b, _) => b.visit(f),
            IExpr::Func(_, b) => b.visit(f),
            _ => {}
        }
    }

    /// Visit every per-point temporary index read by the expression.
    pub fn visit_temps(&self, f: &mut impl FnMut(usize)) {
        self.visit(&mut |e| {
            if let IExpr::Temp(i) = e {
                f(*i)
            }
        });
    }

    /// Does the expression contain only `Const`/`Sym`/`Param` leaves
    /// (i.e. is loop-invariant)?
    pub fn is_grid_invariant(&self) -> bool {
        match self {
            IExpr::Const(_) | IExpr::Sym(_) | IExpr::Param(_) => true,
            IExpr::Load(_) | IExpr::Temp(_) => false,
            IExpr::Add(xs) | IExpr::Mul(xs) => xs.iter().all(|x| x.is_grid_invariant()),
            IExpr::Pow(b, _) => b.is_grid_invariant(),
            IExpr::Func(_, b) => b.is_grid_invariant(),
        }
    }

    /// Number of expression nodes.
    pub fn size(&self) -> usize {
        match self {
            IExpr::Add(xs) | IExpr::Mul(xs) => 1 + xs.iter().map(|x| x.size()).sum::<usize>(),
            IExpr::Pow(b, _) => 1 + b.size(),
            IExpr::Func(_, b) => 1 + b.size(),
            _ => 1,
        }
    }

    /// Rewrite sub-expressions bottom-up through `f`.
    pub fn rewrite(&self, f: &impl Fn(&IExpr) -> Option<IExpr>) -> IExpr {
        let walked = match self {
            IExpr::Add(xs) => IExpr::Add(xs.iter().map(|x| x.rewrite(f)).collect()),
            IExpr::Mul(xs) => IExpr::Mul(xs.iter().map(|x| x.rewrite(f)).collect()),
            IExpr::Pow(b, e) => IExpr::Pow(Box::new(b.rewrite(f)), *e),
            IExpr::Func(fx, b) => IExpr::Func(*fx, Box::new(b.rewrite(f))),
            other => other.clone(),
        };
        f(&walked).unwrap_or(walked)
    }
}

impl fmt::Display for IExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IExpr::Const(c) => {
                if *c == c.trunc() && c.abs() < 1e15 {
                    write!(f, "{}", *c as i64)
                } else {
                    write!(f, "{c:.6}")
                }
            }
            IExpr::Sym(s) => write!(f, "{s}"),
            IExpr::Temp(i) => write!(f, "tmp{i}"),
            IExpr::Param(i) => write!(f, "r{i}"),
            IExpr::Load(a) => {
                write!(f, "F{}[t{:+}", a.field.0, a.time_offset)?;
                for d in &a.deltas {
                    write!(f, ",{d:+}")?;
                }
                write!(f, "]")
            }
            IExpr::Add(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            IExpr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            IExpr::Pow(b, e) => write!(f, "({b})^{e}"),
            IExpr::Func(fx, b) => write!(f, "{}({b})", fx.name()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_symbolic::{Context, Grid, Stagger};

    #[test]
    fn from_symbolic_maps_offsets_to_deltas() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        let e = u.at(0, &[-1, 2]);
        let ie = IExpr::from_symbolic(&e, &ctx, &[Stagger::Node, Stagger::Node]);
        match ie {
            IExpr::Load(a) => {
                assert_eq!(a.deltas, vec![-1, 2]);
                assert_eq!(a.time_offset, 0);
                assert_eq!(a.radius(1), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn grid_invariance() {
        let e = IExpr::Mul(vec![IExpr::Sym("dt".into()), IExpr::Const(2.0)]);
        assert!(e.is_grid_invariant());
        let l = IExpr::Load(IdxAccess {
            field: mpix_symbolic::FieldId(0),
            time_offset: 0,
            deltas: vec![0],
        });
        assert!(!l.is_grid_invariant());
        assert!(!IExpr::Add(vec![e, l]).is_grid_invariant());
    }

    #[test]
    fn rewrite_replaces_subtrees() {
        let e = IExpr::Add(vec![IExpr::Sym("a".into()), IExpr::Sym("b".into())]);
        let r = e.rewrite(&|x| match x {
            IExpr::Sym(s) if s == "a" => Some(IExpr::Const(1.0)),
            _ => None,
        });
        assert_eq!(
            r,
            IExpr::Add(vec![IExpr::Const(1.0), IExpr::Sym("b".into())])
        );
    }
}
