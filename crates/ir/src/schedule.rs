//! The schedule tree: the abbreviated structural IR of Listing 4, sitting
//! between the Cluster level and the IET.

use std::fmt;

use mpix_symbolic::Context;

use crate::cluster::Cluster;
use crate::halo::HaloPlan;

/// A schedule-tree node.
#[derive(Clone, Debug)]
pub enum SNode {
    /// Ordered children.
    List(Vec<SNode>),
    /// The sequential time loop.
    Time(Vec<SNode>),
    /// A halo exchange position, naming the buffers it touches.
    Halo(Vec<String>),
    /// A cluster's loop nest over its spatial dimensions.
    Exprs { cluster: usize, dims: usize },
}

/// The schedule tree for one operator.
#[derive(Clone, Debug)]
pub struct ScheduleTree {
    pub root: SNode,
}

impl ScheduleTree {
    /// Structure the clusters and exchange plan as a schedule tree
    /// (Listing 4: halos placed inside the time loop, before their
    /// cluster).
    pub fn build(clusters: &[Cluster], plan: &HaloPlan, ctx: &Context) -> ScheduleTree {
        let name = |x: &crate::halo::HaloXchg| {
            format!("{}[t{:+}]", ctx.field(x.field).name, x.time_offset)
        };
        let mut top = Vec::new();
        if !plan.hoisted.is_empty() {
            top.push(SNode::Halo(plan.hoisted.iter().map(name).collect()));
        }
        let mut time_body = Vec::new();
        for (ci, cl) in clusters.iter().enumerate() {
            if !plan.per_cluster[ci].is_empty() {
                time_body.push(SNode::Halo(plan.per_cluster[ci].iter().map(name).collect()));
            }
            time_body.push(SNode::Exprs {
                cluster: ci,
                dims: cl.ndim(),
            });
        }
        top.push(SNode::Time(time_body));
        ScheduleTree {
            root: SNode::List(top),
        }
    }
}

impl fmt::Display for ScheduleTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn go(n: &SNode, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let pad = "  ".repeat(depth);
            match n {
                SNode::List(children) => {
                    writeln!(f, "{pad}<List>")?;
                    for c in children {
                        go(c, depth + 1, f)?;
                    }
                    Ok(())
                }
                SNode::Time(children) => {
                    writeln!(f, "{pad}<Time [sequential]>")?;
                    for c in children {
                        go(c, depth + 1, f)?;
                    }
                    Ok(())
                }
                SNode::Halo(names) => writeln!(f, "{pad}<Halo({})>", names.join(", ")),
                SNode::Exprs { cluster, dims } => {
                    writeln!(f, "{pad}<Exprs cluster{cluster} over {dims} space dims>")
                }
            }
        }
        go(&self.root, 0, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clusterize;
    use crate::halo::detect_halo_exchanges;
    use crate::lowering::lower_equations;
    use mpix_symbolic::{Eq, Grid};

    #[test]
    fn schedule_places_halo_inside_time_loop_before_exprs() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        let tree = ScheduleTree::build(&cl, &plan, &ctx);
        let s = tree.to_string();
        // Listing 4 shape: time loop containing a halo then the exprs.
        let hpos = s.find("<Halo(u[t+0])>").expect("halo node present");
        let epos = s.find("<Exprs").expect("exprs node present");
        let tpos = s.find("<Time").unwrap();
        assert!(tpos < hpos && hpos < epos, "{s}");
    }
}
