//! Cluster-level IR: grouping statements by data dependence (paper §II).
//!
//! A [`Cluster`] is a set of statements sharing one iteration space that
//! can legally execute in a single loop nest. The clustering rule mirrors
//! Devito's: a statement may join the open cluster unless it reads — at a
//! nonzero spatial offset — a value the cluster writes in the same time
//! step (a cross-iteration flow dependence, which requires a loop-nest
//! boundary and, under DMP, a halo exchange in between). Same-point reads
//! of freshly written values are fine: statement order within the loop
//! body preserves them.

use mpix_symbolic::FieldId;

use crate::iexpr::{IExpr, IdxAccess};
use crate::lowering::LoweredEq;

/// One statement of a cluster body.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// A per-point temporary (CSE result): `tmpN = expr`.
    Let { temp: usize, value: IExpr },
    /// A field store: `target = expr`.
    Store { target: IdxAccess, value: IExpr },
}

impl Stmt {
    pub fn value(&self) -> &IExpr {
        match self {
            Stmt::Let { value, .. } | Stmt::Store { value, .. } => value,
        }
    }
    pub fn value_mut(&mut self) -> &mut IExpr {
        match self {
            Stmt::Let { value, .. } | Stmt::Store { value, .. } => value,
        }
    }
}

/// A group of statements executable as one loop nest over DOMAIN.
#[derive(Clone, Debug, Default)]
pub struct Cluster {
    pub stmts: Vec<Stmt>,
    /// Loop-invariant parameter definitions hoisted out of this cluster
    /// (filled by [`crate::passes::cse_cluster`]); indices are global
    /// across the operator.
    pub params: Vec<(usize, IExpr)>,
    /// Number of per-point temporaries used by `stmts`.
    pub num_temps: usize,
}

impl Cluster {
    /// `(field, time_offset)` pairs written by this cluster.
    pub fn writes(&self) -> Vec<(FieldId, i32)> {
        let mut out: Vec<(FieldId, i32)> = Vec::new();
        for s in &self.stmts {
            if let Stmt::Store { target, .. } = s {
                let key = (target.field, target.time_offset);
                if !out.contains(&key) {
                    out.push(key);
                }
            }
        }
        out
    }

    /// `(field, time_offset, radius-per-dim)` triples read by this
    /// cluster (maximum radius over all loads).
    pub fn reads(&self) -> Vec<(FieldId, i32, Vec<usize>)> {
        let mut map: std::collections::BTreeMap<(FieldId, i32), Vec<usize>> = Default::default();
        for s in &self.stmts {
            s.value().visit_loads(&mut |a: &IdxAccess| {
                let e = map
                    .entry((a.field, a.time_offset))
                    .or_insert_with(|| vec![0; a.deltas.len()]);
                for d in 0..a.deltas.len() {
                    e[d] = e[d].max(a.radius(d));
                }
            });
        }
        map.into_iter().map(|((f, t), r)| (f, t, r)).collect()
    }

    /// Maximum stencil radius over every read, per dimension — the halo
    /// width this cluster's loop nest needs.
    pub fn max_radius(&self, ndim: usize) -> Vec<usize> {
        let mut r = vec![0usize; ndim];
        for (_, _, rr) in self.reads() {
            for d in 0..ndim.min(rr.len()) {
                r[d] = r[d].max(rr[d]);
            }
        }
        r
    }

    /// Visit every right-hand-side expression of this cluster — hoisted
    /// parameter definitions first (they evaluate before the loop nest),
    /// then statement values in program order. The def-use walker the
    /// abstract-interpretation lints iterate with.
    pub fn visit_values(&self, f: &mut impl FnMut(&IExpr)) {
        for (_, v) in &self.params {
            f(v);
        }
        for s in &self.stmts {
            f(s.value());
        }
    }

    /// Number of spatial dimensions (from the first store).
    pub fn ndim(&self) -> usize {
        self.stmts
            .iter()
            .find_map(|s| match s {
                Stmt::Store { target, .. } => Some(target.deltas.len()),
                _ => None,
            })
            .unwrap_or(0)
    }
}

/// Group lowered equations into clusters, preserving program order.
pub fn clusterize(eqs: &[LoweredEq]) -> Vec<Cluster> {
    let mut clusters: Vec<Cluster> = Vec::new();
    let mut open = Cluster::default();

    for eq in eqs {
        if needs_new_cluster(&open, eq) {
            clusters.push(std::mem::take(&mut open));
        }
        open.stmts.push(Stmt::Store {
            target: eq.target.clone(),
            value: eq.rhs.clone(),
        });
    }
    if !open.stmts.is_empty() {
        clusters.push(open);
    }
    clusters
}

/// Does `eq` read — at a nonzero spatial offset — anything the open
/// cluster writes at the same time offset?
fn needs_new_cluster(open: &Cluster, eq: &LoweredEq) -> bool {
    if open.stmts.is_empty() {
        return false;
    }
    let writes = open.writes();
    let mut conflict = false;
    eq.rhs.visit_loads(&mut |a: &IdxAccess| {
        if writes.contains(&(a.field, a.time_offset)) && a.deltas.iter().any(|&d| d != 0) {
            conflict = true;
        }
    });
    // A repeated write to the same (field, time) is also a boundary (the
    // second write would clobber within one nest in an order-dependent way).
    if writes.contains(&(eq.target.field, eq.target.time_offset)) {
        conflict = true;
    }
    conflict
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_symbolic::{Context, Eq, Grid};

    fn lower(ctx: &Context, eqs: &[Eq]) -> Vec<LoweredEq> {
        crate::lowering::lower_equations(eqs, ctx).unwrap()
    }

    #[test]
    fn independent_updates_share_a_cluster() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let v = ctx.add_time_function("v", &g, 2, 1);
        // Both read only t-level values: one loop nest suffices.
        let eqs = vec![
            Eq::new(u.forward(), u.laplace()),
            Eq::new(v.forward(), v.laplace()),
        ];
        let cl = clusterize(&lower(&ctx, &eqs));
        assert_eq!(cl.len(), 1);
        assert_eq!(cl[0].stmts.len(), 2);
        assert_eq!(cl[0].writes().len(), 2);
    }

    #[test]
    fn stencil_read_of_fresh_write_splits_clusters() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let v = ctx.add_time_function("v", &g, 2, 1);
        // v.forward reads the laplacian of u.forward -> flow dependence at
        // nonzero offsets -> two clusters (elastic-style coupling).
        let eq1 = Eq::new(u.forward(), u.laplace());
        let lap_fwd = mpix_symbolic::eq::lower_time_derivs(&u.laplace(), &ctx)
            .unwrap()
            .shifted_time(1);
        let eq2 = Eq::new(v.forward(), lap_fwd);
        let cl = clusterize(&lower(&ctx, &[eq1, eq2]));
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn same_point_read_of_fresh_write_stays_fused() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let v = ctx.add_time_function("v", &g, 2, 1);
        let eq1 = Eq::new(u.forward(), u.center() * 2.0);
        // v.forward = u.forward (same point): scalarizable, one nest.
        let eq2 = Eq::new(v.forward(), u.forward());
        let cl = clusterize(&lower(&ctx, &[eq1, eq2]));
        assert_eq!(cl.len(), 1);
    }

    #[test]
    fn double_write_splits() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq1 = Eq::new(u.forward(), u.center() * 2.0);
        let eq2 = Eq::new(u.forward(), u.center() * 3.0);
        let cl = clusterize(&lower(&ctx, &[eq1, eq2]));
        assert_eq!(cl.len(), 2);
    }

    #[test]
    fn max_radius_covers_all_reads() {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 8, 2);
        let eq = Eq::new(u.dt2(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower(&ctx, &[st]));
        assert_eq!(cl[0].max_radius(2), vec![4, 4]);
    }
}
