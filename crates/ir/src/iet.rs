//! The Iteration/Expression Tree (IET): the control-flow level IR.
//!
//! Built from the schedule, the IET is an immutable tree of loops and
//! expressions. `HaloSpot` nodes (Listing 5) carry the exchange metadata
//! detected at the Cluster level; the mode-lowering pass
//! ([`crate::passes::lower_halo_spots`]) rewrites them into
//! `HaloUpdate`/`HaloWait` calls and — for the *full* pattern — splits
//! the enclosed loop nest into CORE and REMAINDER iterations (Listing 6).

use std::fmt;

use mpix_symbolic::Context;

use crate::cluster::{Cluster, Stmt};
use crate::halo::{HaloPlan, HaloXchg};
use crate::iexpr::IExpr;

/// Which part of the local domain a space loop covers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegionKind {
    /// The whole writable region (CORE ∪ OWNED).
    Domain,
    /// Only points whose reads stay local.
    Core,
    /// Only the OWNED/remainder strips that read HALO.
    Remainder,
}

/// An IET node.
#[derive(Clone, Debug)]
pub enum Node {
    /// The kernel entry: precomputed parameters, then the body.
    Callable {
        name: String,
        /// `(param index, defining expression)` — `r0 = 1/dt` etc.
        params: Vec<(usize, IExpr)>,
        body: Vec<Node>,
    },
    /// The sequential, affine time loop.
    TimeLoop { body: Vec<Node> },
    /// Pre-lowering: a position where `exchanges` must complete before
    /// `body` runs.
    HaloSpot {
        exchanges: Vec<HaloXchg>,
        body: Vec<Node>,
    },
    /// Lowered: perform the exchanges (synchronously, or just *start*
    /// them when `is_async`).
    HaloUpdate {
        exchanges: Vec<HaloXchg>,
        is_async: bool,
    },
    /// Lowered: wait for async exchanges to complete and unpack.
    HaloWait { exchanges: Vec<HaloXchg> },
    /// A loop nest over the spatial dimensions executing a cluster's
    /// statements at every point of `region`.
    SpaceLoop {
        cluster: Cluster,
        region: RegionKind,
        /// Loop-blocking tile edge (0 = unblocked).
        block: usize,
        /// Whether the outermost spatial dimension is thread-parallel.
        parallel: bool,
    },
    /// A named grouping (profiling sections, overlap regions).
    Section { name: String, body: Vec<Node> },
}

impl Node {
    /// Recursively map children through `f` (post-order on containers).
    pub fn map_children(self, f: &impl Fn(Node) -> Vec<Node>) -> Node {
        let map_body = |body: Vec<Node>| -> Vec<Node> {
            body.into_iter()
                .map(|n| n.map_children(f))
                .flat_map(f)
                .collect()
        };
        match self {
            Node::Callable { name, params, body } => Node::Callable {
                name,
                params,
                body: map_body(body),
            },
            Node::TimeLoop { body } => Node::TimeLoop {
                body: map_body(body),
            },
            Node::HaloSpot { exchanges, body } => Node::HaloSpot {
                exchanges,
                body: map_body(body),
            },
            Node::Section { name, body } => Node::Section {
                name,
                body: map_body(body),
            },
            leaf => leaf,
        }
    }

    /// Count nodes matching a predicate.
    pub fn count(&self, pred: &impl Fn(&Node) -> bool) -> usize {
        let mut n = usize::from(pred(self));
        match self {
            Node::Callable { body, .. }
            | Node::TimeLoop { body }
            | Node::HaloSpot { body, .. }
            | Node::Section { body, .. } => {
                n += body.iter().map(|c| c.count(pred)).sum::<usize>();
            }
            _ => {}
        }
        n
    }
}

/// Build the IET from clusters and the exchange plan. Every cluster's
/// loop nest is wrapped in a `HaloSpot` carrying its required exchanges
/// (empty for none); hoisted exchanges form a `HaloSpot` before the time
/// loop.
pub fn build_iet(
    clusters: Vec<Cluster>,
    plan: &HaloPlan,
    name: &str,
    block: usize,
    parallel: bool,
) -> Node {
    let mut params: Vec<(usize, IExpr)> = Vec::new();
    for cl in &clusters {
        for (i, def) in &cl.params {
            params.push((*i, def.clone()));
        }
    }
    let mut time_body = Vec::with_capacity(clusters.len());
    for (ci, cl) in clusters.into_iter().enumerate() {
        let loop_node = Node::SpaceLoop {
            cluster: cl,
            region: RegionKind::Domain,
            block,
            parallel,
        };
        time_body.push(Node::HaloSpot {
            exchanges: plan.per_cluster[ci].clone(),
            body: vec![loop_node],
        });
    }
    let mut body = Vec::new();
    if !plan.hoisted.is_empty() {
        body.push(Node::HaloSpot {
            exchanges: plan.hoisted.clone(),
            body: vec![],
        });
    }
    body.push(Node::TimeLoop { body: time_body });
    Node::Callable {
        name: name.to_string(),
        params,
        body,
    }
}

/// Pretty-printer reproducing the abbreviated IET listings of the paper.
pub struct IetPrinter<'a> {
    pub node: &'a Node,
    pub ctx: &'a Context,
}

impl fmt::Display for IetPrinter<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        print_node(self.node, self.ctx, 0, f)
    }
}

fn xchg_names(xs: &[HaloXchg], ctx: &Context) -> String {
    xs.iter()
        .map(|x| format!("{}[t{:+}]", ctx.field(x.field).name, x.time_offset))
        .collect::<Vec<_>>()
        .join(", ")
}

fn print_node(n: &Node, ctx: &Context, depth: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(depth);
    match n {
        Node::Callable { name, params, body } => {
            writeln!(f, "{pad}<Callable {name}>")?;
            for (i, def) in params {
                writeln!(f, "{pad}  <Expression r{i} = {def}>")?;
            }
            for c in body {
                print_node(c, ctx, depth + 1, f)?;
            }
            Ok(())
        }
        Node::TimeLoop { body } => {
            writeln!(f, "{pad}<[affine,sequential] Iteration time>")?;
            for c in body {
                print_node(c, ctx, depth + 1, f)?;
            }
            Ok(())
        }
        Node::HaloSpot { exchanges, body } => {
            writeln!(f, "{pad}<HaloSpot({}) >", xchg_names(exchanges, ctx))?;
            for c in body {
                print_node(c, ctx, depth + 1, f)?;
            }
            Ok(())
        }
        Node::HaloUpdate {
            exchanges,
            is_async,
        } => writeln!(
            f,
            "{pad}<HaloUpdateCall{}({})>",
            if *is_async { "[async]" } else { "" },
            xchg_names(exchanges, ctx)
        ),
        Node::HaloWait { exchanges } => {
            writeln!(f, "{pad}<HaloWaitCall({})>", xchg_names(exchanges, ctx))
        }
        Node::SpaceLoop {
            cluster,
            region,
            block,
            parallel,
        } => {
            let nd = cluster.ndim();
            let region_s = match region {
                RegionKind::Domain => "",
                RegionKind::Core => " CORE",
                RegionKind::Remainder => " REMAINDER",
            };
            for d in 0..nd {
                let props = if d == 0 && *parallel {
                    if *block > 0 {
                        "[affine,parallel,blocked]"
                    } else {
                        "[affine,parallel]"
                    }
                } else if d == nd - 1 {
                    "[affine,parallel,vector-dim]"
                } else {
                    "[affine,parallel]"
                };
                writeln!(
                    f,
                    "{}{props} Iteration x{d}{region_s}",
                    "  ".repeat(depth + d)
                )?;
            }
            let inner = "  ".repeat(depth + nd);
            for s in &cluster.stmts {
                match s {
                    Stmt::Let { temp, value } => {
                        writeln!(f, "{inner}<Expression tmp{temp} = {value}>")?
                    }
                    Stmt::Store { target, value } => {
                        let name = &ctx.field(target.field).name;
                        writeln!(
                            f,
                            "{inner}<Expression {name}[t{:+}] = {value}>",
                            target.time_offset
                        )?
                    }
                }
            }
            Ok(())
        }
        Node::Section { name, body } => {
            writeln!(f, "{pad}<Section {name}>")?;
            for c in body {
                print_node(c, ctx, depth + 1, f)?;
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clusterize;
    use crate::halo::detect_halo_exchanges;
    use crate::lowering::lower_equations;
    use mpix_symbolic::{Eq, Grid};

    fn diffusion_iet() -> (Node, Context) {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        (build_iet(cl, &plan, "Kernel", 0, true), ctx)
    }

    #[test]
    fn iet_contains_halospot_inside_time_loop() {
        let (iet, _ctx) = diffusion_iet();
        assert_eq!(iet.count(&|n| matches!(n, Node::HaloSpot { .. })), 1);
        assert_eq!(iet.count(&|n| matches!(n, Node::TimeLoop { .. })), 1);
        assert_eq!(iet.count(&|n| matches!(n, Node::SpaceLoop { .. })), 1);
    }

    #[test]
    fn printer_reproduces_listing5_shape() {
        let (iet, ctx) = diffusion_iet();
        let s = format!(
            "{}",
            IetPrinter {
                node: &iet,
                ctx: &ctx
            }
        );
        assert!(s.contains("<Callable Kernel>"), "{s}");
        assert!(s.contains("Iteration time"), "{s}");
        assert!(s.contains("<HaloSpot(u[t+0]) >"), "{s}");
        assert!(s.contains("vector-dim"), "{s}");
    }

    #[test]
    fn count_visits_nested_structure() {
        let (iet, _) = diffusion_iet();
        // Exactly one callable, everything reachable.
        assert_eq!(iet.count(&|n| matches!(n, Node::Callable { .. })), 1);
        assert!(iet.count(&|_| true) >= 4);
    }
}
