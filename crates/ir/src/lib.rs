//! # mpix-ir
//!
//! The compiler's intermediate representations, mirroring the two IR
//! levels of the paper (§II, Fig. 1):
//!
//! 1. **Cluster level** ([`cluster`]): symbolic equations are lowered to
//!    indexed form ([`iexpr`], [`lowering`]), grouped into [`Cluster`]s
//!    by data-dependence analysis, and scanned for required halo
//!    exchanges ([`halo`], §III f). Flop-reducing transformations live
//!    here: parameter extraction (loop-invariant code motion), common
//!    sub-expression elimination ([`passes::cse_cluster`]).
//! 2. **IET level** ([`iet`]): an iteration/expression tree with
//!    [`HaloSpot`](iet::Node::HaloSpot) nodes carrying exchange metadata
//!    (Listing 5), which the mode-lowering pass rewrites into
//!    `HaloUpdate`/`HaloWait` calls (Listing 6) — synchronously for
//!    *basic*/*diagonal*, or split into CORE + REMAINDER iterations with
//!    asynchronous update for *full* (§III g, h).
//!
//! A [`schedule::ScheduleTree`] sits between the two, reproducing the
//! abbreviated form of Listing 4.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod cluster;
pub mod halo;
pub mod iet;
pub mod iexpr;
pub mod lowering;
pub mod opcount;
pub mod passes;
pub mod precision;
pub mod schedule;

pub use cluster::{clusterize, Cluster, Stmt};
pub use halo::{detect_halo_exchanges, HaloPlan, HaloXchg};
pub use iet::{build_iet, Node, RegionKind};
pub use iexpr::{IExpr, IdxAccess};
pub use lowering::{lower_equations, LoweredEq, LoweringError};
pub use opcount::{op_counts, OpCounts};
pub use passes::{cse_cluster, lower_halo_spots};
pub use precision::{PrecisionMap, StoragePrecision, WireFormat};
