//! Halo-exchange detection (paper §III f, g).
//!
//! Runs at the Cluster level, where data-dependence analysis is
//! straightforward ("expressions still need to be optimized, and the
//! analysis is more straightforward than at later stages"). The detector
//! walks clusters in program order tracking which `(field, time buffer)`
//! halos are valid, and emits:
//!
//! * **hoisted** exchanges — time-invariant `Function`s (model
//!   parameters) are exchanged once before the time loop (the hoisting
//!   optimization of §III g);
//! * **per-cluster** exchange sets — time-varying buffers read at a
//!   nonzero stencil radius whose halo is dirty. Multiple fields needing
//!   exchange at the same position are *merged* into one set, and a
//!   buffer already exchanged this step and not rewritten is *dropped*
//!   (the drop/merge passes of §III g).

use std::collections::BTreeMap;

use mpix_symbolic::{Context, FieldId, FieldKind};

use crate::cluster::Cluster;

/// One required halo exchange: which buffer, how wide.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HaloXchg {
    pub field: FieldId,
    /// Relative time-buffer offset of the buffer to exchange.
    pub time_offset: i32,
    /// Exchange width per dimension (the detected stencil radius).
    pub radius: Vec<usize>,
}

/// The full exchange plan for one operator.
#[derive(Clone, Debug, Default)]
pub struct HaloPlan {
    /// Exchanged once, before the time loop.
    pub hoisted: Vec<HaloXchg>,
    /// Exchange set required immediately before each cluster.
    pub per_cluster: Vec<Vec<HaloXchg>>,
}

impl HaloPlan {
    /// Total number of (field, buffer) exchanges per time step.
    pub fn exchanges_per_step(&self) -> usize {
        self.per_cluster.iter().map(|v| v.len()).sum()
    }
}

/// Analyze clusters and build the exchange plan.
pub fn detect_halo_exchanges(clusters: &[Cluster], ctx: &Context) -> HaloPlan {
    let mut plan = HaloPlan {
        hoisted: Vec::new(),
        per_cluster: vec![Vec::new(); clusters.len()],
    };
    // Valid (exchanged, unwritten-since) halos this step: radius per dim.
    let mut clean: BTreeMap<(FieldId, i32), Vec<usize>> = BTreeMap::new();

    for (ci, cl) in clusters.iter().enumerate() {
        for (f, toff, radius) in cl.reads() {
            if radius.iter().all(|&r| r == 0) {
                continue; // center-only read: no halo needed
            }
            match ctx.field(f).kind {
                FieldKind::Function => {
                    // Never written inside the loop: hoist, taking the max
                    // radius over all uses.
                    merge_xchg(&mut plan.hoisted, f, toff, &radius);
                }
                FieldKind::TimeFunction => {
                    let covered = clean
                        .get(&(f, toff))
                        .map(|c| radius.iter().zip(c).all(|(r, cr)| r <= cr))
                        .unwrap_or(false);
                    if !covered {
                        merge_xchg(&mut plan.per_cluster[ci], f, toff, &radius);
                        let entry = clean.entry((f, toff)).or_insert_with(|| radius.clone());
                        for d in 0..radius.len() {
                            entry[d] = entry[d].max(radius[d]);
                        }
                    }
                }
            }
        }
        // Writes dirty their buffer.
        for (f, toff) in cl.writes() {
            clean.remove(&(f, toff));
        }
    }
    plan
}

fn merge_xchg(list: &mut Vec<HaloXchg>, f: FieldId, toff: i32, radius: &[usize]) {
    if let Some(x) = list
        .iter_mut()
        .find(|x| x.field == f && x.time_offset == toff)
    {
        for d in 0..radius.len() {
            x.radius[d] = x.radius[d].max(radius[d]);
        }
    } else {
        list.push(HaloXchg {
            field: f,
            time_offset: toff,
            radius: radius.to_vec(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::clusterize;
    use crate::lowering::lower_equations;
    use mpix_symbolic::{Eq, Grid};

    #[test]
    fn acoustic_needs_one_exchange_of_current_buffer() {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        // m is read at the center only -> nothing hoisted.
        assert!(plan.hoisted.is_empty());
        assert_eq!(plan.per_cluster.len(), 1);
        assert_eq!(plan.per_cluster[0].len(), 1);
        let x = &plan.per_cluster[0][0];
        assert_eq!(x.field, u.id());
        assert_eq!(x.time_offset, 0);
        assert_eq!(x.radius, vec![2, 2]); // so 4 -> radius 2
    }

    #[test]
    fn function_read_at_offset_is_hoisted() {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 1);
        let c = ctx.add_function("c", &g, 4);
        // u.forward = dx(c) + u: reads c at radius 2, but c is constant in
        // time -> exchange once before the loop.
        let eq = Eq::new(u.forward(), c.dx(0) + u.center());
        let cl = clusterize(&lower_equations(&[eq], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        assert_eq!(plan.hoisted.len(), 1);
        assert_eq!(plan.hoisted[0].field, c.id());
        assert!(plan.per_cluster[0].is_empty());
    }

    #[test]
    fn coupled_system_exchanges_fresh_buffer_between_clusters() {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let v = ctx.add_time_function("v", &g, 4, 1);
        let tau = ctx.add_time_function("tau", &g, 4, 1);
        // v.forward = laplace(tau); tau.forward = laplace(v.forward):
        // elastic-style coupling -> exchange tau[t] before cluster 0 and
        // v[t+1] before cluster 1.
        let eq1 = Eq::new(v.forward(), tau.laplace());
        let lap_v_fwd = mpix_symbolic::eq::lower_time_derivs(&v.laplace(), &ctx)
            .unwrap()
            .shifted_time(1);
        let eq2 = Eq::new(tau.forward(), lap_v_fwd);
        let cl = clusterize(&lower_equations(&[eq1, eq2], &ctx).unwrap());
        assert_eq!(cl.len(), 2);
        let plan = detect_halo_exchanges(&cl, &ctx);
        assert_eq!(plan.per_cluster[0].len(), 1);
        assert_eq!(plan.per_cluster[0][0].field, tau.id());
        assert_eq!(plan.per_cluster[0][0].time_offset, 0);
        assert_eq!(plan.per_cluster[1].len(), 1);
        assert_eq!(plan.per_cluster[1][0].field, v.id());
        assert_eq!(plan.per_cluster[1][0].time_offset, 1);
    }

    #[test]
    fn repeated_clean_read_is_dropped() {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 1);
        let a = ctx.add_time_function("a", &g, 4, 1);
        let b = ctx.add_time_function("b", &g, 4, 1);
        // Two clusters both read u[t] at offset; u is not written in
        // between -> only the first needs the exchange (drop pass).
        let eq1 = Eq::new(a.forward(), u.laplace());
        let lap_a_fwd = mpix_symbolic::eq::lower_time_derivs(&a.laplace(), &ctx)
            .unwrap()
            .shifted_time(1);
        let eq2 = Eq::new(b.forward(), lap_a_fwd + u.laplace());
        let cl = clusterize(&lower_equations(&[eq1, eq2], &ctx).unwrap());
        assert_eq!(cl.len(), 2);
        let plan = detect_halo_exchanges(&cl, &ctx);
        let cluster1_fields: Vec<FieldId> = plan.per_cluster[1].iter().map(|x| x.field).collect();
        assert!(cluster1_fields.contains(&a.id()));
        assert!(
            !cluster1_fields.contains(&u.id()),
            "u[t] halo still clean — exchange must be dropped"
        );
    }

    #[test]
    fn merged_exchange_takes_max_radius() {
        let mut ctx = Context::new();
        let g = Grid::new(&[64, 64], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 8, 1);
        let a = ctx.add_time_function("a", &g, 8, 1);
        // One cluster, two reads of u at different radii (dx radius 4 via
        // so-8 first derivative; explicit narrow access radius 1).
        let eq1 = Eq::new(a.forward(), u.dx(0) + u.at(0, &[1, 0]));
        let cl = clusterize(&lower_equations(&[eq1], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        assert_eq!(plan.per_cluster[0].len(), 1);
        assert_eq!(plan.per_cluster[0][0].radius, vec![4, 0]);
    }
}
