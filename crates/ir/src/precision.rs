//! Per-field precision annotations (ROADMAP item 4 groundwork).
//!
//! Today every backend computes and stores in f32 and ships halos as
//! native f32 on the wire. Mixed-precision codegen will make both
//! choices per-field parameters; this module is the IR-level vocabulary
//! for those choices, and `mpix-analysis::fp` is the gate that decides
//! which assignments are numerically safe *before* any lowering
//! consumes them: a precision certificate bounds each field's rounding
//! error under every [`StoragePrecision`] × [`WireFormat`] combination,
//! so demotions are proven, not guessed.

use std::collections::BTreeMap;

use mpix_symbolic::FieldId;

/// Element type a field's buffers are stored (and computed) in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum StoragePrecision {
    F64,
    /// What every shipped backend implements today.
    F32,
    Bf16,
}

impl StoragePrecision {
    pub const ALL: [StoragePrecision; 3] = [
        StoragePrecision::F64,
        StoragePrecision::F32,
        StoragePrecision::Bf16,
    ];

    pub fn name(self) -> &'static str {
        match self {
            StoragePrecision::F64 => "f64",
            StoragePrecision::F32 => "f32",
            StoragePrecision::Bf16 => "bf16",
        }
    }

    /// Unit roundoff `u = 2^-(p)` for `p` significand bits (including
    /// the hidden bit): the relative error bound of one correctly
    /// rounded operation at this precision.
    pub fn unit_roundoff(self) -> f64 {
        match self {
            StoragePrecision::F64 => (2.0f64).powi(-53),
            StoragePrecision::F32 => (2.0f64).powi(-24),
            StoragePrecision::Bf16 => (2.0f64).powi(-8),
        }
    }

    /// Bytes per element.
    pub fn bytes(self) -> usize {
        match self {
            StoragePrecision::F64 => 8,
            StoragePrecision::F32 => 4,
            StoragePrecision::Bf16 => 2,
        }
    }
}

/// Element type halo exchanges put on the wire. Demotion below the
/// storage precision halves (or quarters) `bytes_per_exchange` at the
/// cost of one extra rounding per exchanged cell per step.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum WireFormat {
    /// Ship storage bits unchanged (today's behaviour).
    Native,
    Bf16,
    F16,
}

impl WireFormat {
    pub const ALL: [WireFormat; 3] = [WireFormat::Native, WireFormat::Bf16, WireFormat::F16];

    pub fn name(self) -> &'static str {
        match self {
            WireFormat::Native => "native",
            WireFormat::Bf16 => "bf16",
            WireFormat::F16 => "f16",
        }
    }

    /// Unit roundoff of the demotion, or `None` when the wire carries
    /// storage bits exactly.
    pub fn unit_roundoff(self) -> Option<f64> {
        match self {
            WireFormat::Native => None,
            WireFormat::Bf16 => Some((2.0f64).powi(-8)),
            WireFormat::F16 => Some((2.0f64).powi(-11)),
        }
    }
}

/// The operator-level precision assignment: per-field storage choices
/// over a default, plus one wire format for halo traffic. Fields not
/// explicitly annotated use the default.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PrecisionMap {
    pub default: StoragePrecision,
    pub wire: WireFormat,
    overrides: BTreeMap<FieldId, StoragePrecision>,
}

impl Default for PrecisionMap {
    /// The shipped configuration: f32 everywhere, native wire.
    fn default() -> PrecisionMap {
        PrecisionMap {
            default: StoragePrecision::F32,
            wire: WireFormat::Native,
            overrides: BTreeMap::new(),
        }
    }
}

impl PrecisionMap {
    pub fn with_field(mut self, f: FieldId, p: StoragePrecision) -> PrecisionMap {
        self.overrides.insert(f, p);
        self
    }

    pub fn storage(&self, f: FieldId) -> StoragePrecision {
        self.overrides.get(&f).copied().unwrap_or(self.default)
    }

    /// Fields annotated away from the default.
    pub fn overrides(&self) -> impl Iterator<Item = (FieldId, StoragePrecision)> + '_ {
        self.overrides.iter().map(|(&f, &p)| (f, p))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_roundoffs_are_ordered_by_width() {
        assert!(StoragePrecision::F64.unit_roundoff() < StoragePrecision::F32.unit_roundoff());
        assert!(StoragePrecision::F32.unit_roundoff() < StoragePrecision::Bf16.unit_roundoff());
        // bf16 keeps f32's exponent but only 8 significand bits; f16
        // carries 11 — a bf16 wire is *coarser* than an f16 wire.
        assert!(WireFormat::Bf16.unit_roundoff() > WireFormat::F16.unit_roundoff());
        assert_eq!(WireFormat::Native.unit_roundoff(), None);
    }

    #[test]
    fn map_defaults_and_overrides() {
        let f0 = FieldId(0);
        let f1 = FieldId(1);
        let m = PrecisionMap::default().with_field(f1, StoragePrecision::F64);
        assert_eq!(m.storage(f0), StoragePrecision::F32);
        assert_eq!(m.storage(f1), StoragePrecision::F64);
        assert_eq!(m.overrides().count(), 1);
        assert_eq!(m.wire, WireFormat::Native);
    }
}
