//! # mpix-bench
//!
//! The benchmark harness: regenerates every table and figure of the
//! paper's evaluation (see DESIGN.md §4 for the index) and hosts the
//! Criterion micro-benchmarks.
//!
//! * [`profiles`] — builds [`mpix_perf::KernelProfile`]s from *real
//!   compiled operators* (flops, streams, exchange plan all come from
//!   the compiler).
//! * [`paper`] — the paper's reference numbers (appendix tables
//!   III–XXXIV), embedded for side-by-side comparison columns.
//! * [`tables`] — table formatting and the experiment drivers used by
//!   the `tables` binary.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod lint_json;
pub mod paper;
pub mod profiles;
pub mod tables;

pub use lint_json::lint_finding_json;
pub use profiles::profile_for;
