//! The stable JSON shape of one `mpix-lint --json` finding.
//!
//! `mpix-lint --json` is the machine-readable face of the lint gate;
//! downstream tooling (baselines, dashboards, CI annotators) parses it,
//! so the object layout is a compatibility surface: the [`Diagnostic`]
//! fields in their fixed order (`severity`, `pass`, `location`,
//! `explanation`, `code`) with the post-override registry `level`
//! appended **last**, keeping the object a strict extension of
//! `Diagnostic::to_json`. Golden-tested in `tests/lint_json_golden.rs`.

use mpix_analysis::lint::LintConfig;
use mpix_json::Value;
use mpix_trace::Diagnostic;

/// One finding as `mpix-lint --json` emits it: the diagnostic plus the
/// configured lint level that gated it (after `MPIX_LINT` overrides).
/// Findings without a code (non-lint diagnostics) carry no `level`.
pub fn lint_finding_json(d: &Diagnostic, cfg: &LintConfig) -> Value {
    let mut j = d.to_json();
    if let (Value::Obj(kv), Some(code)) = (&mut j, d.code.as_deref()) {
        kv.push((
            "level".to_string(),
            Value::Str(cfg.level(code).name().to_string()),
        ));
    }
    j
}
