//! `mpix-verify` — run the compiler self-verification passes across the
//! full shipped-solver matrix.
//!
//! ```text
//! cargo run -p mpix-bench --bin mpix-verify                 # full matrix
//! cargo run -p mpix-bench --bin mpix-verify -- --json       # JSON report
//! cargo run -p mpix-bench --bin mpix-verify -- acoustic 8   # one kernel/SDO
//! cargo run -p mpix-bench --bin mpix-verify -- --san        # runtime sweep
//! cargo run -p mpix-bench --bin mpix-verify -- --backends=jit   # one backend
//! ```
//!
//! Sweeps every shipped solver × space discretization order {4, 8, 12,
//! 16} × all three halo-exchange modes (basic / diagonal / full) on 1-,
//! 2- and 4-rank topologies, plus the thread-slab and vector-strip
//! proofs and the backend bitwise-equivalence gate (every backend named
//! by `--backends`, default all available on this host, against the
//! scalar bytecode oracle). Exits nonzero if any pass reports a
//! diagnostic of severity Error or worse — the CI gate that generated
//! artifacts stay provably sound.
//!
//! `--san` switches from the static passes to the `mpix-san` dynamic
//! sweep: *execute* each configuration for a few time steps under the
//! happens-before sanitizer and require zero findings — the
//! false-positive gate for shipped solvers. Tiny domains keep the full
//! matrix under a few minutes.

use mpix_analysis::{AnalysisConfig, LintConfig};
use mpix_core::{available_backends, Backend, Workspace};
use mpix_dmp::HaloMode;
use mpix_json::Value;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};
use mpix_trace::Severity;

/// Solver shape for one kernel: large enough that every swept topology
/// keeps a stencil radius's worth of points per rank per dimension.
fn sweep_shape(kind: KernelKind) -> &'static [usize] {
    match kind {
        KernelKind::Acoustic => &[40, 40],
        _ => &[16, 16, 16],
    }
}

/// The `--san` sweep: run every kernel × SDO × mode × rank count for
/// real under the sanitizer and count findings. Any `mpix-san/*`
/// diagnostic on a shipped configuration is a false positive (the
/// mutant corpus in `tests/sanitizer.rs` proves the detectors *can*
/// fire), so the exit status is nonzero iff any report appears.
fn san_sweep(kernels: &[KernelKind], orders: &[u32], ranks_list: &[usize], json: bool) {
    let nt = 4i64;
    let mut entries: Vec<Value> = Vec::new();
    let mut total_reports = 0usize;
    let mut configs = 0usize;
    for &kind in kernels {
        for &so in orders {
            let spec = ModelSpec::new(sweep_shape(kind)).with_nbl(4);
            let prop = Propagator::build(kind, spec, so);
            for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
                for &ranks in ranks_list {
                    let pref = &prop;
                    let init = move |ws: &mut Workspace| {
                        pref.init(ws);
                        pref.add_ricker_source(ws, 18.0, nt as usize);
                    };
                    let opts = prop
                        .apply_options(nt)
                        .with_mode(mode)
                        .with_ranks(ranks)
                        .with_threads(2)
                        .with_verify(false)
                        .with_sanitize(true);
                    let summary = prop.op.run(&opts, init, |_| ()).summary;
                    let findings: Vec<&mpix_trace::Diagnostic> = summary
                        .diagnostics
                        .iter()
                        .filter(|d| d.pass.starts_with("mpix-san/"))
                        .collect();
                    configs += 1;
                    total_reports += findings.len();
                    if json {
                        entries.push(Value::Obj(vec![
                            ("kernel".to_string(), Value::Str(kind.name().to_string())),
                            ("so".to_string(), Value::Num(so as f64)),
                            (
                                "mode".to_string(),
                                Value::Str(format!("{mode:?}").to_lowercase()),
                            ),
                            ("ranks".to_string(), Value::Num(ranks as f64)),
                            ("reports".to_string(), Value::Num(findings.len() as f64)),
                        ]));
                    } else {
                        let status = if findings.is_empty() {
                            "clean".to_string()
                        } else {
                            format!("{} report(s)", findings.len())
                        };
                        println!(
                            "{:<14} so={:<3} mode={:<6} ranks={} {status}",
                            kind.name(),
                            so,
                            format!("{mode:?}").to_lowercase(),
                            ranks
                        );
                        for d in &findings {
                            println!("    {d}");
                        }
                    }
                }
            }
        }
    }
    if json {
        let out = Value::Obj(vec![
            ("results".to_string(), Value::Arr(entries)),
            ("configs".to_string(), Value::Num(configs as f64)),
            ("reports".to_string(), Value::Num(total_reports as f64)),
        ]);
        println!("{}", out.pretty());
    } else {
        println!("\nmpix-verify --san: {configs} configuration(s), {total_reports} finding(s)");
    }
    if total_reports > 0 {
        std::process::exit(1);
    }
}

const HELP: &str = "\
mpix-verify — compiler self-verification over the shipped-solver matrix

USAGE:
    mpix-verify [FLAGS] [KERNEL [SPACE_ORDER]]

FLAGS:
    --json             machine-readable JSON report on stdout
    --deny-warnings    treat Warning diagnostics as fatal (see EXIT CODES)
    --san              dynamic sanitizer sweep instead of the static passes
    --backends=A,B     restrict the equivalence gate to named backends
    --ranks=N,M        rank counts to sweep (default 1,2,4)
    --help             print this message

EXIT CODES:
    0    every configuration verified clean (no Error diagnostics; with
         --deny-warnings, no Warning diagnostics either)
    1    at least one diagnostic at Severity::Error or worse, or — under
         --deny-warnings — at Severity::Warning; with --san, at least
         one sanitizer finding

Lint findings from the MPX registry run as pass 0 of verification; use
MPIX_LINT=\"MPX004=allow,...\" to adjust per-code levels.";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let san = args.iter().any(|a| a == "--san");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    // Backend axis for the equivalence gate: `--backends=jit` or
    // `--backends=bytecode,jit`; unknown names abort with the
    // available-backend listing, so a CI matrix leg cannot silently
    // verify nothing.
    let backends: Vec<Backend> = match args.iter().find_map(|a| a.strip_prefix("--backends=")) {
        Some(list) => list
            .split(',')
            .map(|name| name.parse().unwrap_or_else(|e| panic!("--backends: {e}")))
            .collect(),
        None => available_backends(),
    };
    // Rank-count axis: `--ranks=32` or `--ranks=1,2,4,32`. The default
    // toy counts keep the full matrix fast; CI adds a dedicated P=32 leg
    // so the sharded mailboxes and per-rank pools are exercised (and
    // sanitized) well past the counts the unit tests use.
    let ranks_list: Vec<usize> = match args.iter().find_map(|a| a.strip_prefix("--ranks=")) {
        Some(list) => list
            .split(',')
            .map(|r| r.parse().unwrap_or_else(|e| panic!("--ranks: {e}")))
            .collect(),
        None => vec![1, 2, 4],
    };
    let pos: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let kernels: Vec<KernelKind> = match pos.first() {
        Some(name) => vec![*KernelKind::all()
            .iter()
            .find(|k| k.name() == name.as_str())
            .unwrap_or_else(|| panic!("unknown kernel {name:?}"))],
        None => KernelKind::all().to_vec(),
    };
    let orders: Vec<u32> = match pos.get(1) {
        Some(so) => vec![so.parse().expect("space order")],
        None => vec![4, 8, 12, 16],
    };

    if san {
        san_sweep(&kernels, &orders, &ranks_list, json);
        return;
    }

    let cfg = AnalysisConfig {
        modes: vec![HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full],
        ranks: ranks_list,
        threads: vec![2, 3, 4],
        vector_widths: vec![8, 16, 32],
        backends,
        check_fused_semantics: true,
        lint: Some(LintConfig::from_env()),
    };

    let mut worst: Option<Severity> = None;
    let mut entries: Vec<Value> = Vec::new();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for &kind in &kernels {
        for &so in &orders {
            // Domain large enough that every swept topology keeps the
            // stencil radius's worth of points per rank per dimension
            // (so=16 -> radius 8; 4 ranks on 24³ leave 12 a side). The
            // acoustic kernel is dimension-agnostic, so it covers the
            // 2-D path; the other three are 3-D by construction.
            let spec = ModelSpec::new(sweep_shape(kind)).with_nbl(4);
            let prop = Propagator::build(kind, spec, so);
            let report = prop.op.verify(&cfg);
            worst = worst.max(report.max_severity());
            total_errors += report.count(Severity::Error);
            total_warnings += report.count(Severity::Warning);
            if json {
                let mut obj = vec![
                    ("kernel".to_string(), Value::Str(kind.name().to_string())),
                    ("so".to_string(), Value::Num(so as f64)),
                ];
                if let Value::Obj(fields) = report.to_json() {
                    obj.extend(fields);
                }
                entries.push(Value::Obj(obj));
            } else {
                let status = match report.max_severity() {
                    None => "clean".to_string(),
                    Some(s) => format!(
                        "{} ({} error(s), {} warning(s))",
                        s,
                        report.count(Severity::Error),
                        report.count(Severity::Warning)
                    ),
                };
                println!("{:<14} so={:<3} {status}", kind.name(), so);
                for d in &report.diagnostics {
                    println!("    {d}");
                }
            }
        }
    }

    if json {
        let out = Value::Obj(vec![
            ("results".to_string(), Value::Arr(entries)),
            ("errors".to_string(), Value::Num(total_errors as f64)),
            ("warnings".to_string(), Value::Num(total_warnings as f64)),
        ]);
        println!("{}", out.pretty());
    } else {
        println!(
            "\nmpix-verify: {} configuration(s), {total_errors} error(s), \
             {total_warnings} warning(s)",
            kernels.len() * orders.len()
        );
    }
    // Exit-code contract (see --help): Error always gates; Warning gates
    // only under --deny-warnings.
    let gate = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    if worst >= Some(gate) {
        std::process::exit(1);
    }
}
