//! `mpix-verify` — run the compiler self-verification passes across the
//! full shipped-solver matrix.
//!
//! ```text
//! cargo run -p mpix-bench --bin mpix-verify                 # full matrix
//! cargo run -p mpix-bench --bin mpix-verify -- --json       # JSON report
//! cargo run -p mpix-bench --bin mpix-verify -- acoustic 8   # one kernel/SDO
//! ```
//!
//! Sweeps every shipped solver × space discretization order {4, 8, 12,
//! 16} × all three halo-exchange modes (basic / diagonal / full) on 1-,
//! 2- and 4-rank topologies, plus the thread-slab and vector-strip
//! proofs. Exits nonzero if any pass reports a diagnostic of severity
//! Error or worse — the CI gate that generated artifacts stay provably
//! sound.

use mpix_analysis::AnalysisConfig;
use mpix_dmp::HaloMode;
use mpix_json::Value;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};
use mpix_trace::Severity;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let pos: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    let kernels: Vec<KernelKind> = match pos.first() {
        Some(name) => vec![*KernelKind::all()
            .iter()
            .find(|k| k.name() == name.as_str())
            .unwrap_or_else(|| panic!("unknown kernel {name:?}"))],
        None => KernelKind::all().to_vec(),
    };
    let orders: Vec<u32> = match pos.get(1) {
        Some(so) => vec![so.parse().expect("space order")],
        None => vec![4, 8, 12, 16],
    };

    let cfg = AnalysisConfig {
        modes: vec![HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full],
        ranks: vec![1, 2, 4],
        threads: vec![2, 3, 4],
        vector_widths: vec![8, 16, 32],
        check_fused_semantics: true,
    };

    let mut worst: Option<Severity> = None;
    let mut entries: Vec<Value> = Vec::new();
    let mut total_errors = 0usize;
    let mut total_warnings = 0usize;
    for &kind in &kernels {
        for &so in &orders {
            // Domain large enough that every swept topology keeps the
            // stencil radius's worth of points per rank per dimension
            // (so=16 -> radius 8; 4 ranks on 24³ leave 12 a side). The
            // acoustic kernel is dimension-agnostic, so it covers the
            // 2-D path; the other three are 3-D by construction.
            let shape: &[usize] = match kind {
                KernelKind::Acoustic => &[40, 40],
                _ => &[16, 16, 16],
            };
            let spec = ModelSpec::new(shape).with_nbl(4);
            let prop = Propagator::build(kind, spec, so);
            let report = prop.op.verify(&cfg);
            worst = worst.max(report.max_severity());
            total_errors += report.count(Severity::Error);
            total_warnings += report.count(Severity::Warning);
            if json {
                let mut obj = vec![
                    ("kernel".to_string(), Value::Str(kind.name().to_string())),
                    ("so".to_string(), Value::Num(so as f64)),
                ];
                if let Value::Obj(fields) = report.to_json() {
                    obj.extend(fields);
                }
                entries.push(Value::Obj(obj));
            } else {
                let status = match report.max_severity() {
                    None => "clean".to_string(),
                    Some(s) => format!(
                        "{} ({} error(s), {} warning(s))",
                        s,
                        report.count(Severity::Error),
                        report.count(Severity::Warning)
                    ),
                };
                println!("{:<14} so={:<3} {status}", kind.name(), so);
                for d in &report.diagnostics {
                    println!("    {d}");
                }
            }
        }
    }

    if json {
        let out = Value::Obj(vec![
            ("results".to_string(), Value::Arr(entries)),
            ("errors".to_string(), Value::Num(total_errors as f64)),
            ("warnings".to_string(), Value::Num(total_warnings as f64)),
        ]);
        println!("{}", out.pretty());
    } else {
        println!(
            "\nmpix-verify: {} configuration(s), {total_errors} error(s), \
             {total_warnings} warning(s)",
            kernels.len() * orders.len()
        );
    }
    if worst >= Some(Severity::Error) {
        std::process::exit(1);
    }
}
