//! Regenerate every table and figure of the paper's evaluation.
//!
//! ```text
//! cargo run -p mpix-bench --release --bin tables            # everything
//! cargo run -p mpix-bench --release --bin tables -- strong-cpu
//! cargo run -p mpix-bench --release --bin tables -- strong-gpu
//! cargo run -p mpix-bench --release --bin tables -- weak
//! cargo run -p mpix-bench --release --bin tables -- fig7
//! cargo run -p mpix-bench --release --bin tables -- table1
//! cargo run -p mpix-bench --release --bin tables -- trends
//! cargo run -p mpix-bench --release --bin tables -- validate   # real multi-rank runs
//! cargo run -p mpix-bench --release --bin tables -- perf       # per-rank PerfSummary
//! cargo run -p mpix-bench --release --bin tables -- bench-kernels [--quick]
//! #   scalar vs vectorized interpreter GPts/s -> BENCH_kernels.json
//! cargo run -p mpix-bench --release --bin tables -- bench-halo [--quick] [--ranks-sweep]
//! #   persistent-plan vs legacy halo exchange latency -> BENCH_comm.json
//! #   --ranks-sweep adds weak-scaled P in {8,32,128,256,512}: sharded
//! #   substrate vs single-shard baseline, parks + collective-algo columns
//! ```

use mpix_bench::tables;
use mpix_core::Workspace;
use mpix_dmp::HaloMode;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let what = args.first().map(String::as_str).unwrap_or("all");
    match what {
        "table1" => tables::print_table1(),
        "fig7" => tables::print_fig7(),
        "strong-cpu" => strong_cpu(&args),
        "strong-gpu" => strong_gpu(&args),
        "strong" => {
            strong_cpu(&args);
            strong_gpu(&args);
        }
        "weak" => {
            for sdo in sdo_filter(&args) {
                tables::print_weak(sdo);
            }
        }
        "trends" => {
            tables::trend_report();
            tables::accuracy_report();
        }
        "validate" => validate(),
        "perf" => tables::print_perf(),
        "bench-kernels" => bench_kernels(&args),
        "bench-halo" => bench_halo(&args),
        "json" => println!("{}", tables::json_dump()),
        "crossovers" => tables::print_crossovers(),
        "all" => {
            tables::print_table1();
            tables::print_fig7();
            strong_cpu(&args);
            strong_gpu(&args);
            for sdo in [4, 8, 12, 16] {
                tables::print_weak(sdo);
            }
            tables::trend_report();
            tables::accuracy_report();
            tables::print_crossovers();
            validate();
            tables::print_perf();
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the header comment");
            std::process::exit(1);
        }
    }
}

/// Measure scalar-vs-vector interpreter throughput and write the JSON
/// record to `BENCH_kernels.json` (`--quick` = CI smoke size).
fn bench_kernels(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let json = tables::bench_kernels_json(quick);
    let path = "BENCH_kernels.json";
    std::fs::write(path, &json).expect("write BENCH_kernels.json");
    println!("\nwrote {path}");
}

/// Measure persistent-plan vs legacy halo-exchange latency per mode and
/// radius and write the record to `BENCH_comm.json` (`--quick` = CI
/// smoke size; `--ranks-sweep` adds the weak-scaling P ∈ {8..512} axis
/// comparing the sharded substrate against the single-shard baseline).
fn bench_halo(args: &[String]) {
    let quick = args.iter().any(|a| a == "--quick");
    let ranks_sweep = args.iter().any(|a| a == "--ranks-sweep");
    let json = tables::bench_halo_json_opts(quick, ranks_sweep);
    let path = "BENCH_comm.json";
    std::fs::write(path, &json).expect("write BENCH_comm.json");
    println!("\nwrote {path}");
}

fn sdo_filter(args: &[String]) -> Vec<u32> {
    args.iter()
        .position(|a| a == "--sdo")
        .and_then(|i| args.get(i + 1))
        .and_then(|s| s.parse().ok())
        .map(|s| vec![s])
        .unwrap_or_else(|| vec![4, 8, 12, 16])
}

fn strong_cpu(args: &[String]) {
    for kind in KernelKind::all() {
        for sdo in sdo_filter(args) {
            tables::print_cpu_table(kind, sdo);
        }
    }
}

fn strong_gpu(args: &[String]) {
    for kind in KernelKind::all() {
        for sdo in sdo_filter(args) {
            tables::print_gpu_table(kind, sdo);
        }
    }
}

/// Run every kernel for real on 1 and 8 simulated ranks, all modes, and
/// report numerical deviation plus measured message counts — grounding
/// the model in executed code.
fn validate() {
    println!("\n## Validation: real simulated-MPI runs (8 ranks vs serial), so-4, 16³+ABC");
    println!(
        "{:<14} {:<10} {:>14} {:>12} {:>13}",
        "kernel", "mode", "max rel. dev.", "msgs/rank", "GPts/s (real)"
    );
    for kind in KernelKind::all() {
        let spec = ModelSpec::new(&[16, 16, 16]).with_nbl(2);
        let p = Propagator::build(kind, spec, 4);
        let nt = 8i64;
        let opts = p.apply_options(nt);
        let pref = &p;
        let init = move |ws: &mut Workspace| {
            pref.init(ws);
            pref.add_ricker_source(ws, 18.0, nt as usize);
        };
        let serial =
            p.op.run(&opts, init, |ws| ws.gather(pref.main_field()))
                .results
                .remove(0);
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            let opts = opts.clone().with_mode(mode).with_ranks(8);
            let t0 = std::time::Instant::now();
            let out =
                p.op.run(&opts, init, |ws| {
                    (
                        ws.gather(pref.main_field()),
                        ws.cart.comm().stats().msgs_sent,
                    )
                })
                .results;
            let wall = t0.elapsed().as_secs_f64();
            let mut max_dev = 0.0f64;
            for (a, b) in out[0].0.iter().zip(&serial) {
                let dev = ((a - b).abs() / b.abs().max(1.0)) as f64;
                max_dev = max_dev.max(dev);
            }
            let msgs = out.iter().map(|(_, m)| m).max().unwrap();
            let gpts = p.points_per_step() as f64 * nt as f64 / wall / 1e9;
            println!(
                "{:<14} {:<10} {:>14.2e} {:>12} {:>13.4}",
                kind.name(),
                format!("{mode:?}"),
                max_dev,
                msgs,
                gpts
            );
            assert!(max_dev < 1e-3, "{kind:?} {mode:?} diverged: {max_dev}");
        }
    }
    println!("all modes numerically equivalent to serial execution ✓");
}
