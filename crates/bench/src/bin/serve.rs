//! `mpix-serve` — the long-running solver service driver.
//!
//! ```text
//! cargo run --release -p mpix-bench --bin mpix-serve                # demo workload
//! cargo run --release -p mpix-bench --bin mpix-serve -- --jobs 48  # bigger mix
//! cargo run --release -p mpix-bench --bin mpix-serve -- --smoke    # CI gate
//! ```
//!
//! Streams one compact JSON line per finished job (cache hit/miss,
//! admission price, the run's `PerfSummary` with diagnostics) followed
//! by a final `serve.summary` line with the cache hit rate — `tail`able
//! while the service runs.
//!
//! `--smoke` is the CI gate: submit a ~100-job concurrent mixed
//! workload (kernel × SDO × mode × ranks) with the happens-before
//! sanitizer armed on every job, then require
//!
//! * every job finished (`done == jobs`, nothing failed or rejected),
//! * zero `mpix-san/*` findings across all streamed summaries,
//! * compilation ran exactly once per unique content key — both the
//!   cache's own counters (`compiles == misses == unique keys`) and the
//!   process-global `mpix_codegen::exec_compiles()` delta must agree,
//! * the final summary line reports the cache hit rate.
//!
//! Exit status is nonzero on any violation.

use std::collections::HashSet;
use std::sync::{Arc, Mutex};

use mpix_core::serve::{Job, RecordSink, ServeConfig, Server};
use mpix_dmp::HaloMode;
use mpix_json::Value;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};
use mpix_trace::JsonlSink;

/// One workload entry: a compiled propagator and the options its jobs
/// run with. Several jobs share one entry (same physics, same mode —
/// cache hits); entries differ in kernel, SDO, mode, or rank count.
struct Workload {
    prop: Arc<Propagator>,
    mode: HaloMode,
    ranks: usize,
    nt: i64,
}

/// A small-domain mixed matrix: two kernels × two SDOs × two modes ×
/// two rank counts. Domains are tiny — the point is concurrency and
/// cache behaviour, not throughput.
fn build_workload() -> Vec<Workload> {
    let mut entries = Vec::new();
    for kind in [KernelKind::Acoustic, KernelKind::Elastic] {
        for so in [4u32, 8] {
            let shape: &[usize] = match kind {
                KernelKind::Acoustic => &[24, 24],
                _ => &[12, 12, 12],
            };
            let prop = Arc::new(Propagator::build(
                kind,
                ModelSpec::new(shape).with_nbl(2),
                so,
            ));
            for mode in [HaloMode::Basic, HaloMode::Diagonal] {
                for ranks in [1usize, 4] {
                    entries.push(Workload {
                        prop: Arc::clone(&prop),
                        mode,
                        ranks,
                        nt: 2,
                    });
                }
            }
        }
    }
    entries
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut jobs_target: usize = if smoke { 100 } else { 24 };
    if let Some(i) = args.iter().position(|a| a == "--jobs") {
        jobs_target = args
            .get(i + 1)
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| panic!("--jobs takes a positive integer"));
    }

    let compiles_before = mpix_codegen::exec_compiles();
    let workload = build_workload();

    // Expected unique keys: every (operator content, mode, backend, vw)
    // combination in the workload. Rank count is a *launch* parameter —
    // it must not key the cache.
    let mut expected_keys: HashSet<u64> = HashSet::new();
    for w in workload.iter().take(jobs_target.max(1)) {
        let opts = w.prop.apply_options(w.nt).with_mode(w.mode);
        expected_keys.insert(w.prop.op.content_key(&opts));
    }

    let stdout_sink = Arc::new(JsonlSink::stdout());
    let records: Arc<Mutex<Vec<Value>>> = Arc::new(Mutex::new(Vec::new()));
    let sink: RecordSink = {
        let stdout_sink = Arc::clone(&stdout_sink);
        let records = Arc::clone(&records);
        Arc::new(move |v: &Value| {
            stdout_sink.write(v);
            records.lock().unwrap().push(v.clone());
        })
    };

    let cfg = ServeConfig::default()
        .with_workers(4)
        .with_pool_ranks(16)
        .env_overrides();
    let server = Server::start(cfg, sink);

    let tenants = ["alice", "bob", "carol"];
    for i in 0..jobs_target {
        let w = &workload[i % workload.len()];
        let tenant = tenants[i % tenants.len()];
        let opts = w
            .prop
            .apply_options(w.nt)
            .with_mode(w.mode)
            .with_ranks(w.ranks)
            .with_verify(false)
            .with_sanitize(smoke);
        let init_prop = Arc::clone(&w.prop);
        server.submit(
            Job::new(tenant, Arc::clone(&w.prop.op), opts).with_init(move |ws| init_prop.init(ws)),
        );
    }

    let report = server.shutdown();
    let compiled = mpix_codegen::exec_compiles() - compiles_before;

    if !smoke {
        eprintln!(
            "served {} jobs: {} done, {} rejected, {} failed; cache {} hits / {} compiles \
             (hit rate {:.1}%)",
            report.jobs,
            report.done,
            report.rejected,
            report.failed,
            report.cache.hits,
            report.cache.compiles,
            report.cache.hit_rate() * 100.0
        );
        return;
    }

    // --- the CI gate ---
    let mut violations: Vec<String> = Vec::new();
    if report.done != report.jobs || report.failed != 0 || report.rejected != 0 {
        violations.push(format!(
            "expected all {} jobs done; got done={} rejected={} failed={}",
            report.jobs, report.done, report.rejected, report.failed
        ));
    }
    if report.cache.compiles != expected_keys.len() as u64 {
        violations.push(format!(
            "cache compiled {} artifacts for {} unique content keys",
            report.cache.compiles,
            expected_keys.len()
        ));
    }
    if compiled != report.cache.compiles {
        violations.push(format!(
            "process compiled {compiled} executables but the cache accounts for {}",
            report.cache.compiles
        ));
    }

    let records = records.lock().unwrap();
    let san_findings: usize = records
        .iter()
        .filter(|r| r.get("record").and_then(Value::as_str) == Some("job"))
        .flat_map(|r| {
            r.get("summary")
                .and_then(|s| s.get("diagnostics"))
                .and_then(Value::as_array)
                .unwrap_or(&[])
                .iter()
        })
        .filter(|d| {
            d.get("pass")
                .and_then(Value::as_str)
                .is_some_and(|p| p.starts_with("mpix-san"))
        })
        .count();
    if san_findings != 0 {
        violations.push(format!(
            "{san_findings} sanitizer finding(s) in streamed summaries"
        ));
    }

    let summary_line = records
        .iter()
        .find(|r| r.get("record").and_then(Value::as_str) == Some("serve.summary"));
    match summary_line {
        None => violations.push("no serve.summary record streamed".into()),
        Some(s) => {
            if s.get("cache").and_then(|c| c.get("hit_rate")).is_none() {
                violations.push("serve.summary does not report the cache hit rate".into());
            }
        }
    }

    if violations.is_empty() {
        eprintln!(
            "smoke ok: {} jobs, {} unique keys, {} compiles, hit rate {:.1}%, 0 san findings",
            report.jobs,
            expected_keys.len(),
            report.cache.compiles,
            report.cache.hit_rate() * 100.0
        );
    } else {
        for v in &violations {
            eprintln!("smoke FAILED: {v}");
        }
        std::process::exit(1);
    }
}
