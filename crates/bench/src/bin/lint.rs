//! `mpix-lint` — run the `MPX0xx` static lints (abstract interpretation
//! plus the parametric-in-P schedule prover) over every shipped solver
//! and every operator the `examples/` programs build, without compiling
//! a single backend kernel.
//!
//! ```text
//! cargo run -p mpix-bench --bin mpix-lint                    # everything
//! cargo run -p mpix-bench --bin mpix-lint -- acoustic        # one target
//! cargo run -p mpix-bench --bin mpix-lint -- --json          # JSON report
//! cargo run -p mpix-bench --bin mpix-lint -- --list          # registry table
//! ```
//!
//! This is the cheap pre-compile stage of the verification story: the
//! full `mpix-verify` matrix costs minutes of backend compilation and
//! simulated runs, the lints cost milliseconds per operator, so CI runs
//! them first (and at `--deny-warnings`) to fail fast on anything the
//! static passes can already prove wrong.

use std::collections::BTreeMap;
use std::sync::Arc;

use mpix_analysis::fp::{certify, FpAssumptions};
use mpix_analysis::lint::{lint_operator, LintConfig, LINTS};
use mpix_core::Operator;
use mpix_dmp::HaloMode;
use mpix_json::Value;
use mpix_solvers::{fp_profile, FpProfile, KernelKind, ModelSpec, Propagator};
use mpix_symbolic::{solve, Context, Eq, Grid};
use mpix_trace::{Diagnostic, Severity};

const HELP: &str = "\
mpix-lint — MPX static lints over shipped solvers and example operators

USAGE:
    mpix-lint [FLAGS] [TARGET ...]

TARGETS (default: all):
    acoustic | tti | elastic | viscoelastic    solver × SDO {4,8,12,16}
    quickstart | rtm_imaging | ...             operators built by examples/

FLAGS:
    --json             machine-readable JSON report on stdout
    --deny-warnings    exit 1 on Warning findings too
    --baseline=FILE    suppress findings listed in FILE (lines of
                       `MPX0xx location-substring`; `#` comments)
    --fp-certs=DIR     write one precision certificate (mpix-fp-cert/v1
                       JSON) per target into DIR and gate on the
                       certificate findings (MPX015-MPX019) too
    --list             print the lint registry table and exit
    --help             print this message

EXIT CODES:
    0    no unsuppressed finding at the gating severity (Error, or
         Warning under --deny-warnings)
    1    at least one unsuppressed finding at the gating severity

Per-code levels come from the registry defaults overridden by
MPIX_LINT=\"MPX004=allow,dead-store=allow,all=deny\" (left to right).";

/// One lintable operator. Solvers contribute one target per space
/// discretization order; each `examples/` program contributes the
/// operator(s) it builds (programs sharing an operator share a target).
/// A target's builder also yields the [`FpProfile`] its precision
/// certificate is conditional on (when one is known).
struct Target {
    name: &'static str,
    /// SDO sweep for solver targets; empty = fixed-order example.
    orders: &'static [u32],
    build: fn(u32) -> (Arc<Operator>, Option<FpProfile>),
}

/// Time steps the exported certificates bound. Error growth is
/// monotone in steps, so a short-horizon certificate stays checkable
/// (finite) for every kernel while still exercising the full
/// cross-cluster, cross-buffer propagation.
const CERT_STEPS: u32 = 3;

/// Same shapes as `mpix-verify`: big enough that every swept topology
/// keeps a stencil radius per rank per dimension.
fn solver_op(kind: KernelKind, so: u32) -> (Arc<Operator>, Option<FpProfile>) {
    let shape: &[usize] = match kind {
        KernelKind::Acoustic => &[40, 40],
        _ => &[16, 16, 16],
    };
    let p = Propagator::build(kind, ModelSpec::new(shape).with_nbl(4), so);
    let profile = fp_profile(kind, &p.spec, p.dt);
    (p.op, Some(profile))
}

/// The 2-D heat-diffusion operator of `quickstart`, `cdump` and
/// `codegen_inspect` (the paper's Listing 1).
fn diffusion_op(_so: u32) -> (Arc<Operator>, Option<FpProfile>) {
    let mut ctx = Context::new();
    let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
    let u = ctx.add_time_function("u", &grid, 2, 1);
    let eq = Eq::new(u.dt(), u.laplace());
    let st = eq.solve_for(&u.forward(), &ctx).unwrap();
    // FTCS diffusion: stable (and certifiable) at dt = h²/8 ≤ h²/(2·ndim).
    let h = grid.spacing(0);
    let mut profile = FpProfile {
        scalars: grid.spacing_bindings(),
        fields: vec![("u", 0.0, 1.0)],
    };
    profile.scalars.insert("dt".to_string(), h * h / 8.0);
    let op = Arc::new(Operator::build(ctx, grid, vec![st]).unwrap());
    (op, Some(profile))
}

/// The damped acoustic operator of `rtm_imaging`.
fn rtm_op(_so: u32) -> (Arc<Operator>, Option<FpProfile>) {
    let mut ctx = Context::new();
    let grid = Grid::new(&[81, 81], &[0.8, 0.8]);
    let u = ctx.add_time_function("u", &grid, 8, 2);
    let m = ctx.add_function("m", &grid, 8);
    let damp = ctx.add_function("damp", &grid, 8);
    let pde = m.center() * u.dt2() - u.laplace() + damp.center() * u.dt();
    let st = solve(&pde, &u.forward(), &ctx).unwrap();
    // Generic marine-survey assumptions: vp ∈ [1, 3] km/s (m = 1/vp²),
    // a sponge up to 10³, unit-amplitude wavefield, CFL-0.4 time step
    // at the fastest velocity.
    let h = grid.spacing(0);
    let mut profile = FpProfile {
        scalars: grid.spacing_bindings(),
        fields: vec![
            ("u", -1.0, 1.0),
            ("m", 1.0 / 9.0, 1.0),
            ("damp", 0.0, 1000.0),
        ],
    };
    profile
        .scalars
        .insert("dt".to_string(), 0.4 * h / (3.0 * 2.0f64.sqrt()));
    let op = Arc::new(Operator::build(ctx, grid, vec![st]).unwrap());
    (op, Some(profile))
}

/// The acoustic propagators built by `acoustic_modeling`,
/// `autotune_demo` and `scaling_experiment`.
fn acoustic_modeling_op(_so: u32) -> (Arc<Operator>, Option<FpProfile>) {
    let p = Propagator::build(
        KernelKind::Acoustic,
        ModelSpec::new(&[36, 36, 36]).with_nbl(6),
        8,
    );
    let profile = fp_profile(KernelKind::Acoustic, &p.spec, p.dt);
    (p.op, Some(profile))
}

const SOLVER_ORDERS: &[u32] = &[4, 8, 12, 16];

fn targets() -> Vec<Target> {
    let mut t: Vec<Target> = KernelKind::all()
        .iter()
        .map(|&kind| Target {
            name: kind.name(),
            orders: SOLVER_ORDERS,
            build: match kind {
                KernelKind::Acoustic => |so| solver_op(KernelKind::Acoustic, so),
                KernelKind::Tti => |so| solver_op(KernelKind::Tti, so),
                KernelKind::Elastic => |so| solver_op(KernelKind::Elastic, so),
                KernelKind::Viscoelastic => |so| solver_op(KernelKind::Viscoelastic, so),
            },
        })
        .collect();
    t.push(Target {
        name: "quickstart",
        orders: &[],
        build: diffusion_op,
    });
    t.push(Target {
        name: "rtm_imaging",
        orders: &[],
        build: rtm_op,
    });
    t.push(Target {
        name: "acoustic_modeling",
        orders: &[],
        build: acoustic_modeling_op,
    });
    t
}

/// `MPX0xx location-substring` lines; `#` starts a comment.
fn parse_baseline(path: &str) -> Vec<(String, String)> {
    let text = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("--baseline: cannot read {path:?}: {e}"));
    text.lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| {
            let (code, loc) = l.split_once(char::is_whitespace).unwrap_or((l, ""));
            (code.to_string(), loc.trim().to_string())
        })
        .collect()
}

fn baselined(d: &Diagnostic, baseline: &[(String, String)]) -> bool {
    baseline
        .iter()
        .any(|(code, loc)| d.code.as_deref() == Some(code) && d.location.contains(loc.as_str()))
}

fn print_registry() {
    println!("{:<8} {:<26} {:<6} description", "code", "name", "level");
    for l in LINTS {
        println!(
            "{:<8} {:<26} {:<6} {}",
            l.code,
            l.name,
            l.default_level.name(),
            l.description
                .split_whitespace()
                .collect::<Vec<_>>()
                .join(" ")
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return;
    }
    if args.iter().any(|a| a == "--list") {
        print_registry();
        return;
    }
    let json = args.iter().any(|a| a == "--json");
    let deny_warnings = args.iter().any(|a| a == "--deny-warnings");
    let baseline: Vec<(String, String)> = args
        .iter()
        .find_map(|a| a.strip_prefix("--baseline="))
        .map(parse_baseline)
        .unwrap_or_default();
    let certs_dir: Option<String> = args
        .iter()
        .find_map(|a| a.strip_prefix("--fp-certs="))
        .map(String::from);
    if let Some(dir) = &certs_dir {
        std::fs::create_dir_all(dir)
            .unwrap_or_else(|e| panic!("--fp-certs: cannot create {dir:?}: {e}"));
    }
    let wanted: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();

    let all = targets();
    let selected: Vec<&Target> = if wanted.is_empty() {
        all.iter().collect()
    } else {
        wanted
            .iter()
            .map(|w| {
                all.iter()
                    .find(|t| t.name == w.as_str())
                    .unwrap_or_else(|| panic!("unknown target {w:?} (see --help)"))
            })
            .collect()
    };

    let cfg = LintConfig::from_env();
    let modes = [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full];
    let mut entries: Vec<Value> = Vec::new();
    let mut counts: BTreeMap<Severity, usize> = BTreeMap::new();
    let mut suppressed = 0usize;
    let mut worst: Option<Severity> = None;
    let mut configs = 0usize;
    let mut certs_written = 0usize;
    for t in &selected {
        // An example target lints once; a solver target sweeps its SDOs.
        let orders: Vec<Option<u32>> = if t.orders.is_empty() {
            vec![None]
        } else {
            t.orders.iter().map(|&so| Some(so)).collect()
        };
        for so in orders {
            let label = match so {
                Some(so) => format!("{} so={so}", t.name),
                None => t.name.to_string(),
            };
            let (op, profile) = (t.build)(so.unwrap_or(0));
            let mut diags =
                lint_operator(op.ctx(), op.clusters(), op.halo_plan(), &modes, None, &cfg);
            configs += 1;
            if let (Some(dir), Some(p)) = (&certs_dir, &profile) {
                let mut assume = FpAssumptions::structural().with_steps(CERT_STEPS);
                for (k, v) in &p.scalars {
                    assume = assume.with_scalar(k, *v);
                }
                for (name, lo, hi) in &p.fields {
                    if let Some(f) = op.ctx().field_by_name(name) {
                        assume = assume.with_field(f.id, *lo, *hi);
                    }
                }
                let cert = certify(op.ctx(), op.clusters(), &assume, &label);
                let fname = format!("{}.json", label.replace(' ', "-").replace('=', ""));
                let path = std::path::Path::new(dir).join(fname);
                std::fs::write(&path, format!("{}\n", cert.to_json().pretty()))
                    .unwrap_or_else(|e| panic!("--fp-certs: cannot write {path:?}: {e}"));
                certs_written += 1;
                // Certificate findings (value-conditional MPX015-019)
                // join the gate; the structural pass may have already
                // reported an identical (code, location) pair.
                for d in cfg.apply(cert.findings.clone()) {
                    if !diags
                        .iter()
                        .any(|e| e.code == d.code && e.location == d.location)
                    {
                        diags.push(d);
                    }
                }
            }
            let (kept, masked): (Vec<_>, Vec<_>) =
                diags.into_iter().partition(|d| !baselined(d, &baseline));
            suppressed += masked.len();
            for d in &kept {
                *counts.entry(d.severity).or_default() += 1;
                worst = worst.max(Some(d.severity));
            }
            if json {
                // The per-finding layout is a golden-tested parsing
                // surface — see `mpix_bench::lint_finding_json`.
                let finding_json = |d: &Diagnostic| mpix_bench::lint_finding_json(d, &cfg);
                entries.push(Value::Obj(vec![
                    ("target".to_string(), Value::Str(label.clone())),
                    (
                        "findings".to_string(),
                        Value::Arr(kept.iter().map(finding_json).collect()),
                    ),
                    ("suppressed".to_string(), Value::Num(masked.len() as f64)),
                ]));
            } else {
                let status = if kept.is_empty() && masked.is_empty() {
                    "clean".to_string()
                } else if kept.is_empty() {
                    format!("clean ({} baselined)", masked.len())
                } else {
                    format!("{} finding(s)", kept.len())
                };
                println!("{label:<22} {status}");
                for d in &kept {
                    let code = d.code.as_deref().unwrap_or("-");
                    let name = mpix_analysis::lint::lint_by_code(code)
                        .map(|l| l.name)
                        .unwrap_or("-");
                    println!("    {}[{code}]({name}): {}", d.severity, d.location);
                    println!("        {}", d.explanation);
                }
            }
        }
    }

    let errors = counts.get(&Severity::Error).copied().unwrap_or(0);
    let warnings = counts.get(&Severity::Warning).copied().unwrap_or(0);
    if json {
        let out = Value::Obj(vec![
            ("results".to_string(), Value::Arr(entries)),
            ("targets".to_string(), Value::Num(configs as f64)),
            ("errors".to_string(), Value::Num(errors as f64)),
            ("warnings".to_string(), Value::Num(warnings as f64)),
            ("suppressed".to_string(), Value::Num(suppressed as f64)),
        ]);
        println!("{}", out.pretty());
    } else {
        println!(
            "\nmpix-lint: {configs} operator(s), {errors} error(s), {warnings} warning(s), \
             {suppressed} baselined"
        );
        if let Some(dir) = &certs_dir {
            println!("mpix-lint: {certs_written} precision certificate(s) -> {dir}");
        }
    }
    let gate = if deny_warnings {
        Severity::Warning
    } else {
        Severity::Error
    };
    if worst >= Some(gate) {
        std::process::exit(1);
    }
}
