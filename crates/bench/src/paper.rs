//! The paper's published numbers (Appendix D/E, Tables III–XXXIV),
//! embedded as reference data for the side-by-side comparison columns in
//! the regenerated tables and for the trend checks in `EXPERIMENTS.md`.
//!
//! `None` marks entries that are unreadable in the source (a few rows of
//! Tables IV, VI, VIII and XVI are corrupted in the paper text) or that
//! the paper left empty (the viscoelastic OOM incident, §IV-C).

use mpix_solvers::KernelKind;

/// Node/GPU counts of every scaling table.
pub const UNITS: [usize; 8] = [1, 2, 4, 8, 16, 32, 64, 128];

/// Exchange-mode index: 0 = basic, 1 = diagonal, 2 = full.
pub type ModeRow = [Option<f64>; 8];

/// One CPU strong-scaling table: `[basic, diag, full]` rows in GPts/s.
#[derive(Clone, Copy, Debug)]
pub struct CpuTable {
    pub kernel: &'static str,
    pub sdo: u32,
    pub rows: [ModeRow; 3],
}

/// One GPU strong-scaling table (basic only).
#[derive(Clone, Copy, Debug)]
pub struct GpuTable {
    pub kernel: &'static str,
    pub sdo: u32,
    pub row: ModeRow,
}

const fn r(v: [f64; 8]) -> ModeRow {
    [
        Some(v[0]),
        Some(v[1]),
        Some(v[2]),
        Some(v[3]),
        Some(v[4]),
        Some(v[5]),
        Some(v[6]),
        Some(v[7]),
    ]
}

/// CPU strong scaling, Tables III–XVIII.
pub const CPU_TABLES: [CpuTable; 16] = [
    CpuTable {
        kernel: "acoustic",
        sdo: 4,
        rows: [
            r([13.4, 25.0, 48.0, 90.7, 170.1, 292.5, 655.4, 1415.5]),
            r([13.3, 25.7, 49.8, 91.0, 169.3, 287.7, 544.4, 991.6]),
            r([13.9, 25.8, 49.3, 88.0, 180.0, 299.9, 589.8, 1011.1]),
        ],
    },
    CpuTable {
        kernel: "acoustic",
        sdo: 8,
        // Table IV is corrupted in the source; only the 16-node column
        // survives. Single-node ~12.8 GPts/s is implied by Fig. 8's
        // efficiency annotations.
        rows: [
            [None, None, None, None, Some(143.2), None, None, None],
            [None, None, None, None, Some(149.4), None, None, None],
            [None, None, None, None, Some(137.0), None, None, None],
        ],
    },
    CpuTable {
        kernel: "acoustic",
        sdo: 12,
        rows: [
            r([11.5, 20.1, 37.3, 62.5, 111.5, 198.1, 402.3, 769.2]),
            r([12.2, 22.5, 41.5, 69.3, 126.3, 221.7, 371.6, 686.6]),
            r([11.8, 20.6, 37.2, 66.0, 112.1, 175.0, 307.3, 534.5]),
        ],
    },
    CpuTable {
        kernel: "acoustic",
        sdo: 16,
        rows: [
            [None, None, None, None, Some(101.4), None, None, None],
            r([11.4, 20.6, 37.8, 67.1, 114.0, 194.9, 326.9, 557.2]),
            r([10.7, 19.1, 34.2, 60.8, 99.7, 158.9, 253.6, 465.7]),
        ],
    },
    CpuTable {
        kernel: "elastic",
        sdo: 4,
        rows: [
            [
                Some(1.8),
                Some(3.3),
                None,
                Some(12.0),
                Some(22.0),
                Some(40.5),
                Some(74.6),
                Some(123.0),
            ],
            r([1.9, 3.6, 6.8, 12.7, 23.6, 45.0, 77.5, 134.6]),
            r([1.9, 3.4, 6.0, 11.8, 21.4, 37.7, 66.7, 106.9]),
        ],
    },
    CpuTable {
        kernel: "elastic",
        sdo: 8,
        rows: [
            [None, None, None, Some(10.3), None, None, None, Some(97.3)],
            r([1.8, 3.3, 6.1, 11.2, 20.5, 37.4, 65.0, 106.3]),
            r([1.7, 3.1, 5.5, 9.8, 17.0, 29.6, 51.4, 79.3]),
        ],
    },
    CpuTable {
        kernel: "elastic",
        sdo: 12,
        rows: [
            r([1.5, 2.7, 4.2, 8.8, 15.8, 22.2, 50.9, 80.0]),
            r([1.5, 2.7, 5.2, 9.4, 17.1, 30.9, 53.4, 90.8]),
            r([1.4, 2.5, 4.9, 8.4, 14.1, 25.1, 41.0, 65.7]),
        ],
    },
    CpuTable {
        kernel: "elastic",
        sdo: 16,
        rows: [
            r([1.0, 2.0, 3.0, 6.9, 12.4, 20.7, 39.9, 62.3]),
            r([1.2, 2.3, 3.9, 7.8, 14.2, 25.3, 43.7, 71.5]),
            r([1.2, 2.1, 3.8, 6.7, 12.0, 19.9, 35.2, 55.2]),
        ],
    },
    CpuTable {
        kernel: "tti",
        sdo: 4,
        rows: [
            r([4.3, 8.2, 16.2, 32.8, 62.7, 118.4, 228.2, 388.7]),
            r([4.4, 8.7, 17.1, 32.8, 63.0, 117.9, 209.9, 361.9]),
            r([4.2, 8.2, 15.9, 32.3, 60.9, 111.7, 189.7, 321.3]),
        ],
    },
    CpuTable {
        kernel: "tti",
        sdo: 8,
        rows: [
            r([3.5, 6.4, 11.8, 26.9, 51.0, 90.7, 178.9, 314.4]),
            r([3.6, 6.9, 13.9, 27.9, 53.6, 95.6, 176.1, 303.1]),
            r([3.3, 6.3, 12.7, 24.4, 47.0, 84.7, 143.2, 238.6]),
        ],
    },
    CpuTable {
        kernel: "tti",
        sdo: 12,
        rows: [
            [
                Some(2.7),
                Some(4.6),
                Some(8.2),
                Some(20.2),
                None,
                None,
                Some(141.7),
                Some(235.2),
            ],
            r([2.7, 5.2, 9.3, 22.2, 41.7, 79.9, 142.3, 241.8]),
            r([2.8, 5.3, 9.8, 18.5, 37.1, 66.6, 111.6, 170.4]),
        ],
    },
    CpuTable {
        kernel: "tti",
        sdo: 16,
        rows: [
            r([2.0, 3.7, 6.4, 15.9, 30.0, 55.5, 112.2, 181.0]),
            r([2.1, 4.0, 7.6, 17.7, 32.2, 63.5, 116.3, 194.0]),
            r([2.2, 4.3, 7.8, 14.8, 27.1, 49.5, 82.1, 166.0]),
        ],
    },
    CpuTable {
        kernel: "viscoelastic",
        sdo: 4,
        rows: [
            r([1.2, 2.3, 4.4, 8.1, 14.5, 23.9, 44.1, 78.3]),
            r([1.3, 2.4, 4.6, 8.3, 15.5, 25.8, 44.2, 77.8]),
            r([1.2, 2.2, 4.0, 7.4, 13.5, 20.5, 31.5, 51.0]),
        ],
    },
    CpuTable {
        kernel: "viscoelastic",
        sdo: 8,
        rows: [
            [None, None, None, None, Some(11.6), None, None, None],
            r([1.2, 2.2, 4.4, 7.6, 12.8, 23.8, 41.3, 72.2]),
            r([1.1, 1.9, 3.5, 6.5, 10.6, 17.5, 30.3, 44.0]),
        ],
    },
    CpuTable {
        kernel: "viscoelastic",
        sdo: 12,
        rows: [
            r([1.0, 1.9, 3.3, 6.2, 11.0, 18.3, 33.3, 54.3]),
            r([1.1, 2.0, 3.7, 6.8, 12.4, 22.1, 37.4, 62.1]),
            r([1.0, 1.8, 3.2, 5.5, 8.7, 14.6, 23.7, 35.6]),
        ],
    },
    CpuTable {
        kernel: "viscoelastic",
        sdo: 16,
        rows: [
            r([0.7, 1.3, 2.7, 4.9, 8.6, 14.8, 27.0, 42.0]),
            r([0.9, 1.8, 3.4, 5.9, 10.5, 19.1, 32.0, 49.5]),
            r([0.8, 1.5, 2.8, 4.6, 7.9, 13.6, 22.8, 33.5]),
        ],
    },
];

/// GPU strong scaling, Tables XIX–XXXIV (basic mode only, §III h).
pub const GPU_TABLES: [GpuTable; 16] = [
    GpuTable {
        kernel: "acoustic",
        sdo: 4,
        row: r([34.3, 65.6, 123.3, 200.2, 348.6, 583.0, 985.2, 1535.0]),
    },
    GpuTable {
        kernel: "acoustic",
        sdo: 8,
        row: r([31.2, 59.4, 121.7, 199.2, 333.1, 565.5, 970.1, 1474.5]),
    },
    GpuTable {
        kernel: "acoustic",
        sdo: 12,
        row: r([28.8, 61.0, 104.7, 160.2, 271.2, 434.6, 742.2, 1140.7]),
    },
    GpuTable {
        kernel: "acoustic",
        sdo: 16,
        row: r([25.8, 47.9, 90.7, 143.7, 242.4, 387.8, 666.2, 1017.3]),
    },
    GpuTable {
        kernel: "elastic",
        sdo: 4,
        row: r([6.5, 11.7, 22.0, 34.2, 58.0, 95.4, 143.9, 198.9]),
    },
    GpuTable {
        kernel: "elastic",
        sdo: 8,
        row: r([5.2, 9.4, 16.8, 27.2, 45.5, 72.7, 114.1, 164.2]),
    },
    GpuTable {
        kernel: "elastic",
        sdo: 12,
        row: r([4.0, 7.2, 13.3, 21.7, 35.8, 57.2, 92.7, 131.9]),
    },
    GpuTable {
        kernel: "elastic",
        sdo: 16,
        row: r([2.5, 4.6, 8.6, 15.4, 26.0, 42.4, 68.9, 100.7]),
    },
    GpuTable {
        kernel: "tti",
        sdo: 4,
        row: r([10.5, 20.3, 37.8, 63.8, 109.6, 200.1, 354.9, 541.8]),
    },
    GpuTable {
        kernel: "tti",
        sdo: 8,
        row: r([8.5, 16.2, 31.0, 53.1, 90.6, 163.8, 289.1, 460.7]),
    },
    GpuTable {
        kernel: "tti",
        sdo: 12,
        row: r([7.5, 14.4, 27.4, 46.0, 78.0, 138.9, 250.3, 405.1]),
    },
    GpuTable {
        kernel: "tti",
        sdo: 16,
        row: r([5.8, 11.2, 21.3, 38.2, 65.7, 115.8, 205.2, 322.4]),
    },
    GpuTable {
        kernel: "viscoelastic",
        sdo: 4,
        row: r([3.4, 6.3, 11.9, 19.2, 33.6, 57.4, 90.8, 128.1]),
    },
    GpuTable {
        kernel: "viscoelastic",
        sdo: 8,
        row: r([2.8, 5.3, 9.4, 16.0, 27.9, 46.0, 73.7, 107.8]),
    },
    GpuTable {
        kernel: "viscoelastic",
        sdo: 12,
        row: r([2.5, 4.7, 8.5, 13.1, 23.0, 37.4, 60.4, 88.4]),
    },
    GpuTable {
        kernel: "viscoelastic",
        sdo: 16,
        row: r([1.6, 3.1, 6.2, 10.7, 18.6, 31.0, 48.9, 71.6]),
    },
];

/// Headline efficiency figures quoted in §IV-D (SDO 8, 128 units).
pub struct Headline {
    pub kernel: &'static str,
    pub cpu_gpts_128: f64,
    pub cpu_efficiency: f64,
    pub gpu_gpts_128: f64,
    pub gpu_efficiency: f64,
}

pub const HEADLINES: [Headline; 4] = [
    Headline {
        kernel: "acoustic",
        cpu_gpts_128: 1050.0,
        cpu_efficiency: 0.64,
        gpu_gpts_128: 1470.0,
        gpu_efficiency: 0.37,
    },
    Headline {
        kernel: "elastic",
        cpu_gpts_128: 106.0,
        cpu_efficiency: 0.46,
        gpu_gpts_128: 164.0,
        gpu_efficiency: 0.25,
    },
    Headline {
        kernel: "tti",
        cpu_gpts_128: 314.0,
        cpu_efficiency: 0.69,
        gpu_gpts_128: 460.0,
        gpu_efficiency: 0.42,
    },
    Headline {
        kernel: "viscoelastic",
        cpu_gpts_128: 73.0,
        cpu_efficiency: 0.46,
        gpu_gpts_128: 107.0,
        gpu_efficiency: 0.30,
    },
];

/// Look up a CPU reference table.
pub fn cpu_table(kind: KernelKind, sdo: u32) -> Option<&'static CpuTable> {
    CPU_TABLES
        .iter()
        .find(|t| t.kernel == kind.name() && t.sdo == sdo)
}

/// Look up a GPU reference table.
pub fn gpu_table(kind: KernelKind, sdo: u32) -> Option<&'static GpuTable> {
    GPU_TABLES
        .iter()
        .find(|t| t.kernel == kind.name() && t.sdo == sdo)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_kernel_sdo_pair_is_present() {
        for kind in KernelKind::all() {
            for sdo in [4, 8, 12, 16] {
                assert!(cpu_table(kind, sdo).is_some(), "{kind:?} so{sdo} cpu");
                assert!(gpu_table(kind, sdo).is_some(), "{kind:?} so{sdo} gpu");
            }
        }
    }

    #[test]
    fn reference_rows_are_monotone_in_units() {
        // Strong-scaling throughput grows with nodes in every published
        // row (sanity check on the data entry).
        for t in &CPU_TABLES {
            for row in &t.rows {
                let vals: Vec<f64> = row.iter().flatten().copied().collect();
                for w in vals.windows(2) {
                    assert!(
                        w[1] > w[0] * 0.95,
                        "{} so{} has non-monotone row",
                        t.kernel,
                        t.sdo
                    );
                }
            }
        }
    }

    #[test]
    fn headline_numbers_match_tables() {
        // TTI 128-node diag ~ 303-314 GPts/s in Table XII; headline 314.
        let t = cpu_table(KernelKind::Tti, 8).unwrap();
        let best128 = t.rows.iter().filter_map(|r| r[7]).fold(0.0, f64::max);
        assert!((best128 - 314.4).abs() < 1.0);
    }
}
