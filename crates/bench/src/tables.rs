//! Experiment drivers and table formatting for the `tables` binary.

use mpix_perf::machine::{archer2_node, tursa_a100};
use mpix_perf::roofline::roofline_point;
use mpix_perf::scaling::{
    efficiency, mode_crossover, strong_scaling, weak_scaling, Mode, ScalePoint,
};
use mpix_solvers::KernelKind;

use crate::paper::{self, UNITS};
use crate::profiles::{cpu_domain, gpu_domain, profile_for, timesteps};

/// Modeled CPU strong-scaling rows `[basic, diag, full]` in GPts/s.
pub fn model_cpu_rows(kind: KernelKind, sdo: u32) -> [[f64; 8]; 3] {
    let prof = profile_for(kind, sdo);
    let m = archer2_node();
    let global = cpu_domain(kind);
    let mut out = [[0.0; 8]; 3];
    for (mi, mode) in Mode::all().iter().enumerate() {
        for (ui, &u) in UNITS.iter().enumerate() {
            out[mi][ui] = strong_scaling(&prof, &m, *mode, u, &global).gpts;
        }
    }
    out
}

/// Modeled GPU strong-scaling row (basic mode) in GPts/s.
pub fn model_gpu_row(kind: KernelKind, sdo: u32) -> [f64; 8] {
    let prof = profile_for(kind, sdo);
    let m = tursa_a100();
    let global = gpu_domain(kind);
    let mut out = [0.0; 8];
    for (ui, &u) in UNITS.iter().enumerate() {
        out[ui] = strong_scaling(&prof, &m, Mode::Basic, u, &global).gpts;
    }
    out
}

fn fmt_opt(v: Option<f64>) -> String {
    match v {
        Some(x) if x >= 100.0 => format!("{x:7.1}"),
        Some(x) => format!("{x:7.2}"),
        None => format!("{:>7}", "-"),
    }
}

/// Print one CPU table (paper Tables III–XVIII) with paper references.
pub fn print_cpu_table(kind: KernelKind, sdo: u32) {
    let ours = model_cpu_rows(kind, sdo);
    let reference = paper::cpu_table(kind, sdo);
    println!(
        "\n## CPU strong scaling — {} so-{sdo} ({}³ dom., GPts/s; Tables III-XVIII / Figs 8-11,13-16)",
        kind.name(),
        cpu_domain(kind)[0]
    );
    print!("{:<14}", "nodes");
    for u in UNITS {
        print!("{u:>8}");
    }
    println!();
    for (mi, mode) in Mode::all().iter().enumerate() {
        print!("{:<14}", format!("{} (model)", mode.label()));
        for v in ours[mi] {
            print!(" {}", fmt_opt(Some(v)));
        }
        println!();
        if let Some(rt) = reference {
            print!("{:<14}", format!("{} (paper)", mode.label()));
            for v in rt.rows[mi] {
                print!(" {}", fmt_opt(v));
            }
            println!();
        }
    }
    // Efficiency line (as the paper's "ideal" annotations).
    let prof = profile_for(kind, sdo);
    let m = archer2_node();
    let pts: Vec<ScalePoint> = UNITS
        .iter()
        .map(|&u| strong_scaling(&prof, &m, Mode::Basic, u, &cpu_domain(kind)))
        .collect();
    let eff = efficiency(&pts);
    println!(
        "basic efficiency at 128 nodes: {:.0}% of ideal",
        eff[7] * 100.0
    );
}

/// Print one GPU table (paper Tables XIX–XXXIV).
pub fn print_gpu_table(kind: KernelKind, sdo: u32) {
    let ours = model_gpu_row(kind, sdo);
    let reference = paper::gpu_table(kind, sdo);
    println!(
        "\n## GPU strong scaling — {} so-{sdo} ({}³ dom., GPts/s, basic; Tables XIX-XXXIV / Figs 17-20)",
        kind.name(),
        gpu_domain(kind)[0]
    );
    print!("{:<14}", "GPUs");
    for u in UNITS {
        print!("{u:>8}");
    }
    println!();
    print!("{:<14}", "Basic (model)");
    for v in ours {
        print!(" {}", fmt_opt(Some(v)));
    }
    println!();
    if let Some(rt) = reference {
        print!("{:<14}", "Basic (paper)");
        for v in rt.row {
            print!(" {}", fmt_opt(v));
        }
        println!();
    }
}

/// Print the weak-scaling runtime chart (paper Fig. 12 / 21–24).
pub fn print_weak(sdo: u32) {
    println!("\n## Weak scaling — runtime [s] at 256³/unit, so-{sdo} (Fig. 12, 21-24)");
    print!("{:<22}", "units");
    for u in UNITS {
        print!("{u:>8}");
    }
    println!();
    for kind in KernelKind::all() {
        let prof = profile_for(kind, sdo);
        let nt = timesteps(kind);
        // CPU: all three modes (the paper's Fig. 12 plots each); GPU:
        // basic only (§III h).
        for mode in Mode::all() {
            print!("{:<22}", format!("{} CPU {}", kind.name(), mode.label()));
            for &u in &UNITS {
                let (_, t) = weak_scaling(&prof, &archer2_node(), mode, u, &[256, 256, 256], nt);
                print!(" {t:7.1}");
            }
            println!();
        }
        print!("{:<22}", format!("{} GPU Basic", kind.name()));
        for &u in &UNITS {
            let (_, t) = weak_scaling(&prof, &tursa_a100(), Mode::Basic, u, &[256, 256, 256], nt);
            print!(" {t:7.1}");
        }
        println!();
    }
}

/// Print the single-unit roofline data (paper Fig. 7).
pub fn print_fig7() {
    println!(
        "\n## Single-unit roofline (Fig. 7): OI from the compiler's AST, GFlops/s from the model"
    );
    println!(
        "{:<14} {:>6} | {:>10} {:>12} {:>12} | {:>10} {:>12}",
        "kernel", "OI", "CPU GPts/s", "CPU GFlop/s", "CPU ceiling", "GPU GPts/s", "GPU GFlop/s"
    );
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let c = roofline_point(&prof, &archer2_node(), &cpu_domain(kind));
        let g = roofline_point(&prof, &tursa_a100(), &gpu_domain(kind));
        println!(
            "{:<14} {:>6.2} | {:>10.2} {:>12.1} {:>12.1} | {:>10.2} {:>12.1}",
            kind.name(),
            prof.oi(),
            c.gpts,
            c.gflops,
            c.bw_ceiling.min(c.peak_ceiling),
            g.gpts,
            g.gflops,
        );
    }
}

/// Print Table I — derived from the implementations, not hard-coded.
pub fn print_table1() {
    use mpix_dmp::HaloMode;
    println!("\n## Table I: communication/computation patterns (derived from mpix-dmp)");
    println!(
        "{:<10} {:<10} {:<24} {:<13} {:<14} {:<18}",
        "MPI mode", "Target", "Communication", "Batches", "#msgs (3D)", "Buffer allocation"
    );
    for (mode, target, comm, batch) in [
        (
            HaloMode::Basic,
            "CPU, GPU",
            "Sync, no comp overlap",
            "Multi-step",
        ),
        (
            HaloMode::Diagonal,
            "CPU",
            "Sync, no comp overlap",
            "Single-step",
        ),
        (HaloMode::Full, "CPU", "Async, comp overlap", "Single-step"),
    ] {
        println!(
            "{:<10} {:<10} {:<24} {:<13} {:<14} {:<18}",
            format!("{mode:?}"),
            target,
            comm,
            batch,
            mode.messages_per_exchange(3),
            if mode.preallocates_buffers() {
                "pre-alloc"
            } else {
                "runtime"
            }
        );
    }
}

/// Agreement report: for every (kernel, sdo, unit count) with published
/// numbers, does the model pick the same winning mode as the paper?
pub fn trend_report() -> (usize, usize) {
    println!("\n## Trend agreement: best mode, model vs paper (CPU strong scaling)");
    let mut agree = 0;
    let mut total = 0;
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let Some(rt) = paper::cpu_table(kind, sdo) else {
                continue;
            };
            let ours = model_cpu_rows(kind, sdo);
            for (ui, &u) in UNITS.iter().enumerate() {
                // Only compare where all three paper entries exist.
                let pvals: Vec<f64> = (0..3).filter_map(|mi| rt.rows[mi][ui]).collect();
                if pvals.len() < 3 {
                    continue;
                }
                let pbest = (0..3)
                    .max_by(|&a, &b| {
                        rt.rows[a][ui]
                            .unwrap()
                            .partial_cmp(&rt.rows[b][ui].unwrap())
                            .unwrap()
                    })
                    .unwrap();
                let obest = (0..3)
                    .max_by(|&a, &b| ours[a][ui].partial_cmp(&ours[b][ui]).unwrap())
                    .unwrap();
                total += 1;
                // Count as agreement when the paper's margin is decisive
                // (>3%) and we match, or when the margin is within noise.
                let pmax = pvals.iter().cloned().fold(f64::MIN, f64::max);
                let pmin2 = {
                    let mut v = pvals.clone();
                    v.sort_by(|a, b| b.partial_cmp(a).unwrap());
                    v[1]
                };
                let decisive = (pmax - pmin2) / pmax > 0.03;
                if obest == pbest || !decisive {
                    agree += 1;
                } else {
                    println!(
                        "  disagree: {} so-{sdo} @ {u}: paper {} vs model {}",
                        kind.name(),
                        Mode::all()[pbest].label(),
                        Mode::all()[obest].label()
                    );
                }
            }
        }
    }
    println!("best-mode agreement: {agree}/{total}");
    (agree, total)
}

/// Correlate modeled vs paper throughput (log-space) across all
/// published CPU entries; returns (mean |log2 error|, count).
pub fn accuracy_report() -> (f64, usize) {
    let mut sum = 0.0;
    let mut n = 0;
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let Some(rt) = paper::cpu_table(kind, sdo) else {
                continue;
            };
            let ours = model_cpu_rows(kind, sdo);
            for mi in 0..3 {
                for ui in 0..8 {
                    if let Some(p) = rt.rows[mi][ui] {
                        sum += (ours[mi][ui] / p).log2().abs();
                        n += 1;
                    }
                }
            }
        }
    }
    let mean = sum / n as f64;
    println!("\nmodel-vs-paper CPU accuracy: mean |log2 ratio| = {mean:.3} over {n} entries");
    (mean, n)
}

/// Crossover analysis: where each mode permanently overtakes another,
/// per kernel and SDO — model vs the paper's published rows.
pub fn print_crossovers() {
    println!("\n## Mode crossovers (basic overtakes diagonal at N nodes; §IV-D)");
    println!(
        "{:<14} {:>5} {:>14} {:>14}",
        "kernel", "sdo", "model", "paper"
    );
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let prof = profile_for(kind, sdo);
            let m = archer2_node();
            let model = mode_crossover(
                &prof,
                &m,
                &cpu_domain(kind),
                Mode::Basic,
                Mode::Diagonal,
                &UNITS,
            );
            // Paper crossover from the reference rows (where complete).
            let paper_x = paper::cpu_table(kind, sdo).and_then(|t| {
                let wins: Vec<Option<bool>> = (0..8)
                    .map(|ui| match (t.rows[0][ui], t.rows[1][ui]) {
                        (Some(b), Some(d)) => Some(b >= d),
                        _ => None,
                    })
                    .collect();
                if wins.iter().any(|w| w.is_none()) {
                    return None;
                }
                let wins: Vec<bool> = wins.into_iter().map(|w| w.unwrap()).collect();
                match wins.iter().rposition(|&w| !w) {
                    None => Some(Some(UNITS[0])),
                    Some(last) if last + 1 < 8 => Some(Some(UNITS[last + 1])),
                    Some(_) => Some(None),
                }
            });
            let fmt = |x: Option<usize>| match x {
                Some(u) => format!("{u}"),
                None => "never".to_string(),
            };
            let paper_s = match paper_x {
                Some(x) => fmt(x),
                None => "-".to_string(),
            };
            println!(
                "{:<14} {:>5} {:>14} {:>14}",
                kind.name(),
                sdo,
                fmt(model),
                paper_s
            );
        }
    }
}

/// Machine-readable dump of every modeled curve (for external plotting).
pub fn json_dump() -> String {
    use mpix_json::{json, Value};
    let mut cpu = Vec::new();
    let mut gpu = Vec::new();
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let rows = model_cpu_rows(kind, sdo);
            for (mi, mode) in Mode::all().iter().enumerate() {
                cpu.push(json!({
                    "kernel": kind.name(),
                    "sdo": sdo,
                    "mode": mode.label(),
                    "units": &UNITS[..],
                    "gpts": rows[mi].to_vec(),
                    "paper": paper::cpu_table(kind, sdo).map(|t| t.rows[mi].to_vec()),
                }));
            }
            gpu.push(json!({
                "kernel": kind.name(),
                "sdo": sdo,
                "mode": "Basic",
                "units": &UNITS[..],
                "gpts": model_gpu_row(kind, sdo).to_vec(),
                "paper": paper::gpu_table(kind, sdo).map(|t| t.row.to_vec()),
            }));
        }
    }
    let mut weak = Vec::new();
    for kind in KernelKind::all() {
        let prof = profile_for(kind, 8);
        let nt = timesteps(kind);
        for (mach, label) in [(archer2_node(), "cpu"), (tursa_a100(), "gpu")] {
            let runtimes: Vec<f64> = UNITS
                .iter()
                .map(|&u| weak_scaling(&prof, &mach, Mode::Basic, u, &[256, 256, 256], nt).1)
                .collect();
            weak.push(json!({
                "kernel": kind.name(),
                "machine": label,
                "units": &UNITS[..],
                "runtime_s": runtimes,
            }));
        }
    }
    let profiles: Vec<Value> = KernelKind::all()
        .iter()
        .map(|&k| profile_for(k, 8).to_json())
        .collect();
    json!({
        "strong_cpu": cpu,
        "strong_gpu": gpu,
        "weak": weak,
        "profiles_sdo8": profiles,
    })
    .pretty()
}

/// Per-rank observability readout: run the acoustic kernel for real on
/// 4 simulated ranks under `TraceLevel::Full`, once per halo mode, and
/// print each run's [`PerfSummary`] as a table plus machine-readable
/// JSON (the `trace` layer of this PR, end to end).
pub fn print_perf() {
    use mpix_core::Workspace;
    use mpix_dmp::HaloMode;
    use mpix_solvers::{ModelSpec, Propagator};
    use mpix_trace::TraceLevel;

    println!(
        "\n## Per-rank performance summaries — acoustic so-4, 32³+ABC, 4 ranks, MPIX_TRACE=full"
    );
    let spec = ModelSpec::new(&[32, 32, 32]).with_nbl(4);
    let p = Propagator::build(KernelKind::Acoustic, spec, 4);
    let nt = 16i64;
    let pref = &p;
    let init = move |ws: &mut Workspace| {
        pref.init(ws);
        pref.add_ricker_source(ws, 18.0, nt as usize);
    };
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        let opts = p
            .apply_options(nt)
            .with_mode(mode)
            .with_ranks(4)
            .with_trace(TraceLevel::Full);
        let summary = p.op.run(&opts, init, |_| ()).summary;
        println!("\n{}", summary.table());
        println!("json: {}", summary.to_json());
    }
}

/// Measured per-backend throughput: run each kernel for real on one
/// rank at SDO 4/8/12/16 under every execution backend — the scalar
/// interpreter (`vector_width = 0`, the paper's generated-C baseline
/// shape), the lane-vectorized interpreter strips (`vector_width = 16`),
/// and the native JIT where the host supports it — and return the
/// per-kernel GPts/s comparison as pretty JSON with one row per
/// `(kernel, sdo, backend)`. Speedups are relative to the scalar row.
/// The `tables bench-kernels` subcommand writes this to
/// `BENCH_kernels.json`, the perf-trajectory record for the repo.
///
/// `quick` shrinks the grid and step count to a CI smoke size (schema
/// identical; numbers not meaningful for trend tracking).
pub fn bench_kernels_json(quick: bool) -> String {
    use mpix_core::{available_backends, Backend};
    use mpix_json::json;
    use mpix_solvers::{ModelSpec, Propagator};
    use std::time::Instant;

    const VW: usize = 16;
    let (edge, nbl, nt) = if quick {
        (12usize, 2usize, 2i64)
    } else {
        (32, 4, 8)
    };
    let have_jit = available_backends().contains(&Backend::Jit);

    let mut rows = Vec::new();
    println!("\n## Backend throughput: scalar vs vector_width={VW} vs jit, {edge}\u{b3}+{nbl} ABC, nt={nt}, 1 rank");
    println!(
        "{:<14} {:>4} {:<9} {:>12} {:>9}",
        "kernel", "sdo", "backend", "GPts/s", "speedup"
    );
    for kind in KernelKind::all() {
        for sdo in [4u32, 8, 12, 16] {
            let spec = ModelSpec::new(&[edge, edge, edge]).with_nbl(nbl);
            let p = Propagator::build(kind, spec, sdo);
            let pref = &p;
            let init = move |ws: &mut mpix_core::Workspace| {
                pref.init(ws);
                pref.add_ricker_source(ws, 18.0, nt as usize);
            };
            let time_run = |backend: Backend, vw: usize| -> f64 {
                let opts = p
                    .apply_options(nt)
                    .with_backend(backend)
                    .with_vector_width(vw)
                    .with_ranks(1);
                // Untimed warm-up amortizes first-touch and compilation.
                p.op.run(&opts, init, |_| ());
                let t0 = Instant::now();
                p.op.run(&opts, init, |_| ());
                t0.elapsed().as_secs_f64()
            };
            let pts = p.points_per_step() as f64 * nt as f64;
            // (row label, backend, strip width): the scalar interpreter
            // is the baseline every speedup is measured against.
            let mut configs = vec![
                ("scalar", Backend::Bytecode, 0usize),
                ("bytecode", Backend::Bytecode, VW),
            ];
            if have_jit {
                configs.push(("jit", Backend::Jit, 0));
            }
            let mut scalar = 0.0f64;
            for (label, backend, vw) in configs {
                let gpts = pts / time_run(backend, vw) / 1e9;
                if label == "scalar" {
                    scalar = gpts;
                }
                let speedup = gpts / scalar;
                println!(
                    "{:<14} {:>4} {:<9} {:>12.4} {:>8.2}x",
                    kind.name(),
                    sdo,
                    label,
                    gpts,
                    speedup
                );
                rows.push(json!({
                    "kernel": kind.name(),
                    "sdo": sdo,
                    "backend": label,
                    "gpts": gpts,
                    "speedup": speedup,
                }));
            }
        }
    }
    json!({
        "grid": vec![edge, edge, edge],
        "nbl": nbl,
        "nt": nt,
        "vector_width": VW,
        "jit_available": have_jit,
        "quick": quick,
        "kernels": rows,
    })
    .pretty()
}

/// Measure per-exchange halo latency on a 2×2×2 rank grid for every
/// mode and radius, comparing the persistent-plan path against a
/// faithful reproduction of the pre-plan cost model (per-call box
/// computation, fresh pack vector, `f32`→bytes conversion, byte-envelope
/// send, bytes→`f32` conversion on receive — four copies and three
/// allocations per message). Returns the `BENCH_comm.json` payload.
pub fn bench_halo_json(quick: bool) -> String {
    bench_halo_json_opts(quick, false)
}

/// [`bench_halo_json`] plus an optional ranks-sweep axis (`--ranks-sweep`):
/// weak-scaled diagonal exchanges at P ∈ {8, 32, 128, 256, 512} comparing
/// the sharded substrate against a single-shard/single-pool baseline.
pub fn bench_halo_json_opts(quick: bool, ranks_sweep: bool) -> String {
    use mpix_comm::comm::{bytes_to_f32, f32_to_bytes};
    use mpix_comm::{CartComm, RecvRequest, Universe};
    use mpix_dmp::halo::make_exchange;
    use mpix_dmp::{BoxNd, Decomposition, DistArray, HaloMode, HaloPlan};
    use mpix_json::json;
    use std::sync::Arc;
    use std::time::Instant;

    let dims = vec![2usize, 2, 2];
    let nranks: usize = dims.iter().product();
    let edge = 16usize; // 8³ points per rank: small, alloc-dominated messages
    let radii: Vec<usize> = if quick { vec![1, 4] } else { vec![1, 2, 3, 4] };
    let (warmup, iters) = if quick {
        (3u32, 25u32)
    } else {
        (20u32, 250u32)
    };
    // Each timed block repeats `reps` times; the fastest repetition is
    // reported. OS scheduling noise only ever adds time, so the minimum
    // is the least-noise estimate of the true exchange cost. Both arms
    // get identical treatment.
    let reps = if quick { 1u32 } else { 7u32 };

    // One exchange the way the pre-plan path did it: geometry re-derived
    // per call, byte-typed envelopes, fresh buffers everywhere.
    fn legacy_exchange(cart: &CartComm, arr: &mut DistArray, plan: &HaloPlan) {
        for step in 0..plan.num_steps() {
            let rows = plan.step_view(step);
            let mut reqs: Vec<(RecvRequest, BoxNd)> = Vec::with_capacity(rows.len());
            for (peer, _, recv_tag, _, recv_box) in &rows {
                reqs.push((cart.comm().irecv(*peer, *recv_tag), recv_box.clone()));
            }
            for (peer, send_tag, _, send_box, _) in &rows {
                let mut buf = Vec::new();
                arr.pack_box(send_box, &mut buf);
                cart.comm().isend(*peer, *send_tag, &f32_to_bytes(&buf));
            }
            for (req, recv_box) in reqs {
                let data = req.wait();
                arr.unpack_box(&recv_box, &bytes_to_f32(&data));
            }
        }
    }

    let mut rows = Vec::new();
    println!(
        "\n## Halo exchange latency: persistent plan vs pre-plan path, \
         {nranks} ranks (2×2×2), {edge}³ global, {iters} iters"
    );
    println!(
        "{:<10} {:>6} {:>12} {:>12} {:>9} {:>6} {:>10} {:>11}",
        "mode",
        "radius",
        "plan µs/ex",
        "legacy µs/ex",
        "speedup",
        "msgs",
        "bytes/ex",
        "steady-alloc"
    );
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        for &radius in &radii {
            let dims_c = dims.clone();
            let out = Universe::run(nranks, move |comm| {
                let cart = CartComm::new(comm, &dims_c);
                let dc = Arc::new(Decomposition::new(&[edge, edge, edge], &dims_c));
                let coords = cart.coords().to_vec();
                let mut arr = DistArray::new(dc, &coords, radius.max(2));
                arr.fill_global_slice(&[0..edge, 0..edge, 0..edge], 1.0);

                // Plan arm: build + prime during warm-up, then time.
                let mut ex = make_exchange(mode);
                for _ in 0..warmup {
                    ex.exchange(&cart, &mut arr, radius, 0);
                }
                cart.comm().barrier();
                cart.comm().reset_stats();
                let mut plan_secs = f64::INFINITY;
                for _ in 0..reps {
                    cart.comm().barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        ex.exchange(&cart, &mut arr, radius, 0);
                    }
                    cart.comm().barrier();
                    plan_secs = plan_secs.min(t0.elapsed().as_secs_f64());
                }
                let stats = cart.comm().stats();

                // Legacy arm: same geometry (taken from a plan), pre-plan
                // cost model. Distinct tag base so arms can't cross-match.
                let geo = HaloPlan::build(&cart, &arr, mode, radius, 4096);
                for _ in 0..warmup {
                    legacy_exchange(&cart, &mut arr, &geo);
                }
                let mut legacy_secs = f64::INFINITY;
                for _ in 0..reps {
                    cart.comm().barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        legacy_exchange(&cart, &mut arr, &geo);
                    }
                    cart.comm().barrier();
                    legacy_secs = legacy_secs.min(t0.elapsed().as_secs_f64());
                }
                (
                    plan_secs,
                    legacy_secs,
                    stats.msgs_sent,
                    stats.bytes_sent,
                    stats.bufs_allocated,
                )
            });
            // Slowest rank defines the exchange latency; allocations are
            // summed (the steady-state contract is zero everywhere).
            let plan_secs = out.iter().map(|r| r.0).fold(0.0, f64::max);
            let legacy_secs = out.iter().map(|r| r.1).fold(0.0, f64::max);
            let timed_exchanges = (iters * reps) as u64;
            let msgs_per_ex: u64 = out.iter().map(|r| r.2).sum::<u64>() / timed_exchanges;
            let bytes_per_ex: u64 = out.iter().map(|r| r.3).sum::<u64>() / timed_exchanges;
            let steady_allocs: u64 = out.iter().map(|r| r.4).sum();
            let plan_us = plan_secs / iters as f64 * 1e6;
            let legacy_us = legacy_secs / iters as f64 * 1e6;
            let speedup = legacy_us / plan_us;
            println!(
                "{:<10} {:>6} {:>12.2} {:>12.2} {:>8.2}x {:>6} {:>10} {:>11}",
                format!("{mode:?}").to_lowercase(),
                radius,
                plan_us,
                legacy_us,
                speedup,
                msgs_per_ex,
                bytes_per_ex,
                steady_allocs,
            );
            rows.push(json!({
                "mode": format!("{mode:?}").to_lowercase(),
                "radius": radius,
                "plan_us_per_exchange": plan_us,
                "legacy_us_per_exchange": legacy_us,
                "speedup": speedup,
                "msgs_per_exchange": msgs_per_ex,
                "bytes_per_exchange": bytes_per_ex,
                "steady_state_bufs_allocated": steady_allocs,
            }));
        }
    }
    // Sanitizer-overhead smoke. `mpix-san` is always compiled in, so the
    // claim to defend is that the *disabled* path costs nothing: every
    // hook site reduces to one `Option` branch. Measure the plan-arm
    // exchange loop with the sanitizer disabled, then enabled, then
    // disabled again (min over reps, slowest rank); the second disabled
    // arm must stay within the noise-calibrated gate below of the first —
    // arming the sanitizer may leave no residual cost, and any
    // unconditional work added to the hot hook sites shows up here. The
    // enabled figure rides along as a trend record, not a gate.
    let san_radius = 2usize;
    let (san_reps, san_iters) = if quick { (3u32, 50u32) } else { (5, 200) };
    let measure = |san: Option<Arc<mpix_san::San>>| -> f64 {
        let dims_c = dims.clone();
        let out = Universe::run_with_san(nranks, san, move |comm| {
            let cart = CartComm::new(comm, &dims_c);
            let dc = Arc::new(Decomposition::new(&[edge, edge, edge], &dims_c));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, san_radius);
            arr.fill_global_slice(&[0..edge, 0..edge, 0..edge], 1.0);
            let mut ex = make_exchange(HaloMode::Basic);
            for _ in 0..3 {
                ex.exchange(&cart, &mut arr, san_radius, 0);
            }
            let mut best = f64::INFINITY;
            for _ in 0..san_reps {
                cart.comm().barrier();
                let t0 = Instant::now();
                for _ in 0..san_iters {
                    ex.exchange(&cart, &mut arr, san_radius, 0);
                }
                cart.comm().barrier();
                best = best.min(t0.elapsed().as_secs_f64());
            }
            best
        });
        out.into_iter().fold(0.0, f64::max) / san_iters as f64 * 1e6
    };
    // The very first `Universe::run` of the process pays one-time costs
    // (thread-spawn warm-up, lazy allocator arenas, page faults on fresh
    // grids), and the process keeps getting gradually faster for a while
    // after that. Measuring each arm once in a fixed order made the first
    // disabled arm absorb all of that drift and produced nonsense
    // negative overheads (-17% in a published BENCH_comm.json). Burn the
    // cold start on several discarded passes (the warm-up curve is
    // convex — the first measure is far slower than the fourth, so one
    // discard is not enough), then measure the arms in *palindromic*
    // order over an even number of rounds — (before, enabled, after) on
    // even rounds, (after, enabled, before) on odd — so each arm's
    // measurement positions are symmetric around the run's midpoint.
    // Per-arm means then cancel any remaining linear drift exactly; a
    // fixed within-round order would hand the later arm the drift every
    // single round, which no amount of round-interleaving or robust
    // statistics can undo.
    for _ in 0..4 {
        let _ = measure(None);
    }
    let mut disabled_before = Vec::new();
    let mut enabled = Vec::new();
    let mut disabled_after = Vec::new();
    for round in 0..6 {
        let san = || Some(Arc::new(mpix_san::San::new(nranks)));
        if round % 2 == 0 {
            disabled_before.push(measure(None));
            enabled.push(measure(san()));
            disabled_after.push(measure(None));
        } else {
            disabled_after.push(measure(None));
            enabled.push(measure(san()));
            disabled_before.push(measure(None));
        }
    }
    let mean = |v: &[f64]| -> f64 { v.iter().sum::<f64>() / v.len() as f64 };
    let disabled_before_us = mean(&disabled_before);
    let enabled_us = mean(&enabled);
    let disabled_after_us = mean(&disabled_after);
    let overhead_pct = (disabled_after_us / disabled_before_us - 1.0) * 100.0;
    println!(
        "\n## mpix-san overhead (basic, radius {san_radius}): disabled {disabled_before_us:.2} \
         µs/ex, enabled {enabled_us:.2} µs/ex, disabled-again {disabled_after_us:.2} µs/ex \
         ({overhead_pct:+.2}%)"
    );
    // Gate tolerance is calibrated to this harness's measured noise
    // floor, not to the cost being hunted: two *identical* disabled arms
    // differ by up to ~8% (quick mode, loaded single-core host) purely
    // from scheduling noise, while unconditional work added to the hook
    // sites lands in the +25-40% range the *enabled* arm shows. The old
    // 2% tolerance only ever passed because the cold-first-arm bias made
    // the after-arm systematically faster; with that bias fixed the gate
    // must sit above the (now symmetric) noise and below a real leak.
    let tolerance = if quick { 1.12 } else { 1.08 };
    assert!(
        disabled_after_us <= disabled_before_us * tolerance + 2.0,
        "sanitizer-disabled exchange cost regressed beyond the \
         {:.0}% noise gate: {disabled_before_us:.2}µs -> {disabled_after_us:.2}µs",
        (tolerance - 1.0) * 100.0
    );

    let sweep_rows = if ranks_sweep {
        ranks_sweep_rows(quick)
    } else {
        Vec::new()
    };

    json!({
        "grid": vec![edge, edge, edge],
        "rank_dims": dims,
        "ranks": nranks,
        "iters": iters,
        "quick": quick,
        "exchanges": rows,
        "ranks_sweep": sweep_rows,
        "sanitizer": json!({
            "disabled_us_per_exchange": disabled_before_us,
            "enabled_us_per_exchange": enabled_us,
            "disabled_after_us_per_exchange": disabled_after_us,
            "disabled_overhead_pct": overhead_pct,
        }),
    })
    .pretty()
}

/// Weak-scaling ranks sweep: 8³ points per rank, diagonal (26-neighbour)
/// exchange at radius 2, swept over P ∈ {8, 32, 128, 256, 512} (quick:
/// {8, 32}). Two arms differing only in substrate layout:
///
/// * **sharded** — the default `CommTuning` (16 mailbox shards per rank,
///   per-rank buffer pools with release-to-origin recycling), and
/// * **baseline** — `with_shards(1)`: one mailbox shard per rank and the
///   legacy single global pool capped at 1024 buffers, i.e. the
///   pre-shard layout, where at P ≥ 128 the pool cap (128 ranks × 52
///   primed buffers > 1024) forces steady-state allocation on every
///   exchange.
///
/// What each column can prove depends on the host. The structural
/// contracts are machine-independent and asserted: the sharded arm
/// completes every swept P with **zero** steady-state allocations, while
/// the baseline provably cannot once P ≥ 128 (its cap is 26x
/// under-provisioned at P = 512); those allocations, and `recv_parks`,
/// are the contention columns. The wall-clock speedup column is honest
/// measurement but only separates the arms on hosts with real
/// parallelism: with every rank time-slicing a single core, lock
/// contention cannot burn cycles (a blocked thread just yields the core
/// to whoever holds the lock) and both arms converge to the same serial
/// copy-plus-scheduling cost — on such hosts the column reads ~1.0x and
/// the allocation/park columns carry the signal. Each arm is sampled
/// twice in mirrored order and represented by its faster sample, so a
/// host-load excursion cannot masquerade as an arm-level difference. A
/// selected-vs-forced-binomial 32 KiB allreduce rides along to attribute
/// collective cost to the topology-aware algorithm choice.
fn ranks_sweep_rows(quick: bool) -> Vec<mpix_json::Value> {
    use mpix_comm::{dims_create, CartComm, CollectiveAlgo, CommTuning, ReduceOp, Universe};
    use mpix_dmp::halo::make_exchange;
    use mpix_dmp::{Decomposition, DistArray, HaloMode};
    use mpix_json::json;
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let plist: &[usize] = if quick {
        &[8, 32]
    } else {
        &[8, 32, 128, 256, 512]
    };
    let radius = 2usize;
    let per_rank_edge = 8usize;
    let reps = if quick { 1u32 } else { 3u32 };

    let mut rows = Vec::new();
    println!(
        "\n## Ranks sweep: diagonal radius-{radius} exchange, {per_rank_edge}³ points/rank, \
         sharded (16 shards, per-rank pools) vs baseline (1 shard, global pool)"
    );
    println!(
        "{:>6} {:>12} {:>15} {:>18} {:>9} {:>13} {:>15} {:>14} {:>22}",
        "ranks",
        "dims",
        "sharded µs/ex",
        "baseline µs/ex",
        "speedup",
        "parks/ex",
        "base-parks/ex",
        "base-allocs",
        "allreduce sel vs bin"
    );
    for &p in plist {
        let dims = dims_create(p, 3);
        // Fixed per-rank work; shrink the iteration count as thread counts
        // (and per-exchange message counts) grow so each leg stays bounded.
        let (warmup, iters) = match p {
            0..=32 => (5u32, 40u32),
            33..=128 => (3, 16),
            129..=256 => (2, 8),
            _ => (2, 5),
        };
        let coll_iters = (256 / p).clamp(2, 32) as u32;

        // Returns (exchange secs, recv parks, steady-state allocations,
        // selected-allreduce secs, binomial-allreduce secs, algo labels).
        let run_arm = |tuning: CommTuning| -> (f64, u64, u64, f64, f64, Vec<String>) {
            let dims_c = dims.clone();
            let out = Universe::run_cfg(p, tuning, None, move |comm| {
                let cart = CartComm::new(comm, &dims_c);
                let shape: Vec<usize> = dims_c.iter().map(|d| d * per_rank_edge).collect();
                let dc = Arc::new(Decomposition::new(&shape, &dims_c));
                let coords = cart.coords().to_vec();
                let mut arr = DistArray::new(dc, &coords, radius);
                let ranges: Vec<std::ops::Range<usize>> = shape.iter().map(|&e| 0..e).collect();
                arr.fill_global_slice(&ranges, 1.0);
                let mut ex = make_exchange(HaloMode::Diagonal);
                for _ in 0..warmup {
                    ex.exchange(&cart, &mut arr, radius, 0);
                }
                cart.comm().barrier();
                cart.comm().reset_stats();
                let mut secs = f64::INFINITY;
                for _ in 0..reps {
                    cart.comm().barrier();
                    let t0 = Instant::now();
                    for _ in 0..iters {
                        ex.exchange(&cart, &mut arr, radius, 0);
                    }
                    cart.comm().barrier();
                    secs = secs.min(t0.elapsed().as_secs_f64());
                }
                let ex_stats = cart.comm().stats();

                // Collective leg: 8192 floats = 32 KiB — the bandwidth
                // regime, where the topology-aware selection picks ring
                // on parallel hosts and a tree on oversubscribed single
                // cores. Integer-valued payloads keep all algorithms
                // bitwise-comparable.
                let rank = cart.comm().rank();
                let payload: Vec<f32> = (0..8192).map(|i| ((i + rank) % 17) as f32).collect();
                cart.comm().reset_stats();
                cart.comm().barrier();
                let t0 = Instant::now();
                for _ in 0..coll_iters {
                    let _ = cart.comm().allreduce_f32(&payload, ReduceOp::Sum);
                }
                cart.comm().barrier();
                let selected_secs = t0.elapsed().as_secs_f64();
                let algos: Vec<String> = cart
                    .comm()
                    .stats()
                    .collective_algos
                    .keys()
                    .cloned()
                    .collect();
                cart.comm().barrier();
                let t0 = Instant::now();
                for _ in 0..coll_iters {
                    let _ = cart.comm().allreduce_f32_with(
                        &payload,
                        ReduceOp::Sum,
                        CollectiveAlgo::Binomial,
                    );
                }
                cart.comm().barrier();
                let binomial_secs = t0.elapsed().as_secs_f64();
                (
                    secs,
                    ex_stats.recv_parks,
                    ex_stats.bufs_allocated,
                    selected_secs,
                    binomial_secs,
                    algos,
                )
            });
            let secs = out.iter().map(|r| r.0).fold(0.0, f64::max);
            let parks: u64 = out.iter().map(|r| r.1).sum();
            let allocs: u64 = out.iter().map(|r| r.2).sum();
            let sel = out.iter().map(|r| r.3).fold(0.0, f64::max);
            let bin = out.iter().map(|r| r.4).fold(0.0, f64::max);
            let algos = out.into_iter().next().map(|r| r.5).unwrap_or_default();
            (secs, parks, allocs, sel, bin, algos)
        };

        // Identical waiting knobs in both arms (the seed's 32-yield spin
        // budget is the default); only the shard/pool layout differs, so
        // the columns measure sharding and nothing else. The generous
        // timeout keeps the P=512 leg from tripping the deadlock
        // detector under heavy scheduling delay.
        //
        // Same palindromic discipline as the sanitizer smoke: each arm
        // is sampled twice in mirrored order (sharded, baseline,
        // baseline, sharded) so a host-load excursion cannot land on one
        // arm's only sample, and the faster sample represents each arm —
        // scheduling noise only ever adds time. The allocation contracts
        // below are checked on *both* samples of each arm.
        let common = CommTuning::default().with_recv_timeout(Duration::from_secs(300));
        let sh_a = run_arm(common.clone());
        let bl_a = run_arm(common.clone().with_shards(1));
        let bl_b = run_arm(common.clone().with_shards(1));
        let sh_b = run_arm(common.clone());
        let pick = |a: (f64, u64, u64, f64, f64, Vec<String>),
                    b: (f64, u64, u64, f64, f64, Vec<String>)| {
            if a.0 <= b.0 {
                a
            } else {
                b
            }
        };
        let sh_allocs_both = [sh_a.2, sh_b.2];
        let bl_allocs_both = [bl_a.2, bl_b.2];
        let (sh_secs, sh_parks, sh_allocs, sh_sel, sh_bin, algos) = pick(sh_a, sh_b);
        let (bl_secs, bl_parks, bl_allocs, bl_sel, bl_bin, _) = pick(bl_a, bl_b);

        let timed = (iters * reps) as f64;
        let sh_us = sh_secs / iters as f64 * 1e6;
        let bl_us = bl_secs / iters as f64 * 1e6;
        let speedup = bl_us / sh_us;
        let sh_parks_ex = sh_parks as f64 / timed;
        let bl_parks_ex = bl_parks as f64 / timed;
        let sel_us = sh_sel.min(bl_sel) / coll_iters as f64 * 1e6;
        let bin_us = sh_bin.min(bl_bin) / coll_iters as f64 * 1e6;
        let algo = algos.join(",");
        println!(
            "{:>6} {:>12} {:>15.1} {:>18.1} {:>8.2}x {:>13.1} {:>15.1} {:>14} {:>10.1} / {:>7.1}",
            p,
            format!("{dims:?}"),
            sh_us,
            bl_us,
            speedup,
            sh_parks_ex,
            bl_parks_ex,
            bl_allocs,
            sel_us,
            bin_us,
        );
        // The machine-independent contracts (see the fn docs): the
        // sharded arm keeps the zero-allocation steady state at every P,
        // and the baseline demonstrably loses it once its global pool
        // cap is exceeded (P ≥ 128: 128 ranks × 52 primed buffers
        // > 1024-buffer cap) — that structural gap, not the wall-clock
        // column, is what a single-core host can prove about sharding.
        for sh in sh_allocs_both {
            assert_eq!(sh, 0, "sharded arm allocated in steady state at P={p}");
        }
        if p >= 128 {
            for bl in bl_allocs_both {
                assert!(
                    bl > 0,
                    "baseline (global pool, cap 1024) unexpectedly stayed allocation-free \
                     at P={p}; the sweep is no longer exercising the pool-cap regime"
                );
            }
        }
        rows.push(json!({
            "ranks": p,
            "rank_dims": dims,
            "points_per_rank": per_rank_edge * per_rank_edge * per_rank_edge,
            "radius": radius,
            "sharded_us_per_exchange": sh_us,
            "baseline_us_per_exchange": bl_us,
            "speedup": speedup,
            "sharded_recv_parks_per_exchange": sh_parks_ex,
            "baseline_recv_parks_per_exchange": bl_parks_ex,
            "sharded_steady_state_bufs_allocated": sh_allocs,
            "baseline_steady_state_bufs_allocated": bl_allocs,
            "allreduce_algo": algo,
            "allreduce_selected_us": sel_us,
            "allreduce_binomial_us": bin_us,
        }));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cpu_rows_are_positive_and_grow() {
        let rows = model_cpu_rows(KernelKind::Acoustic, 8);
        for row in rows {
            assert!(row.iter().all(|&v| v > 0.0));
            assert!(row[7] > row[0]);
        }
    }

    #[test]
    fn gpu_single_unit_beats_cpu_node() {
        for kind in KernelKind::all() {
            let c = model_cpu_rows(kind, 8)[0][0];
            let g = model_gpu_row(kind, 8)[0];
            assert!(g > c, "{kind:?}: GPU {g} !> CPU {c}");
        }
    }

    /// Smoke for the backend column: the quick bench must emit one row
    /// per `(kernel, sdo, backend)`, and on a JIT-capable host the
    /// native rows must beat the vectorized interpreter somewhere —
    /// if the JIT never wins even once, the backend is mislinked (e.g.
    /// silently falling back to the interpreter everywhere).
    #[test]
    fn bench_kernels_has_backend_rows_and_jit_wins_somewhere() {
        use mpix_core::{available_backends, Backend};

        let out = bench_kernels_json(true);
        let v = mpix_json::Value::parse(&out).expect("valid JSON");
        let rows = v
            .get("kernels")
            .and_then(mpix_json::Value::as_array)
            .unwrap();
        let have_jit = available_backends().contains(&Backend::Jit);
        let backends_per_group = if have_jit { 3 } else { 2 };
        // 4 kernels × 4 SDOs × backends.
        assert_eq!(rows.len(), 16 * backends_per_group, "{out}");
        for row in rows {
            assert!(row
                .get("backend")
                .and_then(mpix_json::Value::as_str)
                .is_some());
            assert!(row.get("gpts").and_then(mpix_json::Value::as_f64).unwrap() > 0.0);
        }
        if have_jit {
            let gpts_of = |backend: &str| -> Vec<f64> {
                rows.iter()
                    .filter(|r| {
                        r.get("backend").and_then(mpix_json::Value::as_str) == Some(backend)
                    })
                    .map(|r| r.get("gpts").and_then(mpix_json::Value::as_f64).unwrap())
                    .collect()
            };
            let jit = gpts_of("jit");
            let bytecode = gpts_of("bytecode");
            assert!(
                jit.iter().zip(&bytecode).any(|(j, b)| j > b),
                "jit never beat the vectorized interpreter:\n{out}"
            );
        }
    }

    /// Smoke for the ranks-sweep axis: the quick sweep must emit one row
    /// per swept P with both arms measured, the sharded arm must keep
    /// the zero-allocation steady-state contract, and the collective leg
    /// must attribute its cost to a named algorithm. Also pins the
    /// mode×radius row count so `--ranks-sweep` cannot silently drop the
    /// existing axis.
    #[test]
    fn bench_halo_quick_emits_exchange_and_ranks_sweep_rows() {
        let out = bench_halo_json_opts(true, true);
        let v = mpix_json::Value::parse(&out).expect("valid JSON");
        let rows = v
            .get("exchanges")
            .and_then(mpix_json::Value::as_array)
            .unwrap();
        // Quick mode: 3 modes × 2 radii.
        assert_eq!(rows.len(), 6, "{out}");
        for row in rows {
            let plan = row
                .get("plan_us_per_exchange")
                .and_then(mpix_json::Value::as_f64)
                .unwrap();
            assert!(plan > 0.0, "{out}");
        }
        let sweep = v
            .get("ranks_sweep")
            .and_then(mpix_json::Value::as_array)
            .unwrap();
        let ranks: Vec<u64> = sweep
            .iter()
            .map(|r| r.get("ranks").and_then(mpix_json::Value::as_u64).unwrap())
            .collect();
        assert_eq!(ranks, vec![8, 32], "{out}");
        for row in sweep {
            for key in ["sharded_us_per_exchange", "baseline_us_per_exchange"] {
                let us = row.get(key).and_then(mpix_json::Value::as_f64).unwrap();
                assert!(us > 0.0, "{key}: {out}");
            }
            assert_eq!(
                row.get("sharded_steady_state_bufs_allocated")
                    .and_then(mpix_json::Value::as_u64),
                Some(0),
                "{out}"
            );
            let algo = row
                .get("allreduce_algo")
                .and_then(mpix_json::Value::as_str)
                .unwrap();
            assert!(algo.contains("allreduce_f32/"), "{algo}: {out}");
        }
    }
}
