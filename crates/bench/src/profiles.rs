//! Kernel profiles derived from compiled operators.

use mpix_perf::KernelProfile;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};

/// Build the performance-model profile of a kernel at spatial order
/// `sdo` by compiling the real operator and reading the compiler's
/// metrics (per-point quantities are shape-independent, so a tiny model
/// suffices).
pub fn profile_for(kind: KernelKind, sdo: u32) -> KernelProfile {
    let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
    let p = Propagator::build(kind, spec, sdo);
    profile_of(&p)
}

/// Profile an already-built propagator.
pub fn profile_of(p: &Propagator) -> KernelProfile {
    let counts = p.op.op_counts();
    KernelProfile {
        name: p.kind.name().to_string(),
        sdo: p.so,
        flops_per_pt: counts.flops() as f64,
        bytes_per_pt: counts.bytes() as f64,
        raw_loads: counts.raw_loads,
        working_set: counts.working_set(),
        exchanged_buffers: p.op.halo_plan().exchanges_per_step(),
        exchange_phases: p
            .op
            .halo_plan()
            .per_cluster
            .iter()
            .filter(|v| !v.is_empty())
            .count(),
        radius: (p.so / 2) as usize,
        clusters: p.op.clusters().len(),
        efficiency: KernelProfile::calibrated_efficiency(p.kind.name()),
    }
}

/// The paper's CPU strong-scaling domain per kernel (§IV-C).
pub fn cpu_domain(kind: KernelKind) -> [usize; 3] {
    match kind {
        KernelKind::Acoustic | KernelKind::Elastic | KernelKind::Tti => [1024, 1024, 1024],
        KernelKind::Viscoelastic => [768, 768, 768],
    }
}

/// The paper's GPU strong-scaling domain per kernel (§IV-C).
pub fn gpu_domain(kind: KernelKind) -> [usize; 3] {
    match kind {
        KernelKind::Acoustic => [1158, 1158, 1158],
        KernelKind::Elastic => [832, 832, 832],
        KernelKind::Tti => [896, 896, 896],
        KernelKind::Viscoelastic => [704, 704, 704],
    }
}

/// Simulated time steps per kernel for 512 ms (§IV-C).
pub fn timesteps(kind: KernelKind) -> usize {
    match kind {
        KernelKind::Acoustic | KernelKind::Tti => 290,
        KernelKind::Elastic => 363,
        KernelKind::Viscoelastic => 251,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_reflect_kernel_ordering() {
        let ac = profile_for(KernelKind::Acoustic, 8);
        let tti = profile_for(KernelKind::Tti, 8);
        let el = profile_for(KernelKind::Elastic, 8);
        let ve = profile_for(KernelKind::Viscoelastic, 8);
        // Working sets: 5 < tti < 22 < 34 (paper field counts).
        assert_eq!(ac.working_set, 5);
        assert_eq!(el.working_set, 22);
        assert_eq!(ve.working_set, 34);
        assert!(tti.working_set > ac.working_set);
        // OI ordering: TTI highest, acoustic higher than the staggered
        // systems (star stencil, few streams).
        assert!(tti.oi() > ac.oi());
        assert!(tti.oi() > el.oi());
        // Communication: the staggered systems exchange many more
        // buffers than acoustic (9 = 6 stresses + 3 fresh velocities;
        // the viscoelastic memory variables are read at the centre only
        // and need no halo, so its count equals elastic's).
        assert_eq!(el.exchanged_buffers, 9);
        assert_eq!(ve.exchanged_buffers, 9);
        assert!(el.exchanged_buffers > ac.exchanged_buffers);
        assert_eq!(el.exchange_phases, 2);
        assert_eq!(ac.exchange_phases, 1);
    }

    #[test]
    fn flops_grow_with_sdo() {
        for kind in KernelKind::all() {
            let a = profile_for(kind, 4);
            let b = profile_for(kind, 8);
            assert!(b.flops_per_pt > a.flops_per_pt, "{kind:?}");
            assert_eq!(b.radius, 4);
            assert_eq!(a.radius, 2);
        }
    }
}
