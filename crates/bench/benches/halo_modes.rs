//! Halo-exchange cost per pattern at 8 simulated ranks (the Table I
//! comparison and the buffer-preallocation ablation, DESIGN.md §5.1/5.3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::sync::Arc;

use mpix_comm::{CartComm, Universe};
use mpix_dmp::halo::make_exchange;
use mpix_dmp::{Decomposition, DistArray, HaloMode};

/// One full exchange on 8 ranks (2x2x2) for a field of `n`³ local points
/// at radius `r`.
fn run_exchange(mode: HaloMode, n: usize, r: usize, steps: usize) {
    let global = [n * 2, n * 2, n * 2];
    Universe::run(8, |comm| {
        let cart = CartComm::new(comm, &[2, 2, 2]);
        let dc = Arc::new(Decomposition::new(&global, &[2, 2, 2]));
        let coords = cart.coords().to_vec();
        let mut arr = DistArray::new(dc, &coords, r.max(2));
        let mut ex = make_exchange(mode);
        for _ in 0..steps {
            ex.exchange(&cart, &mut arr, r, 0);
        }
    });
}

fn bench_modes(c: &mut Criterion) {
    let mut g = c.benchmark_group("halo_exchange_8ranks");
    g.sample_size(10);
    for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
        for n in [16usize, 32] {
            g.bench_with_input(
                BenchmarkId::new(format!("{mode:?}"), format!("{n}^3_r4")),
                &(mode, n),
                |b, &(mode, n)| b.iter(|| run_exchange(mode, n, 4, 4)),
            );
        }
    }
    g.finish();
}

/// The preallocation ablation: diagonal (preallocated) vs basic
/// (per-call allocation) at equal message structure is covered above;
/// here we isolate repeated exchanges on one long-lived exchanger vs a
/// fresh exchanger per step (what per-call allocation amounts to).
fn bench_prealloc(c: &mut Criterion) {
    let mut g = c.benchmark_group("prealloc_ablation");
    g.sample_size(10);
    let global = [32usize, 32, 32];
    g.bench_function("diagonal_reused_buffers", |b| {
        b.iter(|| {
            Universe::run(8, |comm| {
                let cart = CartComm::new(comm, &[2, 2, 2]);
                let dc = Arc::new(Decomposition::new(&global, &[2, 2, 2]));
                let coords = cart.coords().to_vec();
                let mut arr = DistArray::new(dc, &coords, 4);
                let mut ex = make_exchange(HaloMode::Diagonal);
                for _ in 0..6 {
                    ex.exchange(&cart, &mut arr, 4, 0);
                }
            })
        })
    });
    g.bench_function("diagonal_fresh_buffers_each_step", |b| {
        b.iter(|| {
            Universe::run(8, |comm| {
                let cart = CartComm::new(comm, &[2, 2, 2]);
                let dc = Arc::new(Decomposition::new(&global, &[2, 2, 2]));
                let coords = cart.coords().to_vec();
                let mut arr = DistArray::new(dc, &coords, 4);
                for _ in 0..6 {
                    let mut ex = make_exchange(HaloMode::Diagonal);
                    ex.exchange(&cart, &mut arr, 4, 0);
                }
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_modes, bench_prealloc);
criterion_main!(benches);
