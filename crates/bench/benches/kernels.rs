//! Single-rank stencil-kernel throughput per propagator and SDO, plus
//! the loop-blocking ablation (DESIGN.md §5.2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpix_core::ApplyOptions;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_step");
    g.sample_size(10);
    for kind in KernelKind::all() {
        for so in [4u32, 8] {
            let spec = ModelSpec::new(&[20, 20, 20]).with_nbl(2);
            let prop = Propagator::build(kind, spec, so);
            let points = prop.points_per_step();
            g.throughput(Throughput::Elements(points));
            g.bench_with_input(
                BenchmarkId::new(kind.name(), format!("so{so}")),
                &prop,
                |b, prop| {
                    let opts = prop.apply_options(1);
                    b.iter(|| {
                        prop.op.apply_local(
                            &opts,
                            |ws| prop.init(ws),
                            |ws| ws.field_final(prop.main_field()).raw()[0],
                        )
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking_ablation");
    g.sample_size(10);
    let spec = ModelSpec::new(&[28, 28, 28]).with_nbl(2);
    let prop = Propagator::build(KernelKind::Acoustic, spec, 8);
    for block in [0usize, 4, 8, 16] {
        g.bench_with_input(BenchmarkId::new("acoustic_so8", block), &block, |b, &block| {
            let opts: ApplyOptions = prop.apply_options(2).with_block(block);
            b.iter(|| {
                prop.op.apply_local(
                    &opts,
                    |ws| prop.init(ws),
                    |ws| ws.field_final(prop.main_field()).raw()[0],
                )
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_kernels, bench_blocking);
criterion_main!(benches);
