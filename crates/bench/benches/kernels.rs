//! Single-rank stencil-kernel throughput per propagator and SDO, the
//! loop-blocking ablation (DESIGN.md §5.2), and the trace-overhead
//! check: `TraceLevel::Off` spans must cost one predictable branch, so
//! a disabled-trace run stays within noise of the untraced baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use mpix_core::{ApplyOptions, TraceLevel};
use mpix_solvers::{KernelKind, ModelSpec, Propagator};

fn bench_kernels(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernel_step");
    g.sample_size(10);
    for kind in KernelKind::all() {
        for so in [4u32, 8] {
            let spec = ModelSpec::new(&[20, 20, 20]).with_nbl(2);
            let prop = Propagator::build(kind, spec, so);
            let points = prop.points_per_step();
            g.throughput(Throughput::Elements(points));
            g.bench_with_input(
                BenchmarkId::new(kind.name(), format!("so{so}")),
                &prop,
                |b, prop| {
                    let opts = prop.apply_options(1);
                    b.iter(|| {
                        prop.op
                            .run(
                                &opts,
                                |ws| prop.init(ws),
                                |ws| ws.field_final(prop.main_field()).raw()[0],
                            )
                            .results[0]
                    });
                },
            );
        }
    }
    g.finish();
}

/// Scalar interpreter vs the lane-vectorized strip engine at every
/// supported width, per SDO — the runtime analogue of the paper's
/// `omp simd` ablation. `vw0` rows are the scalar baseline.
fn bench_vector_width(c: &mut Criterion) {
    let mut g = c.benchmark_group("vector_width");
    g.sample_size(10);
    for so in [4u32, 8, 12, 16] {
        let spec = ModelSpec::new(&[24, 24, 24]).with_nbl(2);
        let prop = Propagator::build(KernelKind::Acoustic, spec, so);
        g.throughput(Throughput::Elements(prop.points_per_step()));
        for vw in [0usize, 8, 16, 32] {
            g.bench_with_input(
                BenchmarkId::new(format!("acoustic_so{so}"), format!("vw{vw}")),
                &vw,
                |b, &vw| {
                    let opts = prop.apply_options(1).with_vector_width(vw);
                    b.iter(|| {
                        prop.op
                            .run(
                                &opts,
                                |ws| prop.init(ws),
                                |ws| ws.field_final(prop.main_field()).raw()[0],
                            )
                            .results[0]
                    });
                },
            );
        }
    }
    g.finish();
}

fn bench_blocking(c: &mut Criterion) {
    let mut g = c.benchmark_group("blocking_ablation");
    g.sample_size(10);
    let spec = ModelSpec::new(&[28, 28, 28]).with_nbl(2);
    let prop = Propagator::build(KernelKind::Acoustic, spec, 8);
    for block in [0usize, 4, 8, 16] {
        g.bench_with_input(
            BenchmarkId::new("acoustic_so8", block),
            &block,
            |b, &block| {
                let opts: ApplyOptions = prop.apply_options(2).with_block(block);
                b.iter(|| {
                    prop.op
                        .run(
                            &opts,
                            |ws| prop.init(ws),
                            |ws| ws.field_final(prop.main_field()).raw()[0],
                        )
                        .results[0]
                });
            },
        );
    }
    g.finish();
}

/// The same multi-rank apply at every trace level. `off` vs the other
/// rows bounds the cost of the disabled instrumentation (<2% target);
/// `summary`/`full` show what enabling observability actually costs.
fn bench_trace_overhead(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_overhead");
    g.sample_size(10);
    let spec = ModelSpec::new(&[20, 20, 20]).with_nbl(2);
    let prop = Propagator::build(KernelKind::Acoustic, spec, 4);
    g.throughput(Throughput::Elements(prop.points_per_step() * 4));
    for level in [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Full] {
        g.bench_with_input(
            BenchmarkId::new("acoustic_so4_4ranks", level.name()),
            &level,
            |b, &level| {
                let opts = prop.apply_options(4).with_ranks(4).with_trace(level);
                b.iter(|| {
                    prop.op
                        .run(
                            &opts,
                            |ws| prop.init(ws),
                            |ws| ws.field_final(prop.main_field()).raw()[0],
                        )
                        .results[0]
                });
            },
        );
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_kernels,
    bench_vector_width,
    bench_blocking,
    bench_trace_overhead
);
criterion_main!(benches);
