//! Compiler-pipeline cost: symbolic solve, lowering, clustering, CSE,
//! halo detection, and IET construction for each kernel (the JIT-compile
//! latency a Devito user pays once per `Operator`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mpix_core::ApplyOptions;
use mpix_dmp::HaloMode;
use mpix_solvers::{KernelKind, ModelSpec, Propagator};

fn bench_compile(c: &mut Criterion) {
    let mut g = c.benchmark_group("operator_compile");
    g.sample_size(10);
    for kind in KernelKind::all() {
        g.bench_with_input(BenchmarkId::new(kind.name(), "so8"), &kind, |b, &kind| {
            b.iter(|| {
                let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
                Propagator::build(kind, spec, 8).op.op_counts().flops()
            })
        });
    }
    g.finish();
}

fn bench_cgen(c: &mut Criterion) {
    let mut g = c.benchmark_group("c_emission");
    g.sample_size(20);
    let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
    let prop = Propagator::build(KernelKind::Elastic, spec, 8);
    let opts = ApplyOptions::default().with_mode(HaloMode::Basic);
    g.bench_function("elastic_so8_basic", |b| {
        b.iter(|| prop.op.c_code_for(&opts).len())
    });
    g.finish();
}

fn bench_executable(c: &mut Criterion) {
    let mut g = c.benchmark_group("bytecode_compile");
    g.sample_size(20);
    let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
    let prop = Propagator::build(KernelKind::Viscoelastic, spec, 8);
    let opts = ApplyOptions::default().with_mode(HaloMode::Diagonal);
    g.bench_function("viscoelastic_so8", |b| {
        // The uncached path: `executable_for` would memoize after the
        // first iteration and this group would time a hashmap hit.
        b.iter(|| {
            prop.op
                .compile_executable_for(&opts)
                .compiled_clusters()
                .len()
        })
    });
    g.finish();
}

criterion_group!(benches, bench_compile, bench_cgen, bench_executable);
criterion_main!(benches);
