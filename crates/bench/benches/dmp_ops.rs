//! Micro-benchmarks of the DMP substrate: index conversion, packing,
//! global slicing and sparse operations.

use criterion::{criterion_group, criterion_main, Criterion};
use std::sync::Arc;

use mpix_dmp::regions::{region_box, Region};
use mpix_dmp::{Decomposition, DistArray, SparsePoints};

fn bench_decomp(c: &mut Criterion) {
    let dc = Decomposition::new(&[1024, 1024, 1024], &[16, 8, 8]);
    c.bench_function("global_to_local_conversion", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for g in (0..1024).step_by(7) {
                let (cc, l) = dc.global_to_local(0, g);
                acc += cc + l;
            }
            acc
        })
    });
}

fn bench_pack(c: &mut Criterion) {
    let dc = Arc::new(Decomposition::new(&[128, 128, 128], &[2, 2, 2]));
    let mut arr = DistArray::new(Arc::clone(&dc), &[0, 0, 0], 4);
    // Face slab perpendicular to x: radius 4.
    let local = arr.local_shape().to_vec();
    let b4: Vec<std::ops::Range<usize>> = vec![4..8, 4..4 + local[1], 4..4 + local[2]];
    let mut buf = Vec::new();
    c.bench_function("pack_face_slab_64x64x4", |bch| {
        bch.iter(|| {
            arr.pack_box(&b4, &mut buf);
            buf.len()
        })
    });
    c.bench_function("unpack_face_slab_64x64x4", |bch| {
        arr.pack_box(&b4, &mut buf);
        bch.iter(|| arr.unpack_box(&b4, &buf))
    });
}

fn bench_slicing(c: &mut Criterion) {
    let dc = Arc::new(Decomposition::new(&[256, 256], &[2, 2]));
    let mut arr = DistArray::new(dc, &[0, 0], 4);
    c.bench_function("fill_global_slice_quarter", |b| {
        b.iter(|| arr.fill_global_slice(&[32..160, 32..160], 1.0))
    });
}

fn bench_sparse(c: &mut Criterion) {
    let dc = Arc::new(Decomposition::new(&[128, 128, 128], &[2, 2, 2]));
    let mut arr = DistArray::new(Arc::clone(&dc), &[0, 0, 0], 4);
    let pts = SparsePoints::new(
        (0..64)
            .map(|i| vec![1.0 + i as f64 * 0.9, 20.5, 30.25])
            .collect(),
        vec![1.0, 1.0, 1.0],
    );
    c.bench_function("sparse_inject_64_points", |b| {
        b.iter(|| {
            for p in 0..pts.len() {
                if pts.is_owner(p, &dc, &[0, 0, 0]) {
                    pts.inject(p, 1.0, &mut arr);
                }
            }
        })
    });
    c.bench_function("sparse_ownership_64_points", |b| {
        b.iter(|| {
            (0..pts.len())
                .map(|p| pts.owner_coords(p, &dc).len())
                .sum::<usize>()
        })
    });
}

fn bench_regions(c: &mut Criterion) {
    c.bench_function("remainder_boxes_128cube_r4", |b| {
        b.iter(|| mpix_dmp::remainder_boxes(&[128, 128, 128], 4, 4).len())
    });
    c.bench_function("region_box_core", |b| {
        b.iter(|| region_box(Region::Core, &[128, 128, 128], 4, 4))
    });
}

criterion_group!(
    benches,
    bench_decomp,
    bench_pack,
    bench_slicing,
    bench_sparse,
    bench_regions
);
criterion_main!(benches);
