//! Property tests for halo exchange: random shapes, topologies, radii and
//! modes must reconstruct every interior FULL-region value, and all three
//! modes must agree bit-for-bit.

use std::ops::Range;
use std::sync::Arc;

use mpix_comm::{CartComm, Tag, Universe};
use mpix_dmp::halo::{make_exchange, HaloPlan};
use mpix_dmp::regions::for_each_index;
use mpix_dmp::{BoxNd, Decomposition, DistArray, HaloMode, Region};
use proptest::prelude::*;

/// Run one exchange and return every rank's FULL-region contents in a
/// canonical (coords, values) form.
fn exchange_snapshot(
    global: &[usize],
    dims: &[usize],
    radius: usize,
    mode: HaloMode,
) -> Vec<Vec<f32>> {
    let nranks: usize = dims.iter().product();
    let global = global.to_vec();
    let dims = dims.to_vec();
    Universe::run(nranks, move |comm| {
        let cart = CartComm::new(comm, &dims);
        let dc = Arc::new(Decomposition::new(&global, &dims));
        let coords = cart.coords().to_vec();
        let mut arr = DistArray::new(Arc::clone(&dc), &coords, radius.max(2));
        // Owned values = global linear index + 1.
        let nd = global.len();
        let starts: Vec<usize> = (0..nd)
            .map(|d| dc.owned_range(d, coords[d]).start)
            .collect();
        let local: Vec<std::ops::Range<usize>> = arr.local_shape().iter().map(|&n| 0..n).collect();
        let mut writes = Vec::new();
        for_each_index(&local, |idx| {
            let mut lin = 0usize;
            for d in 0..nd {
                lin = lin * global[d] + starts[d] + idx[d];
            }
            writes.push((idx.to_vec(), (lin + 1) as f32));
        });
        for (idx, v) in writes {
            arr.set_local(&idx, v);
        }
        let mut ex = make_exchange(mode);
        ex.exchange(&cart, &mut arr, radius, 0);
        let full = arr.region(Region::Full, radius);
        let mut vals = Vec::new();
        for_each_index(&full, |p| vals.push(arr.get_padded(p)));
        vals
    })
}

/// Reference: what the FULL region *should* contain, computed globally.
fn expected_snapshot(global: &[usize], dims: &[usize], radius: usize) -> Vec<Vec<f32>> {
    let nranks: usize = dims.iter().product();
    let dc = Decomposition::new(global, dims);
    let nd = global.len();
    (0..nranks)
        .map(|rank| {
            let coords = CartComm::coords_of(dims, rank);
            let starts: Vec<i64> = (0..nd)
                .map(|d| dc.owned_range(d, coords[d]).start as i64)
                .collect();
            let shape = dc.local_shape(&coords);
            let full: Vec<std::ops::Range<i64>> = shape
                .iter()
                .map(|&n| -(radius as i64)..(n + radius) as i64)
                .collect();
            let mut vals = Vec::new();
            let mut idx: Vec<i64> = full.iter().map(|r| r.start).collect();
            'outer: loop {
                let mut lin = 0i64;
                let mut inside = true;
                for d in 0..nd {
                    let g = idx[d] + starts[d];
                    if g < 0 || g >= global[d] as i64 {
                        inside = false;
                    }
                    lin = lin * global[d] as i64 + g;
                }
                vals.push(if inside { (lin + 1) as f32 } else { 0.0 });
                let mut d = nd;
                loop {
                    if d == 0 {
                        break 'outer;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < full[d].end {
                        break;
                    }
                    idx[d] = full[d].start;
                }
            }
            vals
        })
        .collect()
}

// ---------------------------------------------------------------------------
// HaloPlan vs. the legacy per-call geometry
// ---------------------------------------------------------------------------

/// Independent reimplementation of the pre-plan per-call geometry: for
/// each message the legacy `BasicExchange`/`DiagonalExchange` would have
/// sent, the `(peer, send_tag, recv_tag, send_box, recv_box)` tuple it
/// would have computed, grouped by step.
#[allow(clippy::type_complexity)]
fn legacy_rows(
    cart: &CartComm,
    arr: &DistArray,
    mode: HaloMode,
    radius: usize,
    tag_base: Tag,
) -> Vec<Vec<(usize, Tag, Tag, BoxNd, BoxNd)>> {
    let nd = arr.local_shape().len();
    let halo = arr.halo();
    let mut steps = Vec::new();
    match mode {
        HaloMode::Basic => {
            for d in 0..nd {
                let extent = |e: usize| -> Range<usize> {
                    let n = arr.local_shape()[e];
                    if e < d {
                        halo - radius..halo + n + radius
                    } else {
                        halo..halo + n
                    }
                };
                let n_d = arr.local_shape()[d];
                let mut rows = Vec::new();
                for side in [-1i32, 1] {
                    let mut dvec = vec![0i32; nd];
                    dvec[d] = side;
                    if let Some(peer) = cart.neighbor(&dvec) {
                        let recv_tag = tag_base + (d as Tag) * 2 + u32::from(side > 0);
                        let send_tag = tag_base + (d as Tag) * 2 + u32::from(side < 0);
                        let send_box: BoxNd = (0..nd)
                            .map(|e| {
                                if e == d {
                                    if side < 0 {
                                        halo..halo + radius
                                    } else {
                                        halo + n_d - radius..halo + n_d
                                    }
                                } else {
                                    extent(e)
                                }
                            })
                            .collect();
                        let recv_box: BoxNd = (0..nd)
                            .map(|e| {
                                if e == d {
                                    if side < 0 {
                                        halo - radius..halo
                                    } else {
                                        halo + n_d..halo + n_d + radius
                                    }
                                } else {
                                    extent(e)
                                }
                            })
                            .collect();
                        rows.push((peer, send_tag, recv_tag, send_box, recv_box));
                    }
                }
                steps.push(rows);
            }
        }
        HaloMode::Diagonal | HaloMode::Full => {
            let code_of = |disp: &[i32]| -> usize {
                disp.iter()
                    .fold(0usize, |acc, &d| acc * 3 + (d + 1) as usize)
            };
            let strip = |s: i32, d: usize, own: bool| -> Range<usize> {
                let n = arr.local_shape()[d];
                match (s, own) {
                    (-1, true) => halo..halo + radius,
                    (1, true) => halo + n - radius..halo + n,
                    (-1, false) => halo - radius..halo,
                    (1, false) => halo + n..halo + n + radius,
                    _ => halo..halo + n,
                }
            };
            let mut rows = Vec::new();
            for (disp, peer) in cart.all_neighbors() {
                let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
                let send_box: BoxNd = disp
                    .iter()
                    .enumerate()
                    .map(|(d, &s)| strip(s, d, true))
                    .collect();
                let recv_box: BoxNd = disp
                    .iter()
                    .enumerate()
                    .map(|(d, &s)| strip(s, d, false))
                    .collect();
                rows.push((
                    peer,
                    tag_base + code_of(&inv) as Tag,
                    tag_base + code_of(&disp) as Tag,
                    send_box,
                    recv_box,
                ));
            }
            steps.push(rows);
        }
    }
    steps
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// The persistent plan must precompute exactly the geometry the
    /// legacy path derived per call: same peers, same tags, same
    /// send/recv boxes — across nd ∈ {1,2,3}, uneven decompositions and
    /// radii 1..4, for every mode and every rank.
    #[test]
    fn prop_plan_matches_legacy_per_call_geometry(
        nd in 1usize..4,
        p0 in 1usize..4, p1 in 1usize..3, p2 in 1usize..3,
        extra in 0usize..3,
        radius in 1usize..5,
        mode_idx in 0usize..3,
    ) {
        let dims: Vec<usize> = [p0, p1, p2][..nd].to_vec();
        prop_assume!(dims.iter().product::<usize>() > 1);
        // Uneven: global extent not divisible by the rank count.
        let global: Vec<usize> = dims
            .iter()
            .map(|&p| p * (radius.max(2) * 2 + 1) + extra)
            .collect();
        let mode = [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full][mode_idx];
        let nranks: usize = dims.iter().product();
        let tag_base = 640;
        let dims_c = dims.clone();
        let global_c = global.clone();
        let ok = Universe::run(nranks, move |comm| {
            let cart = CartComm::new(comm, &dims_c);
            let dc = Arc::new(Decomposition::new(&global_c, &dims_c));
            let coords = cart.coords().to_vec();
            let arr = DistArray::new(dc, &coords, radius.max(2));
            let plan = HaloPlan::build(&cart, &arr, mode, radius, tag_base);
            let want = legacy_rows(&cart, &arr, mode, radius, tag_base);
            if plan.num_steps() != want.len() {
                return Err(format!(
                    "steps: plan {} vs legacy {}", plan.num_steps(), want.len()
                ));
            }
            for (s, rows) in want.iter().enumerate() {
                let got = plan.step_view(s);
                if &got != rows {
                    return Err(format!("step {s}: plan {got:?} vs legacy {rows:?}"));
                }
            }
            Ok(())
        });
        for (rank, r) in ok.into_iter().enumerate() {
            prop_assert!(r.is_ok(), "mode {:?} dims {:?} radius {} rank {}: {}",
                mode, dims, radius, rank, r.unwrap_err());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_exchange_reconstructs_full_region_2d(
        px in 1usize..4, py in 1usize..4,
        ex in 6usize..12, ey in 6usize..12,
        radius in 1usize..3,
        mode_idx in 0usize..3,
    ) {
        let dims = [px, py];
        let global = [px * ex, py * ey];
        prop_assume!(px * py > 1);
        let mode = [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full][mode_idx];
        let got = exchange_snapshot(&global, &dims, radius, mode);
        let want = expected_snapshot(&global, &dims, radius);
        prop_assert_eq!(got, want, "mode {:?} dims {:?} radius {}", mode, dims, radius);
    }

    #[test]
    fn prop_modes_agree_3d(
        px in 1usize..3, py in 1usize..3, pz in 1usize..3,
        radius in 1usize..3,
    ) {
        prop_assume!(px * py * pz > 1);
        let dims = [px, py, pz];
        let global = [px * 5, py * 6, pz * 4];
        let a = exchange_snapshot(&global, &dims, radius, HaloMode::Basic);
        let b = exchange_snapshot(&global, &dims, radius, HaloMode::Diagonal);
        let c = exchange_snapshot(&global, &dims, radius, HaloMode::Full);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let want = expected_snapshot(&global, &dims, radius);
        prop_assert_eq!(a, want);
    }
}
