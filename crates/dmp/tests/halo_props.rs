//! Property tests for halo exchange: random shapes, topologies, radii and
//! modes must reconstruct every interior FULL-region value, and all three
//! modes must agree bit-for-bit.

use std::sync::Arc;

use mpix_comm::{CartComm, Universe};
use mpix_dmp::halo::make_exchange;
use mpix_dmp::regions::for_each_index;
use mpix_dmp::{Decomposition, DistArray, HaloMode, Region};
use proptest::prelude::*;

/// Run one exchange and return every rank's FULL-region contents in a
/// canonical (coords, values) form.
fn exchange_snapshot(
    global: &[usize],
    dims: &[usize],
    radius: usize,
    mode: HaloMode,
) -> Vec<Vec<f32>> {
    let nranks: usize = dims.iter().product();
    let global = global.to_vec();
    let dims = dims.to_vec();
    Universe::run(nranks, move |comm| {
        let cart = CartComm::new(comm, &dims);
        let dc = Arc::new(Decomposition::new(&global, &dims));
        let coords = cart.coords().to_vec();
        let mut arr = DistArray::new(Arc::clone(&dc), &coords, radius.max(2));
        // Owned values = global linear index + 1.
        let nd = global.len();
        let starts: Vec<usize> = (0..nd)
            .map(|d| dc.owned_range(d, coords[d]).start)
            .collect();
        let local: Vec<std::ops::Range<usize>> = arr.local_shape().iter().map(|&n| 0..n).collect();
        let mut writes = Vec::new();
        for_each_index(&local, |idx| {
            let mut lin = 0usize;
            for d in 0..nd {
                lin = lin * global[d] + starts[d] + idx[d];
            }
            writes.push((idx.to_vec(), (lin + 1) as f32));
        });
        for (idx, v) in writes {
            arr.set_local(&idx, v);
        }
        let mut ex = make_exchange(mode);
        ex.exchange(&cart, &mut arr, radius, 0);
        let full = arr.region(Region::Full, radius);
        let mut vals = Vec::new();
        for_each_index(&full, |p| vals.push(arr.get_padded(p)));
        vals
    })
}

/// Reference: what the FULL region *should* contain, computed globally.
fn expected_snapshot(global: &[usize], dims: &[usize], radius: usize) -> Vec<Vec<f32>> {
    let nranks: usize = dims.iter().product();
    let dc = Decomposition::new(global, dims);
    let nd = global.len();
    (0..nranks)
        .map(|rank| {
            let coords = CartComm::coords_of(dims, rank);
            let starts: Vec<i64> = (0..nd)
                .map(|d| dc.owned_range(d, coords[d]).start as i64)
                .collect();
            let shape = dc.local_shape(&coords);
            let full: Vec<std::ops::Range<i64>> = shape
                .iter()
                .map(|&n| -(radius as i64)..(n + radius) as i64)
                .collect();
            let mut vals = Vec::new();
            let mut idx: Vec<i64> = full.iter().map(|r| r.start).collect();
            'outer: loop {
                let mut lin = 0i64;
                let mut inside = true;
                for d in 0..nd {
                    let g = idx[d] + starts[d];
                    if g < 0 || g >= global[d] as i64 {
                        inside = false;
                    }
                    lin = lin * global[d] as i64 + g;
                }
                vals.push(if inside { (lin + 1) as f32 } else { 0.0 });
                let mut d = nd;
                loop {
                    if d == 0 {
                        break 'outer;
                    }
                    d -= 1;
                    idx[d] += 1;
                    if idx[d] < full[d].end {
                        break;
                    }
                    idx[d] = full[d].start;
                }
            }
            vals
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]
    #[test]
    fn prop_exchange_reconstructs_full_region_2d(
        px in 1usize..4, py in 1usize..4,
        ex in 6usize..12, ey in 6usize..12,
        radius in 1usize..3,
        mode_idx in 0usize..3,
    ) {
        let dims = [px, py];
        let global = [px * ex, py * ey];
        prop_assume!(px * py > 1);
        let mode = [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full][mode_idx];
        let got = exchange_snapshot(&global, &dims, radius, mode);
        let want = expected_snapshot(&global, &dims, radius);
        prop_assert_eq!(got, want, "mode {:?} dims {:?} radius {}", mode, dims, radius);
    }

    #[test]
    fn prop_modes_agree_3d(
        px in 1usize..3, py in 1usize..3, pz in 1usize..3,
        radius in 1usize..3,
    ) {
        prop_assume!(px * py * pz > 1);
        let dims = [px, py, pz];
        let global = [px * 5, py * 6, pz * 4];
        let a = exchange_snapshot(&global, &dims, radius, HaloMode::Basic);
        let b = exchange_snapshot(&global, &dims, radius, HaloMode::Diagonal);
        let c = exchange_snapshot(&global, &dims, radius, HaloMode::Full);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(&a, &c);
        let want = expected_snapshot(&global, &dims, radius);
        prop_assert_eq!(a, want);
    }
}
