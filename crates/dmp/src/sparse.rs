//! Sparse, off-the-grid points (paper §III c, Fig. 3): seismic sources
//! and receivers that do not align with the computational grid.
//!
//! Each point has physical coordinates; its multilinear interpolation
//! support spans up to `2^nd` grid nodes. A point is *replicated* onto
//! every rank whose owned sub-domain intersects that support — points at
//! shared boundaries belong to all involved ranks (Fig. 3: point C is
//! shared by four ranks, A by one). Injection writes each grid node on
//! exactly its owning rank, so replicated execution never double-writes;
//! interpolation sums per-rank partial contributions and combines them on
//! the point's primary owner.

use mpix_comm::{CartComm, Tag};

use crate::array::DistArray;
use crate::decomp::Decomposition;

/// A set of sparse points with physical coordinates.
#[derive(Clone, Debug)]
pub struct SparsePoints {
    /// Physical coordinates, one `Vec<f64>` (length = ndim) per point.
    pub coords: Vec<Vec<f64>>,
    /// Grid spacing per dimension (physical units per grid step).
    pub spacing: Vec<f64>,
}

/// The grid-node support of one point: base node index and interpolation
/// weights for the surrounding `2^nd` nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct Support {
    /// Lowest-corner global grid index of the interpolation cell.
    pub base: Vec<usize>,
    /// Fractional position inside the cell, per dimension, in `[0, 1)`.
    pub frac: Vec<f64>,
}

impl SparsePoints {
    pub fn new(coords: Vec<Vec<f64>>, spacing: Vec<f64>) -> SparsePoints {
        for c in &coords {
            assert_eq!(c.len(), spacing.len(), "coordinate dimensionality mismatch");
        }
        SparsePoints { coords, spacing }
    }

    pub fn len(&self) -> usize {
        self.coords.len()
    }
    pub fn is_empty(&self) -> bool {
        self.coords.is_empty()
    }
    pub fn ndim(&self) -> usize {
        self.spacing.len()
    }

    /// Interpolation support of point `p`, clamped into the global grid.
    pub fn support(&self, p: usize, global_shape: &[usize]) -> Support {
        let nd = self.ndim();
        let mut base = Vec::with_capacity(nd);
        let mut frac = Vec::with_capacity(nd);
        for d in 0..nd {
            let x = self.coords[p][d] / self.spacing[d];
            let mut b = x.floor() as i64;
            let max_base = global_shape[d] as i64 - 2;
            b = b.clamp(0, max_base.max(0));
            base.push(b as usize);
            frac.push((x - b as f64).clamp(0.0, 1.0));
        }
        Support { base, frac }
    }

    /// The ranks (as Cartesian coordinate boxes) whose ownership
    /// intersects point `p`'s support — the replication set of Fig. 3.
    pub fn owner_coords(&self, p: usize, decomp: &Decomposition) -> Vec<Vec<usize>> {
        let sup = self.support(p, decomp.global_shape());
        let nd = self.ndim();
        // Per-dim process-column ranges covering [base, base+1].
        let col_ranges: Vec<std::ops::Range<usize>> = (0..nd)
            .map(|d| {
                let lo = sup.base[d];
                let hi = (sup.base[d] + 2).min(decomp.global_shape()[d]);
                decomp.owners_of_range(d, &(lo..hi))
            })
            .collect();
        let mut out = Vec::new();
        let mut idx: Vec<usize> = col_ranges.iter().map(|r| r.start).collect();
        loop {
            out.push(idx.clone());
            let mut d = nd;
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < col_ranges[d].end {
                    break;
                }
                idx[d] = col_ranges[d].start;
            }
        }
    }

    /// Is point `p` replicated on the rank with Cartesian `coords`?
    pub fn is_owner(&self, p: usize, decomp: &Decomposition, coords: &[usize]) -> bool {
        self.owner_coords(p, decomp).iter().any(|c| c == coords)
    }

    /// The *primary* owner (lowest coordinate tuple) — the rank that
    /// combines interpolation partials.
    pub fn primary_owner(&self, p: usize, decomp: &Decomposition) -> Vec<usize> {
        self.owner_coords(p, decomp)
            .into_iter()
            .min()
            .expect("every point has at least one owner")
    }

    /// Multilinear corner weights of point `p`: `(corner offsets, weight)`
    /// for each of the `2^nd` surrounding nodes.
    pub fn corner_weights(&self, p: usize, global_shape: &[usize]) -> Vec<(Vec<usize>, f64)> {
        let sup = self.support(p, global_shape);
        let nd = self.ndim();
        let mut out = Vec::with_capacity(1 << nd);
        for corner in 0..(1usize << nd) {
            let mut idx = Vec::with_capacity(nd);
            let mut w = 1.0f64;
            for d in 0..nd {
                let hi = (corner >> d) & 1 == 1;
                let node = sup.base[d] + usize::from(hi);
                if node >= global_shape[d] {
                    w = 0.0;
                }
                idx.push(node.min(global_shape[d] - 1));
                w *= if hi { sup.frac[d] } else { 1.0 - sup.frac[d] };
            }
            if w != 0.0 {
                out.push((idx, w));
            }
        }
        out
    }

    /// Inject `value * weight` into the grid around point `p`. Each node
    /// is written only by its owner, so calling this on every replicated
    /// rank performs the global injection exactly once per node.
    pub fn inject(&self, p: usize, value: f64, arr: &mut DistArray) {
        let weights = self.corner_weights(p, arr.decomp().global_shape());
        for (node, w) in weights {
            if arr.owns_global(&node) {
                let cur = arr.get_global(&node).unwrap();
                arr.set_global(&node, cur + (value * w) as f32);
            }
        }
    }

    /// Interpolate the grid value at point `p`, combining partial sums
    /// across the replication set onto the primary owner. Returns
    /// `Some(value)` on the primary owner, `None` elsewhere.
    ///
    /// All replicated ranks must call this collectively.
    pub fn interpolate(&self, p: usize, arr: &DistArray, cart: &CartComm, tag: Tag) -> Option<f64> {
        let decomp = arr.decomp();
        let owners = self.owner_coords(p, decomp);
        let me = arr.coords().to_vec();
        if !owners.contains(&me) {
            return None;
        }
        let weights = self.corner_weights(p, decomp.global_shape());
        let partial: f64 = weights
            .iter()
            .filter_map(|(node, w)| arr.get_global(node).map(|v| v as f64 * w))
            .sum();
        let primary = owners.iter().min().unwrap().clone();
        let primary_rank = CartComm::rank_of(cart.dims(), &primary);
        if me == primary {
            let mut total = partial;
            for o in &owners {
                if *o != me {
                    let r = CartComm::rank_of(cart.dims(), o);
                    let v = cart.comm().recv_f32(r, tag);
                    total += v[0] as f64;
                }
            }
            Some(total)
        } else {
            cart.comm().send_f32(primary_rank, tag, &[partial as f32]);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn decomp() -> Decomposition {
        // 8x8 grid over a 2x2 process grid: ownership boundary at index 4.
        Decomposition::new(&[8, 8], &[2, 2])
    }

    fn points(coords: Vec<Vec<f64>>) -> SparsePoints {
        SparsePoints::new(coords, vec![1.0, 1.0])
    }

    #[test]
    fn interior_point_has_single_owner() {
        // Fig. 3 point A: interior of rank (0,0).
        let sp = points(vec![vec![1.4, 1.6]]);
        let owners = sp.owner_coords(0, &decomp());
        assert_eq!(owners, vec![vec![0, 0]]);
    }

    #[test]
    fn boundary_point_shared_by_two_ranks() {
        // Fig. 3 points B/D: support [3,4] crosses the column boundary.
        let sp = points(vec![vec![3.5, 1.0]]);
        let owners = sp.owner_coords(0, &decomp());
        assert_eq!(owners, vec![vec![0, 0], vec![1, 0]]);
    }

    #[test]
    fn corner_point_shared_by_four_ranks() {
        // Fig. 3 point C: both dims cross -> all four ranks.
        let sp = points(vec![vec![3.5, 3.5]]);
        let owners = sp.owner_coords(0, &decomp());
        assert_eq!(owners.len(), 4);
        assert_eq!(sp.primary_owner(0, &decomp()), vec![0, 0]);
    }

    #[test]
    fn corner_weights_partition_unity() {
        let sp = points(vec![vec![2.3, 5.7]]);
        let w = sp.corner_weights(0, &[8, 8]);
        let total: f64 = w.iter().map(|(_, w)| w).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn on_node_point_has_unit_weight() {
        let sp = points(vec![vec![3.0, 5.0]]);
        let w = sp.corner_weights(0, &[8, 8]);
        // frac = 0: only the base corner has nonzero weight.
        assert_eq!(w.len(), 1);
        assert_eq!(w[0].0, vec![3, 5]);
        assert!((w[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn point_outside_grid_clamps() {
        let sp = points(vec![vec![-0.5, 9.5]]);
        let sup = sp.support(0, &[8, 8]);
        assert_eq!(sup.base, vec![0, 6]);
    }

    #[test]
    fn inject_writes_each_node_once_across_replicas() {
        let dc = Arc::new(decomp());
        let sp = points(vec![vec![3.5, 3.5]]); // shared by 4 ranks
                                               // Simulate all four ranks injecting; sum of all shards must equal
                                               // the injected value (weights partition unity).
        let mut total = 0.0f64;
        for ci in 0..2 {
            for cj in 0..2 {
                let mut arr = DistArray::new(Arc::clone(&dc), &[ci, cj], 2);
                if sp.is_owner(0, &dc, &[ci, cj]) {
                    sp.inject(0, 10.0, &mut arr);
                }
                total += arr.raw().iter().map(|&v| v as f64).sum::<f64>();
            }
        }
        assert!((total - 10.0).abs() < 1e-5, "total {total}");
    }

    #[test]
    fn interpolate_across_ranks_matches_serial() {
        use mpix_comm::Universe;
        let got = Universe::run(4, |comm| {
            let dc = Arc::new(decomp());
            let cart = CartComm::new(comm, &[2, 2]);
            let coords = CartComm::coords_of(&[2, 2], cart.rank()).to_vec();
            let mut arr = DistArray::new(Arc::clone(&dc), &coords, 2);
            // Global field: f(i,j) = i + 10*j (linear -> interpolation exact).
            for i in 0..8 {
                for j in 0..8 {
                    arr.set_global(&[i, j], (i + 10 * j) as f32);
                }
            }
            let sp = points(vec![vec![3.5, 3.5]]);
            sp.interpolate(0, &arr, &cart, 100)
        });
        // Exactly one rank (primary owner, rank 0) returns the value.
        let vals: Vec<f64> = got.into_iter().flatten().collect();
        assert_eq!(vals.len(), 1);
        assert!((vals[0] - (3.5 + 35.0)).abs() < 1e-4, "{}", vals[0]);
    }
}
