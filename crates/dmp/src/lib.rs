//! # mpix-dmp
//!
//! Distributed-memory parallelism substrate: everything the generated
//! code needs to run a finite-difference stencil across ranks.
//!
//! This crate implements §III of the paper:
//!
//! * [`decomp`] — Cartesian domain decomposition (default balanced
//!   factorization or user `topology=(…)`, Fig. 2) and the
//!   global-to-local index conversion routines behind the "logically
//!   centralized, physically distributed" data abstraction.
//! * [`regions`] — the data-region aliases of Fig. 4 (`CORE`, `OWNED`,
//!   `DOMAIN`, `HALO`, `FULL`) and the disjoint remainder decomposition
//!   used by the *full* overlap pattern.
//! * [`mod@array`] — [`DistArray`], the distributed NumPy-array analogue:
//!   rank-local storage with allocated halo, global slicing reads/writes
//!   (Listings 2–3), and gather for user inspection.
//! * [`halo`] — the three computation/communication patterns of Table I:
//!   **basic** (multi-step synchronous face exchanges), **diagonal**
//!   (single-step, 26 messages in 3-D) and **full** (asynchronous
//!   single-step with computation/communication overlap and
//!   `MPI_Test`-style progress). All three run on a persistent
//!   [`HaloPlan`] — peers, tags, boxes and buffers precomputed once per
//!   (field, mode, radius) — so steady-state exchanges allocate nothing.
//! * [`sparse`] — off-the-grid sparse points (sources/receivers):
//!   ownership assignment with replication at shared boundaries (Fig. 3),
//!   multilinear injection and interpolation.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod array;
pub mod decomp;
pub mod halo;
pub mod regions;
pub mod sparse;

pub use array::DistArray;
pub use decomp::Decomposition;
pub use halo::{
    BasicExchange, DiagonalExchange, FullExchange, FullToken, HaloExchange, HaloMode, HaloPlan,
};
pub use regions::{remainder_boxes, BoxNd, Region};
pub use sparse::SparsePoints;
