//! The three computation/communication patterns (paper §III h, Table I,
//! Fig. 5).
//!
//! | mode     | communication          | batches     | #msgs (3-D) | buffers            |
//! |----------|------------------------|-------------|-------------|--------------------|
//! | basic    | sync, no overlap       | multi-step  | 6           | allocated per call |
//! | diagonal | sync, no overlap       | single-step | 26          | preallocated       |
//! | full     | async, overlap         | single-step | 26          | preallocated       |
//!
//! *basic* exchanges faces one dimension at a time; including the halo of
//! previously-exchanged dimensions in each pack region propagates corner
//! data without explicit diagonal messages (the classic multi-step
//! trick). *diagonal* posts all `3^d - 1` exchanges in one step with
//! per-neighbour preallocated buffers. *full* posts the same exchanges
//! asynchronously and returns a token so the caller can compute the CORE
//! region while messages fly, poke the progress engine (`MPI_Test`
//! analogue), and `finish()` before computing the remainder (Listing 8).

use mpix_comm::{CartComm, RecvRequest, Tag};
use mpix_trace::{Section, Tracer};

use crate::array::DistArray;
use crate::regions::{box_len, BoxNd};

/// Which exchange pattern to use; parsed from strings like the
/// `DEVITO_MPI` environment values in the paper's job scripts.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HaloMode {
    #[default]
    Basic,
    Diagonal,
    Full,
}

impl HaloMode {
    pub fn parse(s: &str) -> Option<HaloMode> {
        match s.to_ascii_lowercase().as_str() {
            "basic" | "1" => Some(HaloMode::Basic),
            "diag" | "diagonal" | "diag2" => Some(HaloMode::Diagonal),
            "full" | "overlap" => Some(HaloMode::Full),
            _ => None,
        }
    }

    /// Number of messages an interior rank sends per exchange in `nd`
    /// dimensions (Table I's #messages column).
    pub fn messages_per_exchange(self, nd: usize) -> usize {
        match self {
            HaloMode::Basic => 2 * nd,
            HaloMode::Diagonal | HaloMode::Full => 3usize.pow(nd as u32) - 1,
        }
    }

    /// Whether the pattern preallocates message buffers (Table I).
    pub fn preallocates_buffers(self) -> bool {
        !matches!(self, HaloMode::Basic)
    }

    /// Whether communication overlaps computation (Table I).
    pub fn overlaps_computation(self) -> bool {
        matches!(self, HaloMode::Full)
    }
}

/// A synchronous halo exchange strategy for one field.
pub trait HaloExchange {
    /// Update the halo of `arr` with width `radius` from all neighbours,
    /// attributing pack/send/wait/unpack wall time to `tracer`'s halo
    /// sections. `tag_base` namespaces messages when multiple fields
    /// exchange in the same step.
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    );

    /// Untraced convenience wrapper around
    /// [`exchange_traced`](Self::exchange_traced).
    fn exchange(&mut self, cart: &CartComm, arr: &mut DistArray, radius: usize, tag_base: Tag) {
        self.exchange_traced(cart, arr, radius, tag_base, &mut Tracer::off());
    }
}

// ---------------------------------------------------------------------------
// basic
// ---------------------------------------------------------------------------

/// Multi-step synchronous face exchange (paper's *basic*). Buffers are
/// allocated inside `exchange` on every call, mirroring the C-land
/// runtime allocation the paper describes.
#[derive(Default, Debug)]
pub struct BasicExchange;

impl HaloExchange for BasicExchange {
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let nd = arr.local_shape().len();
        let halo = arr.halo();
        assert!(radius <= halo);
        for d in 0..nd {
            // Extent per dimension: already-exchanged dims include their
            // halo (corner propagation); later dims are owned-only.
            let extent = |e: usize| -> std::ops::Range<usize> {
                let n = arr.local_shape()[e];
                if e < d {
                    halo - radius..halo + n + radius
                } else {
                    halo..halo + n
                }
            };
            let n_d = arr.local_shape()[d];
            let mut reqs: Vec<(RecvRequest, BoxNd)> = Vec::with_capacity(2);
            // Post receives first (both sides), then send.
            for (side, disp) in [(-1i32, -1), (1i32, 1)] {
                let mut dvec = vec![0i32; nd];
                dvec[d] = disp;
                if let Some(peer) = cart.neighbor(&dvec) {
                    let tag = tag_base + (d as Tag) * 2 + u32::from(side > 0);
                    let recv_box: BoxNd = (0..nd)
                        .map(|e| {
                            if e == d {
                                if side < 0 {
                                    halo - radius..halo
                                } else {
                                    halo + n_d..halo + n_d + radius
                                }
                            } else {
                                extent(e)
                            }
                        })
                        .collect();
                    reqs.push((cart.comm().irecv(peer, tag), recv_box));
                }
            }
            for (side, disp) in [(-1i32, -1), (1i32, 1)] {
                let mut dvec = vec![0i32; nd];
                dvec[d] = disp;
                if let Some(peer) = cart.neighbor(&dvec) {
                    // The peer receives on its opposite side; tags encode
                    // the *receiver's* side so they match.
                    let tag = tag_base + (d as Tag) * 2 + u32::from(side < 0);
                    let send_box: BoxNd = (0..nd)
                        .map(|e| {
                            if e == d {
                                if side < 0 {
                                    halo..halo + radius
                                } else {
                                    halo + n_d - radius..halo + n_d
                                }
                            } else {
                                extent(e)
                            }
                        })
                        .collect();
                    // Runtime allocation, as in the paper's basic mode.
                    let mut buf = Vec::new();
                    let sp = tracer.begin(Section::HaloPack);
                    arr.pack_box(&send_box, &mut buf);
                    tracer.end(sp);
                    let sp = tracer.begin(Section::HaloSend);
                    cart.comm().isend_f32(peer, tag, &buf);
                    tracer.end(sp);
                }
            }
            for (req, recv_box) in reqs {
                let sp = tracer.begin(Section::HaloWait);
                let data = req.wait_f32();
                tracer.end(sp);
                let sp = tracer.begin(Section::HaloUnpack);
                arr.unpack_box(&recv_box, &data);
                tracer.end(sp);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// diagonal
// ---------------------------------------------------------------------------

/// Single-step synchronous exchange including diagonal neighbours
/// (paper's *diagonal*): more, smaller messages, all posted at once, with
/// buffers preallocated at construction (Python-land prealloc in the
/// paper).
#[derive(Debug)]
pub struct DiagonalExchange {
    /// Preallocated send buffers, one per neighbour displacement code.
    send_bufs: Vec<Vec<f32>>,
}

impl DiagonalExchange {
    pub fn new() -> DiagonalExchange {
        DiagonalExchange {
            send_bufs: Vec::new(),
        }
    }

    /// Encode a displacement as a dense code in `0..3^nd`.
    fn code_of(disp: &[i32]) -> usize {
        disp.iter()
            .fold(0usize, |acc, &d| acc * 3 + (d + 1) as usize)
    }

    /// The owned-side box to *send* toward displacement `disp`.
    fn send_box(arr: &DistArray, disp: &[i32], radius: usize) -> BoxNd {
        let halo = arr.halo();
        disp.iter()
            .enumerate()
            .map(|(d, &s)| {
                let n = arr.local_shape()[d];
                match s {
                    -1 => halo..halo + radius,
                    1 => halo + n - radius..halo + n,
                    _ => halo..halo + n,
                }
            })
            .collect()
    }

    /// The halo box to *receive* from the neighbour at displacement
    /// `disp`.
    fn recv_box(arr: &DistArray, disp: &[i32], radius: usize) -> BoxNd {
        let halo = arr.halo();
        disp.iter()
            .enumerate()
            .map(|(d, &s)| {
                let n = arr.local_shape()[d];
                match s {
                    -1 => halo - radius..halo,
                    1 => halo + n..halo + n + radius,
                    _ => halo..halo + n,
                }
            })
            .collect()
    }
}

impl Default for DiagonalExchange {
    fn default() -> Self {
        Self::new()
    }
}

impl HaloExchange for DiagonalExchange {
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let nd = arr.local_shape().len();
        if self.send_bufs.len() != 3usize.pow(nd as u32) {
            // One-time preallocation (construction can't know nd/shape).
            self.send_bufs = vec![Vec::new(); 3usize.pow(nd as u32)];
        }
        let neighbors = cart.all_neighbors();
        // Single step: post all receives, then all sends, then wait all.
        let mut reqs: Vec<(RecvRequest, BoxNd)> = Vec::with_capacity(neighbors.len());
        for (disp, peer) in &neighbors {
            let tag = tag_base + Self::code_of(disp) as Tag;
            reqs.push((
                cart.comm().irecv(*peer, tag),
                Self::recv_box(arr, disp, radius),
            ));
        }
        for (disp, peer) in &neighbors {
            // Tag with the *receiver's* incoming displacement (= -disp).
            let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
            let tag = tag_base + Self::code_of(&inv) as Tag;
            let sb = Self::send_box(arr, disp, radius);
            let code = Self::code_of(disp);
            let buf = &mut self.send_bufs[code];
            let sp = tracer.begin(Section::HaloPack);
            arr.pack_box(&sb, buf);
            tracer.end(sp);
            let sp = tracer.begin(Section::HaloSend);
            cart.comm().isend_f32(*peer, tag, buf);
            tracer.end(sp);
        }
        for (req, rb) in reqs {
            let sp = tracer.begin(Section::HaloWait);
            let data = req.wait_f32();
            tracer.end(sp);
            let sp = tracer.begin(Section::HaloUnpack);
            arr.unpack_box(&rb, &data);
            tracer.end(sp);
        }
    }
}

// ---------------------------------------------------------------------------
// full (overlap)
// ---------------------------------------------------------------------------

/// In-flight state of an asynchronous exchange: pending receives plus
/// their target boxes. Returned by [`FullExchange::begin`]; the caller
/// computes CORE, optionally calls [`FullToken::progress`] between tile
/// blocks, and must call [`FullExchange::finish`] before touching the
/// remainder (Listing 8).
pub struct FullToken {
    pending: Vec<(RecvRequest, BoxNd)>,
}

impl FullToken {
    /// Poke the progress engine: complete and unpack any receives that
    /// have arrived (the sacrificed-thread `MPI_Test` calls of the
    /// paper). Returns the number of still-pending messages.
    pub fn progress(&mut self, arr: &mut DistArray) -> usize {
        let mut i = 0;
        while i < self.pending.len() {
            if let Some(data) = self.pending[i].0.try_take() {
                let (_, rb) = self.pending.swap_remove(i);
                arr.unpack_box(&rb, &mpix_comm::comm::bytes_to_f32(&data));
            } else {
                i += 1;
            }
        }
        self.pending.len()
    }

    /// Number of messages still in flight.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Asynchronous single-step exchange with computation/communication
/// overlap (paper's *full*).
#[derive(Debug)]
pub struct FullExchange {
    send_bufs: Vec<Vec<f32>>,
}

impl FullExchange {
    pub fn new() -> FullExchange {
        FullExchange {
            send_bufs: Vec::new(),
        }
    }

    /// Post all sends and receives; returns immediately so the caller can
    /// compute CORE while messages are in flight (`halo_update()` in
    /// Listing 8).
    pub fn begin(
        &mut self,
        cart: &CartComm,
        arr: &DistArray,
        radius: usize,
        tag_base: Tag,
    ) -> FullToken {
        self.begin_traced(cart, arr, radius, tag_base, &mut Tracer::off())
    }

    /// [`begin`](Self::begin) with pack/send spans attributed to `tracer`.
    pub fn begin_traced(
        &mut self,
        cart: &CartComm,
        arr: &DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) -> FullToken {
        let nd = arr.local_shape().len();
        if self.send_bufs.len() != 3usize.pow(nd as u32) {
            self.send_bufs = vec![Vec::new(); 3usize.pow(nd as u32)];
        }
        let neighbors = cart.all_neighbors();
        let mut pending = Vec::with_capacity(neighbors.len());
        for (disp, peer) in &neighbors {
            let tag = tag_base + DiagonalExchange::code_of(disp) as Tag;
            pending.push((
                cart.comm().irecv(*peer, tag),
                DiagonalExchange::recv_box(arr, disp, radius),
            ));
        }
        for (disp, peer) in &neighbors {
            let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
            let tag = tag_base + DiagonalExchange::code_of(&inv) as Tag;
            let sb = DiagonalExchange::send_box(arr, disp, radius);
            let code = DiagonalExchange::code_of(disp);
            let buf = &mut self.send_bufs[code];
            let sp = tracer.begin(Section::HaloPack);
            arr.pack_box(&sb, buf);
            tracer.end(sp);
            let sp = tracer.begin(Section::HaloSend);
            cart.comm().isend_f32(*peer, tag, buf);
            tracer.end(sp);
        }
        FullToken { pending }
    }

    /// Wait for all remaining messages and unpack them (`halo_wait()` in
    /// Listing 8).
    pub fn finish(&mut self, token: FullToken, arr: &mut DistArray) {
        self.finish_traced(token, arr, &mut Tracer::off());
    }

    /// [`finish`](Self::finish) with wait/unpack spans attributed to
    /// `tracer`. In overlap mode the wait section shrinks as messages
    /// arrive during the CORE computation — exactly the effect the
    /// paper's *full* pattern exists to create.
    pub fn finish_traced(&mut self, token: FullToken, arr: &mut DistArray, tracer: &mut Tracer) {
        for (req, rb) in token.pending {
            let sp = tracer.begin(Section::HaloWait);
            let data = req.wait_f32();
            tracer.end(sp);
            let sp = tracer.begin(Section::HaloUnpack);
            debug_assert_eq!(data.len(), box_len(&rb));
            arr.unpack_box(&rb, &data);
            tracer.end(sp);
        }
    }
}

impl Default for FullExchange {
    fn default() -> Self {
        Self::new()
    }
}

impl HaloExchange for FullExchange {
    /// Degenerate synchronous use: begin + finish back to back (no
    /// overlap). The operator executor uses `begin`/`finish` directly.
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let token = self.begin_traced(cart, arr, radius, tag_base, tracer);
        self.finish_traced(token, arr, tracer);
    }
}

/// Construct the chosen exchange strategy.
pub fn make_exchange(mode: HaloMode) -> Box<dyn HaloExchange + Send> {
    match mode {
        HaloMode::Basic => Box::new(BasicExchange),
        HaloMode::Diagonal => Box::new(DiagonalExchange::new()),
        HaloMode::Full => Box::new(FullExchange::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomposition;
    use crate::regions::{for_each_index, Region};
    use mpix_comm::Universe;
    use std::sync::Arc;

    /// Build a per-rank array whose owned points hold their global linear
    /// index, run one exchange, and check the FULL region against the
    /// global function (zeros beyond the physical boundary).
    fn check_mode(mode: HaloMode, global: &[usize], dims: &[usize], radius: usize) {
        let nranks: usize = dims.iter().product();
        let global = global.to_vec();
        let dims = dims.to_vec();
        Universe::run(nranks, |comm| {
            let cart = CartComm::new(comm, &dims);
            let dc = Arc::new(Decomposition::new(&global, &dims));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(Arc::clone(&dc), &coords, radius.max(2));
            let nd = global.len();
            // Owned points = global linear index + 1 (so 0 marks "outside").
            let starts: Vec<usize> = (0..nd)
                .map(|d| dc.owned_range(d, coords[d]).start)
                .collect();
            let local_box: Vec<std::ops::Range<usize>> =
                arr.local_shape().iter().map(|&n| 0..n).collect();
            let mut writes = Vec::new();
            for_each_index(&local_box, |idx| {
                let mut lin = 0usize;
                for d in 0..nd {
                    lin = lin * global[d] + starts[d] + idx[d];
                }
                writes.push((idx.to_vec(), (lin + 1) as f32));
            });
            for (idx, v) in writes {
                arr.set_local(&idx, v);
            }

            let mut ex = make_exchange(mode);
            ex.exchange(&cart, &mut arr, radius, 0);

            // Validate FULL region.
            let halo = arr.halo();
            let full = arr.region(Region::Full, radius);
            let mut errors = Vec::new();
            for_each_index(&full, |pidx| {
                // Global index of this padded point.
                let mut g = Vec::with_capacity(nd);
                let mut inside = true;
                for d in 0..nd {
                    let gi = pidx[d] as i64 - halo as i64 + starts[d] as i64;
                    if gi < 0 || gi >= global[d] as i64 {
                        inside = false;
                    }
                    g.push(gi);
                }
                let want = if inside {
                    let mut lin = 0usize;
                    for d in 0..nd {
                        lin = lin * global[d] + g[d] as usize;
                    }
                    (lin + 1) as f32
                } else {
                    0.0
                };
                let got = arr.get_padded(pidx);
                if got != want {
                    errors.push(format!(
                        "coords {coords:?} p {pidx:?}: got {got} want {want}"
                    ));
                }
            });
            assert!(errors.is_empty(), "{mode:?}: {}", errors.join("; "));
        });
    }

    #[test]
    fn basic_2d_is_correct_including_corners() {
        check_mode(HaloMode::Basic, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn diagonal_2d_is_correct() {
        check_mode(HaloMode::Diagonal, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn full_2d_is_correct() {
        check_mode(HaloMode::Full, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn basic_3d_is_correct() {
        check_mode(HaloMode::Basic, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn diagonal_3d_is_correct() {
        check_mode(HaloMode::Diagonal, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn full_3d_is_correct() {
        check_mode(HaloMode::Full, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn uneven_decomposition_exchanges_correctly() {
        check_mode(HaloMode::Basic, &[11, 7], &[3, 2], 2);
        check_mode(HaloMode::Diagonal, &[11, 7], &[3, 2], 2);
        check_mode(HaloMode::Full, &[11, 7], &[3, 2], 2);
    }

    #[test]
    fn wide_radius_exchange() {
        // SDO 8 -> radius 4, the paper's standard setup.
        check_mode(HaloMode::Basic, &[16, 16], &[2, 2], 4);
        check_mode(HaloMode::Diagonal, &[16, 16], &[2, 2], 4);
    }

    #[test]
    fn message_counts_match_table1() {
        // 3x3x3 ranks: the center rank is interior.
        let out = Universe::run(27, |comm| {
            let cart = CartComm::new(comm, &[3, 3, 3]);
            let dc = Arc::new(Decomposition::new(&[9, 9, 9], &[3, 3, 3]));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, 2);
            cart.comm().reset_stats();
            let mut ex = make_exchange(HaloMode::Basic);
            ex.exchange(&cart, &mut arr, 1, 0);
            let basic_msgs = cart.comm().stats().msgs_sent;
            cart.comm().barrier();
            cart.comm().reset_stats();
            let mut ex = make_exchange(HaloMode::Diagonal);
            ex.exchange(&cart, &mut arr, 1, 0);
            let diag_msgs = cart.comm().stats().msgs_sent;
            (coords, basic_msgs, diag_msgs)
        });
        for (coords, basic, diag) in out {
            if coords == vec![1, 1, 1] {
                assert_eq!(basic, 6, "Table I: basic sends 6 messages in 3D");
                assert_eq!(diag, 26, "Table I: diagonal sends 26 messages in 3D");
            }
        }
    }

    #[test]
    fn full_overlap_progress_drains_messages() {
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2]);
            let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, 2);
            arr.fill_global_slice(&[0..8, 0..8], 1.0);
            let mut ex = FullExchange::new();
            let mut token = ex.begin(&cart, &arr, 2, 0);
            assert!(token.pending() > 0);
            // Poll until drained (all sends are eager, so this terminates).
            let mut spins = 0u64;
            while token.progress(&mut arr) > 0 {
                spins += 1;
                assert!(spins < 1_000_000, "progress never drained");
            }
            ex.finish(token, &mut arr);
            // Interior halo entries must now be 1.
            let halo = arr.halo();
            let (ci, cj) = (coords[0], coords[1]);
            if ci == 0 {
                // right halo along dim 0 came from rank (1, cj)
                assert_eq!(arr.get_padded(&[halo + 4, halo]), 1.0);
            }
            let _ = cj;
        });
    }

    #[test]
    fn mode_parsing_matches_job_script_names() {
        assert_eq!(HaloMode::parse("diag2"), Some(HaloMode::Diagonal));
        assert_eq!(HaloMode::parse("basic"), Some(HaloMode::Basic));
        assert_eq!(HaloMode::parse("FULL"), Some(HaloMode::Full));
        assert_eq!(HaloMode::parse("nope"), None);
    }

    #[test]
    fn table1_characteristics() {
        assert_eq!(HaloMode::Basic.messages_per_exchange(3), 6);
        assert_eq!(HaloMode::Diagonal.messages_per_exchange(3), 26);
        assert_eq!(HaloMode::Full.messages_per_exchange(3), 26);
        assert_eq!(HaloMode::Basic.messages_per_exchange(2), 4);
        assert_eq!(HaloMode::Diagonal.messages_per_exchange(2), 8);
        assert!(!HaloMode::Basic.preallocates_buffers());
        assert!(HaloMode::Diagonal.preallocates_buffers());
        assert!(HaloMode::Full.overlaps_computation());
        assert!(!HaloMode::Diagonal.overlaps_computation());
    }

    #[test]
    fn single_rank_exchange_is_noop() {
        Universe::run(1, |comm| {
            let cart = CartComm::new(comm, &[1, 1]);
            let dc = Arc::new(Decomposition::new(&[4, 4], &[1, 1]));
            let mut arr = DistArray::new(dc, &[0, 0], 2);
            arr.fill_global_slice(&[0..4, 0..4], 3.0);
            for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
                let mut ex = make_exchange(mode);
                ex.exchange(&cart, &mut arr, 2, 0);
            }
            assert_eq!(cart.comm().stats().msgs_sent, 0);
        });
    }
}
