//! The three computation/communication patterns (paper §III h, Table I,
//! Fig. 5).
//!
//! | mode     | communication          | batches     | #msgs (3-D) | buffers      |
//! |----------|------------------------|-------------|-------------|--------------|
//! | basic    | sync, no overlap       | multi-step  | 6           | preallocated |
//! | diagonal | sync, no overlap       | single-step | 26          | preallocated |
//! | full     | async, overlap         | single-step | 26          | preallocated |
//!
//! *basic* exchanges faces one dimension at a time; including the halo of
//! previously-exchanged dimensions in each pack region propagates corner
//! data without explicit diagonal messages (the classic multi-step
//! trick). *diagonal* posts all `3^d - 1` exchanges in one step. *full*
//! posts the same exchanges asynchronously and returns a token so the
//! caller can compute the CORE region while messages fly, poke the
//! progress engine (`MPI_Test` analogue), and `finish()` before computing
//! the remainder (Listing 8).
//!
//! ## Persistent plans (and a Table I correction)
//!
//! All three modes now run on a [`HaloPlan`]: neighbor peers, tags,
//! send/recv boxes, and send *and* receive buffers are computed and
//! allocated **once** per (field, mode, radius) and reused every
//! timestep, backed by persistent requests (`MPI_Send_init`/
//! `MPI_Recv_init` analogue) in `mpix-comm`. Steady-state exchanges of
//! *every* mode therefore perform zero heap allocations — a contract
//! asserted by counter-based tests via `CommStats::bufs_allocated`.
//!
//! Earlier revisions mirrored the paper's C-land *basic* mode by
//! allocating its buffers per call, and the table above advertised
//! preallocation for diag/full even though the receive path still
//! allocated a fresh vector per message. The plan closes both gaps;
//! [`HaloMode::preallocates_buffers`] is now honestly `true` for all
//! modes.

use std::sync::Arc;

use mpix_comm::{CartComm, PersistentRecv, PersistentSend, Tag};
use mpix_san::San;
use mpix_trace::{Section, Tracer};

use crate::array::DistArray;
use crate::regions::{box_len, BoxNd};

/// The sanitizer's coarse key for a halo box: `[(lo, hi); nd]`.
/// (`mpix-san` cannot depend on this crate's `BoxNd` without a cycle.)
fn san_box_key(b: &BoxNd) -> Vec<(usize, usize)> {
    b.iter().map(|r| (r.start, r.end)).collect()
}

/// Which exchange pattern to use; parsed from strings like the
/// `DEVITO_MPI` environment values in the paper's job scripts.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Default)]
pub enum HaloMode {
    #[default]
    Basic,
    Diagonal,
    Full,
}

impl HaloMode {
    pub fn parse(s: &str) -> Option<HaloMode> {
        match s.to_ascii_lowercase().as_str() {
            "basic" | "1" => Some(HaloMode::Basic),
            "diag" | "diagonal" | "diag2" => Some(HaloMode::Diagonal),
            "full" | "overlap" => Some(HaloMode::Full),
            _ => None,
        }
    }

    /// Number of messages an interior rank sends per exchange in `nd`
    /// dimensions (Table I's #messages column).
    pub fn messages_per_exchange(self, nd: usize) -> usize {
        match self {
            HaloMode::Basic => 2 * nd,
            HaloMode::Diagonal | HaloMode::Full => 3usize.pow(nd as u32) - 1,
        }
    }

    /// Whether the pattern preallocates message buffers. Since the
    /// persistent [`HaloPlan`], true for every mode (the paper's Table I
    /// lists runtime allocation for *basic*; see the module docs).
    pub fn preallocates_buffers(self) -> bool {
        true
    }

    /// Whether communication overlaps computation (Table I).
    pub fn overlaps_computation(self) -> bool {
        matches!(self, HaloMode::Full)
    }
}

// ---------------------------------------------------------------------------
// the plan
// ---------------------------------------------------------------------------

/// Encode a displacement as a dense code in `0..3^nd`.
fn code_of(disp: &[i32]) -> usize {
    disp.iter()
        .fold(0usize, |acc, &d| acc * 3 + (d + 1) as usize)
}

/// The owned-side box to *send* toward displacement `disp`.
fn diag_send_box(arr: &DistArray, disp: &[i32], radius: usize) -> BoxNd {
    let halo = arr.halo();
    disp.iter()
        .enumerate()
        .map(|(d, &s)| {
            let n = arr.local_shape()[d];
            match s {
                -1 => halo..halo + radius,
                1 => halo + n - radius..halo + n,
                _ => halo..halo + n,
            }
        })
        .collect()
}

/// The halo box to *receive* from the neighbour at displacement `disp`.
fn diag_recv_box(arr: &DistArray, disp: &[i32], radius: usize) -> BoxNd {
    let halo = arr.halo();
    disp.iter()
        .enumerate()
        .map(|(d, &s)| {
            let n = arr.local_shape()[d];
            match s {
                -1 => halo - radius..halo,
                1 => halo + n..halo + n + radius,
                _ => halo..halo + n,
            }
        })
        .collect()
}

/// One precomputed message pair of a plan: where to pack from, who to
/// talk to, and the preallocated buffers + persistent requests to do it
/// with.
struct PlanEntry {
    send: PersistentSend,
    recv: PersistentRecv,
    send_box: BoxNd,
    recv_box: BoxNd,
    send_tag: Tag,
    recv_tag: Tag,
}

impl PlanEntry {
    fn new(
        cart: &CartComm,
        peer: usize,
        send_tag: Tag,
        recv_tag: Tag,
        send_box: BoxNd,
        recv_box: BoxNd,
    ) -> PlanEntry {
        PlanEntry {
            send: cart.comm().send_init(peer, send_tag),
            recv: cart.comm().recv_init(peer, recv_tag),
            send_box,
            recv_box,
            send_tag,
            recv_tag,
        }
    }
}

/// A persistent halo-exchange plan for one (field, mode, radius): every
/// per-call decision of the legacy path — neighbor lookup, tag
/// derivation, box computation, buffer allocation — hoisted to build
/// time. *basic* plans have one step per dimension (corner propagation);
/// *diagonal*/*full* plans have a single step with all `3^nd - 1`
/// neighbours. Built lazily on first exchange and reused across
/// timesteps; rebuilt only if the array shape, radius, or tag base
/// changes.
pub struct HaloPlan {
    mode: HaloMode,
    radius: usize,
    tag_base: Tag,
    halo: usize,
    local_shape: Vec<usize>,
    steps: Vec<Vec<PlanEntry>>,
    /// Recycled index storage for [`FullToken`]s, so `begin` allocates
    /// nothing after the first overlap cycle.
    spare_pending: Vec<usize>,
    /// Recycled pending-index scratch for the synchronous waitany drain.
    scratch: Vec<usize>,
    /// Happens-before sanitizer of the owning world, captured at build
    /// so exchange/unpack events carry the rank without re-threading the
    /// communicator through every call.
    san: Option<Arc<San>>,
    rank: usize,
}

impl HaloPlan {
    /// Precompute the full exchange plan for `mode` at `radius`.
    pub fn build(
        cart: &CartComm,
        arr: &DistArray,
        mode: HaloMode,
        radius: usize,
        tag_base: Tag,
    ) -> HaloPlan {
        let nd = arr.local_shape().len();
        let halo = arr.halo();
        assert!(radius <= halo, "radius {radius} exceeds halo {halo}");
        let mut steps: Vec<Vec<PlanEntry>> = Vec::new();
        match mode {
            HaloMode::Basic => {
                for d in 0..nd {
                    // Extent per dimension: already-exchanged dims include
                    // their halo (corner propagation); later dims owned-only.
                    let extent = |e: usize| -> std::ops::Range<usize> {
                        let n = arr.local_shape()[e];
                        if e < d {
                            halo - radius..halo + n + radius
                        } else {
                            halo..halo + n
                        }
                    };
                    let n_d = arr.local_shape()[d];
                    let mut entries = Vec::with_capacity(2);
                    for side in [-1i32, 1] {
                        let mut dvec = vec![0i32; nd];
                        dvec[d] = side;
                        let Some(peer) = cart.neighbor(&dvec) else {
                            continue;
                        };
                        // Tags encode the *receiver's* side so they match.
                        let recv_tag = tag_base + (d as Tag) * 2 + u32::from(side > 0);
                        let send_tag = tag_base + (d as Tag) * 2 + u32::from(side < 0);
                        let boxes = |own: bool| -> BoxNd {
                            (0..nd)
                                .map(|e| {
                                    if e != d {
                                        extent(e)
                                    } else if own {
                                        // Owned strip facing `side`.
                                        if side < 0 {
                                            halo..halo + radius
                                        } else {
                                            halo + n_d - radius..halo + n_d
                                        }
                                    } else {
                                        // Halo strip on `side`.
                                        if side < 0 {
                                            halo - radius..halo
                                        } else {
                                            halo + n_d..halo + n_d + radius
                                        }
                                    }
                                })
                                .collect()
                        };
                        entries.push(PlanEntry::new(
                            cart,
                            peer,
                            send_tag,
                            recv_tag,
                            boxes(true),
                            boxes(false),
                        ));
                    }
                    steps.push(entries);
                }
            }
            HaloMode::Diagonal | HaloMode::Full => {
                let mut entries = Vec::new();
                for (disp, peer) in cart.all_neighbors() {
                    // Tag with the *receiver's* incoming displacement
                    // (= -disp) on the send side.
                    let inv: Vec<i32> = disp.iter().map(|x| -x).collect();
                    entries.push(PlanEntry::new(
                        cart,
                        peer,
                        tag_base + code_of(&inv) as Tag,
                        tag_base + code_of(&disp) as Tag,
                        diag_send_box(arr, &disp, radius),
                        diag_recv_box(arr, &disp, radius),
                    ));
                }
                steps.push(entries);
            }
        }
        // Prime this rank's envelope pool with its share of wire
        // buffers, so even the first exchange's sends (and every one
        // after) find pooled storage. Two exchanges deep: buffers return
        // to the *sender's* pool only when the receiver pops them, and a
        // rank that races one exchange ahead of a slow peer can have up
        // to two exchanges of envelopes in flight at once.
        let total: usize = steps.iter().map(|s| s.len()).sum();
        let max_len = steps
            .iter()
            .flatten()
            .map(|e| box_len(&e.send_box))
            .max()
            .unwrap_or(0);
        if total > 0 {
            cart.comm().reserve_msg_buffers(2 * total, max_len);
        }
        HaloPlan {
            mode,
            radius,
            tag_base,
            halo,
            local_shape: arr.local_shape().to_vec(),
            steps,
            spare_pending: Vec::new(),
            scratch: Vec::new(),
            san: cart.comm().san().cloned(),
            rank: cart.rank(),
        }
    }

    /// Open a new sanitizer epoch for `arr`: an exchange (with at least
    /// one message) is beginning. Interior ranks of a larger topology
    /// always have messages; a 1-rank world has none and stays
    /// untracked — there is nothing an exchange could deliver.
    fn san_begin(&self, arr: &DistArray) {
        if let Some(s) = &self.san {
            if self.num_messages() > 0 {
                s.exchange_begin(self.rank, arr.shadow_id());
            }
        }
    }

    /// Whether this plan is still valid for `(arr, radius, tag_base)`.
    fn matches(&self, arr: &DistArray, radius: usize, tag_base: Tag) -> bool {
        self.radius == radius
            && self.tag_base == tag_base
            && self.halo == arr.halo()
            && self.local_shape == arr.local_shape()
    }

    /// The mode this plan was built for.
    pub fn mode(&self) -> HaloMode {
        self.mode
    }

    /// Number of sequential steps (nd for *basic*, 1 for *diag*/*full*).
    pub fn num_steps(&self) -> usize {
        self.steps.len()
    }

    /// Total messages this rank sends per exchange.
    pub fn num_messages(&self) -> usize {
        self.steps.iter().map(|s| s.len()).sum()
    }

    /// The `(peer, send_tag, recv_tag, send_box, recv_box)` rows of one
    /// step — exposed so tests can check plan boxes/tags against an
    /// independently computed reference.
    pub fn step_view(&self, step: usize) -> Vec<(usize, Tag, Tag, BoxNd, BoxNd)> {
        self.steps[step]
            .iter()
            .map(|e| {
                (
                    e.send.dest(),
                    e.send_tag,
                    e.recv_tag,
                    e.send_box.clone(),
                    e.recv_box.clone(),
                )
            })
            .collect()
    }

    /// Pack + send every entry of `step`, then complete the receives in
    /// arrival order (the `MPI_Waitany` pattern: drain whatever has
    /// landed, park only when nothing has). The synchronous inner loop of
    /// *basic* (per dimension) and *diagonal* (single step).
    /// Allocation-free in steady state.
    fn run_step_sync(&mut self, step: usize, arr: &mut DistArray, tracer: &mut Tracer) {
        let san = self.san.clone();
        let rank = self.rank;
        let arr_id = arr.shadow_id();
        for e in &mut self.steps[step] {
            let sp = tracer.begin(Section::HaloSend);
            e.send.start_with(box_len(&e.send_box), |buf| {
                let spp = tracer.begin(Section::HaloPack);
                arr.pack_box(&e.send_box, buf);
                tracer.end(spp);
            });
            tracer.end(sp);
        }
        let mut pending = std::mem::take(&mut self.scratch);
        pending.clear();
        pending.extend(0..self.steps[step].len());
        while !pending.is_empty() {
            let seq = self.steps[step][pending[0]].recv.arrival_seq();
            let mut i = 0;
            let before = pending.len();
            while i < pending.len() {
                let e = &mut self.steps[step][pending[i]];
                let recv_box = &e.recv_box;
                let done = e
                    .recv
                    .try_with(|data| {
                        let spu = tracer.begin(Section::HaloUnpack);
                        debug_assert_eq!(data.len(), box_len(recv_box));
                        arr.unpack_box(recv_box, data);
                        if let Some(s) = &san {
                            s.unpack(rank, arr_id, &san_box_key(recv_box));
                        }
                        tracer.end(spu);
                    })
                    .is_some();
                if done {
                    pending.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if pending.len() == before {
                let sp = tracer.begin(Section::HaloWait);
                self.steps[step][pending[0]].recv.wait_any_arrival(seq);
                tracer.end(sp);
            }
        }
        self.scratch = pending;
    }
}

/// Lazily (re)build the plan cached in `slot` for the current geometry.
fn ensure_plan<'a>(
    slot: &'a mut Option<HaloPlan>,
    mode: HaloMode,
    cart: &CartComm,
    arr: &DistArray,
    radius: usize,
    tag_base: Tag,
) -> &'a mut HaloPlan {
    let stale = match slot {
        Some(p) => !p.matches(arr, radius, tag_base),
        None => true,
    };
    if stale {
        *slot = Some(HaloPlan::build(cart, arr, mode, radius, tag_base));
    }
    slot.as_mut().unwrap()
}

/// A synchronous halo exchange strategy for one field.
pub trait HaloExchange {
    /// Update the halo of `arr` with width `radius` from all neighbours,
    /// attributing pack/send/wait/unpack wall time to `tracer`'s halo
    /// sections. `tag_base` namespaces messages when multiple fields
    /// exchange in the same step.
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    );

    /// Untraced convenience wrapper around
    /// [`exchange_traced`](Self::exchange_traced).
    fn exchange(&mut self, cart: &CartComm, arr: &mut DistArray, radius: usize, tag_base: Tag) {
        self.exchange_traced(cart, arr, radius, tag_base, &mut Tracer::off());
    }
}

// ---------------------------------------------------------------------------
// basic
// ---------------------------------------------------------------------------

/// Multi-step synchronous face exchange (paper's *basic*), running on a
/// persistent per-dimension [`HaloPlan`].
#[derive(Default)]
pub struct BasicExchange {
    plan: Option<HaloPlan>,
}

impl BasicExchange {
    pub fn new() -> BasicExchange {
        BasicExchange::default()
    }
}

impl HaloExchange for BasicExchange {
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let plan = ensure_plan(&mut self.plan, HaloMode::Basic, cart, arr, radius, tag_base);
        plan.san_begin(arr);
        for step in 0..plan.num_steps() {
            plan.run_step_sync(step, arr, tracer);
        }
    }
}

// ---------------------------------------------------------------------------
// diagonal
// ---------------------------------------------------------------------------

/// Single-step synchronous exchange including diagonal neighbours
/// (paper's *diagonal*): more, smaller messages, all posted at once, on a
/// persistent single-step [`HaloPlan`].
#[derive(Default)]
pub struct DiagonalExchange {
    plan: Option<HaloPlan>,
}

impl DiagonalExchange {
    pub fn new() -> DiagonalExchange {
        DiagonalExchange::default()
    }
}

impl HaloExchange for DiagonalExchange {
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let plan = ensure_plan(
            &mut self.plan,
            HaloMode::Diagonal,
            cart,
            arr,
            radius,
            tag_base,
        );
        plan.san_begin(arr);
        plan.run_step_sync(0, arr, tracer);
    }
}

// ---------------------------------------------------------------------------
// full (overlap)
// ---------------------------------------------------------------------------

/// In-flight state of an asynchronous exchange: the plan-entry indices
/// whose receives are still pending. Returned by [`FullExchange::begin`];
/// the caller computes CORE, optionally calls [`FullExchange::progress`]
/// between tile blocks, and must call [`FullExchange::finish`] before
/// touching the remainder (Listing 8). The index storage is recycled
/// through the plan, so a steady-state overlap cycle allocates nothing.
pub struct FullToken {
    pending: Vec<usize>,
}

impl FullToken {
    /// Number of messages still in flight.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }
}

/// Asynchronous single-step exchange with computation/communication
/// overlap (paper's *full*), on the same persistent plan as *diagonal*.
#[derive(Default)]
pub struct FullExchange {
    plan: Option<HaloPlan>,
}

impl FullExchange {
    pub fn new() -> FullExchange {
        FullExchange::default()
    }

    /// Post all sends and receives; returns immediately so the caller can
    /// compute CORE while messages are in flight (`halo_update()` in
    /// Listing 8).
    pub fn begin(
        &mut self,
        cart: &CartComm,
        arr: &DistArray,
        radius: usize,
        tag_base: Tag,
    ) -> FullToken {
        self.begin_traced(cart, arr, radius, tag_base, &mut Tracer::off())
    }

    /// [`begin`](Self::begin) with pack/send spans attributed to `tracer`.
    pub fn begin_traced(
        &mut self,
        cart: &CartComm,
        arr: &DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) -> FullToken {
        let plan = ensure_plan(&mut self.plan, HaloMode::Full, cart, arr, radius, tag_base);
        plan.san_begin(arr);
        for e in &mut plan.steps[0] {
            let sp = tracer.begin(Section::HaloSend);
            e.send.start_with(box_len(&e.send_box), |buf| {
                let spp = tracer.begin(Section::HaloPack);
                arr.pack_box(&e.send_box, buf);
                tracer.end(spp);
            });
            tracer.end(sp);
        }
        let mut pending = std::mem::take(&mut plan.spare_pending);
        pending.clear();
        pending.extend(0..plan.steps[0].len());
        FullToken { pending }
    }

    /// Poke the progress engine: complete and unpack any receives that
    /// have arrived (the sacrificed-thread `MPI_Test` calls of the
    /// paper). Returns the number of still-pending messages.
    pub fn progress(&mut self, token: &mut FullToken, arr: &mut DistArray) -> usize {
        let Some(plan) = self.plan.as_mut() else {
            return 0;
        };
        let san = plan.san.clone();
        let rank = plan.rank;
        let arr_id = arr.shadow_id();
        let mut i = 0;
        while i < token.pending.len() {
            let e = &mut plan.steps[0][token.pending[i]];
            let recv_box = &e.recv_box;
            let done = e
                .recv
                .try_with(|data| {
                    arr.unpack_box(recv_box, data);
                    if let Some(s) = &san {
                        s.unpack(rank, arr_id, &san_box_key(recv_box));
                    }
                })
                .is_some();
            if done {
                token.pending.swap_remove(i);
            } else {
                i += 1;
            }
        }
        token.pending.len()
    }

    /// Wait for all remaining messages and unpack them (`halo_wait()` in
    /// Listing 8).
    pub fn finish(&mut self, token: FullToken, arr: &mut DistArray) {
        self.finish_traced(token, arr, &mut Tracer::off());
    }

    /// [`finish`](Self::finish) with wait/unpack spans attributed to
    /// `tracer`. In overlap mode the wait section shrinks as messages
    /// arrive during the CORE computation — exactly the effect the
    /// paper's *full* pattern exists to create.
    pub fn finish_traced(
        &mut self,
        mut token: FullToken,
        arr: &mut DistArray,
        tracer: &mut Tracer,
    ) {
        let plan = self
            .plan
            .as_mut()
            .expect("finish without begin: no plan built");
        let san = plan.san.clone();
        let rank = plan.rank;
        let arr_id = arr.shadow_id();
        while !token.pending.is_empty() {
            let seq = plan.steps[0][token.pending[0]].recv.arrival_seq();
            let mut i = 0;
            let before = token.pending.len();
            while i < token.pending.len() {
                let e = &mut plan.steps[0][token.pending[i]];
                let recv_box = &e.recv_box;
                let done = e
                    .recv
                    .try_with(|data| {
                        let spu = tracer.begin(Section::HaloUnpack);
                        debug_assert_eq!(data.len(), box_len(recv_box));
                        arr.unpack_box(recv_box, data);
                        if let Some(s) = &san {
                            s.unpack(rank, arr_id, &san_box_key(recv_box));
                        }
                        tracer.end(spu);
                    })
                    .is_some();
                if done {
                    token.pending.swap_remove(i);
                } else {
                    i += 1;
                }
            }
            if token.pending.len() == before {
                let sp = tracer.begin(Section::HaloWait);
                plan.steps[0][token.pending[0]].recv.wait_any_arrival(seq);
                tracer.end(sp);
            }
        }
        plan.spare_pending = token.pending;
    }
}

impl HaloExchange for FullExchange {
    /// Degenerate synchronous use: begin + finish back to back (no
    /// overlap). The operator executor uses `begin`/`finish` directly.
    fn exchange_traced(
        &mut self,
        cart: &CartComm,
        arr: &mut DistArray,
        radius: usize,
        tag_base: Tag,
        tracer: &mut Tracer,
    ) {
        let token = self.begin_traced(cart, arr, radius, tag_base, tracer);
        self.finish_traced(token, arr, tracer);
    }
}

/// Construct the chosen exchange strategy.
pub fn make_exchange(mode: HaloMode) -> Box<dyn HaloExchange + Send> {
    match mode {
        HaloMode::Basic => Box::new(BasicExchange::new()),
        HaloMode::Diagonal => Box::new(DiagonalExchange::new()),
        HaloMode::Full => Box::new(FullExchange::new()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decomp::Decomposition;
    use crate::regions::{for_each_index, Region};
    use mpix_comm::Universe;
    use std::sync::Arc;

    /// Build a per-rank array whose owned points hold their global linear
    /// index, run one exchange, and check the FULL region against the
    /// global function (zeros beyond the physical boundary).
    fn check_mode(mode: HaloMode, global: &[usize], dims: &[usize], radius: usize) {
        let nranks: usize = dims.iter().product();
        let global = global.to_vec();
        let dims = dims.to_vec();
        Universe::run(nranks, |comm| {
            let cart = CartComm::new(comm, &dims);
            let dc = Arc::new(Decomposition::new(&global, &dims));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(Arc::clone(&dc), &coords, radius.max(2));
            let nd = global.len();
            // Owned points = global linear index + 1 (so 0 marks "outside").
            let starts: Vec<usize> = (0..nd)
                .map(|d| dc.owned_range(d, coords[d]).start)
                .collect();
            let local_box: Vec<std::ops::Range<usize>> =
                arr.local_shape().iter().map(|&n| 0..n).collect();
            let mut writes = Vec::new();
            for_each_index(&local_box, |idx| {
                let mut lin = 0usize;
                for d in 0..nd {
                    lin = lin * global[d] + starts[d] + idx[d];
                }
                writes.push((idx.to_vec(), (lin + 1) as f32));
            });
            for (idx, v) in writes {
                arr.set_local(&idx, v);
            }

            let mut ex = make_exchange(mode);
            ex.exchange(&cart, &mut arr, radius, 0);

            // Validate FULL region.
            let halo = arr.halo();
            let full = arr.region(Region::Full, radius);
            let mut errors = Vec::new();
            for_each_index(&full, |pidx| {
                // Global index of this padded point.
                let mut g = Vec::with_capacity(nd);
                let mut inside = true;
                for d in 0..nd {
                    let gi = pidx[d] as i64 - halo as i64 + starts[d] as i64;
                    if gi < 0 || gi >= global[d] as i64 {
                        inside = false;
                    }
                    g.push(gi);
                }
                let want = if inside {
                    let mut lin = 0usize;
                    for d in 0..nd {
                        lin = lin * global[d] + g[d] as usize;
                    }
                    (lin + 1) as f32
                } else {
                    0.0
                };
                let got = arr.get_padded(pidx);
                if got != want {
                    errors.push(format!(
                        "coords {coords:?} p {pidx:?}: got {got} want {want}"
                    ));
                }
            });
            assert!(errors.is_empty(), "{mode:?}: {}", errors.join("; "));
        });
    }

    #[test]
    fn basic_2d_is_correct_including_corners() {
        check_mode(HaloMode::Basic, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn diagonal_2d_is_correct() {
        check_mode(HaloMode::Diagonal, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn full_2d_is_correct() {
        check_mode(HaloMode::Full, &[8, 8], &[2, 2], 2);
    }

    #[test]
    fn basic_3d_is_correct() {
        check_mode(HaloMode::Basic, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn diagonal_3d_is_correct() {
        check_mode(HaloMode::Diagonal, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn full_3d_is_correct() {
        check_mode(HaloMode::Full, &[6, 6, 6], &[2, 2, 2], 1);
    }

    #[test]
    fn uneven_decomposition_exchanges_correctly() {
        check_mode(HaloMode::Basic, &[11, 7], &[3, 2], 2);
        check_mode(HaloMode::Diagonal, &[11, 7], &[3, 2], 2);
        check_mode(HaloMode::Full, &[11, 7], &[3, 2], 2);
    }

    #[test]
    fn wide_radius_exchange() {
        // SDO 8 -> radius 4, the paper's standard setup.
        check_mode(HaloMode::Basic, &[16, 16], &[2, 2], 4);
        check_mode(HaloMode::Diagonal, &[16, 16], &[2, 2], 4);
    }

    #[test]
    fn repeated_exchanges_reuse_the_plan() {
        // Timestep-loop shape: the same exchanger runs many exchanges;
        // values must stay correct and the plan must not be rebuilt
        // (same geometry -> same plan object semantics, asserted via the
        // zero-allocation steady state in `steady_state_is_allocation_free`).
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2]);
            let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, 2);
            let mut ex = make_exchange(HaloMode::Diagonal);
            for step in 0..10 {
                arr.fill_global_slice(&[0..8, 0..8], step as f32);
                ex.exchange(&cart, &mut arr, 2, 0);
                let halo = arr.halo();
                // Any interior halo point must carry this step's value.
                if coords == [0, 0] {
                    assert_eq!(arr.get_padded(&[halo + 4, halo]), step as f32);
                }
            }
        });
    }

    /// The Table I contract, now honest for all three modes: after the
    /// plan is built (first exchange), steady-state exchanges perform
    /// zero heap allocations in the comm layer.
    #[test]
    fn steady_state_is_allocation_free_in_all_modes() {
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            Universe::run(8, move |comm| {
                let cart = CartComm::new(comm, &[2, 2, 2]);
                let dc = Arc::new(Decomposition::new(&[8, 8, 8], &[2, 2, 2]));
                let coords = cart.coords().to_vec();
                let mut arr = DistArray::new(dc, &coords, 2);
                arr.fill_global_slice(&[0..8, 0..8, 0..8], 1.0);
                let mut ex = make_exchange(mode);
                // Warm-up: builds the plan, primes the envelope pool.
                for _ in 0..3 {
                    ex.exchange(&cart, &mut arr, 2, 0);
                }
                cart.comm().barrier();
                cart.comm().reset_stats();
                for _ in 0..5 {
                    ex.exchange(&cart, &mut arr, 2, 0);
                }
                cart.comm().barrier();
                let stats = cart.comm().stats();
                assert_eq!(
                    stats.bufs_allocated, 0,
                    "{mode:?}: steady-state exchange allocated buffers"
                );
                assert!(stats.msgs_sent > 0, "{mode:?}: exchange sent nothing");
            });
        }
    }

    #[test]
    fn message_counts_match_table1() {
        // 3x3x3 ranks: the center rank is interior.
        let out = Universe::run(27, |comm| {
            let cart = CartComm::new(comm, &[3, 3, 3]);
            let dc = Arc::new(Decomposition::new(&[9, 9, 9], &[3, 3, 3]));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, 2);
            cart.comm().reset_stats();
            let mut ex = make_exchange(HaloMode::Basic);
            ex.exchange(&cart, &mut arr, 1, 0);
            let basic_msgs = cart.comm().stats().msgs_sent;
            cart.comm().barrier();
            cart.comm().reset_stats();
            let mut ex = make_exchange(HaloMode::Diagonal);
            ex.exchange(&cart, &mut arr, 1, 0);
            let diag_msgs = cart.comm().stats().msgs_sent;
            (coords, basic_msgs, diag_msgs)
        });
        for (coords, basic, diag) in out {
            if coords == vec![1, 1, 1] {
                assert_eq!(basic, 6, "Table I: basic sends 6 messages in 3D");
                assert_eq!(diag, 26, "Table I: diagonal sends 26 messages in 3D");
            }
        }
    }

    #[test]
    fn full_overlap_progress_drains_messages() {
        Universe::run(4, |comm| {
            let cart = CartComm::new(comm, &[2, 2]);
            let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
            let coords = cart.coords().to_vec();
            let mut arr = DistArray::new(dc, &coords, 2);
            arr.fill_global_slice(&[0..8, 0..8], 1.0);
            let mut ex = FullExchange::new();
            let mut token = ex.begin(&cart, &arr, 2, 0);
            assert!(token.pending() > 0);
            // Poll until drained (all sends are eager, so this terminates).
            let mut spins = 0u64;
            while ex.progress(&mut token, &mut arr) > 0 {
                spins += 1;
                assert!(spins < 1_000_000, "progress never drained");
            }
            ex.finish(token, &mut arr);
            // Interior halo entries must now be 1.
            let halo = arr.halo();
            let (ci, cj) = (coords[0], coords[1]);
            if ci == 0 {
                // right halo along dim 0 came from rank (1, cj)
                assert_eq!(arr.get_padded(&[halo + 4, halo]), 1.0);
            }
            let _ = cj;
        });
    }

    #[test]
    fn mode_parsing_matches_job_script_names() {
        assert_eq!(HaloMode::parse("diag2"), Some(HaloMode::Diagonal));
        assert_eq!(HaloMode::parse("basic"), Some(HaloMode::Basic));
        assert_eq!(HaloMode::parse("FULL"), Some(HaloMode::Full));
        assert_eq!(HaloMode::parse("nope"), None);
    }

    #[test]
    fn table1_characteristics() {
        assert_eq!(HaloMode::Basic.messages_per_exchange(3), 6);
        assert_eq!(HaloMode::Diagonal.messages_per_exchange(3), 26);
        assert_eq!(HaloMode::Full.messages_per_exchange(3), 26);
        assert_eq!(HaloMode::Basic.messages_per_exchange(2), 4);
        assert_eq!(HaloMode::Diagonal.messages_per_exchange(2), 8);
        // Since the persistent plans, every mode preallocates (the
        // paper's Table I lists runtime allocation for basic; see the
        // module docs for the correction).
        assert!(HaloMode::Basic.preallocates_buffers());
        assert!(HaloMode::Diagonal.preallocates_buffers());
        assert!(HaloMode::Full.preallocates_buffers());
        assert!(HaloMode::Full.overlaps_computation());
        assert!(!HaloMode::Diagonal.overlaps_computation());
    }

    #[test]
    fn single_rank_exchange_is_noop() {
        Universe::run(1, |comm| {
            let cart = CartComm::new(comm, &[1, 1]);
            let dc = Arc::new(Decomposition::new(&[4, 4], &[1, 1]));
            let mut arr = DistArray::new(dc, &[0, 0], 2);
            arr.fill_global_slice(&[0..4, 0..4], 3.0);
            for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
                let mut ex = make_exchange(mode);
                ex.exchange(&cart, &mut arr, 2, 0);
            }
            assert_eq!(cart.comm().stats().msgs_sent, 0);
        });
    }
}
