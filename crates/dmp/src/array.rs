//! `DistArray`: the distributed NumPy-array analogue.
//!
//! The data is physically distributed but logically centralized (§III b):
//! users index and slice in *global* coordinates; robust global-to-local
//! conversion directs each read/write to the owning rank(s). Rank-local
//! storage is padded with `halo` ghost points per side.

use std::ops::Range;
use std::sync::Arc;

use mpix_comm::Comm;

use crate::decomp::Decomposition;
use crate::regions::{box_len, for_each_index, region_box, BoxNd, Region};

/// A rank-local shard of a globally-indexed dense `f32` array.
#[derive(Clone, Debug)]
pub struct DistArray {
    decomp: Arc<Decomposition>,
    coords: Vec<usize>,
    halo: usize,
    local_shape: Vec<usize>,
    padded_shape: Vec<usize>,
    strides: Vec<usize>,
    data: Vec<f32>,
}

impl DistArray {
    /// Allocate this rank's shard (zero-initialized, like `u.data` on
    /// first access in Devito).
    pub fn new(decomp: Arc<Decomposition>, coords: &[usize], halo: usize) -> DistArray {
        assert_eq!(coords.len(), decomp.ndim());
        let local_shape = decomp.local_shape(coords);
        let padded_shape: Vec<usize> = local_shape.iter().map(|&n| n + 2 * halo).collect();
        let mut strides = vec![1usize; padded_shape.len()];
        for d in (0..padded_shape.len().saturating_sub(1)).rev() {
            strides[d] = strides[d + 1] * padded_shape[d + 1];
        }
        let len = padded_shape.iter().product();
        DistArray {
            decomp,
            coords: coords.to_vec(),
            halo,
            local_shape,
            padded_shape,
            strides,
            data: vec![0.0; len],
        }
    }

    pub fn decomp(&self) -> &Decomposition {
        &self.decomp
    }
    pub fn coords(&self) -> &[usize] {
        &self.coords
    }
    pub fn halo(&self) -> usize {
        self.halo
    }
    /// Owned (unpadded) local shape.
    pub fn local_shape(&self) -> &[usize] {
        &self.local_shape
    }
    /// Allocated (padded) local shape.
    pub fn padded_shape(&self) -> &[usize] {
        &self.padded_shape
    }
    /// Row-major strides of the padded allocation.
    pub fn strides(&self) -> &[usize] {
        &self.strides
    }
    /// Raw padded storage.
    pub fn raw(&self) -> &[f32] {
        &self.data
    }
    /// Raw padded storage, mutable.
    pub fn raw_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
    /// The backing vector itself — lets the executor temporarily move
    /// buffers out (`std::mem::take`) to bind several fields mutably at
    /// once without aliasing, then move them back.
    pub fn raw_vec_mut(&mut self) -> &mut Vec<f32> {
        &mut self.data
    }

    /// Stable identity of this array for the sanitizer's shadow state:
    /// the address of the backing storage. Survives the executor's
    /// `mem::take` move-out/move-back dance (a `Vec` move keeps its heap
    /// pointer), which is exactly why it is the identity and not `&self`.
    pub fn shadow_id(&self) -> usize {
        self.data.as_ptr() as usize
    }

    /// Linear offset of a padded multi-index.
    #[inline]
    pub fn lin(&self, padded_idx: &[usize]) -> usize {
        padded_idx
            .iter()
            .zip(&self.strides)
            .map(|(&i, &s)| i * s)
            .sum()
    }

    /// Read at padded-local coordinates.
    #[inline]
    pub fn get_padded(&self, idx: &[usize]) -> f32 {
        self.data[self.lin(idx)]
    }

    /// Write at padded-local coordinates.
    #[inline]
    pub fn set_padded(&mut self, idx: &[usize], v: f32) {
        let off = self.lin(idx);
        self.data[off] = v;
    }

    /// Read at owned-local coordinates (no halo offset applied by caller).
    pub fn get_local(&self, idx: &[usize]) -> f32 {
        let padded: Vec<usize> = idx.iter().map(|&i| i + self.halo).collect();
        self.get_padded(&padded)
    }

    /// Write at owned-local coordinates.
    pub fn set_local(&mut self, idx: &[usize], v: f32) {
        let padded: Vec<usize> = idx.iter().map(|&i| i + self.halo).collect();
        self.set_padded(&padded, v);
    }

    /// Does this rank own the given global point?
    pub fn owns_global(&self, idx: &[usize]) -> bool {
        (0..self.decomp.ndim())
            .all(|d| self.decomp.owned_range(d, self.coords[d]).contains(&idx[d]))
    }

    /// Write a single global point; no-op on non-owning ranks.
    pub fn set_global(&mut self, idx: &[usize], v: f32) {
        if !self.owns_global(idx) {
            return;
        }
        let local: Vec<usize> = (0..idx.len())
            .map(|d| idx[d] - self.decomp.owned_range(d, self.coords[d]).start)
            .collect();
        self.set_local(&local, v);
    }

    /// Read a single global point; `None` on non-owning ranks.
    pub fn get_global(&self, idx: &[usize]) -> Option<f32> {
        if !self.owns_global(idx) {
            return None;
        }
        let local: Vec<usize> = (0..idx.len())
            .map(|d| idx[d] - self.decomp.owned_range(d, self.coords[d]).start)
            .collect();
        Some(self.get_local(&local))
    }

    /// Fill a global slice with a constant — the distributed equivalent
    /// of `u.data[1:-1, 1:-1] = 1` (Listing 1, line 14). Each rank
    /// converts the global slice to its local intersection and writes
    /// only its share (Listing 2). Requires no communication.
    pub fn fill_global_slice(&mut self, ranges: &[Range<usize>], value: f32) {
        if let Some(local_box) = self.local_intersection(ranges) {
            let halo = self.halo;
            let padded: BoxNd = local_box
                .iter()
                .map(|r| r.start + halo..r.end + halo)
                .collect();
            // Collect offsets first: for_each_index borrows self immutably.
            let mut offsets = Vec::with_capacity(box_len(&padded));
            for_each_index(&padded, |idx| offsets.push(self.lin(idx)));
            for off in offsets {
                self.data[off] = value;
            }
        }
    }

    /// Local intersection of a global box with this rank's ownership, in
    /// owned-local coordinates.
    pub fn local_intersection(&self, ranges: &[Range<usize>]) -> Option<BoxNd> {
        let mut out = Vec::with_capacity(ranges.len());
        for d in 0..ranges.len() {
            out.push(self.decomp.intersect_local(d, self.coords[d], &ranges[d])?);
        }
        Some(out)
    }

    /// Render this rank's owned data as a row-major nested list string —
    /// used to reproduce the per-rank stdout of Listings 2–3.
    pub fn local_view_string(&self) -> String {
        assert_eq!(self.decomp.ndim(), 2, "pretty printing supports 2-D");
        let mut s = String::from("[");
        for i in 0..self.local_shape[0] {
            if i > 0 {
                s.push_str("\n ");
            }
            s.push('[');
            for j in 0..self.local_shape[1] {
                if j > 0 {
                    s.push(' ');
                }
                s.push_str(&format!("{:.2}", self.get_local(&[i, j])));
            }
            s.push(']');
        }
        s.push(']');
        s
    }

    /// Gather the full global array onto every rank (root gathers, then
    /// broadcasts). This is the support behind user-side global reads; it
    /// is deliberately simple — inspection, not a hot path.
    pub fn gather_global(&self, comm: &Comm) -> Vec<f32> {
        let nd = self.decomp.ndim();
        let mut flat = Vec::with_capacity(self.local_shape.iter().product());
        let local_box: BoxNd = self
            .local_shape
            .iter()
            .map(|&n| self.halo..self.halo + n)
            .collect();
        for_each_index(&local_box, |idx| flat.push(self.get_padded(idx)));

        let gathered = comm.gather_f32(0, &flat);
        let global_shape = self.decomp.global_shape().to_vec();
        let total: usize = global_shape.iter().product();
        let assembled = if let Some(parts) = gathered {
            // Root assembles in global coordinates.
            let mut out = vec![0.0f32; total];
            let dims = self.decomp.dims().to_vec();
            for rank in 0..comm.size() {
                let coords = mpix_comm::CartComm::coords_of(&dims, rank);
                let starts: Vec<usize> = (0..nd)
                    .map(|d| self.decomp.owned_range(d, coords[d]).start)
                    .collect();
                let shape = self.decomp.local_shape(&coords);
                let b: BoxNd = shape.iter().map(|&n| 0..n).collect();
                let mut k = 0;
                for_each_index(&b, |idx| {
                    let mut off = 0;
                    for d in 0..nd {
                        off = off * global_shape[d] + (starts[d] + idx[d]);
                    }
                    out[off] = parts[rank][k];
                    k += 1;
                });
            }
            out
        } else {
            vec![0.0f32; total]
        };
        comm.bcast_f32(0, &assembled)
    }

    /// Global L2 norm over owned points (collective).
    pub fn norm2(&self, comm: &Comm) -> f64 {
        let local: f64 = self.owned_fold(0.0, |acc, v| acc + (v as f64) * (v as f64));
        comm.allreduce_f64(local, mpix_comm::comm::ReduceOp::Sum)
            .sqrt()
    }

    /// Global sum over owned points (collective).
    pub fn global_sum(&self, comm: &Comm) -> f64 {
        let local = self.owned_fold(0.0, |acc, v| acc + v as f64);
        comm.allreduce_f64(local, mpix_comm::comm::ReduceOp::Sum)
    }

    /// Global max |v| over owned points (collective).
    pub fn norm_inf(&self, comm: &Comm) -> f64 {
        let local = self.owned_fold(0.0f64, |acc, v| acc.max(v.abs() as f64));
        comm.allreduce_f64(local, mpix_comm::comm::ReduceOp::Max)
    }

    fn owned_fold<T: Copy>(&self, init: T, mut f: impl FnMut(T, f32) -> T) -> T {
        let b: BoxNd = self
            .local_shape
            .iter()
            .map(|&n| self.halo..self.halo + n)
            .collect();
        let mut acc = init;
        for_each_index(&b, |idx| acc = f(acc, self.get_padded(idx)));
        acc
    }

    /// Collective read of a global slice: every rank returns the slice
    /// contents in row-major order. Each rank contributes its owned
    /// intersection; rank 0 assembles and broadcasts.
    pub fn read_global_slice(&self, ranges: &[Range<usize>], comm: &Comm) -> Vec<f32> {
        let nd = self.decomp.ndim();
        assert_eq!(ranges.len(), nd);
        // Payload: [lo..; hi..; values...] per rank (f32-encoded box).
        let payload: Vec<f32> = match self.local_intersection(ranges) {
            Some(local_box) => {
                let halo = self.halo;
                let padded: BoxNd = local_box
                    .iter()
                    .map(|r| r.start + halo..r.end + halo)
                    .collect();
                let mut vals = Vec::with_capacity(2 * nd + box_len(&padded));
                // Global coordinates of the intersection box.
                for d in 0..nd {
                    let owned = self.decomp.owned_range(d, self.coords[d]);
                    vals.push((owned.start + local_box[d].start) as f32);
                }
                for d in 0..nd {
                    let owned = self.decomp.owned_range(d, self.coords[d]);
                    vals.push((owned.start + local_box[d].end) as f32);
                }
                for_each_index(&padded, |idx| vals.push(self.get_padded(idx)));
                vals
            }
            None => Vec::new(),
        };
        let gathered = comm.gather_f32(0, &payload);
        let slice_shape: Vec<usize> = ranges.iter().map(|r| r.len()).collect();
        let total: usize = slice_shape.iter().product();
        let assembled = if let Some(parts) = gathered {
            let mut out = vec![0.0f32; total];
            for part in parts {
                if part.is_empty() {
                    continue;
                }
                let lo: Vec<usize> = (0..nd).map(|d| part[d] as usize).collect();
                let hi: Vec<usize> = (0..nd).map(|d| part[nd + d] as usize).collect();
                let b: BoxNd = (0..nd).map(|d| lo[d]..hi[d]).collect();
                let mut k = 2 * nd;
                for_each_index(&b, |gidx| {
                    let mut off = 0usize;
                    for d in 0..nd {
                        off = off * slice_shape[d] + (gidx[d] - ranges[d].start);
                    }
                    out[off] = part[k];
                    k += 1;
                });
            }
            out
        } else {
            vec![0.0f32; total]
        };
        comm.bcast_f32(0, &assembled)
    }

    /// Copy a padded-coordinate box into a flat buffer (message packing).
    /// The innermost padded stride is 1, so each innermost row of the box
    /// is one contiguous slice — packing is a sequence of `memcpy`s, not
    /// per-element gathers. This runs in every halo exchange of all three
    /// DMP modes.
    pub fn pack_box(&self, b: &BoxNd, out: &mut Vec<f32>) {
        out.clear();
        out.reserve(box_len(b));
        for_each_row(b, &self.strides, |start, len| {
            out.extend_from_slice(&self.data[start..start + len]);
        });
    }

    /// Scatter a flat buffer into a padded-coordinate box (unpacking),
    /// one contiguous innermost row per `copy_from_slice`.
    pub fn unpack_box(&mut self, b: &BoxNd, data: &[f32]) {
        assert_eq!(data.len(), box_len(b), "message size mismatch");
        let dst = &mut self.data;
        let mut cursor = 0;
        for_each_row(b, &self.strides, |start, len| {
            dst[start..start + len].copy_from_slice(&data[cursor..cursor + len]);
            cursor += len;
        });
    }

    /// The box of a named region for a given stencil radius.
    pub fn region(&self, region: Region, radius: usize) -> BoxNd {
        region_box(region, &self.local_shape, self.halo, radius)
    }
}

/// Most dimensions a box can have. Generous: the paper's grids are ≤ 3-D.
const MAX_ND: usize = 8;

/// Visit each contiguous innermost row of box `b` as
/// `(linear_start, row_len)` in `for_each_index` order. Relies on the
/// row-major layout invariant that the innermost stride is 1. Runs on
/// every pack/unpack of the halo hot path, so the odometer index lives
/// on the stack — this function performs no heap allocation.
fn for_each_row(b: &BoxNd, strides: &[usize], mut f: impl FnMut(usize, usize)) {
    let nd = b.len();
    assert!(nd <= MAX_ND, "box has more than {MAX_ND} dimensions");
    if b.iter().any(|r| r.is_empty()) {
        return;
    }
    debug_assert_eq!(strides[nd - 1], 1);
    let row_len = b[nd - 1].len();
    let outer = nd - 1;
    let mut idx = [0usize; MAX_ND];
    for d in 0..outer {
        idx[d] = b[d].start;
    }
    loop {
        let mut lin = b[nd - 1].start;
        for d in 0..outer {
            lin += idx[d] * strides[d];
        }
        f(lin, row_len);
        // Odometer over the outer dimensions.
        let mut d = outer;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < b[d].end {
                break;
            }
            idx[d] = b[d].start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_comm::Universe;

    fn decomp_2x2_4x4() -> Arc<Decomposition> {
        Arc::new(Decomposition::new(&[4, 4], &[2, 2]))
    }

    #[test]
    fn zero_initialized_with_padding() {
        let a = DistArray::new(decomp_2x2_4x4(), &[0, 0], 2);
        assert_eq!(a.local_shape(), &[2, 2]);
        assert_eq!(a.padded_shape(), &[6, 6]);
        assert!(a.raw().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn local_global_set_get() {
        let mut a = DistArray::new(decomp_2x2_4x4(), &[1, 0], 2);
        // Rank (1,0) owns global rows 2..4, cols 0..2.
        a.set_global(&[2, 1], 5.0);
        assert_eq!(a.get_global(&[2, 1]), Some(5.0));
        assert_eq!(a.get_local(&[0, 1]), 5.0);
        // Not owned -> no-op / None.
        a.set_global(&[0, 0], 9.0);
        assert_eq!(a.get_global(&[0, 0]), None);
        assert!(a.raw().iter().filter(|&&v| v != 0.0).count() == 1);
    }

    #[test]
    fn listing2_slice_write() {
        // Paper Listing 1 line 14: u.data[1:-1, 1:-1] = 1 on a 4x4 grid
        // decomposed over 4 ranks -> Listing 2 per-rank views.
        let expected = [
            "[[0.00 0.00]\n [0.00 1.00]]",
            "[[0.00 0.00]\n [1.00 0.00]]",
            "[[0.00 1.00]\n [0.00 0.00]]",
            "[[1.00 0.00]\n [0.00 0.00]]",
        ];
        let dc = Arc::new(Decomposition::new(&[4, 4], &[2, 2]));
        for rank in 0..4 {
            let coords = mpix_comm::CartComm::coords_of(&[2, 2], rank);
            let mut a = DistArray::new(Arc::clone(&dc), &coords, 2);
            a.fill_global_slice(&[1..3, 1..3], 1.0);
            assert_eq!(a.local_view_string(), expected[rank], "rank {rank}");
        }
    }

    #[test]
    fn pack_unpack_roundtrip() {
        let mut a = DistArray::new(decomp_2x2_4x4(), &[0, 0], 2);
        // Fill owned region with distinct values.
        for i in 0..2 {
            for j in 0..2 {
                a.set_local(&[i, j], (10 * i + j) as f32);
            }
        }
        let b: BoxNd = vec![2..4, 2..4]; // the owned region in padded coords
        let mut buf = Vec::new();
        a.pack_box(&b, &mut buf);
        assert_eq!(buf, vec![0.0, 1.0, 10.0, 11.0]);
        let target: BoxNd = vec![0..2, 2..4]; // left halo rows
        a.unpack_box(&target, &buf);
        assert_eq!(a.get_padded(&[0, 2]), 0.0);
        assert_eq!(a.get_padded(&[1, 2]), 10.0);
        assert_eq!(a.get_padded(&[1, 3]), 11.0);
    }

    #[test]
    fn gather_global_reassembles() {
        let out = Universe::run(4, |comm| {
            let dc = Arc::new(Decomposition::new(&[4, 4], &[2, 2]));
            let coords = mpix_comm::CartComm::coords_of(&[2, 2], comm.rank());
            let mut a = DistArray::new(dc, &coords, 2);
            // Each rank writes its globally-indexed value.
            for gi in 0..4 {
                for gj in 0..4 {
                    a.set_global(&[gi, gj], (gi * 4 + gj) as f32);
                }
            }
            a.gather_global(&comm)
        });
        let want: Vec<f32> = (0..16).map(|v| v as f32).collect();
        for got in out {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn fill_global_slice_outside_ownership_is_noop() {
        let mut a = DistArray::new(decomp_2x2_4x4(), &[0, 0], 2);
        a.fill_global_slice(&[3..4, 3..4], 1.0); // owned by rank (1,1)
        assert!(a.raw().iter().all(|&v| v == 0.0));
    }
}

#[cfg(test)]
mod reduction_tests {
    use super::*;
    use mpix_comm::Universe;

    #[test]
    fn norms_match_serial_computation() {
        let vals = Universe::run(4, |comm| {
            let dc = Arc::new(Decomposition::new(&[6, 6], &[2, 2]));
            let coords = mpix_comm::CartComm::coords_of(&[2, 2], comm.rank());
            let mut a = DistArray::new(dc, &coords, 2);
            for i in 0..6 {
                for j in 0..6 {
                    a.set_global(&[i, j], (i * 6 + j) as f32);
                }
            }
            (a.norm2(&comm), a.global_sum(&comm), a.norm_inf(&comm))
        });
        let exact_sum: f64 = (0..36).map(|v| v as f64).sum();
        let exact_norm2: f64 = (0..36).map(|v| (v * v) as f64).sum::<f64>().sqrt();
        for (n2, s, ninf) in vals {
            assert!((n2 - exact_norm2).abs() < 1e-6, "{n2}");
            assert!((s - exact_sum).abs() < 1e-6, "{s}");
            assert_eq!(ninf, 35.0);
        }
    }

    #[test]
    fn read_global_slice_matches_written_data() {
        let out = Universe::run(4, |comm| {
            let dc = Arc::new(Decomposition::new(&[8, 8], &[2, 2]));
            let coords = mpix_comm::CartComm::coords_of(&[2, 2], comm.rank());
            let mut a = DistArray::new(dc, &coords, 2);
            for i in 0..8 {
                for j in 0..8 {
                    a.set_global(&[i, j], (10 * i + j) as f32);
                }
            }
            // A slice straddling all four ranks.
            a.read_global_slice(&[2..7, 3..6], &comm)
        });
        let want: Vec<f32> = (2..7)
            .flat_map(|i| (3..6).map(move |j| (10 * i + j) as f32))
            .collect();
        for got in out {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn read_global_slice_single_rank() {
        let out = Universe::run(1, |comm| {
            let dc = Arc::new(Decomposition::new(&[4, 4], &[1, 1]));
            let mut a = DistArray::new(dc, &[0, 0], 2);
            a.fill_global_slice(&[1..3, 1..3], 5.0);
            a.read_global_slice(&[0..4, 0..4], &comm)
        });
        assert_eq!(out[0].iter().filter(|&&v| v == 5.0).count(), 4);
    }
}
