//! Cartesian domain decomposition and global↔local index conversion.
//!
//! A [`Decomposition`] splits a global grid of `shape` points across a
//! process grid `dims` (either the `MPI_Dims_create`-style default from
//! [`mpix_comm::dims_create`] or a user-provided topology, Fig. 2). The
//! split is balanced: when `shape[d]` does not divide evenly, the first
//! `shape[d] % dims[d]` process columns get one extra point — the same
//! rule MPI-based frameworks conventionally use.

use std::ops::Range;

/// An immutable description of how a global grid maps onto a process
/// grid.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Decomposition {
    global: Vec<usize>,
    dims: Vec<usize>,
}

impl Decomposition {
    /// Create a decomposition of `global` points over a `dims` process
    /// grid.
    ///
    /// # Panics
    /// If dimensionalities disagree or any dimension has fewer points
    /// than process columns.
    pub fn new(global: &[usize], dims: &[usize]) -> Decomposition {
        assert_eq!(global.len(), dims.len(), "shape/topology rank mismatch");
        for d in 0..global.len() {
            assert!(
                global[d] >= dims[d],
                "dimension {d}: {} points cannot be split over {} ranks",
                global[d],
                dims[d]
            );
            assert!(dims[d] >= 1);
        }
        Decomposition {
            global: global.to_vec(),
            dims: dims.to_vec(),
        }
    }

    /// Global grid shape.
    pub fn global_shape(&self) -> &[usize] {
        &self.global
    }

    /// Process grid shape.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Number of spatial dimensions.
    pub fn ndim(&self) -> usize {
        self.global.len()
    }

    /// The range of global indices along `d` owned by process column `c`.
    pub fn owned_range(&self, d: usize, c: usize) -> Range<usize> {
        let s = self.global[d];
        let p = self.dims[d];
        debug_assert!(c < p);
        let base = s / p;
        let rem = s % p;
        let start = c * base + c.min(rem);
        let len = base + usize::from(c < rem);
        start..start + len
    }

    /// The local shape (owned points per dimension) of the rank at
    /// Cartesian coordinates `coords`.
    pub fn local_shape(&self, coords: &[usize]) -> Vec<usize> {
        (0..self.ndim())
            .map(|d| self.owned_range(d, coords[d]).len())
            .collect()
    }

    /// The process column along `d` owning global index `g`.
    pub fn owner_of(&self, d: usize, g: usize) -> usize {
        let s = self.global[d];
        let p = self.dims[d];
        assert!(g < s, "global index {g} out of range for dim {d}");
        let base = s / p;
        let rem = s % p;
        let big = (base + 1) * rem; // indices covered by the larger columns
        if g < big {
            g / (base + 1)
        } else {
            rem + (g - big) / base
        }
    }

    /// Convert a global index along `d` to `(process column, local index)`.
    pub fn global_to_local(&self, d: usize, g: usize) -> (usize, usize) {
        let c = self.owner_of(d, g);
        let r = self.owned_range(d, c);
        (c, g - r.start)
    }

    /// Convert a local index on process column `c` back to global.
    pub fn local_to_global(&self, d: usize, c: usize, l: usize) -> usize {
        let r = self.owned_range(d, c);
        debug_assert!(l < r.len());
        r.start + l
    }

    /// Intersect a global range along `d` with the ownership of column
    /// `c`, returning the *local* range, or `None` when disjoint.
    pub fn intersect_local(
        &self,
        d: usize,
        c: usize,
        global: &Range<usize>,
    ) -> Option<Range<usize>> {
        let owned = self.owned_range(d, c);
        let lo = global.start.max(owned.start);
        let hi = global.end.min(owned.end);
        if lo >= hi {
            None
        } else {
            Some(lo - owned.start..hi - owned.start)
        }
    }

    /// The process columns along `d` whose ownership intersects the
    /// global range (used for sparse-point replication, Fig. 3).
    pub fn owners_of_range(&self, d: usize, global: &Range<usize>) -> Range<usize> {
        assert!(global.start < global.end);
        let first = self.owner_of(d, global.start.min(self.global[d] - 1));
        let last = self.owner_of(d, (global.end - 1).min(self.global[d] - 1));
        first..last + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn even_split() {
        let dc = Decomposition::new(&[8, 8], &[2, 2]);
        assert_eq!(dc.owned_range(0, 0), 0..4);
        assert_eq!(dc.owned_range(0, 1), 4..8);
        assert_eq!(dc.local_shape(&[1, 1]), vec![4, 4]);
    }

    #[test]
    fn uneven_split_gives_extra_to_leading_columns() {
        let dc = Decomposition::new(&[10], &[4]);
        // 10 = 3 + 3 + 2 + 2
        assert_eq!(dc.owned_range(0, 0), 0..3);
        assert_eq!(dc.owned_range(0, 1), 3..6);
        assert_eq!(dc.owned_range(0, 2), 6..8);
        assert_eq!(dc.owned_range(0, 3), 8..10);
    }

    #[test]
    fn owner_of_matches_ranges() {
        let dc = Decomposition::new(&[10], &[4]);
        for g in 0..10 {
            let c = dc.owner_of(0, g);
            assert!(dc.owned_range(0, c).contains(&g), "g={g} c={c}");
        }
    }

    #[test]
    fn global_local_roundtrip() {
        let dc = Decomposition::new(&[17, 9], &[3, 2]);
        for d in 0..2 {
            for g in 0..dc.global_shape()[d] {
                let (c, l) = dc.global_to_local(d, g);
                assert_eq!(dc.local_to_global(d, c, l), g);
            }
        }
    }

    #[test]
    fn intersect_local_clips() {
        let dc = Decomposition::new(&[8], &[2]);
        // Global 3..6 intersected with rank 0 (0..4) -> local 3..4
        assert_eq!(dc.intersect_local(0, 0, &(3..6)), Some(3..4));
        // with rank 1 (4..8) -> local 0..2
        assert_eq!(dc.intersect_local(0, 1, &(3..6)), Some(0..2));
        assert_eq!(dc.intersect_local(0, 1, &(0..4)), None);
    }

    #[test]
    fn owners_of_range_spans_boundary() {
        let dc = Decomposition::new(&[8], &[4]);
        // Range 3..5 crosses ranks 1 (2..4) and 2 (4..6).
        assert_eq!(dc.owners_of_range(0, &(3..5)), 1..3);
        assert_eq!(dc.owners_of_range(0, &(0..1)), 0..1);
    }

    #[test]
    #[should_panic]
    fn more_ranks_than_points_rejected() {
        Decomposition::new(&[3], &[4]);
    }

    proptest! {
        #[test]
        fn prop_partition_is_exact_and_balanced(s in 1usize..2000, p in 1usize..64) {
            prop_assume!(s >= p);
            let dc = Decomposition::new(&[s], &[p]);
            let mut total = 0;
            let mut prev_end = 0;
            let mut sizes = Vec::new();
            for c in 0..p {
                let r = dc.owned_range(0, c);
                prop_assert_eq!(r.start, prev_end, "contiguous");
                prev_end = r.end;
                total += r.len();
                sizes.push(r.len());
            }
            prop_assert_eq!(total, s, "covers all points");
            let mx = *sizes.iter().max().unwrap();
            let mn = *sizes.iter().min().unwrap();
            prop_assert!(mx - mn <= 1, "balanced within one point");
        }

        #[test]
        fn prop_owner_roundtrip(s in 1usize..1000, p in 1usize..32, g in 0usize..1000) {
            prop_assume!(s >= p && g < s);
            let dc = Decomposition::new(&[s], &[p]);
            let (c, l) = dc.global_to_local(0, g);
            prop_assert_eq!(dc.local_to_global(0, c, l), g);
            prop_assert!(dc.owned_range(0, c).contains(&g));
        }
    }
}
