//! Data-region aliases (paper Fig. 4) and iteration boxes.
//!
//! All boxes are expressed in *padded local coordinates*: the rank-local
//! array is allocated with `halo` ghost points on each side, so owned
//! point `i` lives at padded index `i + halo`.

use std::ops::Range;

/// An axis-aligned n-dimensional index box: one half-open range per
/// dimension, in padded local coordinates.
pub type BoxNd = Vec<Range<usize>>;

/// The region aliases the compiler reasons with (Fig. 4).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Region {
    /// Points whose stencil reads stay inside DOMAIN (no halo reads).
    Core,
    /// Points that read from HALO: DOMAIN minus CORE (the "remainder").
    Owned,
    /// All writable points: CORE ∪ OWNED.
    Domain,
    /// DOMAIN extended by the exchange radius on every side.
    Full,
}

/// Compute the box for `region` given the owned `local` shape, the
/// allocated `halo` width, and the stencil `radius` (exchange width).
///
/// When a dimension is so small that `2*radius` exceeds it, CORE is empty
/// along that dimension (returned as an empty range).
pub fn region_box(region: Region, local: &[usize], halo: usize, radius: usize) -> BoxNd {
    // Only FULL reaches into the ghost region, so only it requires the
    // allocated halo to cover the radius; CORE/DOMAIN boxes are also used
    // with `halo = 0` to express owned-local coordinates.
    assert!(
        radius <= halo || region != Region::Full,
        "exchange radius exceeds allocated halo"
    );
    local
        .iter()
        .map(|&n| match region {
            Region::Domain => halo..halo + n,
            Region::Full => halo - radius..halo + n + radius,
            Region::Core => {
                // Clamp to DOMAIN so tiny dimensions (n < radius) yield an
                // empty core *inside* the domain, never spilling into halo.
                let lo = (halo + radius).min(halo + n);
                let hi = (halo + n).saturating_sub(radius);
                lo..hi.max(lo)
            }
            Region::Owned => halo..halo + n, // bounding box; use remainder_boxes
        })
        .collect()
}

/// Decompose DOMAIN minus CORE into disjoint boxes (the REMAINDER areas
/// of Fig. 5 — faces and edge strips along decomposed dimensions).
///
/// The decomposition peels one dimension at a time: for dimension `d` the
/// low/high strips span the *core* range in dimensions `< d` and the full
/// domain in dimensions `> d`, which yields pairwise-disjoint boxes whose
/// union is exactly `DOMAIN \ CORE`.
pub fn remainder_boxes(local: &[usize], halo: usize, radius: usize) -> Vec<BoxNd> {
    let nd = local.len();
    let domain = region_box(Region::Domain, local, halo, radius);
    let core = region_box(Region::Core, local, halo, radius);
    let mut out = Vec::new();
    for d in 0..nd {
        // Low strip: domain start up to core start.
        let mut push_strip = |strip: Range<usize>| {
            if strip.is_empty() {
                return;
            }
            let mut b: BoxNd = Vec::with_capacity(nd);
            for e in 0..nd {
                if e < d {
                    b.push(core[e].clone());
                } else if e == d {
                    b.push(strip.clone());
                } else {
                    b.push(domain[e].clone());
                }
            }
            if b.iter().all(|r| !r.is_empty()) {
                out.push(b);
            }
        };
        push_strip(domain[d].start..core[d].start);
        push_strip(core[d].end..domain[d].end);
    }
    out
}

/// Number of points in a box.
pub fn box_len(b: &BoxNd) -> usize {
    b.iter().map(|r| r.len()).product()
}

/// Visit every multi-index of a box in row-major order.
pub fn for_each_index(b: &BoxNd, mut f: impl FnMut(&[usize])) {
    let nd = b.len();
    if b.iter().any(|r| r.is_empty()) {
        return;
    }
    let mut idx: Vec<usize> = b.iter().map(|r| r.start).collect();
    loop {
        f(&idx);
        // Increment odometer, innermost (last) dimension fastest.
        let mut d = nd;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < b[d].end {
                break;
            }
            idx[d] = b[d].start;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn region_boxes_nest_correctly() {
        let local = [10, 8];
        let (halo, r) = (4, 2);
        let full = region_box(Region::Full, &local, halo, r);
        let dom = region_box(Region::Domain, &local, halo, r);
        let core = region_box(Region::Core, &local, halo, r);
        assert_eq!(dom, vec![4..14, 4..12]);
        assert_eq!(full, vec![2..16, 2..14]);
        assert_eq!(core, vec![6..12, 6..10]);
    }

    #[test]
    fn tiny_domain_has_empty_core() {
        let core = region_box(Region::Core, &[3], 4, 2);
        assert!(core[0].is_empty());
        // Remainder must then cover the whole domain.
        let rb = remainder_boxes(&[3], 4, 2);
        let total: usize = rb.iter().map(box_len).sum();
        assert_eq!(total, 3);
    }

    #[test]
    fn remainder_plus_core_covers_domain_2d() {
        let local = [10, 8];
        let (halo, r) = (4, 2);
        let core = region_box(Region::Core, &local, halo, r);
        let rb = remainder_boxes(&local, halo, r);
        let total: usize = rb.iter().map(box_len).sum::<usize>() + box_len(&core);
        assert_eq!(total, 80);
    }

    #[test]
    fn remainder_boxes_are_disjoint() {
        let local = [6, 6, 6];
        let rb = remainder_boxes(&local, 4, 2);
        let mut seen = std::collections::HashSet::new();
        for b in &rb {
            for_each_index(b, |idx| {
                assert!(seen.insert(idx.to_vec()), "duplicate point {idx:?}");
            });
        }
    }

    #[test]
    fn for_each_index_row_major() {
        let b: BoxNd = vec![0..2, 1..3];
        let mut got = Vec::new();
        for_each_index(&b, |i| got.push(i.to_vec()));
        assert_eq!(got, vec![vec![0, 1], vec![0, 2], vec![1, 1], vec![1, 2]]);
    }

    #[test]
    #[should_panic]
    fn radius_beyond_halo_rejected() {
        region_box(Region::Full, &[8], 2, 3);
    }

    proptest! {
        #[test]
        fn prop_core_plus_remainder_equals_domain(
            nx in 1usize..12, ny in 1usize..12, nz in 1usize..12,
            r in 1usize..4,
        ) {
            let halo = 4;
            let local = [nx, ny, nz];
            let core = region_box(Region::Core, &local, halo, r);
            let rb = remainder_boxes(&local, halo, r);
            let mut seen = std::collections::HashSet::new();
            let mut overlaps = 0usize;
            for_each_index(&core, |i| {
                if !seen.insert(i.to_vec()) {
                    overlaps += 1;
                }
            });
            for b in &rb {
                for_each_index(b, |i| {
                    if !seen.insert(i.to_vec()) {
                        overlaps += 1;
                    }
                });
            }
            prop_assert_eq!(overlaps, 0, "boxes overlap");
            prop_assert_eq!(seen.len(), nx * ny * nz);
        }
    }
}
