//! Local stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace-internal
//! crate provides the subset of criterion's API our benches use, backed by
//! a plain wall-clock harness: per benchmark it warms up, runs
//! `sample_size` timed samples, and prints min/mean/max per iteration plus
//! derived throughput. No statistics, plots, or saved baselines — compare
//! runs by diffing the printed table.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level harness handle, mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(name, self.default_sample_size, None, &mut f);
        self
    }
}

/// Identifies one benchmark within a group: `function_name/parameter`.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Units processed per iteration, used to derive throughput.
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoLabel, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = format!("{}/{}", self.name, id.into_label());
        run_one(&label, self.sample_size, self.throughput, &mut f);
        self
    }

    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = format!("{}/{}", self.name, id.label);
        run_one(
            &label,
            self.sample_size,
            self.throughput,
            &mut |b: &mut Bencher| f(b, input),
        );
        self
    }

    pub fn finish(self) {}
}

/// Accepts both `&str` names and [`BenchmarkId`]s for `bench_function`.
pub trait IntoLabel {
    fn into_label(self) -> String;
}

impl IntoLabel for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoLabel for String {
    fn into_label(self) -> String {
        self
    }
}

impl IntoLabel for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

/// Passed to the closure; call [`Bencher::iter`] with the workload.
pub struct Bencher {
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // One untimed warmup to populate caches/allocations.
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F>(label: &str, sample_size: usize, throughput: Option<Throughput>, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    let mut b = Bencher {
        sample_size,
        samples: Vec::new(),
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<48} (no samples — closure never called iter)");
        return;
    }
    let min = b.samples.iter().min().unwrap();
    let max = b.samples.iter().max().unwrap();
    let mean = b.samples.iter().sum::<Duration>() / b.samples.len() as u32;
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>10.3} Melem/s", n as f64 / mean.as_secs_f64() / 1e6)
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!(
                "  {:>10.3} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        _ => String::new(),
    };
    println!(
        "{label:<48} min {:>12} mean {:>12} max {:>12}{rate}",
        fmt_dur(*min),
        fmt_dur(mean),
        fmt_dur(*max),
    );
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Collect benchmark functions into one runner, like criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Entry point: run every group passed in.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        g.throughput(Throughput::Elements(1000));
        let mut calls = 0u32;
        g.bench_with_input(BenchmarkId::new("noop", 1), &5u32, |b, &x| {
            b.iter(|| {
                calls += 1;
                x * 2
            });
        });
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn bench_function_on_criterion_and_group() {
        let mut c = Criterion::default();
        c.bench_function("top_level", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("grp");
        g.sample_size(2);
        g.bench_function("inner", |b| b.iter(|| 2 + 2));
        g.finish();
    }
}
