//! Native JIT backend: compiles cluster bytecode to x86-64 AVX machine
//! code through the vendored `cranelift` crate.
//!
//! The generated function mirrors the strip interpreter exactly — an
//! 8-lane vector loop plus a scalar tail, evaluating the same ops in
//! the same order with the same mul-then-add rounding (no FMA) — so its
//! results are bitwise identical to the bytecode oracle on every input.
//! That is a *structural* property: each bytecode op maps to a fixed
//! AVX sequence whose lane arithmetic is the IEEE operation the
//! interpreter performs. The `mpix-analysis` backend-equivalence pass
//! and `tests/backend_equivalence.rs` check it end to end.
//!
//! ## Code shape
//!
//! One function per `(cluster, resolved offsets)` pair — offsets are
//! per-geometry, so a multi-rank run compiles one variant per distinct
//! local shape (cached). The function executes one contiguous inner
//! row of `n` points:
//!
//! ```text
//! rdi = &RowArgs { streams: *const *mut f32, n: u64,
//!                  bank: *const f32, temps: *mut f32 }
//!
//! prologue: rsi=streams rdx=n r8=bank r9=temps
//!           r10/r11 = two hottest stream pointers
//!           ymm15 = bank[0] (1.0, when Pow ops need it)
//!           rcx = 0
//! vec:      while rcx+8 <= n: 8-wide body, rcx += 8
//! tail:     while rcx < n: scalar body (ss ops), rcx += 1
//!           vzeroupper; ret
//! ```
//!
//! The *bank* is `[1.0, consts…, scalars…, params…]` — every
//! point-invariant value at a compile-time-known offset, loaded with
//! `vbroadcastss`. Stack slots live in `ymm0..=ymm11` (the deepest
//! observed solver stack is 9), `ymm12` is scratch, temporaries are
//! memory-resident 8-lane slots at `temps + 32*t`.
//!
//! Clusters the JIT cannot prove it supports (elementary-function
//! calls, exotic `Pow` exponents, stack deeper than the register file)
//! fall back to the bytecode interpreter per cluster; the threaded
//! (slab) path additionally requires that no load targets a written
//! stream with a nonzero offset, since such reads could escape the
//! worker's slab. Fallbacks preserve results exactly — the interpreter
//! *is* the reference semantics.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use cranelift::{Asm, Cc, CompiledModule, JitContext, Reg, Ymm};
use mpix_dmp::regions::BoxNd;
use mpix_ir::iet::Node;
use mpix_symbolic::Context;

use crate::backend::{Backend, BytecodeKernel, ClusterKernel, Launch, Lowering};
use crate::bytecode::{CoeffSrc, CompiledCluster, Op};

/// Process-wide count of native modules actually encoded and finalized
/// (cache misses in [`JitKernel::module_for`]). Repeated runs of a
/// cached operator must leave this flat — the per-run-recompile
/// regression test watches it.
static JIT_MODULES_BUILT: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many native modules this process has encoded so far.
pub fn jit_modules_built() -> u64 {
    JIT_MODULES_BUILT.load(std::sync::atomic::Ordering::Relaxed)
}

/// Deepest expression stack the register allocator maps to `ymm0..=11`.
const MAX_JIT_STACK: usize = 12;
/// Scratch vector register (fused-op intermediate, coefficient splat).
const SCRATCH: Ymm = Ymm(12);
/// Broadcast 1.0, loaded in the prologue when `Pow` ops need it.
const ONE: Ymm = Ymm(15);

/// Arguments for one generated row call. Field order is baked into the
/// generated prologue — keep in sync with `emit_prologue`.
#[repr(C)]
struct RowArgs {
    streams: *const *mut f32,
    n: u64,
    bank: *const f32,
    temps: *mut f32,
}

/// What the structural analysis of a cluster decided.
struct JitPlan {
    /// Every op has a native lowering and the stack fits the registers.
    supported: bool,
    /// `Pow` ops present → prologue must load `ymm15 = 1.0`.
    needs_one: bool,
    /// No load targets a written stream at a nonzero offset, so slab
    /// pointers cannot be escaped by reads — the threaded path may JIT.
    mixed_safe: bool,
    /// Stream slots for the two hottest (most-referenced) streams,
    /// pinned to `r10`/`r11`.
    hot: [Option<usize>; 2],
}

impl JitPlan {
    fn analyze(cc: &CompiledCluster) -> JitPlan {
        let mut supported = cc.max_stack <= MAX_JIT_STACK;
        let mut needs_one = false;
        let mut mixed_safe = true;
        let mut refs = vec![0usize; cc.streams.len()];
        for op in &cc.ops {
            match *op {
                Op::Call(_) => supported = false,
                Op::Pow(n) => {
                    if !matches!(n, -2..=2) {
                        supported = false;
                    }
                    needs_one = true;
                }
                Op::Load { stream, off }
                | Op::LoadMul { stream, off, .. }
                | Op::LoadMulAdd { stream, off, .. } => {
                    refs[stream as usize] += 1;
                    if cc.written[stream as usize]
                        && cc.offsets[off as usize].1.iter().any(|&d| d != 0)
                    {
                        mixed_safe = false;
                    }
                }
                Op::Store { stream } => refs[stream as usize] += 1,
                _ => {}
            }
        }
        let mut order: Vec<usize> = (0..refs.len()).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(refs[s]));
        let hot = [order.first().copied(), order.get(1).copied()];
        JitPlan {
            supported,
            needs_one,
            mixed_safe,
            hot,
        }
    }
}

/// The JIT lowering: one per `create_lowering(Backend::Jit)` call.
pub struct JitLowering {
    ctx: JitContext,
}

impl JitLowering {
    pub fn new() -> JitLowering {
        JitLowering {
            ctx: JitContext::new(),
        }
    }
}

impl Default for JitLowering {
    fn default() -> Self {
        JitLowering::new()
    }
}

impl Lowering for JitLowering {
    fn backend(&self) -> Backend {
        Backend::Jit
    }

    fn emit(&self, iet: &Node, _ctx: &Context) -> String {
        let mut compiled = Vec::new();
        crate::executor::collect_compiled(iet, &mut compiled);
        let mut out = String::new();
        for (i, cc) in compiled.iter().enumerate() {
            let plan = JitPlan::analyze(cc);
            out.push_str(&format!(
                "; cluster {i}: {} ops, {} streams, max stack {} -> {}\n",
                cc.ops.len(),
                cc.streams.len(),
                cc.max_stack,
                if plan.supported {
                    "native avx (8-wide + scalar tail)"
                } else {
                    "bytecode fallback"
                },
            ));
        }
        out
    }

    fn compile(&self, cc: &CompiledCluster) -> Box<dyn ClusterKernel> {
        Box::new(JitKernel {
            ctx: self.ctx,
            plan: JitPlan::analyze(cc),
            modules: Mutex::new(HashMap::new()),
            fallback: BytecodeKernel,
        })
    }
}

/// A JIT-compiled cluster. Machine code is generated lazily per
/// geometry (the resolved linear offsets are the key — a simulated
/// multi-rank universe shares one kernel across ranks whose local
/// shapes may differ).
pub struct JitKernel {
    ctx: JitContext,
    plan: JitPlan,
    modules: Mutex<HashMap<Vec<isize>, Option<Arc<CompiledModule>>>>,
    fallback: BytecodeKernel,
}

impl JitKernel {
    /// Fetch or build the native module for this geometry. `None` when
    /// the cluster (or this geometry's displacements) cannot be JITted.
    fn module_for(&self, cc: &CompiledCluster, resolved: &[isize]) -> Option<Arc<CompiledModule>> {
        if !self.plan.supported {
            return None;
        }
        let mut cache = self.modules.lock().unwrap();
        if let Some(hit) = cache.get(resolved) {
            return hit.clone();
        }
        let built = codegen_row_fn(cc, resolved, &self.plan)
            .and_then(|asm| self.ctx.finalize(asm).ok().map(Arc::new));
        if built.is_some() {
            JIT_MODULES_BUILT.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        cache.insert(resolved.to_vec(), built.clone());
        built
    }
}

impl ClusterKernel for JitKernel {
    fn cached_modules(&self) -> usize {
        self.modules
            .lock()
            .unwrap()
            .values()
            .filter(|m| m.is_some())
            .count()
    }

    fn exec_box(&self, l: &Launch<'_>, bx: &BoxNd, buffers: &mut [&mut [f32]]) {
        match self.module_for(l.cc, l.resolved) {
            Some(module) => {
                let origins: Vec<*mut f32> = buffers.iter_mut().map(|b| b.as_mut_ptr()).collect();
                run_box(&module, l, bx, &origins);
            }
            None => self.fallback.exec_box(l, bx, buffers),
        }
    }

    fn exec_box_mixed(
        &self,
        l: &Launch<'_>,
        bx: &BoxNd,
        reads: &mut [Option<&[f32]>],
        writes: &mut [Option<(&mut [f32], usize)>],
    ) {
        if !self.plan.mixed_safe {
            return self.fallback.exec_box_mixed(l, bx, reads, writes);
        }
        match self.module_for(l.cc, l.resolved) {
            Some(module) => {
                // Per-stream origin pointers in full-array linear index
                // space: a write slab starting at linear offset `off`
                // rebases to `slab_ptr - off`. The generated code only
                // dereferences in-slab indices (stores hit the current
                // point; `mixed_safe` rules out escaping loads), and
                // read bindings are never written through.
                let origins: Vec<*mut f32> = (0..l.cc.streams.len())
                    .map(|s| match (&reads[s], &mut writes[s]) {
                        (Some(r), _) => r.as_ptr() as *mut f32,
                        (None, Some((w, off))) => w.as_mut_ptr().wrapping_sub(*off),
                        (None, None) => unreachable!("unbound stream"),
                    })
                    .collect();
                run_box(&module, l, bx, &origins);
            }
            None => self.fallback.exec_box_mixed(l, bx, reads, writes),
        }
    }
}

// ---------------------------------------------------------------------------
// Row driver
// ---------------------------------------------------------------------------

/// Drive the generated row function over every inner row of `bx`,
/// reproducing the interpreter's tiling and odometer exactly.
fn run_box(module: &CompiledModule, l: &Launch<'_>, bx: &BoxNd, origins: &[*mut f32]) {
    let nd = bx.len();
    if bx.iter().any(|r| r.is_empty()) {
        return;
    }
    let cc = l.cc;
    // Bank: [1.0, consts…, scalars…, params…] — offsets baked into the
    // generated vbroadcastss instructions.
    let mut bank = Vec::with_capacity(1 + cc.consts.len() + l.scalars.len() + l.params.len());
    bank.push(1.0f32);
    bank.extend_from_slice(&cc.consts);
    bank.extend_from_slice(l.scalars);
    bank.extend_from_slice(l.params);
    // 8-lane memory slots for temporaries (the scalar tail uses lane 0).
    let mut temps = vec![0.0f32; cc.num_temps * 8];

    let tiles: Vec<BoxNd> = if l.block > 0 && nd >= 2 {
        let mut v = Vec::new();
        let (r0, r1) = (bx[0].clone(), bx[1].clone());
        let mut x0 = r0.start;
        while x0 < r0.end {
            let x1 = (x0 + l.block).min(r0.end);
            let mut y0 = r1.start;
            while y0 < r1.end {
                let y1 = (y0 + l.block).min(r1.end);
                let mut t = bx.clone();
                t[0] = x0..x1;
                t[1] = y0..y1;
                v.push(t);
                y0 = y1;
            }
            x0 = x1;
        }
        v
    } else {
        vec![bx.clone()]
    };

    let nstreams = cc.streams.len();
    let mut streams = vec![std::ptr::null_mut::<f32>(); nstreams];
    for tile in tiles {
        if tile.iter().any(|r| r.is_empty()) {
            continue;
        }
        let inner = tile[nd - 1].clone();
        let n = inner.len() as u64;
        let mut outer: Vec<usize> = tile[..nd - 1].iter().map(|r| r.start).collect();
        loop {
            for s in 0..nstreams {
                let mut base = 0usize;
                for d in 0..nd - 1 {
                    base += (outer[d] + l.halos[s]) * l.strides[s][d];
                }
                base += (inner.start + l.halos[s]) * l.strides[s][nd - 1];
                streams[s] = origins[s].wrapping_add(base);
            }
            let mut args = RowArgs {
                streams: streams.as_ptr(),
                n,
                bank: bank.as_ptr(),
                temps: temps.as_mut_ptr(),
            };
            // SAFETY: the generated function implements the
            // `extern "C" fn(*mut u8)` row ABI; every address it forms
            // is `stream[s] + (i + resolved[off]) * 4` for `i < n`,
            // in-bounds by the same argument as the interpreter's
            // (verified by mpix-analysis' check_bounds pass, W = 8
            // covering the strip loads).
            unsafe { module.call(&mut args as *mut RowArgs as *mut u8) };
            if nd == 1 {
                break;
            }
            let mut d = nd - 1;
            let mut done = false;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                outer[d] += 1;
                if outer[d] < tile[d].end {
                    break;
                }
                outer[d] = tile[d].start;
            }
            if done {
                break;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Generate the row function for one `(cluster, resolved)` pair, or
/// `None` if a displacement overflows the disp32 addressing we emit.
fn codegen_row_fn(cc: &CompiledCluster, resolved: &[isize], plan: &JitPlan) -> Option<Asm> {
    // Every load's byte displacement must fit rel32 addressing.
    for &r in resolved {
        i32::try_from(r.checked_mul(4)?).ok()?;
    }
    let mut a = Asm::new();
    // Prologue — must match the `RowArgs` field order.
    a.mov_r_m(Reg::Rsi, Reg::Rdi, 0); // streams
    a.mov_r_m(Reg::Rdx, Reg::Rdi, 8); // n
    a.mov_r_m(Reg::R8, Reg::Rdi, 16); // bank
    a.mov_r_m(Reg::R9, Reg::Rdi, 24); // temps
    if let Some(s) = plan.hot[0] {
        a.mov_r_m(Reg::R10, Reg::Rsi, (s * 8) as i32);
    }
    if let Some(s) = plan.hot[1] {
        a.mov_r_m(Reg::R11, Reg::Rsi, (s * 8) as i32);
    }
    if plan.needs_one {
        a.vbroadcastss(ONE, Reg::R8, 0);
    }
    a.xor_r(Reg::Rcx);

    let vec_top = a.new_label();
    let tail = a.new_label();
    let done = a.new_label();

    a.bind(vec_top);
    a.lea(Reg::Rax, Reg::Rcx, 8);
    a.cmp_r_r(Reg::Rax, Reg::Rdx);
    a.jcc(Cc::A, tail);
    emit_body(&mut a, cc, resolved, plan, true);
    a.add_r_imm(Reg::Rcx, 8);
    a.jmp(vec_top);

    a.bind(tail);
    a.cmp_r_r(Reg::Rcx, Reg::Rdx);
    a.jcc(Cc::Ae, done);
    emit_body(&mut a, cc, resolved, plan, false);
    a.inc_r(Reg::Rcx);
    a.jmp(tail);

    a.bind(done);
    a.vzeroupper();
    a.ret();
    Some(a)
}

/// Bank byte offset of a coefficient source (`1.0` sits at slot 0).
fn bank_off(cc: &CompiledCluster, src: CoeffSrc) -> i32 {
    let slot = match src {
        CoeffSrc::Const(i) => 1 + i as usize,
        CoeffSrc::Scalar(i) => 1 + cc.consts.len() + i as usize,
        CoeffSrc::Param(i) => 1 + cc.consts.len() + cc.scalars.len() + i as usize,
    };
    (slot * 4) as i32
}

/// Emit the cluster body once, either 8-wide (`wide`) or scalar. The
/// two bodies use the same register plan; the scalar one swaps packed
/// ops for their `ss` forms and broadcasts for lane-0 loads, so the
/// tail computes exactly what the interpreter's scalar remainder does.
fn emit_body(a: &mut Asm, cc: &CompiledCluster, resolved: &[isize], plan: &JitPlan, wide: bool) {
    // Splat (or scalar-load) a bank value into `dst`.
    fn bank_load(a: &mut Asm, wide: bool, dst: Ymm, off: i32) {
        if wide {
            a.vbroadcastss(dst, Reg::R8, off);
        } else {
            a.vmovss_load(dst, Reg::R8, None, off);
        }
    }

    // Resolve the pointer register for a stream: pinned hot register or
    // a reload through the streams array into rax.
    let stream_ptr = |a: &mut Asm, s: usize| -> Reg {
        if plan.hot[0] == Some(s) {
            Reg::R10
        } else if plan.hot[1] == Some(s) {
            Reg::R11
        } else {
            a.mov_r_m(Reg::Rax, Reg::Rsi, (s * 8) as i32);
            Reg::Rax
        }
    };

    let disp = |off: u32| -> i32 { (resolved[off as usize] * 4) as i32 };

    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                bank_load(a, wide, Ymm(sp as u8), bank_off(cc, CoeffSrc::Const(i)));
                sp += 1;
            }
            Op::Scalar(i) => {
                bank_load(a, wide, Ymm(sp as u8), bank_off(cc, CoeffSrc::Scalar(i)));
                sp += 1;
            }
            Op::Param(i) => {
                bank_load(a, wide, Ymm(sp as u8), bank_off(cc, CoeffSrc::Param(i)));
                sp += 1;
            }
            Op::Temp(i) => {
                let off = (i as usize * 32) as i32;
                if wide {
                    a.vmovups_load(Ymm(sp as u8), Reg::R9, None, off);
                } else {
                    a.vmovss_load(Ymm(sp as u8), Reg::R9, None, off);
                }
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                let off = (i as usize * 32) as i32;
                if wide {
                    a.vmovups_store(Reg::R9, None, off, Ymm(sp as u8));
                } else {
                    a.vmovss_store(Reg::R9, None, off, Ymm(sp as u8));
                }
            }
            Op::Load { stream, off } => {
                let p = stream_ptr(a, stream as usize);
                if wide {
                    a.vmovups_load(Ymm(sp as u8), p, Some(Reg::Rcx), disp(off));
                } else {
                    a.vmovss_load(Ymm(sp as u8), p, Some(Reg::Rcx), disp(off));
                }
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let p = stream_ptr(a, stream as usize);
                if wide {
                    a.vmovups_store(p, Some(Reg::Rcx), 0, Ymm(sp as u8));
                } else {
                    a.vmovss_store(p, Some(Reg::Rcx), 0, Ymm(sp as u8));
                }
            }
            Op::Add => {
                sp -= 1;
                let (d, s) = (Ymm((sp - 1) as u8), Ymm(sp as u8));
                if wide {
                    a.vaddps_rr(d, d, s);
                } else {
                    a.vaddss_rr(d, d, s);
                }
            }
            Op::Mul => {
                sp -= 1;
                let (d, s) = (Ymm((sp - 1) as u8), Ymm(sp as u8));
                if wide {
                    a.vmulps_rr(d, d, s);
                } else {
                    a.vmulss_rr(d, d, s);
                }
            }
            Op::Pow(n) => {
                let t = Ymm((sp - 1) as u8);
                match n {
                    1 => {}
                    0 => a.vmovups_rr(t, ONE),
                    2 => {
                        if wide {
                            a.vmulps_rr(t, t, t);
                        } else {
                            a.vmulss_rr(t, t, t);
                        }
                    }
                    -1 => {
                        if wide {
                            a.vdivps_rr(t, ONE, t);
                        } else {
                            a.vdivss_rr(t, ONE, t);
                        }
                    }
                    -2 => {
                        if wide {
                            a.vmulps_rr(t, t, t);
                            a.vdivps_rr(t, ONE, t);
                        } else {
                            a.vmulss_rr(t, t, t);
                            a.vdivss_rr(t, ONE, t);
                        }
                    }
                    other => unreachable!("unsupported Pow({other}) reached codegen"),
                }
            }
            Op::Call(_) => unreachable!("Call reached codegen"),
            Op::MulAdd => {
                // top3 += top2 * top1, two roundings like the oracle.
                sp -= 2;
                let (d, x, y) = (Ymm((sp - 1) as u8), Ymm(sp as u8), Ymm((sp + 1) as u8));
                if wide {
                    a.vmulps_rr(SCRATCH, x, y);
                    a.vaddps_rr(d, d, SCRATCH);
                } else {
                    a.vmulss_rr(SCRATCH, x, y);
                    a.vaddss_rr(d, d, SCRATCH);
                }
            }
            Op::LoadMul { coeff, stream, off } => {
                bank_load(a, wide, SCRATCH, bank_off(cc, coeff));
                let p = stream_ptr(a, stream as usize);
                if wide {
                    a.vmulps_rm(Ymm(sp as u8), SCRATCH, p, Some(Reg::Rcx), disp(off));
                } else {
                    a.vmulss_rm(Ymm(sp as u8), SCRATCH, p, Some(Reg::Rcx), disp(off));
                }
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                bank_load(a, wide, SCRATCH, bank_off(cc, coeff));
                let p = stream_ptr(a, stream as usize);
                let d = Ymm((sp - 1) as u8);
                if wide {
                    a.vmulps_rm(SCRATCH, SCRATCH, p, Some(Reg::Rcx), disp(off));
                    a.vaddps_rr(d, d, SCRATCH);
                } else {
                    a.vmulss_rm(SCRATCH, SCRATCH, p, Some(Reg::Rcx), disp(off));
                    a.vaddss_rr(d, d, SCRATCH);
                }
            }
        }
    }
    debug_assert_eq!(sp, 0, "unbalanced stack in generated body");
}
