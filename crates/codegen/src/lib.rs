//! # mpix-codegen
//!
//! Code generation backends for the lowered IET:
//!
//! * [`cgen`] — a C emitter reproducing the style of the paper's
//!   generated code (Appendix B, Listing 11): precomputed parameters,
//!   the rotating-buffer time loop, OpenMP SIMD pragmas on the vector
//!   dimension, and halo-exchange call sites. Used for inspection and
//!   golden tests; the paper's JIT C compilation step is replaced by the
//!   executable backend below (see DESIGN.md).
//! * [`bytecode`] — compiles cluster statements into a compact
//!   register/stack program with precomputed array-offset tables — the
//!   portable default backend and the semantic oracle the other
//!   backends are verified against.
//! * [`jit`] — lowers the same compiled clusters to native x86-64 AVX
//!   machine code at runtime (the paper's JIT compilation step made
//!   real), bitwise-equivalent to the bytecode engine by construction.
//! * [`executor`] — runs the lowered IET on a rank: rotating time
//!   buffers, loop-blocked (and optionally multi-threaded — the "X" in
//!   MPI-X) space loops over DOMAIN/CORE/REMAINDER regions, and the
//!   three halo-exchange patterns from `mpix-dmp`.
//! * [`backend`] — the seam tying them together: the [`Lowering`]
//!   trait, the [`ClusterKernel`] launch surface, and the
//!   [`create_lowering`] factory that registers the three backends as
//!   selectable peers.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod backend;
pub mod bytecode;
pub mod cgen;
pub mod executor;
pub mod jit;

pub use backend::{
    available_backends, create_lowering, Backend, BackendError, ClusterKernel, Launch, Lowering,
    BACKEND_NAMES,
};
pub use bytecode::{compile_cluster, fold_constants, fuse_cluster, CompiledCluster, Op};
pub use cgen::emit_c;
pub use executor::{exec_compiles, halo_tag_base, ExecOptions, FieldState, OperatorExec, SparseOp};
pub use jit::jit_modules_built;
