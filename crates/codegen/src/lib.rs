//! # mpix-codegen
//!
//! Code generation backends for the lowered IET:
//!
//! * [`cgen`] — a C emitter reproducing the style of the paper's
//!   generated code (Appendix B, Listing 11): precomputed parameters,
//!   the rotating-buffer time loop, OpenMP SIMD pragmas on the vector
//!   dimension, and halo-exchange call sites. Used for inspection and
//!   golden tests; the paper's JIT C compilation step is replaced by the
//!   executable backend below (see DESIGN.md).
//! * [`bytecode`] — compiles cluster statements into a compact
//!   register/stack program with precomputed array-offset tables — the
//!   moral equivalent of the JIT step.
//! * [`executor`] — runs the lowered IET on a rank: rotating time
//!   buffers, loop-blocked (and optionally multi-threaded — the "X" in
//!   MPI-X) space loops over DOMAIN/CORE/REMAINDER regions, and the
//!   three halo-exchange patterns from `mpix-dmp`.

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod bytecode;
pub mod cgen;
pub mod executor;

pub use bytecode::{compile_cluster, fold_constants, fuse_cluster, CompiledCluster, Op};
pub use cgen::emit_c;
pub use executor::{halo_tag_base, ExecOptions, FieldState, OperatorExec, SparseOp};
