//! The executable backend: runs a lowered IET on one rank.
//!
//! This module plays the role of the paper's JIT-compiled C code. It
//! walks the mode-lowered IET (see `mpix_ir::passes::lower_halo_spots`),
//! maintaining rotating time buffers, performing halo exchanges through
//! the `mpix-dmp` patterns, and executing each space loop's compiled
//! bytecode over the DOMAIN / CORE / REMAINDER boxes with loop blocking
//! and optional shared-memory threading (the "X" in MPI-X).

use std::collections::HashMap;
use std::time::Instant;

use mpix_comm::CartComm;
use mpix_dmp::regions::{box_len, region_box, remainder_boxes, BoxNd, Region};
use mpix_dmp::{DistArray, FullExchange, HaloExchange, HaloMode, SparsePoints};
use mpix_ir::iet::{Node, RegionKind};
use mpix_ir::iexpr::IExpr;
use mpix_ir::passes::MpiMode;
use mpix_san::San;
use mpix_symbolic::{Context, FieldId};
use mpix_trace::{Section, TraceLevel, TraceReport, Tracer};

use crate::backend::{create_lowering, Backend, BackendError, ClusterKernel, Launch};
use crate::bytecode::{compile_cluster, fuse_cluster, powi, CompiledCluster, Op};

/// Strip widths the lane-vectorized engine is monomorphized for.
pub const SUPPORTED_VECTOR_WIDTHS: [usize; 3] = [8, 16, 32];

/// Process-wide count of full operator lowerings
/// ([`OperatorExec::with_backend`] calls). The serve smoke harness
/// asserts this equals the number of *unique* operator cache keys — the
/// compile-once contract made countable.
static EXEC_COMPILES: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);

/// How many times this process has lowered an operator into kernels.
pub fn exec_compiles() -> u64 {
    EXEC_COMPILES.load(std::sync::atomic::Ordering::Relaxed)
}

/// Validate a `vector_width` knob: `0`/`1` select the scalar
/// interpreter, the widths in [`SUPPORTED_VECTOR_WIDTHS`] the strip
/// engine. Anything else panics — silently degrading a job script's
/// requested width to scalar would be worse.
pub fn validate_vector_width(vw: usize) -> usize {
    assert!(
        vw <= 1 || SUPPORTED_VECTOR_WIDTHS.contains(&vw),
        "vector_width={vw}: expected 0/1 (scalar) or one of {SUPPORTED_VECTOR_WIDTHS:?}"
    );
    vw
}

/// Per-field runtime state: one [`DistArray`] per time buffer.
pub struct FieldState {
    pub field: FieldId,
    pub buffers: Vec<DistArray>,
}

impl FieldState {
    /// Allocate zeroed buffers for a field.
    pub fn new(
        field: FieldId,
        nbuffers: usize,
        decomp: std::sync::Arc<mpix_dmp::Decomposition>,
        coords: &[usize],
        halo: usize,
    ) -> FieldState {
        FieldState {
            field,
            buffers: (0..nbuffers)
                .map(|_| DistArray::new(std::sync::Arc::clone(&decomp), coords, halo))
                .collect(),
        }
    }

    /// Buffer index holding time level `t + toff`.
    pub fn buffer_index(&self, t: i64, toff: i32) -> usize {
        let nb = self.buffers.len() as i64;
        ((t + toff as i64) % nb + nb) as usize % nb as usize
    }
}

/// Sparse operations appended to every time step (sources/receivers).
pub enum SparseOp {
    /// Add `signal[t] * weights` into `field`'s `t + time_offset` buffer
    /// around each point (multilinear injection).
    Inject {
        field: FieldId,
        time_offset: i32,
        points: SparsePoints,
        /// One amplitude per time step, shared by all points.
        signal: Vec<f32>,
        /// Per-point scale factor (e.g. `dt²/m` at the source).
        scale: Vec<f32>,
    },
    /// Like `Inject`, but with an independent time trace per point
    /// (`traces[p][t]`) — the adjoint-source pattern of RTM/FWI, where
    /// every receiver injects its own residual trace.
    InjectTraces {
        field: FieldId,
        time_offset: i32,
        points: SparsePoints,
        traces: Vec<Vec<f32>>,
        scale: Vec<f32>,
    },
    /// Sample `field` at each point into `samples[t][p]` (NaN on ranks
    /// that do not own the point).
    Sample {
        field: FieldId,
        time_offset: i32,
        points: SparsePoints,
        samples: Vec<Vec<f32>>,
    },
}

/// Execution options — the runtime knobs of the paper's evaluation.
#[derive(Clone, Debug)]
pub struct ExecOptions {
    pub mode: HaloMode,
    /// Loop-blocking tile edge for the two outermost space dims (0 = off).
    pub block: usize,
    /// Shared-memory worker threads per rank (the OpenMP analogue).
    pub threads: usize,
    /// Lane count of the strip-vectorized interpreter (the runtime
    /// analogue of the generated C's `#pragma omp simd`): each compiled
    /// op executes over `vector_width` contiguous innermost-loop points
    /// at once. `0`/`1` = scalar; supported widths are
    /// [`SUPPORTED_VECTOR_WIDTHS`]. Remainder points (inner extent not
    /// a multiple of the width) fall back to the scalar path, bitwise
    /// identically.
    pub vector_width: usize,
    /// Instrumentation level; at [`TraceLevel::Off`] (the default) the
    /// hooks cost one branch per span.
    pub trace: TraceLevel,
    /// Injected runtime bug for the sanitizer's mutant corpus
    /// (`tests/sanitizer.rs`). Shipped paths never set this.
    #[doc(hidden)]
    pub fault: Option<Fault>,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            mode: HaloMode::Basic,
            block: 0,
            threads: 1,
            vector_width: 0,
            trace: TraceLevel::Off,
            fault: None,
        }
    }
}

/// Fault injection for the sanitizer's runtime-mutant corpus: each
/// variant plants one concrete bug class into an otherwise-correct
/// execution, so `mpix-san` can be tested against real executor runs
/// rather than synthetic event streams. Hidden because it exists only
/// for the test suite; nothing in the shipped pipeline sets it.
#[doc(hidden)]
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Skip every halo exchange after the first timestep — the runtime
    /// face of a wrongly dropped/hoisted exchange decision.
    DropExchange,
    /// Skip the `HaloWait` drain after the first timestep (full mode):
    /// remainder regions then read halo boxes whose receives never
    /// completed.
    SkipHaloWait,
    /// Declare overlapping per-worker write slabs to the sanitizer (the
    /// partition a buggy chunking computation would produce — safe Rust
    /// makes the *actual* overlapping writes impossible here, so the
    /// declaration is what carries the bug).
    OverlapSlabs,
    /// Declare per-worker write slabs with a coverage gap.
    GapSlabs,
}

/// Map the compiler's mode enum onto the runtime's.
pub fn mpi_mode_of(mode: HaloMode) -> MpiMode {
    match mode {
        HaloMode::Basic => MpiMode::Basic,
        HaloMode::Diagonal => MpiMode::Diagonal,
        HaloMode::Full => MpiMode::Full,
    }
}

/// Timing breakdown of one `run` (per rank).
#[derive(Clone, Debug, Default)]
pub struct ExecStats {
    pub compute_secs: f64,
    pub halo_secs: f64,
    pub points_updated: u64,
    /// Per-section trace, present when the run's `trace` level was not
    /// [`TraceLevel::Off`].
    pub trace: Option<TraceReport>,
}

impl ExecStats {
    /// Total wall time attributed to this rank's kernel work.
    pub fn total_secs(&self) -> f64 {
        self.compute_secs + self.halo_secs
    }
    /// Local throughput in GPts/s (points this rank updated per second).
    pub fn gpts(&self) -> f64 {
        if self.total_secs() == 0.0 {
            0.0
        } else {
            self.points_updated as f64 / self.total_secs() / 1e9
        }
    }
    /// Fraction of time spent in halo exchanges.
    pub fn halo_fraction(&self) -> f64 {
        if self.total_secs() == 0.0 {
            0.0
        } else {
            self.halo_secs / self.total_secs()
        }
    }
}

/// A compiled, runnable operator (one per `Operator::compile`).
pub struct OperatorExec {
    iet: Node,
    /// Parameter slot -> defining expression (grid-invariant).
    param_defs: Vec<(usize, IExpr)>,
    /// Compiled bodies, keyed by space-loop order of appearance.
    compiled: Vec<CompiledCluster>,
    /// One executable kernel per compiled body, produced by the selected
    /// backend's [`crate::backend::Lowering`].
    kernels: Vec<Box<dyn ClusterKernel>>,
    /// Which backend compiled the kernels.
    backend: Backend,
    /// Number of time buffers per field id.
    nbuffers: Vec<usize>,
    /// Allocated halo per field id.
    halos: Vec<usize>,
}

impl OperatorExec {
    /// Precompile every space loop in the IET with the default
    /// (bytecode) backend.
    pub fn new(iet: Node, ctx: &Context) -> OperatorExec {
        Self::with_backend(iet, ctx, Backend::Bytecode)
            .expect("bytecode backend is always available")
    }

    /// Precompile every space loop in the IET through the chosen
    /// backend's lowering.
    pub fn with_backend(
        iet: Node,
        ctx: &Context,
        backend: Backend,
    ) -> Result<OperatorExec, BackendError> {
        let lowering = create_lowering(backend)?;
        EXEC_COMPILES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut compiled = Vec::new();
        collect_compiled(&iet, &mut compiled);
        let kernels = compiled.iter().map(|cc| lowering.compile(cc)).collect();
        let param_defs = match &iet {
            Node::Callable { params, .. } => params.clone(),
            _ => Vec::new(),
        };
        let nbuffers = ctx.fields().iter().map(|f| f.time_buffers()).collect();
        let halos = ctx.fields().iter().map(|f| f.halo() as usize).collect();
        Ok(OperatorExec {
            iet,
            param_defs,
            compiled,
            kernels,
            backend,
            nbuffers,
            halos,
        })
    }

    pub fn iet(&self) -> &Node {
        &self.iet
    }
    /// The backend whose kernels this executable runs.
    pub fn backend(&self) -> Backend {
        self.backend
    }
    pub fn compiled_clusters(&self) -> &[CompiledCluster] {
        &self.compiled
    }
    pub fn nbuffers(&self) -> &[usize] {
        &self.nbuffers
    }
    pub fn halos(&self) -> &[usize] {
        &self.halos
    }

    /// Total natively-compiled per-geometry modules held across this
    /// executable's kernels (0 for interpreter backends). Stable across
    /// repeated runs of the same geometry — the compile-once contract.
    pub fn cached_native_modules(&self) -> usize {
        self.kernels.iter().map(|k| k.cached_modules()).sum()
    }

    /// Run the operator for time steps `t0 .. t0 + nt`.
    #[allow(clippy::too_many_arguments)]
    pub fn run(
        &self,
        cart: &CartComm,
        fields: &mut [FieldState],
        scalars: &HashMap<String, f32>,
        sparse: &mut [SparseOp],
        t0: i64,
        nt: i64,
        opts: &ExecOptions,
    ) -> ExecStats {
        // Evaluate precomputed parameters (r0 = 1/dt, ...).
        let max_param = self
            .param_defs
            .iter()
            .map(|(i, _)| i + 1)
            .max()
            .unwrap_or(0);
        let mut params = vec![0.0f32; max_param];
        for (i, def) in &self.param_defs {
            params[*i] = eval_invariant(def, scalars, &params);
        }
        // At Full level the communicator logs every message so the report
        // can break halo traffic down per peer/tag.
        if opts.trace == TraceLevel::Full {
            cart.comm().set_msg_log(true);
        }
        let comm_before = if opts.trace.enabled() {
            Some(cart.comm().stats())
        } else {
            None
        };
        let mut st = ExecState {
            cart,
            fields,
            scalars,
            params,
            opts: opts.clone(),
            t: t0,
            loop_idx: 0,
            pending: HashMap::new(),
            full_ex: HashMap::new(),
            exchangers: HashMap::new(),
            stats: ExecStats::default(),
            tracer: Tracer::new(opts.trace),
        };
        let body = match &self.iet {
            Node::Callable { body, .. } => body,
            other => std::slice::from_ref(other),
        };
        for n in body {
            self.exec_node(n, &mut st, sparse, t0, nt);
        }
        let ExecState {
            mut stats, tracer, ..
        } = st;
        if opts.trace.enabled() {
            let messages = if opts.trace == TraceLevel::Full {
                cart.comm().set_msg_log(false);
                cart.comm().take_msg_log()
            } else {
                Vec::new()
            };
            // Allocation/copy deltas over this run, so the report can
            // verify the persistent-plan zero-allocation contract.
            let before = comm_before.unwrap();
            let after = cart.comm().stats();
            stats.trace = Some(
                tracer
                    .finish(cart.comm().rank(), messages)
                    .with_comm_counters(
                        after.bufs_allocated - before.bufs_allocated,
                        after.bytes_copied - before.bytes_copied,
                    ),
            );
        }
        stats
    }

    fn exec_node(
        &self,
        n: &Node,
        st: &mut ExecState<'_>,
        sparse: &mut [SparseOp],
        t0: i64,
        nt: i64,
    ) {
        match n {
            Node::TimeLoop { body } => {
                let first_loop = self.loops_before_time_loop();
                for t in t0..t0 + nt {
                    st.t = t;
                    st.loop_idx = first_loop;
                    st.tracer.begin_step(t);
                    for c in body {
                        self.exec_node(c, st, sparse, t0, nt);
                    }
                    self.exec_sparse(st, sparse);
                }
            }
            Node::HaloUpdate {
                exchanges,
                is_async,
            } => {
                // Injected mutant (tests only): drop every exchange after
                // the first step — the runtime face of a bad drop/hoist
                // decision, which `mpix-san`'s stale-halo detector owns.
                if st.opts.fault == Some(Fault::DropExchange) && st.t > t0 {
                    return;
                }
                let start = Instant::now();
                if *is_async {
                    for x in exchanges {
                        st.begin_async(x);
                    }
                } else {
                    for x in exchanges {
                        st.sync_exchange(x);
                    }
                }
                st.stats.halo_secs += start.elapsed().as_secs_f64();
            }
            Node::HaloWait { exchanges } => {
                // Injected mutant (tests only): skip the drain, so
                // remainder regions read halo boxes whose receives never
                // completed.
                if st.opts.fault == Some(Fault::SkipHaloWait) && st.t > t0 {
                    return;
                }
                let start = Instant::now();
                for x in exchanges {
                    st.finish_async(x);
                }
                st.stats.halo_secs += start.elapsed().as_secs_f64();
            }
            Node::SpaceLoop {
                cluster, region, ..
            } => {
                let loop_idx = st.loop_idx;
                st.loop_idx += 1;
                let start = Instant::now();
                let radius = cluster.max_radius(cluster.ndim());
                let max_r = radius.iter().copied().max().unwrap_or(0);
                self.exec_space_loop(loop_idx, *region, max_r, st);
                let elapsed = start.elapsed().as_secs_f64();
                st.stats.compute_secs += elapsed;
                let section = match region {
                    RegionKind::Remainder => Section::Remainder,
                    _ => Section::Compute,
                };
                st.tracer.add_secs(section, elapsed);
            }
            Node::Section { body, .. } | Node::HaloSpot { body, .. } => {
                for c in body {
                    self.exec_node(c, st, sparse, t0, nt);
                }
            }
            Node::Callable { body, .. } => {
                for c in body {
                    self.exec_node(c, st, sparse, t0, nt);
                }
            }
        }
    }

    /// Number of SpaceLoops that appear before the time loop (hoisted
    /// section) — used to reset the per-iteration loop counter.
    fn loops_before_time_loop(&self) -> usize {
        fn count_until_time(nodes: &[Node], n: &mut usize) -> bool {
            for node in nodes {
                match node {
                    Node::TimeLoop { .. } => return true,
                    Node::SpaceLoop { .. } => *n += 1,
                    Node::Callable { body, .. }
                    | Node::Section { body, .. }
                    | Node::HaloSpot { body, .. }
                        if count_until_time(body, n) =>
                    {
                        return true;
                    }
                    _ => {}
                }
            }
            false
        }
        let mut n = 0;
        count_until_time(std::slice::from_ref(&self.iet), &mut n);
        n
    }

    fn exec_sparse(&self, st: &mut ExecState<'_>, sparse: &mut [SparseOp]) {
        let step = st.t;
        for (si, op) in sparse.iter_mut().enumerate() {
            let section = match op {
                SparseOp::Inject { .. } | SparseOp::InjectTraces { .. } => Section::Source,
                SparseOp::Sample { .. } => Section::Receiver,
            };
            let sp = st.tracer.begin(section);
            match op {
                SparseOp::Inject {
                    field,
                    time_offset,
                    points,
                    signal,
                    scale,
                } => {
                    let idx = (step as usize).min(signal.len().saturating_sub(1));
                    let amp = signal.get(idx).copied().unwrap_or(0.0);
                    let fs = &mut st.fields[field.0 as usize];
                    let b = fs.buffer_index(step, *time_offset);
                    let arr = &mut fs.buffers[b];
                    let coords = arr.coords().to_vec();
                    let decomp = arr.decomp().clone();
                    for p in 0..points.len() {
                        if points.is_owner(p, &decomp, &coords) {
                            let s = scale.get(p).copied().unwrap_or(1.0);
                            points.inject(p, (amp * s) as f64, arr);
                        }
                    }
                }
                SparseOp::InjectTraces {
                    field,
                    time_offset,
                    points,
                    traces,
                    scale,
                } => {
                    let fs = &mut st.fields[field.0 as usize];
                    let b = fs.buffer_index(step, *time_offset);
                    let arr = &mut fs.buffers[b];
                    let coords = arr.coords().to_vec();
                    let decomp = arr.decomp().clone();
                    for p in 0..points.len() {
                        if points.is_owner(p, &decomp, &coords) {
                            let idx = (step as usize).min(traces[p].len().saturating_sub(1));
                            let amp = traces[p].get(idx).copied().unwrap_or(0.0);
                            let s = scale.get(p).copied().unwrap_or(1.0);
                            points.inject(p, (amp * s) as f64, arr);
                        }
                    }
                }
                SparseOp::Sample {
                    field,
                    time_offset,
                    points,
                    samples,
                } => {
                    let fs = &st.fields[field.0 as usize];
                    let b = fs.buffer_index(step, *time_offset);
                    let arr = &fs.buffers[b];
                    let mut row = vec![f32::NAN; points.len()];
                    for p in 0..points.len() {
                        let tag =
                            mpix_comm::comm::RESERVED_TAG_BASE / 2 + (si * points.len() + p) as u32;
                        if let Some(v) = points.interpolate(p, arr, st.cart, tag) {
                            row[p] = v as f32;
                        }
                    }
                    samples.push(row);
                }
            }
            st.tracer.end(sp);
        }
    }

    /// Execute one compiled cluster over the chosen region through the
    /// backend-selected kernel.
    fn exec_space_loop(
        &self,
        loop_idx: usize,
        region: RegionKind,
        radius: usize,
        st: &mut ExecState<'_>,
    ) {
        let cc = &self.compiled[loop_idx];
        let kernel = &*self.kernels[loop_idx];
        // Local (owned) shape — identical across fields.
        let some_field = cc.streams[0].0;
        let local = st.fields[some_field.0 as usize].buffers[0]
            .local_shape()
            .to_vec();
        let boxes: Vec<BoxNd> = match region {
            RegionKind::Domain => vec![region_box(Region::Domain, &local, 0, 0)],
            RegionKind::Core => vec![region_box(Region::Core, &local, 0, radius)],
            RegionKind::Remainder => remainder_boxes(&local, 0, radius),
        };

        // Resolve streams: buffer selection and per-stream geometry.
        let nstreams = cc.streams.len();
        let mut strides: Vec<Vec<usize>> = Vec::with_capacity(nstreams);
        let mut halos: Vec<usize> = Vec::with_capacity(nstreams);
        let mut keys: Vec<(usize, usize)> = Vec::with_capacity(nstreams);
        for &(f, toff) in &cc.streams {
            let fs = &st.fields[f.0 as usize];
            let b = fs.buffer_index(st.t, toff);
            strides.push(fs.buffers[b].strides().to_vec());
            halos.push(fs.buffers[b].halo());
            keys.push((f.0 as usize, b));
        }
        // No two streams may alias the same buffer (would make the moved
        // buffer list ambiguous).
        for i in 0..nstreams {
            for j in i + 1..nstreams {
                assert_ne!(
                    keys[i], keys[j],
                    "two streams alias one buffer: check time offsets vs buffer count"
                );
            }
        }
        // Shadow-state hooks: written streams dirty their owned region;
        // read streams with a nonzero stencil radius touch halo points in
        // every region except the core (which is halo-free by
        // construction), so those reads must observe a fresh exchange.
        if let Some(san) = st.cart.comm().san() {
            let rank = st.cart.rank();
            for (slot, key) in keys.iter().enumerate() {
                let arr_id = st.fields[key.0].buffers[key.1].shadow_id();
                if cc.written[slot] {
                    san.owned_write(rank, arr_id);
                } else {
                    let slot_radius = cc
                        .offsets
                        .iter()
                        .filter(|(s, _)| *s as usize == slot)
                        .flat_map(|(_, deltas)| deltas.iter().map(|d| d.unsigned_abs() as usize))
                        .max()
                        .unwrap_or(0);
                    if slot_radius > 0 && region != RegionKind::Core {
                        san.halo_read(rank, arr_id, st.t);
                    }
                }
            }
        }

        // Resolve offsets to linear deltas.
        let resolved: Vec<isize> = cc
            .offsets
            .iter()
            .map(|(slot, deltas)| {
                deltas
                    .iter()
                    .zip(&strides[*slot as usize])
                    .map(|(&d, &s)| d as isize * s as isize)
                    .sum()
            })
            .collect();
        // Scalar values.
        let scalar_vals: Vec<f32> = cc
            .scalars
            .iter()
            .map(|name| {
                *st.scalars
                    .get(name)
                    .unwrap_or_else(|| panic!("missing runtime scalar {name:?}"))
            })
            .collect();

        // Move buffers out (no aliasing per the check above).
        let mut moved: Vec<Vec<f32>> = keys
            .iter()
            .map(|&(f, b)| std::mem::take(st.fields[f].buffers[b].raw_vec_mut()))
            .collect();

        let nthreads = st.opts.threads.max(1);
        let vw = validate_vector_width(st.opts.vector_width);
        let launch = Launch {
            cc,
            strides: &strides,
            halos: &halos,
            resolved: &resolved,
            scalars: &scalar_vals,
            params: &st.params,
            block: st.opts.block,
            vw,
        };
        let mut points = 0u64;
        for b in &boxes {
            if b.iter().any(|r| r.is_empty()) {
                continue;
            }
            points += box_len(b) as u64;
            if nthreads <= 1 || b[0].len() < 2 * nthreads {
                let mut slices: Vec<&mut [f32]> =
                    moved.iter_mut().map(|v| v.as_mut_slice()).collect();
                kernel.exec_box(&launch, b, &mut slices);
            } else {
                exec_box_threaded(
                    kernel,
                    &launch,
                    b,
                    &mut moved,
                    nthreads,
                    st.cart.comm().san().map(|a| a.as_ref()),
                    st.cart.rank(),
                    st.opts.fault,
                );
            }
        }
        st.stats.points_updated += points;

        // Move buffers back.
        for (k, v) in keys.iter().zip(moved) {
            *st.fields[k.0].buffers[k.1].raw_vec_mut() = v;
        }
    }
}

pub(crate) fn collect_compiled(n: &Node, out: &mut Vec<CompiledCluster>) {
    match n {
        // Every compiled body runs through the superinstruction fusion
        // pass — fusion is bitwise-neutral, so there is no scalar/fused
        // configuration axis to test against.
        Node::SpaceLoop { cluster, .. } => out.push(fuse_cluster(compile_cluster(cluster))),
        Node::Callable { body, .. }
        | Node::TimeLoop { body }
        | Node::HaloSpot { body, .. }
        | Node::Section { body, .. } => body.iter().for_each(|c| collect_compiled(c, out)),
        _ => {}
    }
}

/// Evaluate a grid-invariant expression (parameter definitions).
pub fn eval_invariant(e: &IExpr, scalars: &HashMap<String, f32>, params: &[f32]) -> f32 {
    match e {
        IExpr::Const(c) => *c as f32,
        IExpr::Sym(s) => *scalars
            .get(s)
            .unwrap_or_else(|| panic!("missing runtime scalar {s:?}")),
        IExpr::Param(i) => params[*i],
        IExpr::Add(xs) => xs.iter().map(|x| eval_invariant(x, scalars, params)).sum(),
        IExpr::Mul(xs) => xs
            .iter()
            .map(|x| eval_invariant(x, scalars, params))
            .product(),
        IExpr::Pow(b, n) => powi(eval_invariant(b, scalars, params), *n),
        IExpr::Func(fx, b) => fx.apply_f32(eval_invariant(b, scalars, params)),
        IExpr::Load(_) | IExpr::Temp(_) => panic!("not grid-invariant"),
    }
}

// ---------------------------------------------------------------------------
// Inner loops
// ---------------------------------------------------------------------------

/// Execute the compiled body over every point of `bx` (owned-local
/// coordinates). Applies loop blocking on the outermost two dimensions
/// when `block > 0`. This is the bytecode backend's whole-buffer entry
/// point (`backend::BytecodeKernel` delegates here).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_box(
    cc: &CompiledCluster,
    bx: &BoxNd,
    buffers: &mut [&mut [f32]],
    strides: &[Vec<usize>],
    halos: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    block: usize,
    vw: usize,
) {
    let nd = bx.len();
    if block > 0 && nd >= 2 {
        // Tile the two outermost dims (cache blocking; the innermost
        // stays contiguous for vectorization, as in the generated C).
        let (r0, r1) = (bx[0].clone(), bx[1].clone());
        let mut x0 = r0.start;
        while x0 < r0.end {
            let x1 = (x0 + block).min(r0.end);
            let mut y0 = r1.start;
            while y0 < r1.end {
                let y1 = (y0 + block).min(r1.end);
                let mut tile = bx.clone();
                tile[0] = x0..x1;
                tile[1] = y0..y1;
                exec_box_flat(
                    cc, &tile, buffers, strides, halos, resolved, scalars, params, vw,
                );
                y0 = y1;
            }
            x0 = x1;
        }
    } else {
        exec_box_flat(
            cc, bx, buffers, strides, halos, resolved, scalars, params, vw,
        );
    }
}

/// Unblocked execution: iterate outer dims with an odometer, run the
/// contiguous innermost dimension with incrementing bases — in strips of
/// `vw` lanes when a vector width is selected, point-by-point otherwise.
#[allow(clippy::too_many_arguments)]
fn exec_box_flat(
    cc: &CompiledCluster,
    bx: &BoxNd,
    buffers: &mut [&mut [f32]],
    strides: &[Vec<usize>],
    halos: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    vw: usize,
) {
    if vw > 1 {
        let mut acc = FlatAccess(buffers);
        exec_strips_box(
            vw, cc, bx, &mut acc, strides, halos, resolved, scalars, params,
        );
        return;
    }
    let nd = bx.len();
    let nstreams = cc.streams.len();
    let inner = bx[nd - 1].clone();
    if inner.is_empty() {
        return;
    }
    let mut outer: Vec<usize> = bx[..nd - 1].iter().map(|r| r.start).collect();
    if bx[..nd - 1].iter().any(|r| r.is_empty()) {
        return;
    }
    let mut bases = vec![0usize; nstreams];
    let mut temps = vec![0.0f32; cc.num_temps];
    let mut stack = vec![0.0f32; cc.max_stack.max(4)];
    loop {
        // Base linear index per stream at the inner-loop start.
        for s in 0..nstreams {
            let mut base = 0usize;
            for d in 0..nd - 1 {
                base += (outer[d] + halos[s]) * strides[s][d];
            }
            base += (inner.start + halos[s]) * strides[s][nd - 1];
            bases[s] = base;
        }
        for _ in inner.clone() {
            eval_point_fast(
                cc, buffers, &bases, resolved, scalars, params, &mut temps, &mut stack,
            );
            for b in bases.iter_mut() {
                *b += 1; // innermost stride is 1 for every stream
            }
        }
        // Odometer over outer dims.
        if nd == 1 {
            return;
        }
        let mut d = nd - 1;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            outer[d] += 1;
            if outer[d] < bx[d].end {
                break;
            }
            outer[d] = bx[d].start;
        }
    }
}

/// Threaded execution: split the outermost dimension across workers. The
/// written buffers are *not* split (each worker re-binds the full
/// buffers), so this function moves buffers into thread-disjoint slabs:
/// it partitions dimension 0, and workers only touch padded rows inside
/// their slab for written streams. Reads may cross slabs, so read-only
/// streams are shared immutably; written streams are sliced by the
/// worker's padded row range.
#[allow(clippy::too_many_arguments)]
fn exec_box_threaded(
    kernel: &dyn ClusterKernel,
    l: &Launch<'_>,
    bx: &BoxNd,
    moved: &mut [Vec<f32>],
    nthreads: usize,
    san: Option<&San>,
    rank: usize,
    fault: Option<Fault>,
) {
    let cc = l.cc;
    let (strides, halos) = (l.strides, l.halos);
    let nd = bx.len();
    let r0 = bx[0].clone();
    let chunk = r0.len().div_ceil(nthreads);
    let nstreams_total = moved.len();

    // Partition written buffers into per-worker slabs along dim 0;
    // read-only buffers are shared.
    enum Binding<'a> {
        Shared(&'a [f32]),
        // One slab per worker: (slice, linear offset of slice start).
        Slabs(Vec<(&'a mut [f32], usize)>),
    }
    let mut bindings: Vec<Binding<'_>> = Vec::with_capacity(moved.len());
    for (s, buf) in moved.iter_mut().enumerate() {
        if cc.written[s] {
            let mut slabs = Vec::with_capacity(nthreads);
            let mut rest: &mut [f32] = buf.as_mut_slice();
            let mut consumed = 0usize;
            let mut x = r0.start;
            for _ in 0..nthreads {
                let xe = (x + chunk).min(r0.end);
                // Worker covers padded rows [x + halo, xe + halo): linear
                // [ (x+halo)*stride0 , (xe+halo)*stride0 ).
                let lo = (x + halos[s]) * strides[s][0];
                let hi = (xe + halos[s]) * strides[s][0];
                let (_, tail) = rest.split_at_mut(lo - consumed);
                let (slab, tail2) = tail.split_at_mut(hi - lo);
                slabs.push((slab, lo));
                rest = tail2;
                consumed = hi;
                x = xe;
                if x >= r0.end {
                    break;
                }
            }
            bindings.push(Binding::Slabs(slabs));
        } else {
            bindings.push(Binding::Shared(buf.as_slice()));
        }
    }
    // Distribute slabs to workers.
    struct WorkerCtx<'a> {
        reads: Vec<Option<&'a [f32]>>,
        writes: Vec<Option<(&'a mut [f32], usize)>>,
        range0: std::ops::Range<usize>,
    }
    let mut workers: Vec<WorkerCtx<'_>> = Vec::new();
    {
        let mut x = r0.start;
        let mut w = 0usize;
        while x < r0.end {
            let xe = (x + chunk).min(r0.end);
            workers.push(WorkerCtx {
                reads: vec![None; nstreams_total],
                writes: (0..nstreams_total).map(|_| None).collect(),
                range0: x..xe,
            });
            x = xe;
            w += 1;
        }
        let _ = w;
    }
    for (s, b) in bindings.into_iter().enumerate() {
        match b {
            Binding::Shared(sl) => {
                for wk in workers.iter_mut() {
                    wk.reads[s] = Some(sl);
                }
            }
            Binding::Slabs(slabs) => {
                for (wk, slab) in workers.iter_mut().zip(slabs) {
                    wk.writes[s] = Some(slab);
                }
            }
        }
    }

    // Declare the dim-0 slab partition to the sanitizer before spawning:
    // overlapping or gapped declarations are exactly the write-conflict /
    // missed-coverage bugs the slab detector owns. The injected fault
    // mutates only the *declared* ranges, never the real split, so the
    // numerics stay correct while the detector must still fire.
    if let Some(san) = san {
        let mut declared: Vec<(usize, usize)> = workers
            .iter()
            .map(|wk| (wk.range0.start, wk.range0.end))
            .collect();
        match fault {
            Some(Fault::OverlapSlabs) => {
                for i in 0..declared.len().saturating_sub(1) {
                    declared[i].1 += 1;
                }
            }
            Some(Fault::GapSlabs) => {
                for d in declared.iter_mut().skip(1) {
                    d.0 += 1;
                }
            }
            _ => {}
        }
        san.slab_partition(rank, (r0.start, r0.end), &declared);
    }

    std::thread::scope(|scope| {
        for wk in workers.into_iter() {
            scope.spawn(move || {
                let mut sub = bx.to_vec();
                sub[0] = wk.range0.clone();
                let mut reads = wk.reads;
                let mut writes = wk.writes;
                kernel.exec_box_mixed(l, &sub, &mut reads, &mut writes);
            });
        }
    });
    let _ = nd;
}

/// Like [`exec_box`] but with per-stream read/write bindings (threaded
/// path). Written streams index relative to their slab offset. This is
/// the bytecode backend's split-binding entry point
/// (`backend::BytecodeKernel` delegates here).
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_box_mixed(
    cc: &CompiledCluster,
    bx: &BoxNd,
    reads: &mut [Option<&[f32]>],
    writes: &mut [Option<(&mut [f32], usize)>],
    strides: &[Vec<usize>],
    halos: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    block: usize,
    vw: usize,
) {
    // Reuse the tiling driver by flattening through a closure-free copy
    // of exec_box_flat with binding-aware loads/stores.
    let nd = bx.len();
    let tiles: Vec<BoxNd> = if block > 0 && nd >= 2 {
        let mut v = Vec::new();
        let (r0, r1) = (bx[0].clone(), bx[1].clone());
        let mut x0 = r0.start;
        while x0 < r0.end {
            let x1 = (x0 + block).min(r0.end);
            let mut y0 = r1.start;
            while y0 < r1.end {
                let y1 = (y0 + block).min(r1.end);
                let mut t = bx.clone();
                t[0] = x0..x1;
                t[1] = y0..y1;
                v.push(t);
                y0 = y1;
            }
            x0 = x1;
        }
        v
    } else {
        vec![bx.clone()]
    };

    let nstreams = cc.streams.len();
    let mut temps = vec![0.0f32; cc.num_temps];
    let mut stack = vec![0.0f32; cc.max_stack.max(4)];
    let mut bases = vec![0usize; nstreams];
    for tile in tiles {
        if tile.iter().any(|r| r.is_empty()) {
            continue;
        }
        if vw > 1 {
            let mut acc = MixedAccess {
                reads: &*reads,
                writes: &mut *writes,
            };
            exec_strips_box(
                vw, cc, &tile, &mut acc, strides, halos, resolved, scalars, params,
            );
            continue;
        }
        let inner = tile[nd - 1].clone();
        let mut outer: Vec<usize> = tile[..nd - 1].iter().map(|r| r.start).collect();
        loop {
            for s in 0..nstreams {
                let mut base = 0usize;
                for d in 0..nd - 1 {
                    base += (outer[d] + halos[s]) * strides[s][d];
                }
                base += (inner.start + halos[s]) * strides[s][nd - 1];
                bases[s] = base;
            }
            for _ in inner.clone() {
                eval_point_mixed(
                    cc, reads, writes, &bases, resolved, scalars, params, &mut temps, &mut stack,
                );
                for b in bases.iter_mut() {
                    *b += 1;
                }
            }
            if nd == 1 {
                break;
            }
            let mut d = nd - 1;
            let mut done = false;
            loop {
                if d == 0 {
                    done = true;
                    break;
                }
                d -= 1;
                outer[d] += 1;
                if outer[d] < tile[d].end {
                    break;
                }
                outer[d] = tile[d].start;
            }
            if done {
                break;
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_point_fast(
    cc: &CompiledCluster,
    buffers: &mut [&mut [f32]],
    bases: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    temps: &mut [f32],
    stack: &mut [f32],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = cc.consts[i as usize];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = scalars[i as usize];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = params[i as usize];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let idx = bases[stream as usize] as isize + resolved[off as usize];
                stack[sp] = buffers[stream as usize][idx as usize];
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                buffers[stream as usize][bases[stream as usize]] = stack[sp];
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Pow(n) => {
                stack[sp - 1] = powi(stack[sp - 1], n);
            }
            Op::Call(fx) => {
                stack[sp - 1] = fx.apply_f32(stack[sp - 1]);
            }
            Op::MulAdd => {
                sp -= 2;
                stack[sp - 1] += stack[sp] * stack[sp + 1];
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let idx = bases[stream as usize] as isize + resolved[off as usize];
                stack[sp] = c * buffers[stream as usize][idx as usize];
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let idx = bases[stream as usize] as isize + resolved[off as usize];
                stack[sp - 1] += c * buffers[stream as usize][idx as usize];
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_point_mixed(
    cc: &CompiledCluster,
    reads: &[Option<&[f32]>],
    writes: &mut [Option<(&mut [f32], usize)>],
    bases: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    temps: &mut [f32],
    stack: &mut [f32],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = cc.consts[i as usize];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = scalars[i as usize];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = params[i as usize];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp] = match (&reads[s], &writes[s]) {
                    (Some(r), _) => r[idx],
                    (None, Some((w, base_off))) => w[idx - *base_off],
                    (None, None) => unreachable!("unbound stream"),
                };
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let s = stream as usize;
                let (w, base_off) = writes[s].as_mut().expect("store to unbound stream");
                w[bases[s] - *base_off] = stack[sp];
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Pow(n) => {
                stack[sp - 1] = powi(stack[sp - 1], n);
            }
            Op::Call(fx) => {
                stack[sp - 1] = fx.apply_f32(stack[sp - 1]);
            }
            Op::MulAdd => {
                sp -= 2;
                stack[sp - 1] += stack[sp] * stack[sp + 1];
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp] = c * match (&reads[s], &writes[s]) {
                    (Some(r), _) => r[idx],
                    (None, Some((w, base_off))) => w[idx - *base_off],
                    (None, None) => unreachable!("unbound stream"),
                };
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp - 1] += c * match (&reads[s], &writes[s]) {
                    (Some(r), _) => r[idx],
                    (None, Some((w, base_off))) => w[idx - *base_off],
                    (None, None) => unreachable!("unbound stream"),
                };
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Lane-vectorized strip engine
// ---------------------------------------------------------------------------
//
// The runtime analogue of the generated C's `#pragma omp simd`: each
// compiled op executes over a strip of `W` contiguous innermost-loop
// points at once. Dispatch cost is amortized `W`-fold and every per-op
// inner loop is a fixed-trip-count `f32` loop over `[f32; W]` lane
// registers that LLVM autovectorizes. Lane arithmetic is performed in
// the identical order and rounding as the scalar interpreter (no FMA
// contraction, no reassociation), so strip results are bitwise equal to
// scalar results on every operator.

/// Uniform view over the executor's two buffer-binding styles: the
/// single-threaded path binds whole buffers per stream, the threaded
/// path binds shared read slices plus per-worker write slabs.
trait StreamAccess {
    /// `w` contiguous values of stream `s` starting at linear `idx`.
    fn load_run(&self, s: usize, idx: usize, w: usize) -> &[f32];
    /// Mutable run of stream `s` starting at linear `idx` (stores only
    /// target written streams).
    fn store_run(&mut self, s: usize, idx: usize, w: usize) -> &mut [f32];
}

/// Whole-buffer bindings (single-threaded path).
struct FlatAccess<'a, 'b>(&'b mut [&'a mut [f32]]);

impl StreamAccess for FlatAccess<'_, '_> {
    #[inline]
    fn load_run(&self, s: usize, idx: usize, w: usize) -> &[f32] {
        &self.0[s][idx..idx + w]
    }
    #[inline]
    fn store_run(&mut self, s: usize, idx: usize, w: usize) -> &mut [f32] {
        &mut self.0[s][idx..idx + w]
    }
}

/// Read-slice / write-slab bindings (threaded path). Written streams
/// index relative to their slab offset, as in [`eval_point_mixed`].
struct MixedAccess<'r, 'w, 'b> {
    reads: &'b [Option<&'r [f32]>],
    writes: &'b mut [Option<(&'w mut [f32], usize)>],
}

impl StreamAccess for MixedAccess<'_, '_, '_> {
    #[inline]
    fn load_run(&self, s: usize, idx: usize, w: usize) -> &[f32] {
        match (&self.reads[s], &self.writes[s]) {
            (Some(r), _) => &r[idx..idx + w],
            (None, Some((wb, off))) => &wb[idx - *off..idx - *off + w],
            (None, None) => unreachable!("unbound stream"),
        }
    }
    #[inline]
    fn store_run(&mut self, s: usize, idx: usize, w: usize) -> &mut [f32] {
        let (wb, off) = self.writes[s].as_mut().expect("store to unbound stream");
        &mut wb[idx - *off..idx - *off + w]
    }
}

/// Execute the compiled body once over `W` contiguous innermost points.
/// `bases[s]` is the linear index of lane 0 in stream `s`; lanes `l`
/// live at `bases[s] + l` (innermost stride is 1 for every stream).
#[allow(clippy::needless_range_loop, clippy::too_many_arguments)]
#[inline]
fn eval_strip<const W: usize>(
    cc: &CompiledCluster,
    acc: &mut impl StreamAccess,
    bases: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    temps: &mut [[f32; W]],
    stack: &mut [[f32; W]],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = [cc.consts[i as usize]; W];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = [scalars[i as usize]; W];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = [params[i as usize]; W];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp].copy_from_slice(acc.load_run(s, idx, W));
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let s = stream as usize;
                acc.store_run(s, bases[s], W).copy_from_slice(&stack[sp]);
            }
            Op::Add => {
                sp -= 1;
                let (lo, hi) = stack.split_at_mut(sp);
                for l in 0..W {
                    lo[sp - 1][l] += hi[0][l];
                }
            }
            Op::Mul => {
                sp -= 1;
                let (lo, hi) = stack.split_at_mut(sp);
                for l in 0..W {
                    lo[sp - 1][l] *= hi[0][l];
                }
            }
            Op::Pow(n) => {
                for v in stack[sp - 1].iter_mut() {
                    *v = powi(*v, n);
                }
            }
            Op::Call(fx) => {
                for v in stack[sp - 1].iter_mut() {
                    *v = fx.apply_f32(*v);
                }
            }
            Op::MulAdd => {
                sp -= 2;
                let (lo, hi) = stack.split_at_mut(sp);
                for l in 0..W {
                    lo[sp - 1][l] += hi[0][l] * hi[1][l];
                }
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                let src = acc.load_run(s, idx, W);
                for l in 0..W {
                    stack[sp][l] = c * src[l];
                }
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                let src = acc.load_run(s, idx, W);
                for l in 0..W {
                    stack[sp - 1][l] += c * src[l];
                }
            }
        }
    }
}

/// Scalar single-point evaluation through a [`StreamAccess`] — the
/// remainder path when the inner extent is not a multiple of the strip
/// width. Identical arithmetic to [`eval_point_fast`].
#[allow(clippy::too_many_arguments)]
#[inline]
fn eval_point_access(
    cc: &CompiledCluster,
    acc: &mut impl StreamAccess,
    bases: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
    temps: &mut [f32],
    stack: &mut [f32],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = cc.consts[i as usize];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = scalars[i as usize];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = params[i as usize];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp] = acc.load_run(s, idx, 1)[0];
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let s = stream as usize;
                acc.store_run(s, bases[s], 1)[0] = stack[sp];
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Pow(n) => {
                stack[sp - 1] = powi(stack[sp - 1], n);
            }
            Op::Call(fx) => {
                stack[sp - 1] = fx.apply_f32(stack[sp - 1]);
            }
            Op::MulAdd => {
                sp -= 2;
                stack[sp - 1] += stack[sp] * stack[sp + 1];
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp] = c * acc.load_run(s, idx, 1)[0];
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalars, params);
                let s = stream as usize;
                let idx = (bases[s] as isize + resolved[off as usize]) as usize;
                stack[sp - 1] += c * acc.load_run(s, idx, 1)[0];
            }
        }
    }
}

/// Strip-execute a whole box: odometer over the outer dims, strips of
/// `W` along the contiguous innermost dim, scalar remainder at each
/// row's tail. Monomorphized per supported width by
/// [`exec_strips_box`]'s dispatch.
#[allow(clippy::too_many_arguments)]
fn exec_strips_box_w<const W: usize>(
    cc: &CompiledCluster,
    bx: &BoxNd,
    acc: &mut impl StreamAccess,
    strides: &[Vec<usize>],
    halos: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
) {
    let nd = bx.len();
    if bx.iter().any(|r| r.is_empty()) {
        return;
    }
    let nstreams = cc.streams.len();
    let inner = bx[nd - 1].clone();
    let mut outer: Vec<usize> = bx[..nd - 1].iter().map(|r| r.start).collect();
    let mut bases = vec![0usize; nstreams];
    // Lane registers (SoA: one [f32; W] per stack slot / temp), plus the
    // scalar registers for the per-row remainder points.
    let mut temps = vec![[0.0f32; W]; cc.num_temps];
    let mut stack = vec![[0.0f32; W]; cc.max_stack.max(4)];
    let mut stemps = vec![0.0f32; cc.num_temps];
    let mut sstack = vec![0.0f32; cc.max_stack.max(4)];
    loop {
        for s in 0..nstreams {
            let mut base = 0usize;
            for d in 0..nd - 1 {
                base += (outer[d] + halos[s]) * strides[s][d];
            }
            base += (inner.start + halos[s]) * strides[s][nd - 1];
            bases[s] = base;
        }
        let n = inner.len();
        let mut i = 0;
        while i + W <= n {
            eval_strip::<W>(
                cc, acc, &bases, resolved, scalars, params, &mut temps, &mut stack,
            );
            for b in bases.iter_mut() {
                *b += W;
            }
            i += W;
        }
        while i < n {
            eval_point_access(
                cc,
                acc,
                &bases,
                resolved,
                scalars,
                params,
                &mut stemps,
                &mut sstack,
            );
            for b in bases.iter_mut() {
                *b += 1;
            }
            i += 1;
        }
        // Odometer over outer dims.
        if nd == 1 {
            return;
        }
        let mut d = nd - 1;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            outer[d] += 1;
            if outer[d] < bx[d].end {
                break;
            }
            outer[d] = bx[d].start;
        }
    }
}

/// Runtime-width dispatch into the monomorphized strip engines.
#[allow(clippy::too_many_arguments)]
fn exec_strips_box(
    vw: usize,
    cc: &CompiledCluster,
    bx: &BoxNd,
    acc: &mut impl StreamAccess,
    strides: &[Vec<usize>],
    halos: &[usize],
    resolved: &[isize],
    scalars: &[f32],
    params: &[f32],
) {
    match vw {
        8 => exec_strips_box_w::<8>(cc, bx, acc, strides, halos, resolved, scalars, params),
        16 => exec_strips_box_w::<16>(cc, bx, acc, strides, halos, resolved, scalars, params),
        32 => exec_strips_box_w::<32>(cc, bx, acc, strides, halos, resolved, scalars, params),
        other => unreachable!("unsupported vector width {other} (validated earlier)"),
    }
}

// ---------------------------------------------------------------------------
// Per-run mutable state (halo machinery)
// ---------------------------------------------------------------------------

struct ExecState<'a> {
    cart: &'a CartComm,
    fields: &'a mut [FieldState],
    scalars: &'a HashMap<String, f32>,
    params: Vec<f32>,
    opts: ExecOptions,
    t: i64,
    /// Index of the next space loop to execute (into `compiled`).
    loop_idx: usize,
    /// In-flight async exchanges keyed by (field, time_offset).
    pending: HashMap<(u32, i32), mpix_dmp::FullToken>,
    /// Persistent per-(field,toff) overlap exchangers. One per key, not
    /// one shared: each owns a `HaloPlan` (peers, tags, boxes, buffers)
    /// keyed to that field's geometry and tag base.
    full_ex: HashMap<(u32, i32), FullExchange>,
    /// Persistent per-(field,toff) synchronous exchangers, so every mode
    /// reuses its `HaloPlan` (and preallocated buffers) across steps.
    exchangers: HashMap<(u32, i32), Box<dyn HaloExchange + Send>>,
    stats: ExecStats,
    tracer: Tracer,
}

/// Message-tag namespace base for one `(field, time offset)` exchange
/// key: a disjoint 64-tag window per key, so concurrent exchanges of
/// different buffers can never cross-match. Public so the verification
/// passes (`mpix-analysis`) can prove window disjointness against the
/// same formula the executor uses.
pub fn halo_tag_base(field: u32, toff: i32) -> u32 {
    (field * 8 + toff.rem_euclid(8) as u32) * 64
}

impl ExecState<'_> {
    fn tag_base(field: u32, toff: i32) -> u32 {
        halo_tag_base(field, toff)
    }

    fn sync_exchange(&mut self, x: &mpix_ir::halo::HaloXchg) {
        let mode = self.opts.mode;
        let fs = &mut self.fields[x.field.0 as usize];
        let b = fs.buffer_index(self.t, x.time_offset);
        let radius = x.radius.iter().copied().max().unwrap_or(0);
        if radius == 0 {
            return;
        }
        let key = (x.field.0, x.time_offset);
        let ex = self
            .exchangers
            .entry(key)
            .or_insert_with(|| mpix_dmp::halo::make_exchange(mode));
        ex.exchange_traced(
            self.cart,
            &mut fs.buffers[b],
            radius,
            Self::tag_base(x.field.0, x.time_offset),
            &mut self.tracer,
        );
    }

    fn begin_async(&mut self, x: &mpix_ir::halo::HaloXchg) {
        let radius = x.radius.iter().copied().max().unwrap_or(0);
        if radius == 0 {
            return;
        }
        let key = (x.field.0, x.time_offset);
        let fs = &self.fields[x.field.0 as usize];
        let b = fs.buffer_index(self.t, x.time_offset);
        let token = self.full_ex.entry(key).or_default().begin_traced(
            self.cart,
            &fs.buffers[b],
            radius,
            Self::tag_base(x.field.0, x.time_offset),
            &mut self.tracer,
        );
        self.pending.insert(key, token);
    }

    fn finish_async(&mut self, x: &mpix_ir::halo::HaloXchg) {
        let key = (x.field.0, x.time_offset);
        if let Some(token) = self.pending.remove(&key) {
            let fs = &mut self.fields[x.field.0 as usize];
            let b = fs.buffer_index(self.t, x.time_offset);
            self.full_ex
                .get_mut(&key)
                .expect("finish_async without begin_async")
                .finish_traced(token, &mut fs.buffers[b], &mut self.tracer);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_comm::Universe;
    use mpix_dmp::Decomposition;
    use mpix_ir::cluster::clusterize;
    use mpix_ir::halo::detect_halo_exchanges;
    use mpix_ir::iet::build_iet;
    use mpix_ir::lowering::lower_equations;
    use mpix_ir::passes::{cse_cluster, lower_halo_spots};
    use mpix_symbolic::{Eq, Grid};
    use std::sync::Arc;

    #[test]
    fn buffer_index_rotates_correctly() {
        let dc = Arc::new(Decomposition::new(&[4, 4], &[1, 1]));
        let fs = FieldState::new(FieldId(0), 3, dc, &[0, 0], 2);
        // Three buffers: time t maps t+k via (t+k) mod 3.
        assert_eq!(fs.buffer_index(0, 0), 0);
        assert_eq!(fs.buffer_index(0, 1), 1);
        assert_eq!(fs.buffer_index(0, -1), 2);
        assert_eq!(fs.buffer_index(5, 0), 2);
        assert_eq!(fs.buffer_index(5, 1), 0);
        // Two buffers.
        let dc = Arc::new(Decomposition::new(&[4, 4], &[1, 1]));
        let fs2 = FieldState::new(FieldId(1), 2, dc, &[0, 0], 2);
        assert_eq!(fs2.buffer_index(7, 0), 1);
        assert_eq!(fs2.buffer_index(7, 1), 0);
    }

    #[test]
    fn eval_invariant_handles_params_and_pows() {
        let mut scalars = HashMap::new();
        scalars.insert("dt".to_string(), 2.0f32);
        // r0 = 1/dt; r1 = r0^2 * 3
        let r0 = eval_invariant(
            &IExpr::Pow(Box::new(IExpr::Sym("dt".into())), -1),
            &scalars,
            &[],
        );
        assert_eq!(r0, 0.5);
        let r1 = eval_invariant(
            &IExpr::Mul(vec![
                IExpr::Pow(Box::new(IExpr::Param(0)), 2),
                IExpr::Const(3.0),
            ]),
            &scalars,
            &[r0],
        );
        assert_eq!(r1, 0.75);
    }

    #[test]
    #[should_panic(expected = "not grid-invariant")]
    fn eval_invariant_rejects_loads() {
        let scalars = HashMap::new();
        eval_invariant(
            &IExpr::Load(mpix_ir::iexpr::IdxAccess {
                field: FieldId(0),
                time_offset: 0,
                deltas: vec![0],
            }),
            &scalars,
            &[],
        );
    }

    /// Build, lower and execute a small copy-shift operator directly
    /// through the executor (no Operator wrapper) and check the result.
    #[test]
    fn executor_runs_lowered_iet_directly() {
        let mut ctx = Context::new();
        let grid = Grid::new(&[6, 6], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &grid, 2, 1);
        // u[t+1](x,y) = 2 * u[t](x+1, y)
        let eq = Eq::new(u.forward(), 2.0 * u.at(0, &[1, 0]));
        let mut cls = clusterize(&lower_equations(&[eq], &ctx).unwrap());
        let mut next = 0;
        for c in &mut cls {
            cse_cluster(c, &mut next);
        }
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "K", 0, false);
        let iet = lower_halo_spots(iet, MpiMode::Basic);
        let exec = OperatorExec::new(iet, &ctx);
        assert_eq!(exec.compiled_clusters().len(), 1);

        Universe::run(1, |comm| {
            let cart = mpix_comm::CartComm::new(comm, &[1, 1]);
            let dc = Arc::new(Decomposition::new(&[6, 6], &[1, 1]));
            let mut fields = vec![FieldState::new(u.id(), 2, dc, &[0, 0], 2)];
            for i in 0..6 {
                for j in 0..6 {
                    fields[0].buffers[0].set_global(&[i, j], (i * 6 + j) as f32);
                }
            }
            let scalars = HashMap::new();
            let stats = exec.run(
                &cart,
                &mut fields,
                &scalars,
                &mut [],
                0,
                1,
                &ExecOptions::default(),
            );
            assert_eq!(stats.points_updated, 36);
            // After one step, buffer 1 holds 2*shifted values.
            let b1 = &fields[0].buffers[1];
            assert_eq!(b1.get_global(&[2, 3]), Some(2.0 * (3 * 6 + 3) as f32));
            // Bottom row reads the zero halo.
            assert_eq!(b1.get_global(&[5, 0]), Some(0.0));
        });
    }

    #[test]
    fn threaded_and_blocked_execution_bitwise_equal() {
        let mut ctx = Context::new();
        let grid = Grid::new(&[12, 10, 8], &[1.0, 1.0, 1.0]);
        let u = ctx.add_time_function("u", &grid, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let mut cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let mut next = 0;
        for c in &mut cls {
            cse_cluster(c, &mut next);
        }
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "K", 0, true);
        let iet = lower_halo_spots(iet, MpiMode::Basic);
        let exec = &OperatorExec::new(iet, &ctx);

        let run = |threads: usize, block: usize, vw: usize| -> Vec<f32> {
            Universe::run(1, |comm| {
                let cart = mpix_comm::CartComm::new(comm, &[1, 1, 1]);
                let dc = Arc::new(Decomposition::new(&[12, 10, 8], &[1, 1, 1]));
                let mut fields = vec![FieldState::new(u.id(), 2, dc, &[0, 0, 0], 2)];
                for i in 0..12 {
                    for j in 0..10 {
                        for k in 0..8 {
                            fields[0].buffers[0]
                                .set_global(&[i, j, k], ((i * 80 + j * 8 + k) % 13) as f32);
                        }
                    }
                }
                let mut scalars = HashMap::new();
                scalars.insert("dt".to_string(), 0.01f32);
                scalars.insert("h_x".to_string(), 0.1);
                scalars.insert("h_y".to_string(), 0.1);
                scalars.insert("h_z".to_string(), 0.1);
                exec.run(
                    &cart,
                    &mut fields,
                    &scalars,
                    &mut [],
                    0,
                    3,
                    &ExecOptions {
                        mode: HaloMode::Basic,
                        block,
                        threads,
                        vector_width: vw,
                        ..ExecOptions::default()
                    },
                );
                fields[0].buffers[fields[0].buffer_index(3, 0)]
                    .raw()
                    .to_vec()
            })
            .pop()
            .unwrap()
        };
        let base = run(1, 0, 0);
        assert_eq!(base, run(3, 0, 0), "threads=3 differs");
        assert_eq!(base, run(1, 4, 0), "block=4 differs");
        assert_eq!(base, run(2, 4, 0), "threads=2+block=4 differs");
        assert_eq!(base, run(4, 8, 0), "threads=4+block=8 differs");
        // Lane-vectorized strips: inner extent 8, so vw=8 is exact
        // strips and vw=16/32 degenerate to the scalar remainder path;
        // all must be bitwise identical, alone and composed with
        // blocking and threading.
        for vw in [8usize, 16, 32] {
            assert_eq!(base, run(1, 0, vw), "vw={vw} differs");
            assert_eq!(base, run(1, 4, vw), "vw={vw}+block=4 differs");
            assert_eq!(base, run(3, 0, vw), "vw={vw}+threads=3 differs");
            assert_eq!(base, run(2, 8, vw), "vw={vw}+threads=2+block=8 differs");
        }
    }

    #[test]
    #[should_panic(expected = "vector_width=5")]
    fn unsupported_vector_width_rejected() {
        validate_vector_width(5);
    }

    /// The native JIT backend must be bitwise identical to the bytecode
    /// interpreter on every execution shape: plain, blocked, threaded,
    /// and their compositions (odd inner extent → scalar tail active).
    #[test]
    fn jit_backend_bitwise_equal_to_bytecode() {
        if !crate::backend::available_backends().contains(&Backend::Jit) {
            return; // host cannot run native code
        }
        let mut ctx = Context::new();
        let grid = Grid::new(&[11, 9, 13], &[1.0, 1.0, 1.0]);
        let u = ctx.add_time_function("u", &grid, 4, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let mut cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let mut next = 0;
        for c in &mut cls {
            cse_cluster(c, &mut next);
        }
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "K", 0, true);
        let iet = lower_halo_spots(iet, MpiMode::Basic);

        let run = |backend: Backend, threads: usize, block: usize| -> Vec<f32> {
            let exec = OperatorExec::with_backend(iet.clone(), &ctx, backend).unwrap();
            Universe::run(1, |comm| {
                let cart = mpix_comm::CartComm::new(comm, &[1, 1, 1]);
                let dc = Arc::new(Decomposition::new(&[11, 9, 13], &[1, 1, 1]));
                let mut fields = vec![FieldState::new(u.id(), 2, dc, &[0, 0, 0], 4)];
                for i in 0..11 {
                    for j in 0..9 {
                        for k in 0..13 {
                            fields[0].buffers[0].set_global(
                                &[i, j, k],
                                ((i * 117 + j * 13 + k) % 29) as f32 * 0.125 - 1.0,
                            );
                        }
                    }
                }
                let mut scalars = HashMap::new();
                scalars.insert("dt".to_string(), 0.01f32);
                scalars.insert("h_x".to_string(), 0.1);
                scalars.insert("h_y".to_string(), 0.1);
                scalars.insert("h_z".to_string(), 0.1);
                exec.run(
                    &cart,
                    &mut fields,
                    &scalars,
                    &mut [],
                    0,
                    3,
                    &ExecOptions {
                        mode: HaloMode::Basic,
                        block,
                        threads,
                        ..ExecOptions::default()
                    },
                );
                fields[0].buffers[fields[0].buffer_index(3, 0)]
                    .raw()
                    .to_vec()
            })
            .pop()
            .unwrap()
        };
        let oracle = run(Backend::Bytecode, 1, 0);
        for (threads, block) in [(1usize, 0usize), (1, 4), (3, 0), (2, 4)] {
            let jit = run(Backend::Jit, threads, block);
            for (k, (a, b)) in oracle.iter().zip(&jit).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "threads={threads} block={block} idx={k}: {a} vs {b}"
                );
            }
        }
    }
}
