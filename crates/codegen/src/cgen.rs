//! C code emission from the lowered IET.
//!
//! Reproduces the style of the paper's generated code (Appendix B,
//! Listing 11): hoisted `float rN = …;` parameters, the rotating-buffer
//! time loop header, per-dimension `for` loops with an
//! `#pragma omp simd aligned(…)` on the vector dimension, aligned array
//! accesses shifted by each field's halo (`u[t1][x + 2][y + 2]`), and
//! halo-exchange call sites where `HaloUpdate`/`HaloWait` nodes sit.
//!
//! The emitted C is for inspection and golden-testing; execution happens
//! in [`crate::executor`] (see DESIGN.md for the substitution rationale).

use std::collections::BTreeSet;
use std::fmt::Write as _;

use mpix_ir::cluster::Stmt;
use mpix_ir::iet::{Node, RegionKind};
use mpix_ir::iexpr::{IExpr, IdxAccess};
use mpix_symbolic::{Context, FieldKind};

const DIMS: [&str; 3] = ["x", "y", "z"];

/// Emit a complete C kernel for a lowered IET.
pub fn emit_c(iet: &Node, ctx: &Context) -> String {
    let mut out = String::new();
    let mut em = Emitter {
        ctx,
        out: &mut out,
        indent: 0,
        num_params: 0,
    };
    em.node(iet);
    out
}

struct Emitter<'a> {
    ctx: &'a Context,
    out: &'a mut String,
    indent: usize,
    num_params: usize,
}

impl Emitter<'_> {
    fn line(&mut self, s: &str) {
        for _ in 0..self.indent {
            self.out.push_str("  ");
        }
        self.out.push_str(s);
        self.out.push('\n');
    }

    fn node(&mut self, n: &Node) {
        match n {
            Node::Callable { name, params, body } => {
                self.line(&format!("void {name}(const int time_m, const int time_M)"));
                self.line("{");
                self.indent += 1;
                self.num_params = params.iter().map(|(i, _)| i + 1).max().unwrap_or(0);
                for (i, def) in params {
                    let d = c_expr(def, self.ctx, self.num_params);
                    self.line(&format!("float r{i} = {d};"));
                }
                if !params.is_empty() {
                    self.line("");
                }
                for c in body {
                    self.node(c);
                }
                self.indent -= 1;
                self.line("}");
            }
            Node::TimeLoop { body } => {
                let tvars = self.time_vars(body);
                let decl: Vec<String> = tvars
                    .iter()
                    .map(|(k, nb)| format!("t{k} = (time + {k})%({nb})"))
                    .collect();
                let step: Vec<String> = decl.clone();
                self.line(&format!(
                    "for (int time = time_m, {}; time <= time_M; time += 1, {})",
                    decl.join(", "),
                    step.join(", ")
                ));
                self.line("{");
                self.indent += 1;
                for c in body {
                    self.node(c);
                }
                self.indent -= 1;
                self.line("}");
            }
            Node::HaloSpot { exchanges, body } => {
                // Unlowered spot: annotate and descend (the mode pass
                // normally removes these before emission).
                let names = self.xchg_list(exchanges);
                self.line(&format!("/* HaloSpot({names}) */"));
                for c in body {
                    self.node(c);
                }
            }
            Node::HaloUpdate {
                exchanges,
                is_async,
            } => {
                for x in exchanges {
                    let f = self.ctx.field(x.field);
                    let r = x.radius.iter().max().copied().unwrap_or(0);
                    let kind = if *is_async {
                        "haloupdate_begin"
                    } else {
                        "haloupdate"
                    };
                    self.line(&format!(
                        "{kind}_{name}(cart_comm, {tv}, /*radius*/ {r});",
                        name = f.name,
                        tv = self.tvar_of(x.field, x.time_offset),
                    ));
                }
            }
            Node::HaloWait { exchanges } => {
                for x in exchanges {
                    let f = self.ctx.field(x.field);
                    self.line(&format!(
                        "halowait_{name}(cart_comm, {tv});",
                        name = f.name,
                        tv = self.tvar_of(x.field, x.time_offset),
                    ));
                }
            }
            Node::SpaceLoop {
                cluster,
                region,
                block,
                parallel,
            } => {
                let nd = cluster.ndim();
                match region {
                    RegionKind::Core => self.line("/* CORE region */"),
                    RegionKind::Remainder => self.line("/* REMAINDER regions */"),
                    RegionKind::Domain => {}
                }
                if *parallel {
                    self.line("#pragma omp parallel for schedule(static)");
                }
                let bounds = |d: usize, reg: RegionKind| -> (String, String) {
                    let dim = DIMS[d];
                    match reg {
                        RegionKind::Core => {
                            (format!("{dim}_m + r_{dim}"), format!("{dim}_M - r_{dim}"))
                        }
                        _ => (format!("{dim}_m"), format!("{dim}_M")),
                    }
                };
                let mut blocked_note = false;
                for d in 0..nd {
                    let (lo, hi) = bounds(d, *region);
                    if d == nd - 1 {
                        let aligned: BTreeSet<String> = cluster
                            .reads()
                            .iter()
                            .map(|(f, _, _)| self.ctx.field(*f).name.clone())
                            .collect();
                        let list = aligned.into_iter().collect::<Vec<_>>().join(",");
                        self.line(&format!("#pragma omp simd aligned({list}:32)"));
                    } else if *block > 0 && !blocked_note {
                        self.line(&format!("/* blocked by {block} (autotuned tile) */"));
                        blocked_note = true;
                    }
                    self.line(&format!(
                        "for (int {d0} = {lo}; {d0} <= {hi}; {d0} += 1)",
                        d0 = DIMS[d]
                    ));
                    self.line("{");
                    self.indent += 1;
                }
                for s in &cluster.stmts {
                    match s {
                        Stmt::Let { temp, value } => {
                            let rhs = c_expr(value, self.ctx, self.num_params);
                            self.line(&format!("float r{} = {rhs};", self.num_params + temp));
                        }
                        Stmt::Store { target, value } => {
                            let lhs = c_access(target, self.ctx);
                            let rhs = c_expr(value, self.ctx, self.num_params);
                            self.line(&format!("{lhs} = {rhs};"));
                        }
                    }
                }
                for _ in 0..nd {
                    self.indent -= 1;
                    self.line("}");
                }
            }
            Node::Section { name, body } => {
                self.line(&format!("/* section: {name} */"));
                for c in body {
                    self.node(c);
                }
            }
        }
    }

    /// `(k, nb)` pairs for every time-buffer variable used in the body.
    fn time_vars(&self, body: &[Node]) -> Vec<(i64, usize)> {
        let mut set: BTreeSet<(i64, usize)> = BTreeSet::new();
        collect_time_offsets(body, self.ctx, &mut set);
        set.into_iter().collect()
    }

    fn tvar_of(&self, field: mpix_symbolic::FieldId, toff: i32) -> String {
        let f = self.ctx.field(field);
        match f.kind {
            FieldKind::Function => "0".to_string(),
            FieldKind::TimeFunction => {
                let nb = f.time_buffers() as i64;
                format!("t{}", (toff as i64).rem_euclid(nb))
            }
        }
    }

    fn xchg_list(&self, xs: &[mpix_ir::halo::HaloXchg]) -> String {
        xs.iter()
            .map(|x| self.ctx.field(x.field).name.clone())
            .collect::<Vec<_>>()
            .join(",")
    }
}

fn collect_time_offsets(body: &[Node], ctx: &Context, set: &mut BTreeSet<(i64, usize)>) {
    for n in body {
        match n {
            Node::SpaceLoop { cluster, .. } => {
                let mut add = |a: &IdxAccess| {
                    let f = ctx.field(a.field);
                    if f.kind == FieldKind::TimeFunction {
                        let nb = f.time_buffers();
                        set.insert(((a.time_offset as i64).rem_euclid(nb as i64), nb));
                    }
                };
                for s in &cluster.stmts {
                    s.value().visit_loads(&mut add);
                    if let Stmt::Store { target, .. } = s {
                        add(target);
                    }
                }
            }
            Node::Callable { body, .. }
            | Node::TimeLoop { body }
            | Node::HaloSpot { body, .. }
            | Node::Section { body, .. } => collect_time_offsets(body, ctx, set),
            _ => {}
        }
    }
}

/// Render an access as aligned C indexing: `u[t1][x + 2][y + 2]`.
fn c_access(a: &IdxAccess, ctx: &Context) -> String {
    let f = ctx.field(a.field);
    let mut s = f.name.clone();
    if f.kind == FieldKind::TimeFunction {
        let nb = f.time_buffers() as i64;
        let _ = write!(s, "[t{}]", (a.time_offset as i64).rem_euclid(nb));
    }
    for (d, &delta) in a.deltas.iter().enumerate() {
        let shift = delta + f.halo() as i32;
        if shift == 0 {
            let _ = write!(s, "[{}]", DIMS[d]);
        } else {
            let _ = write!(s, "[{} + {}]", DIMS[d], shift);
        }
    }
    s
}

/// Render an indexed expression as C.
fn c_expr(e: &IExpr, ctx: &Context, num_params: usize) -> String {
    match e {
        IExpr::Const(c) => c_const(*c),
        IExpr::Sym(s) => s.clone(),
        IExpr::Param(i) => format!("r{i}"),
        IExpr::Temp(i) => format!("r{}", num_params + i),
        IExpr::Load(a) => c_access(a, ctx),
        IExpr::Add(xs) => {
            let mut s = String::from("(");
            for (i, x) in xs.iter().enumerate() {
                let term = c_expr(x, ctx, num_params);
                if i == 0 {
                    s.push_str(&term);
                } else if let Some(stripped) = term.strip_prefix('-') {
                    s.push_str(" - ");
                    s.push_str(stripped);
                } else {
                    s.push_str(" + ");
                    s.push_str(&term);
                }
            }
            s.push(')');
            s
        }
        IExpr::Mul(xs) => {
            // Split numerator / denominator on negative powers.
            let mut num: Vec<String> = Vec::new();
            let mut den: Vec<String> = Vec::new();
            for x in xs {
                match x {
                    IExpr::Pow(b, n) if *n < 0 => {
                        den.push(c_pow_str(b, (-n) as u32, ctx, num_params))
                    }
                    other => num.push(c_expr(other, ctx, num_params)),
                }
            }
            let n = if num.is_empty() {
                "1.0F".to_string()
            } else {
                num.join("*")
            };
            if den.is_empty() {
                n
            } else if num.is_empty() {
                format!("1.0F/({})", den.join("*"))
            } else {
                format!("{n}/({})", den.join("*"))
            }
        }
        IExpr::Pow(b, n) => {
            if *n < 0 {
                format!("1.0F/({})", c_pow_str(b, (-n) as u32, ctx, num_params))
            } else {
                c_pow_str(b, *n as u32, ctx, num_params)
            }
        }
        IExpr::Func(fx, b) => {
            let cname = match fx {
                mpix_symbolic::UnaryFn::Sqrt => "sqrtf",
                mpix_symbolic::UnaryFn::Sin => "sinf",
                mpix_symbolic::UnaryFn::Cos => "cosf",
                mpix_symbolic::UnaryFn::Exp => "expf",
                mpix_symbolic::UnaryFn::Abs => "fabsf",
            };
            format!("{cname}({})", c_expr(b, ctx, num_params))
        }
    }
}

fn c_pow_str(b: &IExpr, n: u32, ctx: &Context, num_params: usize) -> String {
    let base = c_expr(b, ctx, num_params);
    match n {
        0 => "1.0F".to_string(),
        1 => base,
        2..=3 => vec![base; n as usize].join("*"),
        _ => format!("powf({base}, {n})"),
    }
}

fn c_const(c: f64) -> String {
    if c == c.trunc() && c.abs() < 1e15 {
        format!("{:.1}F", c)
    } else {
        format!("{c}F")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::cluster::clusterize;
    use mpix_ir::halo::detect_halo_exchanges;
    use mpix_ir::iet::build_iet;
    use mpix_ir::lowering::lower_equations;
    use mpix_ir::passes::{cse_cluster, lower_halo_spots, MpiMode};
    use mpix_symbolic::{Eq, Grid};

    /// Full pipeline for the paper's Listing 1 diffusion example.
    fn listing1_c(mode: MpiMode) -> String {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[2.0, 2.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        let mut cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let mut next = 0;
        for c in &mut cls {
            cse_cluster(c, &mut next);
        }
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "Kernel", 0, false);
        let iet = lower_halo_spots(iet, mode);
        emit_c(&iet, &ctx)
    }

    #[test]
    fn listing11_structure_is_reproduced() {
        let c = listing1_c(MpiMode::Basic);
        // Paper Listing 11 landmarks:
        assert!(c.contains("float r0 = "), "{c}");
        assert!(
            c.contains("1.0F/(h_x*h_x)") || c.contains("1.0F/(h_y*h_y)"),
            "{c}"
        );
        assert!(
            c.contains("for (int time = time_m, t0 = (time + 0)%(2), t1 = (time + 1)%(2)"),
            "{c}"
        );
        assert!(c.contains("#pragma omp simd aligned(u:32)"), "{c}");
        // Aligned accesses: halo 2 for SDO 2 (paper §III d).
        assert!(c.contains("u[t1][x + 2][y + 2]"), "{c}");
        assert!(c.contains("u[t0][x + 2][y + 2]"), "{c}");
        // Neighbour accesses at x+1 / x+3.
        assert!(c.contains("u[t0][x + 1][y + 2]"), "{c}");
        assert!(c.contains("u[t0][x + 3][y + 2]"), "{c}");
        // Halo exchange call before the loop nest.
        assert!(c.contains("haloupdate_u(cart_comm, t0"), "{c}");
    }

    #[test]
    fn full_mode_emits_overlap_sections() {
        let c = listing1_c(MpiMode::Full);
        assert!(c.contains("haloupdate_begin_u"), "{c}");
        assert!(c.contains("halowait_u"), "{c}");
        assert!(c.contains("/* CORE region */"), "{c}");
        assert!(c.contains("/* REMAINDER regions */"), "{c}");
        let begin = c.find("haloupdate_begin_u").unwrap();
        let core = c.find("/* CORE region */").unwrap();
        let wait = c.find("halowait_u").unwrap();
        let rem = c.find("/* REMAINDER regions */").unwrap();
        assert!(begin < core && core < wait && wait < rem, "{c}");
    }

    #[test]
    fn functions_have_no_time_index() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        let m = ctx.add_function("m", &g, 2);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cls = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cls, &ctx);
        let iet = build_iet(cls, &plan, "Kernel", 0, false);
        let iet = lower_halo_spots(iet, MpiMode::Basic);
        let c = emit_c(&iet, &ctx);
        assert!(c.contains("m[x + 2][y + 2]"), "{c}");
        // Three buffers for second-order time.
        assert!(c.contains("%(3)"), "{c}");
    }

    #[test]
    fn constants_use_float_suffix() {
        assert_eq!(c_const(-2.0), "-2.0F");
        assert_eq!(c_const(0.5), "0.5F");
        assert_eq!(c_const(1.0), "1.0F");
    }
}
