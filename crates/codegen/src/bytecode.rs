//! Bytecode compilation of cluster statements.
//!
//! Each cluster body (per-point `Let`s and `Store`s) compiles to a flat
//! stack program. Field accesses become `(stream slot, offset index)`
//! pairs; the offset table is resolved to concrete linear deltas once per
//! kernel launch, when the rank-local strides are known. This plays the
//! role of the paper's JIT-compiled C kernel body.

use mpix_symbolic::{FieldId, UnaryFn};

use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::IExpr;

/// One bytecode instruction. The machine is a straightforward f32 stack
/// machine; temporaries and parameters live in side tables.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Push a constant from the pool.
    Const(u32),
    /// Push a runtime scalar (dt, h_x, …) by slot.
    Scalar(u32),
    /// Push a precomputed parameter by slot.
    Param(u32),
    /// Push a per-point temporary.
    Temp(u32),
    /// Pop into a per-point temporary.
    SetTemp(u32),
    /// Push `field_stream[base + offset_table[idx]]`.
    Load { stream: u32, off: u32 },
    /// Pop into `field_stream[base]` (stores are always at the point).
    Store { stream: u32 },
    /// Pop 2, push sum.
    Add,
    /// Pop 2, push product.
    Mul,
    /// Pop 1, push `x^n` (n may be negative).
    Pow(i32),
    /// Pop 1, push `f(x)` for an elementary function.
    Call(UnaryFn),
}

/// A compiled cluster body.
#[derive(Clone, Debug)]
pub struct CompiledCluster {
    pub ops: Vec<Op>,
    pub consts: Vec<f32>,
    /// Runtime scalar names, indexed by `Op::Scalar` slot.
    pub scalars: Vec<String>,
    /// Streams: distinct `(field, time offset)` arrays touched.
    pub streams: Vec<(FieldId, i32)>,
    /// Which streams are written.
    pub written: Vec<bool>,
    /// Offset table: `(stream slot, index deltas)` per `Op::Load` entry.
    pub offsets: Vec<(u32, Vec<i32>)>,
    pub num_temps: usize,
    /// Maximum stack depth needed.
    pub max_stack: usize,
}

impl CompiledCluster {
    pub fn stream_slot(&self, field: FieldId, toff: i32) -> Option<usize> {
        self.streams
            .iter()
            .position(|&(f, t)| (f, t) == (field, toff))
    }
}

struct Compiler {
    ops: Vec<Op>,
    consts: Vec<f32>,
    scalars: Vec<String>,
    streams: Vec<(FieldId, i32)>,
    written: Vec<bool>,
    offsets: Vec<(u32, Vec<i32>)>,
    depth: usize,
    max_depth: usize,
}

impl Compiler {
    fn push_depth(&mut self) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }
    fn pop_depth(&mut self, n: usize) {
        self.depth -= n;
    }

    fn const_slot(&mut self, v: f64) -> u32 {
        let v = v as f32;
        if let Some(i) = self.consts.iter().position(|&c| c == v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn scalar_slot(&mut self, name: &str) -> u32 {
        if let Some(i) = self.scalars.iter().position(|s| s == name) {
            return i as u32;
        }
        self.scalars.push(name.to_string());
        (self.scalars.len() - 1) as u32
    }

    fn stream_slot(&mut self, field: FieldId, toff: i32) -> u32 {
        if let Some(i) = self
            .streams
            .iter()
            .position(|&(f, t)| (f, t) == (field, toff))
        {
            return i as u32;
        }
        self.streams.push((field, toff));
        self.written.push(false);
        (self.streams.len() - 1) as u32
    }

    fn offset_slot(&mut self, stream: u32, deltas: &[i32]) -> u32 {
        if let Some(i) = self
            .offsets
            .iter()
            .position(|(s, d)| *s == stream && d == deltas)
        {
            return i as u32;
        }
        self.offsets.push((stream, deltas.to_vec()));
        (self.offsets.len() - 1) as u32
    }

    fn emit_expr(&mut self, e: &IExpr) {
        match e {
            IExpr::Const(c) => {
                let s = self.const_slot(*c);
                self.ops.push(Op::Const(s));
                self.push_depth();
            }
            IExpr::Sym(name) => {
                let s = self.scalar_slot(name);
                self.ops.push(Op::Scalar(s));
                self.push_depth();
            }
            IExpr::Param(i) => {
                self.ops.push(Op::Param(*i as u32));
                self.push_depth();
            }
            IExpr::Temp(i) => {
                self.ops.push(Op::Temp(*i as u32));
                self.push_depth();
            }
            IExpr::Load(a) => {
                let stream = self.stream_slot(a.field, a.time_offset);
                let off = self.offset_slot(stream, &a.deltas);
                self.ops.push(Op::Load { stream, off });
                self.push_depth();
            }
            IExpr::Add(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.emit_expr(x);
                    if i > 0 {
                        self.ops.push(Op::Add);
                        self.pop_depth(1);
                    }
                }
            }
            IExpr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.emit_expr(x);
                    if i > 0 {
                        self.ops.push(Op::Mul);
                        self.pop_depth(1);
                    }
                }
            }
            IExpr::Pow(b, e2) => {
                self.emit_expr(b);
                self.ops.push(Op::Pow(*e2));
            }
            IExpr::Func(fx, b) => {
                self.emit_expr(b);
                self.ops.push(Op::Call(*fx));
            }
        }
    }
}

/// Compile a cluster body into bytecode.
pub fn compile_cluster(cl: &Cluster) -> CompiledCluster {
    let mut c = Compiler {
        ops: Vec::new(),
        consts: Vec::new(),
        scalars: Vec::new(),
        streams: Vec::new(),
        written: Vec::new(),
        offsets: Vec::new(),
        depth: 0,
        max_depth: 0,
    };
    for s in &cl.stmts {
        match s {
            Stmt::Let { temp, value } => {
                c.emit_expr(value);
                c.ops.push(Op::SetTemp(*temp as u32));
                c.pop_depth(1);
            }
            Stmt::Store { target, value } => {
                assert!(
                    target.deltas.iter().all(|&d| d == 0),
                    "stores must be at the evaluation point"
                );
                c.emit_expr(value);
                let stream = c.stream_slot(target.field, target.time_offset);
                c.written[stream as usize] = true;
                c.ops.push(Op::Store { stream });
                c.pop_depth(1);
            }
        }
    }
    assert_eq!(c.depth, 0, "unbalanced stack in compiled cluster");
    CompiledCluster {
        ops: c.ops,
        consts: c.consts,
        scalars: c.scalars,
        streams: c.streams,
        written: c.written,
        offsets: c.offsets,
        num_temps: cl.num_temps,
        max_stack: c.max_depth,
    }
}

/// Evaluate one point of a compiled cluster. `bases[slot]` is the linear
/// index of the evaluation point in stream `slot`'s buffer;
/// `resolved_offsets[k]` the linear delta of offset entry `k`.
///
/// This is the scalar reference interpreter; the executor uses a
/// specialized inner loop built on the same instruction set.
#[allow(clippy::too_many_arguments)]
pub fn eval_point(
    cc: &CompiledCluster,
    buffers: &mut [&mut [f32]],
    bases: &[usize],
    resolved_offsets: &[isize],
    scalar_values: &[f32],
    param_values: &[f32],
    temps: &mut [f32],
    stack: &mut [f32],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = cc.consts[i as usize];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = scalar_values[i as usize];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = param_values[i as usize];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let idx = bases[stream as usize] as isize + resolved_offsets[off as usize];
                stack[sp] = buffers[stream as usize][idx as usize];
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let idx = bases[stream as usize];
                buffers[stream as usize][idx] = stack[sp];
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Pow(n) => {
                let v = stack[sp - 1];
                stack[sp - 1] = powi(v, n);
            }
            Op::Call(fx) => {
                stack[sp - 1] = fx.apply_f32(stack[sp - 1]);
            }
        }
    }
}

/// `f32` integer power, matching `Pow` semantics (negative = reciprocal).
#[inline]
pub fn powi(v: f32, n: i32) -> f32 {
    match n {
        2 => v * v,
        -1 => 1.0 / v,
        -2 => 1.0 / (v * v),
        _ => v.powi(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::iexpr::IdxAccess as IA;

    fn store(field: u32, value: IExpr) -> Stmt {
        Stmt::Store {
            target: IA {
                field: FieldId(field),
                time_offset: 1,
                deltas: vec![0],
            },
            value,
        }
    }

    fn load(field: u32, toff: i32, dx: i32) -> IExpr {
        IExpr::Load(IA {
            field: FieldId(field),
            time_offset: toff,
            deltas: vec![dx],
        })
    }

    #[test]
    fn compile_and_eval_simple_stencil() {
        // u[t+1] = 0.5*(u[t,x-1] + u[t,x+1])
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Mul(vec![
                    IExpr::Const(0.5),
                    IExpr::Add(vec![load(0, 0, -1), load(0, 0, 1)]),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let cc = compile_cluster(&cl);
        assert_eq!(cc.streams.len(), 2); // (f0,t0) read, (f0,t1) written
        assert!(cc.max_stack <= 3);

        // 1-D buffers of length 8, halo 1, point at index 3.
        let mut read = vec![0.0f32; 8];
        read[2] = 2.0;
        read[4] = 4.0;
        let mut write = vec![0.0f32; 8];
        let read_slot = cc.stream_slot(FieldId(0), 0).unwrap();
        let write_slot = cc.stream_slot(FieldId(0), 1).unwrap();
        let mut bases = vec![0usize; 2];
        bases[read_slot] = 3;
        bases[write_slot] = 3;
        let resolved: Vec<isize> = cc.offsets.iter().map(|(_, d)| d[0] as isize).collect();
        let mut bufs: Vec<&mut [f32]> = Vec::new();
        // Order buffers by slot.
        if read_slot == 0 {
            bufs.push(&mut read);
            bufs.push(&mut write);
        } else {
            bufs.push(&mut write);
            bufs.push(&mut read);
        }
        let mut stack = [0.0f32; 16];
        eval_point(
            &cc,
            &mut bufs,
            &bases,
            &resolved,
            &[],
            &[],
            &mut [],
            &mut stack,
        );
        let w = if read_slot == 0 { &bufs[1] } else { &bufs[0] };
        assert_eq!(w[3], 3.0);
    }

    #[test]
    fn temps_flow_between_statements() {
        // tmp0 = 2*u[t]; u[t+1] = tmp0 + tmp0
        let cl = Cluster {
            stmts: vec![
                Stmt::Let {
                    temp: 0,
                    value: IExpr::Mul(vec![IExpr::Const(2.0), load(0, 0, 0)]),
                },
                store(0, IExpr::Add(vec![IExpr::Temp(0), IExpr::Temp(0)])),
            ],
            params: vec![],
            num_temps: 1,
        };
        let cc = compile_cluster(&cl);
        let mut read = vec![3.0f32; 4];
        let mut write = vec![0.0f32; 4];
        let rs = cc.stream_slot(FieldId(0), 0).unwrap();
        let resolved: Vec<isize> = cc.offsets.iter().map(|(_, d)| d[0] as isize).collect();
        let mut temps = vec![0.0f32; 1];
        let mut stack = [0.0f32; 16];
        let mut bufs: Vec<&mut [f32]> = if rs == 0 {
            vec![&mut read, &mut write]
        } else {
            vec![&mut write, &mut read]
        };
        eval_point(
            &cc,
            &mut bufs,
            &[1, 1],
            &resolved,
            &[],
            &[],
            &mut temps,
            &mut stack,
        );
        let w = if rs == 0 { &bufs[1] } else { &bufs[0] };
        assert_eq!(w[1], 12.0);
        assert_eq!(temps[0], 6.0);
    }

    #[test]
    fn pow_variants() {
        assert_eq!(powi(3.0, 2), 9.0);
        assert_eq!(powi(2.0, -1), 0.5);
        assert_eq!(powi(2.0, -2), 0.25);
        assert_eq!(powi(2.0, 3), 8.0);
    }

    #[test]
    fn scalars_and_consts_dedup() {
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Add(vec![
                    IExpr::Mul(vec![IExpr::Sym("dt".into()), IExpr::Const(2.0)]),
                    IExpr::Mul(vec![IExpr::Sym("dt".into()), IExpr::Const(2.0)]),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let cc = compile_cluster(&cl);
        assert_eq!(cc.scalars, vec!["dt".to_string()]);
        assert_eq!(cc.consts, vec![2.0]);
    }

    #[test]
    #[should_panic]
    fn offset_store_rejected() {
        let cl = Cluster {
            stmts: vec![Stmt::Store {
                target: IA {
                    field: FieldId(0),
                    time_offset: 1,
                    deltas: vec![1],
                },
                value: IExpr::Const(0.0),
            }],
            params: vec![],
            num_temps: 0,
        };
        compile_cluster(&cl);
    }
}
