//! Bytecode compilation of cluster statements.
//!
//! Each cluster body (per-point `Let`s and `Store`s) compiles to a flat
//! stack program. Field accesses become `(stream slot, offset index)`
//! pairs; the offset table is resolved to concrete linear deltas once per
//! kernel launch, when the rank-local strides are known. This plays the
//! role of the paper's JIT-compiled C kernel body.

use mpix_symbolic::{FieldId, UnaryFn};

use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::IExpr;

/// Source of a fused multiplier coefficient: any point-invariant (and
/// therefore lane-invariant) push. Per-point temporaries never appear
/// here — they vary across a vector strip.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum CoeffSrc {
    /// Constant-pool slot.
    Const(u32),
    /// Runtime-scalar slot.
    Scalar(u32),
    /// Precomputed-parameter slot.
    Param(u32),
}

impl CoeffSrc {
    /// Resolve the coefficient value.
    #[inline]
    pub fn value(self, consts: &[f32], scalars: &[f32], params: &[f32]) -> f32 {
        match self {
            CoeffSrc::Const(i) => consts[i as usize],
            CoeffSrc::Scalar(i) => scalars[i as usize],
            CoeffSrc::Param(i) => params[i as usize],
        }
    }
}

/// One bytecode instruction. The machine is a straightforward f32 stack
/// machine; temporaries and parameters live in side tables.
///
/// The last three opcodes are *superinstructions* introduced by
/// [`fuse_cluster`]: they never come out of [`compile_cluster`] directly
/// but collapse the dominant `Load/Mul/Add` chains of star stencils into
/// single dispatches. All fused arithmetic is evaluated mul-then-add
/// with two roundings (no FMA contraction), so a fused program is
/// bitwise-identical to its unfused original on every execution path.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Op {
    /// Push a constant from the pool.
    Const(u32),
    /// Push a runtime scalar (dt, h_x, …) by slot.
    Scalar(u32),
    /// Push a precomputed parameter by slot.
    Param(u32),
    /// Push a per-point temporary.
    Temp(u32),
    /// Pop into a per-point temporary.
    SetTemp(u32),
    /// Push `field_stream[base + offset_table[idx]]`.
    Load { stream: u32, off: u32 },
    /// Pop into `field_stream[base]` (stores are always at the point).
    Store { stream: u32 },
    /// Pop 2, push sum.
    Add,
    /// Pop 2, push product.
    Mul,
    /// Pop 1, push `x^n` (n may be negative).
    Pow(i32),
    /// Pop 1, push `f(x)` for an elementary function.
    Call(UnaryFn),
    /// Fused `Mul` + `Add`: pop `y`, `x`; `top += x * y`.
    MulAdd,
    /// Fused stencil-tap read: push `coeff * stream[base + off]`.
    LoadMul {
        coeff: CoeffSrc,
        stream: u32,
        off: u32,
    },
    /// Fused stencil-tap accumulate: `top += coeff * stream[base + off]`.
    LoadMulAdd {
        coeff: CoeffSrc,
        stream: u32,
        off: u32,
    },
}

impl Op {
    /// Net stack effect of executing this op.
    pub fn stack_effect(self) -> i32 {
        match self {
            Op::Const(_)
            | Op::Scalar(_)
            | Op::Param(_)
            | Op::Temp(_)
            | Op::Load { .. }
            | Op::LoadMul { .. } => 1,
            Op::SetTemp(_) | Op::Store { .. } | Op::Add | Op::Mul => -1,
            Op::Pow(_) | Op::Call(_) | Op::LoadMulAdd { .. } => 0,
            Op::MulAdd => -2,
        }
    }

    /// Floating-point operations this op performs per point (`Pow` is
    /// costed like the `powi` lowering: one op for the fast cases).
    pub fn flops(self) -> usize {
        match self {
            Op::Add | Op::Mul | Op::LoadMul { .. } | Op::Pow(_) | Op::Call(_) => 1,
            Op::MulAdd | Op::LoadMulAdd { .. } => 2,
            _ => 0,
        }
    }

    /// The coefficient source when this op is a point-invariant push.
    pub fn as_coeff(self) -> Option<CoeffSrc> {
        match self {
            Op::Const(i) => Some(CoeffSrc::Const(i)),
            Op::Scalar(i) => Some(CoeffSrc::Scalar(i)),
            Op::Param(i) => Some(CoeffSrc::Param(i)),
            _ => None,
        }
    }

    /// Temp slot this op reads, if any.
    pub fn temp_read(self) -> Option<u32> {
        match self {
            Op::Temp(i) => Some(i),
            _ => None,
        }
    }

    /// Temp slot this op writes, if any.
    pub fn temp_written(self) -> Option<u32> {
        match self {
            Op::SetTemp(i) => Some(i),
            _ => None,
        }
    }

    /// Stream slot this op loads from (fused taps included), if any.
    pub fn stream_read(self) -> Option<u32> {
        match self {
            Op::Load { stream, .. }
            | Op::LoadMul { stream, .. }
            | Op::LoadMulAdd { stream, .. } => Some(stream),
            _ => None,
        }
    }

    /// Stream slot this op stores to, if any.
    pub fn stream_written(self) -> Option<u32> {
        match self {
            Op::Store { stream } => Some(stream),
            _ => None,
        }
    }

    /// Fused coefficient this op carries, if any.
    pub fn coeff(self) -> Option<CoeffSrc> {
        match self {
            Op::LoadMul { coeff, .. } | Op::LoadMulAdd { coeff, .. } => Some(coeff),
            _ => None,
        }
    }

    /// Is this op one of the superinstructions introduced by
    /// [`fuse_cluster`]? Fusion metadata for the error analysis: a fused
    /// op's rounding behaviour is declared by [`Op::rounding_events`],
    /// not inferred from the unfused pair it replaced.
    pub fn is_fused(self) -> bool {
        matches!(
            self,
            Op::MulAdd | Op::LoadMul { .. } | Op::LoadMulAdd { .. }
        )
    }

    /// Number of rounded f32 results this op materializes per point
    /// under `model` — the table the static floating-point error
    /// analysis (`mpix-analysis::fp`) consumes instead of hard-coding
    /// per-op knowledge.
    ///
    /// Every interpreter and JIT backend evaluates the fused mul+add
    /// pairs as two separately rounded operations ([`RoundingModel::EXECUTED`]),
    /// which is what keeps fused programs bitwise-identical to their
    /// unfused originals. A hypothetical FMA-contracting backend
    /// ([`RoundingModel::FMA_CONTRACTED`]) would round the fused pair
    /// once; the analysis models that distinctly, which is why the
    /// count is declared here rather than assumed.
    pub fn rounding_events(self, model: RoundingModel) -> usize {
        match self {
            Op::Add | Op::Mul | Op::Call(_) | Op::LoadMul { .. } => 1,
            // Mirrors the `powi` lowering: v*v, 1/v and 1/(v*v) round
            // once per multiply/divide; the generic case is bounded by
            // the |n|-long multiply chain.
            Op::Pow(n) => match n {
                0 | 1 => 0,
                2 | -1 => 1,
                -2 => 2,
                n => n.unsigned_abs() as usize,
            },
            Op::MulAdd | Op::LoadMulAdd { .. } => {
                if model.fma_contraction {
                    1
                } else {
                    2
                }
            }
            _ => 0,
        }
    }
}

/// How fused mul+add superinstructions round, declared per backend
/// family and consumed by [`Op::rounding_events`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RoundingModel {
    /// `true`: fused pairs round once (hardware FMA). `false`: mul and
    /// add each round (the semantics every shipped backend implements).
    pub fma_contraction: bool,
}

impl RoundingModel {
    /// What actually runs: mul-then-add with two roundings.
    pub const EXECUTED: RoundingModel = RoundingModel {
        fma_contraction: false,
    };
    /// A single-rounding FMA backend (none shipped; modeled distinctly
    /// so precision certificates stay honest if one lands).
    pub const FMA_CONTRACTED: RoundingModel = RoundingModel {
        fma_contraction: true,
    };
}

/// A compiled cluster body.
#[derive(Clone, Debug)]
pub struct CompiledCluster {
    pub ops: Vec<Op>,
    pub consts: Vec<f32>,
    /// Runtime scalar names, indexed by `Op::Scalar` slot.
    pub scalars: Vec<String>,
    /// Streams: distinct `(field, time offset)` arrays touched.
    pub streams: Vec<(FieldId, i32)>,
    /// Which streams are written.
    pub written: Vec<bool>,
    /// Offset table: `(stream slot, index deltas)` per `Op::Load` entry.
    pub offsets: Vec<(u32, Vec<i32>)>,
    pub num_temps: usize,
    /// Maximum stack depth needed.
    pub max_stack: usize,
}

impl CompiledCluster {
    pub fn stream_slot(&self, field: FieldId, toff: i32) -> Option<usize> {
        self.streams
            .iter()
            .position(|&(f, t)| (f, t) == (field, toff))
    }

    /// Floating-point operations per evaluated point (counting fused ops
    /// at their full arithmetic weight, so fusion never changes it).
    pub fn flop_count(&self) -> usize {
        self.ops.iter().map(|op| op.flops()).sum()
    }

    /// Walk the program with the static stack-effect table: returns the
    /// maximum depth reached and asserts the program is balanced and
    /// never pops an empty stack.
    pub fn check_stack(&self) -> usize {
        let mut depth = 0i32;
        let mut max = 0i32;
        for op in &self.ops {
            // Fused/binary ops read operands below the net effect.
            let reads = match op {
                Op::MulAdd => 3,
                Op::Add | Op::Mul => 2,
                Op::SetTemp(_) | Op::Store { .. } | Op::Pow(_) | Op::Call(_) => 1,
                Op::LoadMulAdd { .. } => 1,
                _ => 0,
            };
            assert!(depth >= reads, "stack underflow at {op:?}");
            depth += op.stack_effect();
            max = max.max(depth);
        }
        assert_eq!(depth, 0, "unbalanced stack");
        max as usize
    }

    /// Visit every op in program order with its index and the stack depth
    /// *before* the op executes. The iteration hook the bytecode lints
    /// (`mpix-analysis::lint`) walk the program with, so they track
    /// def-use state without re-implementing the stack model.
    pub fn visit_ops(&self, mut f: impl FnMut(usize, Op, i32)) {
        let mut depth = 0i32;
        for (i, &op) in self.ops.iter().enumerate() {
            f(i, op, depth);
            depth += op.stack_effect();
        }
    }
}

// ---------------------------------------------------------------------------
// Superinstruction fusion (peephole, post-compilation)
// ---------------------------------------------------------------------------

/// Peephole-fuse a compiled program: constant folding, then collapsing
/// `coeff/Load/Mul[/Add]` stencil-tap chains and `Mul/Add` pairs into
/// the fused opcodes. Streams, offsets, `written`, temps and scalars are
/// untouched; `max_stack` is recomputed (it can only shrink). The fused
/// program computes bit-for-bit the same values as the original: fused
/// ops still round the multiply and the add separately.
pub fn fuse_cluster(mut cc: CompiledCluster) -> CompiledCluster {
    fold_constants(&mut cc);
    let mut out: Vec<Op> = Vec::with_capacity(cc.ops.len());
    let ops = &cc.ops;
    // Running stack depth at the current peephole position: a trailing
    // `Add` may only be folded into the superinstruction when an
    // accumulator value is already on the stack beneath the tap.
    let mut depth = 0i32;
    let mut i = 0;
    while i < ops.len() {
        // coeff, Load, Mul [, Add]  — and the commuted Load, coeff, Mul.
        let tap = match (ops.get(i), ops.get(i + 1), ops.get(i + 2)) {
            (Some(&c), Some(&Op::Load { stream, off }), Some(Op::Mul)) => {
                c.as_coeff().map(|coeff| (coeff, stream, off))
            }
            (Some(&Op::Load { stream, off }), Some(&c), Some(Op::Mul)) => {
                c.as_coeff().map(|coeff| (coeff, stream, off))
            }
            _ => None,
        };
        if let Some((coeff, stream, off)) = tap {
            let op = if ops.get(i + 3) == Some(&Op::Add) && depth >= 1 {
                i += 4;
                Op::LoadMulAdd { coeff, stream, off }
            } else {
                i += 3;
                Op::LoadMul { coeff, stream, off }
            };
            depth += op.stack_effect();
            out.push(op);
            continue;
        }
        if ops[i] == Op::Mul && ops.get(i + 1) == Some(&Op::Add) && depth >= 3 {
            depth += Op::MulAdd.stack_effect();
            out.push(Op::MulAdd);
            i += 2;
            continue;
        }
        depth += ops[i].stack_effect();
        out.push(ops[i]);
        i += 1;
    }
    cc.ops = out;
    cc.max_stack = cc.check_stack().max(1);
    cc
}

/// Fold constant subexpressions in the flat program: any `Const Const
/// Add/Mul`, `Const Pow`, or `Const Call` collapses to one `Const`.
/// Iterates to a fixpoint so nested constant chains fold completely.
///
/// Public so the verification passes (`mpix-analysis`) can establish the
/// post-folding baseline that `fuse_cluster` must preserve: folding may
/// legitimately drop flops, but fusion on top of it must not.
pub fn fold_constants(cc: &mut CompiledCluster) {
    loop {
        let mut changed = false;
        let mut out: Vec<Op> = Vec::with_capacity(cc.ops.len());
        let mut i = 0;
        while i < cc.ops.len() {
            let folded = match (cc.ops.get(i), cc.ops.get(i + 1), cc.ops.get(i + 2)) {
                (Some(&Op::Const(a)), Some(&Op::Const(b)), Some(Op::Add)) => {
                    Some((cc.consts[a as usize] + cc.consts[b as usize], 3))
                }
                (Some(&Op::Const(a)), Some(&Op::Const(b)), Some(Op::Mul)) => {
                    Some((cc.consts[a as usize] * cc.consts[b as usize], 3))
                }
                (Some(&Op::Const(a)), Some(&Op::Pow(n)), _) => {
                    Some((powi(cc.consts[a as usize], n), 2))
                }
                (Some(&Op::Const(a)), Some(&Op::Call(fx)), _) => {
                    Some((fx.apply_f32(cc.consts[a as usize]), 2))
                }
                _ => None,
            };
            if let Some((v, w)) = folded {
                out.push(Op::Const(intern_const(&mut cc.consts, v)));
                i += w;
                changed = true;
            } else {
                out.push(cc.ops[i]);
                i += 1;
            }
        }
        cc.ops = out;
        if !changed {
            return;
        }
    }
}

fn intern_const(consts: &mut Vec<f32>, v: f32) -> u32 {
    if let Some(i) = consts.iter().position(|c| c.to_bits() == v.to_bits()) {
        return i as u32;
    }
    consts.push(v);
    (consts.len() - 1) as u32
}

struct Compiler {
    ops: Vec<Op>,
    consts: Vec<f32>,
    scalars: Vec<String>,
    streams: Vec<(FieldId, i32)>,
    written: Vec<bool>,
    offsets: Vec<(u32, Vec<i32>)>,
    depth: usize,
    max_depth: usize,
}

impl Compiler {
    fn push_depth(&mut self) {
        self.depth += 1;
        self.max_depth = self.max_depth.max(self.depth);
    }
    fn pop_depth(&mut self, n: usize) {
        self.depth -= n;
    }

    fn const_slot(&mut self, v: f64) -> u32 {
        let v = v as f32;
        if let Some(i) = self.consts.iter().position(|&c| c == v) {
            return i as u32;
        }
        self.consts.push(v);
        (self.consts.len() - 1) as u32
    }

    fn scalar_slot(&mut self, name: &str) -> u32 {
        if let Some(i) = self.scalars.iter().position(|s| s == name) {
            return i as u32;
        }
        self.scalars.push(name.to_string());
        (self.scalars.len() - 1) as u32
    }

    fn stream_slot(&mut self, field: FieldId, toff: i32) -> u32 {
        if let Some(i) = self
            .streams
            .iter()
            .position(|&(f, t)| (f, t) == (field, toff))
        {
            return i as u32;
        }
        self.streams.push((field, toff));
        self.written.push(false);
        (self.streams.len() - 1) as u32
    }

    fn offset_slot(&mut self, stream: u32, deltas: &[i32]) -> u32 {
        if let Some(i) = self
            .offsets
            .iter()
            .position(|(s, d)| *s == stream && d == deltas)
        {
            return i as u32;
        }
        self.offsets.push((stream, deltas.to_vec()));
        (self.offsets.len() - 1) as u32
    }

    fn emit_expr(&mut self, e: &IExpr) {
        match e {
            IExpr::Const(c) => {
                let s = self.const_slot(*c);
                self.ops.push(Op::Const(s));
                self.push_depth();
            }
            IExpr::Sym(name) => {
                let s = self.scalar_slot(name);
                self.ops.push(Op::Scalar(s));
                self.push_depth();
            }
            IExpr::Param(i) => {
                self.ops.push(Op::Param(*i as u32));
                self.push_depth();
            }
            IExpr::Temp(i) => {
                self.ops.push(Op::Temp(*i as u32));
                self.push_depth();
            }
            IExpr::Load(a) => {
                let stream = self.stream_slot(a.field, a.time_offset);
                let off = self.offset_slot(stream, &a.deltas);
                self.ops.push(Op::Load { stream, off });
                self.push_depth();
            }
            IExpr::Add(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.emit_expr(x);
                    if i > 0 {
                        self.ops.push(Op::Add);
                        self.pop_depth(1);
                    }
                }
            }
            IExpr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    self.emit_expr(x);
                    if i > 0 {
                        self.ops.push(Op::Mul);
                        self.pop_depth(1);
                    }
                }
            }
            IExpr::Pow(b, e2) => {
                self.emit_expr(b);
                self.ops.push(Op::Pow(*e2));
            }
            IExpr::Func(fx, b) => {
                self.emit_expr(b);
                self.ops.push(Op::Call(*fx));
            }
        }
    }
}

/// Compile a cluster body into bytecode.
pub fn compile_cluster(cl: &Cluster) -> CompiledCluster {
    let mut c = Compiler {
        ops: Vec::new(),
        consts: Vec::new(),
        scalars: Vec::new(),
        streams: Vec::new(),
        written: Vec::new(),
        offsets: Vec::new(),
        depth: 0,
        max_depth: 0,
    };
    for s in &cl.stmts {
        match s {
            Stmt::Let { temp, value } => {
                c.emit_expr(value);
                c.ops.push(Op::SetTemp(*temp as u32));
                c.pop_depth(1);
            }
            Stmt::Store { target, value } => {
                assert!(
                    target.deltas.iter().all(|&d| d == 0),
                    "stores must be at the evaluation point"
                );
                c.emit_expr(value);
                let stream = c.stream_slot(target.field, target.time_offset);
                c.written[stream as usize] = true;
                c.ops.push(Op::Store { stream });
                c.pop_depth(1);
            }
        }
    }
    assert_eq!(c.depth, 0, "unbalanced stack in compiled cluster");
    CompiledCluster {
        ops: c.ops,
        consts: c.consts,
        scalars: c.scalars,
        streams: c.streams,
        written: c.written,
        offsets: c.offsets,
        num_temps: cl.num_temps,
        max_stack: c.max_depth,
    }
}

/// Evaluate one point of a compiled cluster. `bases[slot]` is the linear
/// index of the evaluation point in stream `slot`'s buffer;
/// `resolved_offsets[k]` the linear delta of offset entry `k`.
///
/// This is the scalar reference interpreter; the executor uses a
/// specialized inner loop built on the same instruction set.
#[allow(clippy::too_many_arguments)]
pub fn eval_point(
    cc: &CompiledCluster,
    buffers: &mut [&mut [f32]],
    bases: &[usize],
    resolved_offsets: &[isize],
    scalar_values: &[f32],
    param_values: &[f32],
    temps: &mut [f32],
    stack: &mut [f32],
) {
    let mut sp = 0usize;
    for op in &cc.ops {
        match *op {
            Op::Const(i) => {
                stack[sp] = cc.consts[i as usize];
                sp += 1;
            }
            Op::Scalar(i) => {
                stack[sp] = scalar_values[i as usize];
                sp += 1;
            }
            Op::Param(i) => {
                stack[sp] = param_values[i as usize];
                sp += 1;
            }
            Op::Temp(i) => {
                stack[sp] = temps[i as usize];
                sp += 1;
            }
            Op::SetTemp(i) => {
                sp -= 1;
                temps[i as usize] = stack[sp];
            }
            Op::Load { stream, off } => {
                let idx = bases[stream as usize] as isize + resolved_offsets[off as usize];
                stack[sp] = buffers[stream as usize][idx as usize];
                sp += 1;
            }
            Op::Store { stream } => {
                sp -= 1;
                let idx = bases[stream as usize];
                buffers[stream as usize][idx] = stack[sp];
            }
            Op::Add => {
                sp -= 1;
                stack[sp - 1] += stack[sp];
            }
            Op::Mul => {
                sp -= 1;
                stack[sp - 1] *= stack[sp];
            }
            Op::Pow(n) => {
                let v = stack[sp - 1];
                stack[sp - 1] = powi(v, n);
            }
            Op::Call(fx) => {
                stack[sp - 1] = fx.apply_f32(stack[sp - 1]);
            }
            Op::MulAdd => {
                sp -= 2;
                stack[sp - 1] += stack[sp] * stack[sp + 1];
            }
            Op::LoadMul { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalar_values, param_values);
                let idx = bases[stream as usize] as isize + resolved_offsets[off as usize];
                stack[sp] = c * buffers[stream as usize][idx as usize];
                sp += 1;
            }
            Op::LoadMulAdd { coeff, stream, off } => {
                let c = coeff.value(&cc.consts, scalar_values, param_values);
                let idx = bases[stream as usize] as isize + resolved_offsets[off as usize];
                stack[sp - 1] += c * buffers[stream as usize][idx as usize];
            }
        }
    }
}

/// `f32` integer power, matching `Pow` semantics (negative = reciprocal).
#[inline]
pub fn powi(v: f32, n: i32) -> f32 {
    match n {
        2 => v * v,
        -1 => 1.0 / v,
        -2 => 1.0 / (v * v),
        _ => v.powi(n),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::iexpr::IdxAccess as IA;

    fn store(field: u32, value: IExpr) -> Stmt {
        Stmt::Store {
            target: IA {
                field: FieldId(field),
                time_offset: 1,
                deltas: vec![0],
            },
            value,
        }
    }

    fn load(field: u32, toff: i32, dx: i32) -> IExpr {
        IExpr::Load(IA {
            field: FieldId(field),
            time_offset: toff,
            deltas: vec![dx],
        })
    }

    #[test]
    fn compile_and_eval_simple_stencil() {
        // u[t+1] = 0.5*(u[t,x-1] + u[t,x+1])
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Mul(vec![
                    IExpr::Const(0.5),
                    IExpr::Add(vec![load(0, 0, -1), load(0, 0, 1)]),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let cc = compile_cluster(&cl);
        assert_eq!(cc.streams.len(), 2); // (f0,t0) read, (f0,t1) written
        assert!(cc.max_stack <= 3);

        // 1-D buffers of length 8, halo 1, point at index 3.
        let mut read = vec![0.0f32; 8];
        read[2] = 2.0;
        read[4] = 4.0;
        let mut write = vec![0.0f32; 8];
        let read_slot = cc.stream_slot(FieldId(0), 0).unwrap();
        let write_slot = cc.stream_slot(FieldId(0), 1).unwrap();
        let mut bases = vec![0usize; 2];
        bases[read_slot] = 3;
        bases[write_slot] = 3;
        let resolved: Vec<isize> = cc.offsets.iter().map(|(_, d)| d[0] as isize).collect();
        let mut bufs: Vec<&mut [f32]> = Vec::new();
        // Order buffers by slot.
        if read_slot == 0 {
            bufs.push(&mut read);
            bufs.push(&mut write);
        } else {
            bufs.push(&mut write);
            bufs.push(&mut read);
        }
        let mut stack = [0.0f32; 16];
        eval_point(
            &cc,
            &mut bufs,
            &bases,
            &resolved,
            &[],
            &[],
            &mut [],
            &mut stack,
        );
        let w = if read_slot == 0 { &bufs[1] } else { &bufs[0] };
        assert_eq!(w[3], 3.0);
    }

    #[test]
    fn temps_flow_between_statements() {
        // tmp0 = 2*u[t]; u[t+1] = tmp0 + tmp0
        let cl = Cluster {
            stmts: vec![
                Stmt::Let {
                    temp: 0,
                    value: IExpr::Mul(vec![IExpr::Const(2.0), load(0, 0, 0)]),
                },
                store(0, IExpr::Add(vec![IExpr::Temp(0), IExpr::Temp(0)])),
            ],
            params: vec![],
            num_temps: 1,
        };
        let cc = compile_cluster(&cl);
        let mut read = vec![3.0f32; 4];
        let mut write = vec![0.0f32; 4];
        let rs = cc.stream_slot(FieldId(0), 0).unwrap();
        let resolved: Vec<isize> = cc.offsets.iter().map(|(_, d)| d[0] as isize).collect();
        let mut temps = vec![0.0f32; 1];
        let mut stack = [0.0f32; 16];
        let mut bufs: Vec<&mut [f32]> = if rs == 0 {
            vec![&mut read, &mut write]
        } else {
            vec![&mut write, &mut read]
        };
        eval_point(
            &cc,
            &mut bufs,
            &[1, 1],
            &resolved,
            &[],
            &[],
            &mut temps,
            &mut stack,
        );
        let w = if rs == 0 { &bufs[1] } else { &bufs[0] };
        assert_eq!(w[1], 12.0);
        assert_eq!(temps[0], 6.0);
    }

    #[test]
    fn pow_variants() {
        assert_eq!(powi(3.0, 2), 9.0);
        assert_eq!(powi(2.0, -1), 0.5);
        assert_eq!(powi(2.0, -2), 0.25);
        assert_eq!(powi(2.0, 3), 8.0);
    }

    #[test]
    fn scalars_and_consts_dedup() {
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Add(vec![
                    IExpr::Mul(vec![IExpr::Sym("dt".into()), IExpr::Const(2.0)]),
                    IExpr::Mul(vec![IExpr::Sym("dt".into()), IExpr::Const(2.0)]),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let cc = compile_cluster(&cl);
        assert_eq!(cc.scalars, vec!["dt".to_string()]);
        assert_eq!(cc.consts, vec![2.0]);
    }

    /// A 1-D SDO-2 star stencil: u[t+1] = c0*u[t,x-1] + c1*u[t,x] + c0*u[t,x+1].
    fn star_cluster() -> Cluster {
        Cluster {
            stmts: vec![store(
                0,
                IExpr::Add(vec![
                    IExpr::Mul(vec![IExpr::Const(0.25), load(0, 0, -1)]),
                    IExpr::Mul(vec![IExpr::Const(0.5), load(0, 0, 0)]),
                    IExpr::Mul(vec![IExpr::Const(0.25), load(0, 0, 1)]),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        }
    }

    fn eval_1d(cc: &CompiledCluster, src: &[f32], at: usize) -> f32 {
        let mut read = src.to_vec();
        let mut write = vec![0.0f32; src.len()];
        let rs = cc.stream_slot(FieldId(0), 0).unwrap();
        let resolved: Vec<isize> = cc.offsets.iter().map(|(_, d)| d[0] as isize).collect();
        let mut temps = vec![0.0f32; cc.num_temps];
        let mut stack = vec![0.0f32; cc.max_stack.max(4)];
        let mut bufs: Vec<&mut [f32]> = if rs == 0 {
            vec![&mut read, &mut write]
        } else {
            vec![&mut write, &mut read]
        };
        eval_point(
            cc,
            &mut bufs,
            &[at, at],
            &resolved,
            &[],
            &[],
            &mut temps,
            &mut stack,
        );
        write[at]
    }

    #[test]
    fn fusion_collapses_star_stencil_to_superinstructions() {
        let cc = compile_cluster(&star_cluster());
        let fused = fuse_cluster(cc.clone());
        // First tap becomes LoadMul, the remaining two LoadMulAdd, plus
        // the final Store: four dispatches instead of eleven.
        assert!(
            fused.ops.len() < cc.ops.len(),
            "no fusion happened: {:?}",
            fused.ops
        );
        assert_eq!(
            fused.ops.len(),
            4,
            "expected LoadMul + 2×LoadMulAdd + Store, got {:?}",
            fused.ops
        );
        assert!(matches!(fused.ops[0], Op::LoadMul { .. }));
        assert!(matches!(fused.ops[1], Op::LoadMulAdd { .. }));
        assert!(matches!(fused.ops[2], Op::LoadMulAdd { .. }));
        assert!(matches!(fused.ops[3], Op::Store { .. }));
    }

    #[test]
    fn fusion_preserves_metadata_and_stack_accounting() {
        let cc = compile_cluster(&star_cluster());
        let fused = fuse_cluster(cc.clone());
        assert_eq!(fused.streams, cc.streams);
        assert_eq!(fused.written, cc.written);
        assert_eq!(fused.offsets, cc.offsets);
        assert_eq!(fused.scalars, cc.scalars);
        assert_eq!(fused.num_temps, cc.num_temps);
        // Stack accounting: the static walk agrees with the recorded
        // max_stack and fusion only shrinks the peak.
        assert_eq!(fused.check_stack().max(1), fused.max_stack);
        assert!(fused.max_stack <= cc.max_stack);
        // Flop accounting: fused ops are costed at full weight, so the
        // GFLOP/s numerator is unchanged by fusion.
        assert_eq!(fused.flop_count(), cc.flop_count());
    }

    #[test]
    fn fused_program_is_bitwise_equal_to_unfused() {
        let cc = compile_cluster(&star_cluster());
        let fused = fuse_cluster(cc.clone());
        let src: Vec<f32> = (0..16).map(|i| (i as f32 * 0.37).sin()).collect();
        for at in 1..15 {
            let a = eval_1d(&cc, &src, at);
            let b = eval_1d(&fused, &src, at);
            assert_eq!(a.to_bits(), b.to_bits(), "point {at}: {a} vs {b}");
        }
    }

    #[test]
    fn rounding_table_distinguishes_fused_semantics() {
        // Fusion must conserve rounding events under the executed
        // model (that is what makes it bitwise-invariant), while the
        // contracted model rounds each fused pair once — strictly
        // fewer events wherever a superinstruction landed.
        let cc = compile_cluster(&star_cluster());
        let fused = fuse_cluster(cc.clone());
        let events = |cc: &CompiledCluster, m: RoundingModel| -> usize {
            cc.ops.iter().map(|op| op.rounding_events(m)).sum()
        };
        assert_eq!(
            events(&cc, RoundingModel::EXECUTED),
            events(&fused, RoundingModel::EXECUTED)
        );
        assert!(fused.ops.iter().any(|op| op.is_fused()));
        assert!(
            events(&fused, RoundingModel::FMA_CONTRACTED) < events(&fused, RoundingModel::EXECUTED)
        );
        // Unfused ops are unaffected by the contraction flag.
        assert_eq!(
            Op::Add.rounding_events(RoundingModel::FMA_CONTRACTED),
            Op::Add.rounding_events(RoundingModel::EXECUTED)
        );
    }

    #[test]
    fn muladd_fuses_temp_products() {
        // tmp0 = u[t]; u[t+1] = u[t,x+1] + tmp0*tmp0 (Mul of two temps
        // cannot become a LoadMul — it must fuse to MulAdd).
        let cl = Cluster {
            stmts: vec![
                Stmt::Let {
                    temp: 0,
                    value: load(0, 0, 0),
                },
                store(
                    0,
                    IExpr::Add(vec![
                        load(0, 0, 1),
                        IExpr::Mul(vec![IExpr::Temp(0), IExpr::Temp(0)]),
                    ]),
                ),
            ],
            params: vec![],
            num_temps: 1,
        };
        let fused = fuse_cluster(compile_cluster(&cl));
        assert!(
            fused.ops.contains(&Op::MulAdd),
            "expected MulAdd in {:?}",
            fused.ops
        );
        let src: Vec<f32> = (0..8).map(|i| i as f32 + 0.5).collect();
        assert_eq!(eval_1d(&fused, &src, 3), src[4] + src[3] * src[3]);
    }

    #[test]
    fn constant_folding_collapses_const_chains() {
        // u[t+1] = (2*3) * u[t] — simplify would normally fold this, but
        // the bytecode pass must handle it anyway.
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Mul(vec![IExpr::Const(2.0), IExpr::Const(3.0), load(0, 0, 0)]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let fused = fuse_cluster(compile_cluster(&cl));
        // [Const 2, Const 3, Mul, Load, Mul, Store] folds to a single
        // LoadMul(6.0) + Store.
        assert_eq!(fused.ops.len(), 2, "{:?}", fused.ops);
        let src = vec![1.5f32; 4];
        assert_eq!(eval_1d(&fused, &src, 1), 9.0);
    }

    #[test]
    fn loadmuladd_not_fused_on_empty_stack() {
        // u[t+1] = c*u[t] (no accumulator beneath): the trailing Add in
        // a sibling expression must not be swallowed when depth is 0.
        let cl = Cluster {
            stmts: vec![store(
                0,
                IExpr::Add(vec![
                    IExpr::Mul(vec![IExpr::Const(0.5), load(0, 0, -1)]),
                    load(0, 0, 1),
                ]),
            )],
            params: vec![],
            num_temps: 0,
        };
        let cc = compile_cluster(&cl);
        let fused = fuse_cluster(cc.clone());
        fused.check_stack();
        let src: Vec<f32> = (0..8).map(|i| i as f32).collect();
        for at in 1..7 {
            assert_eq!(
                eval_1d(&cc, &src, at).to_bits(),
                eval_1d(&fused, &src, at).to_bits()
            );
        }
    }

    #[test]
    #[should_panic]
    fn offset_store_rejected() {
        let cl = Cluster {
            stmts: vec![Stmt::Store {
                target: IA {
                    field: FieldId(0),
                    time_offset: 1,
                    deltas: vec![1],
                },
                value: IExpr::Const(0.0),
            }],
            params: vec![],
            num_temps: 0,
        };
        compile_cluster(&cl);
    }
}
