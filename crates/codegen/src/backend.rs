//! The multi-backend lowering seam: every execution strategy for a
//! compiled cluster — C emission, the bytecode interpreter, the native
//! JIT — is a [`Lowering`] registered as a peer behind one factory,
//! [`create_lowering`].
//!
//! The split of responsibilities is deliberate: the *executor* owns
//! everything that is backend-independent (time loop, halo exchanges,
//! region boxes, loop blocking, slab threading, sanitizer hooks), while
//! a backend owns only the innermost question — how to evaluate one
//! compiled cluster over one box. That keeps the three backends
//! interchangeable at the box boundary, which is exactly the boundary
//! the equivalence gate in `mpix-analysis` verifies.

use std::fmt;
use std::str::FromStr;

use mpix_dmp::regions::BoxNd;
use mpix_ir::iet::Node;
use mpix_symbolic::Context;

use crate::bytecode::CompiledCluster;
use crate::executor;
use crate::jit::JitLowering;

/// An execution/emission backend for compiled clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Emit C source in the paper's generated style (`cgen`). Execution
    /// delegates to the bytecode interpreter: this environment has no
    /// system C compiler, so the C backend is an *emission* peer whose
    /// runtime behaviour must match the interpreter by construction.
    C,
    /// The portable stack-bytecode interpreter with lane-vectorized
    /// strips (the default; runs everywhere).
    Bytecode,
    /// Native x86-64 AVX code generated at runtime through the vendored
    /// `cranelift` crate. Clusters the JIT cannot prove it supports fall
    /// back to the bytecode interpreter per cluster, so selecting this
    /// backend never changes results — only speed.
    Jit,
}

/// Every backend name [`create_lowering`] resolves, in display form.
pub const BACKEND_NAMES: [&str; 3] = ["c", "bytecode", "jit"];

/// All backends constructible on this host. `jit` is present only where
/// the generated code can actually run (x86-64 Linux with AVX).
pub fn available_backends() -> Vec<Backend> {
    let mut v = vec![Backend::C, Backend::Bytecode];
    if cranelift::TargetInfo::host().supports_jit() {
        v.push(Backend::Jit);
    }
    v
}

impl fmt::Display for Backend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Backend::C => "c",
            Backend::Bytecode => "bytecode",
            Backend::Jit => "jit",
        })
    }
}

impl FromStr for Backend {
    type Err = BackendError;

    fn from_str(s: &str) -> Result<Backend, BackendError> {
        match s.to_ascii_lowercase().as_str() {
            "c" => Ok(Backend::C),
            "bytecode" => Ok(Backend::Bytecode),
            "jit" => Ok(Backend::Jit),
            _ => Err(BackendError::Unknown {
                name: s.to_string(),
            }),
        }
    }
}

/// Why a backend name or request could not be satisfied.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BackendError {
    /// The name does not match any registered backend.
    Unknown { name: String },
    /// The backend exists but cannot run on this host.
    Unsupported { backend: Backend, reason: String },
}

impl fmt::Display for BackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendError::Unknown { name } => write!(
                f,
                "unknown backend {name:?}: available backends are {}",
                BACKEND_NAMES.join(", ")
            ),
            BackendError::Unsupported { backend, reason } => write!(
                f,
                "backend {backend} is not usable on this host ({reason}); \
                 available backends are {}",
                available_backends()
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        }
    }
}

impl std::error::Error for BackendError {}

/// Everything a kernel launch needs that the executor resolved for the
/// current space loop: the compiled body plus per-stream geometry and
/// runtime values. Bundled so the [`ClusterKernel`] call surface stays
/// stable as backends evolve.
pub struct Launch<'a> {
    pub cc: &'a CompiledCluster,
    /// Per-stream padded strides.
    pub strides: &'a [Vec<usize>],
    /// Per-stream halo widths.
    pub halos: &'a [usize],
    /// Offset-table entries resolved to linear deltas for this geometry.
    pub resolved: &'a [isize],
    /// Runtime scalar values, in `cc.scalars` order.
    pub scalars: &'a [f32],
    /// Precomputed parameter values.
    pub params: &'a [f32],
    /// Loop-blocking tile edge (0 = off).
    pub block: usize,
    /// Interpreter strip width (0/1 = scalar). The JIT ignores this —
    /// its lane count is fixed by the instruction set.
    pub vw: usize,
}

/// One compiled cluster, executable over region boxes. Implementations
/// must be bitwise-deterministic: the same launch over the same box
/// must produce results identical to the bytecode oracle (verified by
/// `mpix-analysis`' backend equivalence pass and
/// `tests/backend_equivalence.rs`).
pub trait ClusterKernel: Send + Sync {
    /// Execute over `bx` with whole-buffer bindings (single-threaded
    /// path; `buffers[s]` is stream `s`'s full padded buffer).
    fn exec_box(&self, launch: &Launch<'_>, bx: &BoxNd, buffers: &mut [&mut [f32]]);

    /// How many natively-compiled per-geometry modules this kernel holds
    /// in its cache. `0` for interpreter kernels, which compile nothing
    /// at run time. `tests/serve_load.rs` uses this to prove repeated
    /// runs reuse modules instead of re-encoding machine code.
    fn cached_modules(&self) -> usize {
        0
    }

    /// Execute over `bx` with split bindings (threaded path): shared
    /// read slices and per-worker write slabs carrying their linear
    /// start offset, as produced by the executor's slab partitioner.
    fn exec_box_mixed(
        &self,
        launch: &Launch<'_>,
        bx: &BoxNd,
        reads: &mut [Option<&[f32]>],
        writes: &mut [Option<(&mut [f32], usize)>],
    );
}

/// A code-generation backend: emits human-readable output for a lowered
/// IET and compiles cluster bodies into executable [`ClusterKernel`]s.
pub trait Lowering: Send + Sync {
    /// Which backend this is.
    fn backend(&self) -> Backend;

    /// Emit this backend's source/listing form of the lowered IET (C
    /// source for [`Backend::C`], a bytecode listing otherwise).
    fn emit(&self, iet: &Node, ctx: &Context) -> String;

    /// Compile one cluster into an executable kernel.
    fn compile(&self, cc: &CompiledCluster) -> Box<dyn ClusterKernel>;
}

/// Resolve a backend to its [`Lowering`] implementation.
///
/// Errors with the available-backend list when the request cannot be
/// satisfied on this host (e.g. `jit` without AVX); parse errors from
/// [`Backend::from_str`] carry the same actionable listing.
pub fn create_lowering(backend: Backend) -> Result<Box<dyn Lowering>, BackendError> {
    match backend {
        Backend::C => Ok(Box::new(CLowering)),
        Backend::Bytecode => Ok(Box::new(BytecodeLowering)),
        Backend::Jit => {
            let target = cranelift::TargetInfo::host();
            if !target.supports_jit() {
                return Err(BackendError::Unsupported {
                    backend: Backend::Jit,
                    reason: format!(
                        "requires x86_64-linux with AVX, host is {}-{} (avx: {})",
                        target.arch, target.os, target.has_avx
                    ),
                });
            }
            Ok(Box::new(JitLowering::new()))
        }
    }
}

// ---------------------------------------------------------------------------
// Bytecode backend
// ---------------------------------------------------------------------------

/// The interpreter backend: stateless, since the launch already carries
/// the compiled body; `compile` exists so the factory surface is uniform
/// across backends.
pub struct BytecodeLowering;

/// Interpreter kernel — delegates to the executor's strip/scalar
/// evaluation paths.
pub struct BytecodeKernel;

impl Lowering for BytecodeLowering {
    fn backend(&self) -> Backend {
        Backend::Bytecode
    }

    fn emit(&self, iet: &Node, _ctx: &Context) -> String {
        bytecode_listing(iet)
    }

    fn compile(&self, _cc: &CompiledCluster) -> Box<dyn ClusterKernel> {
        Box::new(BytecodeKernel)
    }
}

impl ClusterKernel for BytecodeKernel {
    fn exec_box(&self, l: &Launch<'_>, bx: &BoxNd, buffers: &mut [&mut [f32]]) {
        executor::exec_box(
            l.cc, bx, buffers, l.strides, l.halos, l.resolved, l.scalars, l.params, l.block, l.vw,
        );
    }

    fn exec_box_mixed(
        &self,
        l: &Launch<'_>,
        bx: &BoxNd,
        reads: &mut [Option<&[f32]>],
        writes: &mut [Option<(&mut [f32], usize)>],
    ) {
        executor::exec_box_mixed(
            l.cc, bx, reads, writes, l.strides, l.halos, l.resolved, l.scalars, l.params, l.block,
            l.vw,
        );
    }
}

/// Disassembly of every compiled space-loop body in the IET.
fn bytecode_listing(iet: &Node) -> String {
    let mut compiled = Vec::new();
    executor::collect_compiled(iet, &mut compiled);
    let mut out = String::new();
    for (i, cc) in compiled.iter().enumerate() {
        out.push_str(&format!(
            "; cluster {i}: {} ops, {} streams, {} temps, max stack {}\n",
            cc.ops.len(),
            cc.streams.len(),
            cc.num_temps,
            cc.max_stack
        ));
        for op in &cc.ops {
            out.push_str(&format!("  {op:?}\n"));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// C backend
// ---------------------------------------------------------------------------

/// The C-emission backend. `emit` produces the paper-style C source
/// (`cgen::emit_c`); `compile` returns the interpreter kernel, because
/// this environment has no system C compiler to close the loop — the
/// emitted C and the interpreter implement the same compiled clusters,
/// which is what the golden tests in `tests/codegen_golden.rs` pin.
pub struct CLowering;

impl Lowering for CLowering {
    fn backend(&self) -> Backend {
        Backend::C
    }

    fn emit(&self, iet: &Node, ctx: &Context) -> String {
        crate::cgen::emit_c(iet, ctx)
    }

    fn compile(&self, _cc: &CompiledCluster) -> Box<dyn ClusterKernel> {
        Box::new(BytecodeKernel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_names_round_trip() {
        for b in [Backend::C, Backend::Bytecode, Backend::Jit] {
            assert_eq!(b.to_string().parse::<Backend>().unwrap(), b);
        }
        // Case-insensitive.
        assert_eq!("JIT".parse::<Backend>().unwrap(), Backend::Jit);
    }

    #[test]
    fn unknown_backend_error_lists_available() {
        let err = "llvm".parse::<Backend>().unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("llvm"), "{msg}");
        for name in BACKEND_NAMES {
            assert!(msg.contains(name), "{msg} should list {name}");
        }
    }

    #[test]
    fn factory_resolves_every_available_backend() {
        for b in available_backends() {
            let lowering = create_lowering(b).unwrap();
            assert_eq!(lowering.backend(), b);
        }
    }

    #[test]
    fn bytecode_is_always_available() {
        assert!(available_backends().contains(&Backend::Bytecode));
    }
}
