//! Local stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace-internal
//! crate implements the slice of proptest's API our property tests use:
//! the [`Strategy`] trait with `prop_map`/`prop_flat_map`/`prop_recursive`,
//! range/tuple/`Just` strategies, `collection::vec`, `prop_oneof!`, and the
//! `proptest!`/`prop_assert*`/`prop_assume!` macros.
//!
//! Semantics vs. real proptest: generation is random (deterministic seed
//! derived from the test name, overridable with `PROPTEST_SEED`), rejects
//! from `prop_assume!` retry without consuming a case, and failures panic
//! with the seed and case number. There is **no shrinking** — failures
//! report the raw generated case, which our tests already format into
//! their assertion messages.

/// Deterministic splitmix64 generator used for all case generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn seed_from_u64(seed: u64) -> TestRng {
        TestRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)`; `n` must be nonzero.
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Why a single test case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: retry with fresh ones.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Per-block configuration; `#![proptest_config(...)]` in `proptest!`.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Give up if this many `prop_assume!` rejects pile up across the run.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            max_global_rejects: cases.saturating_mul(50).max(1000),
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig::with_cases(256)
    }
}

pub mod strategy {
    use super::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no intermediate `ValueTree`; a
    /// strategy directly produces values (no shrinking).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> U,
        {
            Map { base: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { base: self, f }
        }

        /// Recursive strategies: `self` generates leaves, `branch` builds
        /// one level given a strategy for the level below. `depth` bounds
        /// recursion; `_desired_size`/`_expected_branch` are accepted for
        /// API compatibility but unused (sizes are bounded by `depth`).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch: u32,
            branch: F,
        ) -> Recursive<Self::Value>
        where
            Self: Sized + 'static,
            S2: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
        {
            Recursive {
                leaf: self.boxed(),
                branch: Rc::new(move |inner| branch(inner).boxed()),
                depth,
            }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Rc::new(self))
        }
    }

    /// Type-erased, cheaply clonable strategy handle.
    pub struct BoxedStrategy<V>(Rc<dyn Strategy<Value = V>>);

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy(Rc::clone(&self.0))
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            self.0.generate(rng)
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, U> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> U,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.base.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        base: S,
        f: F,
    }

    impl<S, F, S2> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.base.generate(rng)).generate(rng)
        }
    }

    pub struct Recursive<V> {
        pub(crate) leaf: BoxedStrategy<V>,
        pub(crate) branch: Rc<dyn Fn(BoxedStrategy<V>) -> BoxedStrategy<V>>,
        pub(crate) depth: u32,
    }

    impl<V> Clone for Recursive<V> {
        fn clone(&self) -> Self {
            Recursive {
                leaf: self.leaf.clone(),
                branch: Rc::clone(&self.branch),
                depth: self.depth,
            }
        }
    }

    impl<V: 'static> Strategy for Recursive<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            // At depth 0 always take a leaf; otherwise branch half the time
            // so expression sizes stay bounded but deep nests still occur.
            if self.depth == 0 || rng.below(2) == 0 {
                self.leaf.generate(rng)
            } else {
                let child = Recursive {
                    leaf: self.leaf.clone(),
                    branch: Rc::clone(&self.branch),
                    depth: self.depth - 1,
                }
                .boxed();
                (self.branch)(child).generate(rng)
            }
        }
    }

    /// Uniform choice between boxed alternatives (`prop_oneof!`).
    pub struct Union<V> {
        pub options: Vec<BoxedStrategy<V>>,
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            assert!(
                !self.options.is_empty(),
                "prop_oneof! needs at least one arm"
            );
            let i = rng.below(self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    // ------------------------------------------------------ range strategies

    macro_rules! int_ranges {
        ($($t:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let span = (self.end as i128 - self.start as i128) as u64;
                        (self.start as i128 + rng.below(span) as i128) as $t
                    }
                }
                impl Strategy for ::std::ops::RangeInclusive<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start() <= self.end(), "empty range strategy");
                        let span = (*self.end() as i128 - *self.start() as i128 + 1) as u64;
                        (*self.start() as i128 + rng.below(span) as i128) as $t
                    }
                }
            )*
        };
    }
    int_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! float_ranges {
        ($($t:ty),*) => {
            $(
                impl Strategy for ::std::ops::Range<$t> {
                    type Value = $t;
                    fn generate(&self, rng: &mut TestRng) -> $t {
                        assert!(self.start < self.end, "empty range strategy");
                        let u = rng.unit_f64();
                        (self.start as f64 + u * (self.end as f64 - self.start as f64)) as $t
                    }
                }
            )*
        };
    }
    float_ranges!(f32, f64);

    macro_rules! tuple_strategy {
        ($($name:ident),*) => {
            impl<$($name: Strategy),*> Strategy for ($($name,)*) {
                type Value = ($($name::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)*) = self;
                    ($($name.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Element-count specification for [`vec`]: an exact count or a range.
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Exclusive.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { min: n, max: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty vec size range");
            SizeRange {
                min: r.start,
                max: r.end,
            }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty vec size range");
            SizeRange {
                min: *r.start(),
                max: *r.end() + 1,
            }
        }
    }

    pub struct VecStrategy<S> {
        elem: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.min + rng.below((self.size.max - self.size.min) as u64) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec`: a vector whose elements come from
    /// `elem` and whose length comes from `size`.
    pub fn vec<S: Strategy>(elem: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            elem,
            size: size.into(),
        }
    }
}

/// Drives the cases for one `proptest!` test. Public for macro use.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(s) => s
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("bad PROPTEST_SEED '{s}'")),
        // Stable per-test default so failures reproduce across runs.
        Err(_) => name.bytes().fold(0xA076_1D64_78BD_642Fu64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x100_0000_01B3)
        }),
    };
    let mut rng = TestRng::seed_from_u64(seed);
    let mut rejects = 0u32;
    let mut done = 0u32;
    while done < config.cases {
        match case(&mut rng) {
            Ok(()) => done += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects <= config.max_global_rejects,
                    "{name}: too many prop_assume! rejects ({rejects}) — \
                     strategy rarely satisfies the assumption"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "{name}: property failed at case {done} (seed {seed}, \
                     rerun with PROPTEST_SEED={seed}): {msg}"
                );
            }
        }
    }
}

/// Erased strategy handle re-exported at the crate root like real proptest.
pub use strategy::BoxedStrategy;

pub mod prelude {
    pub use crate::collection;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        ProptestConfig, TestCaseError, TestRng,
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(l == r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), l, r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: {} != {} (both {:?})",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice between strategies of a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union {
            options: vec![ $( $crate::strategy::Strategy::boxed($strat) ),+ ],
        }
    };
}

/// The test-block macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($config:expr) ) => {};
    ( ($config:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::run_cases(&__config, stringify!($name), |__rng| {
                $(
                    let $arg =
                        $crate::strategy::Strategy::generate(&($strat), __rng);
                )*
                let __body = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                __body()
            });
        }
        $crate::__proptest_impl! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(1);
        let s = (0usize..5, -3i32..=3, 0.0f64..1.0);
        for _ in 0..500 {
            let (a, b, c) = s.generate(&mut rng);
            assert!(a < 5 && (-3..=3).contains(&b) && (0.0..1.0).contains(&c));
        }
    }

    #[test]
    fn vec_respects_exact_and_ranged_sizes() {
        let mut rng = TestRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_eq!(collection::vec(0u32..9, 4).generate(&mut rng).len(), 4);
            let n = collection::vec(0u32..9, 2..5).generate(&mut rng).len();
            assert!((2..5).contains(&n));
        }
    }

    #[test]
    fn recursive_strategies_terminate() {
        #[derive(Clone, Debug, PartialEq)]
        enum Tree {
            Leaf(i32),
            Node(Vec<Tree>),
        }
        fn depth(t: &Tree) -> u32 {
            match t {
                Tree::Leaf(_) => 0,
                Tree::Node(c) => 1 + c.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = (0i32..10)
            .prop_map(Tree::Leaf)
            .prop_recursive(3, 24, 4, |inner| {
                collection::vec(inner, 1..4).prop_map(Tree::Node)
            });
        let mut rng = TestRng::seed_from_u64(3);
        let mut saw_node = false;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            assert!(depth(&t) <= 3);
            saw_node |= matches!(t, Tree::Node(_));
        }
        assert!(saw_node, "never generated a branch");
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn macro_plumbing_works(x in 0usize..100, y in prop_oneof![Just(1u32), Just(2u32)]) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(y, y, "y {} should equal itself", y);
        }
    }

    #[test]
    #[should_panic(expected = "property failed")]
    fn failing_property_panics_with_seed() {
        crate::run_cases(&ProptestConfig::with_cases(10), "doomed", |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
