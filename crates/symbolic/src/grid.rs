//! The structured computational grid.
//!
//! A [`Grid`] describes the *global* problem domain: its shape in points,
//! its physical extent, and the per-dimension spacing symbols (`h_x`,
//! `h_y`, `h_z`) the compiler substitutes at run time. Domain
//! decomposition over MPI ranks is layered on top by `mpix-dmp`; the
//! symbolic layer only sees the logical grid, exactly as in the paper
//! (§III a: decomposition happens at `Grid` creation but is invisible to
//! the symbolic equations).

use crate::expr::Expr;

/// Names used for spacing symbols, one per dimension, in order.
pub const DIM_NAMES: [&str; 3] = ["x", "y", "z"];

/// A structured grid with up to three spatial dimensions.
#[derive(Clone, Debug, PartialEq)]
pub struct Grid {
    /// Number of points in each dimension (the `data` region, no halo).
    pub shape: Vec<usize>,
    /// Physical extent in each dimension.
    pub extent: Vec<f64>,
}

impl Grid {
    /// Create a grid of `shape` points spanning `extent` physical units.
    ///
    /// # Panics
    /// If the number of dimensions is 0 or above 3, or shapes/extents
    /// disagree in length, or any dimension has fewer than 2 points.
    pub fn new(shape: &[usize], extent: &[f64]) -> Grid {
        assert!(
            (1..=3).contains(&shape.len()),
            "grids must have 1..=3 dimensions"
        );
        assert_eq!(shape.len(), extent.len(), "shape/extent dimension mismatch");
        assert!(
            shape.iter().all(|&s| s >= 2),
            "each dimension needs >= 2 points"
        );
        Grid {
            shape: shape.to_vec(),
            extent: extent.to_vec(),
        }
    }

    /// Number of spatial dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Grid spacing along dimension `d`: `extent / (points - 1)`.
    pub fn spacing(&self, d: usize) -> f64 {
        self.extent[d] / (self.shape[d] - 1) as f64
    }

    /// The spacing *symbol* for dimension `d` (`h_x`, `h_y`, `h_z`),
    /// used in symbolic stencils.
    pub fn spacing_symbol(&self, d: usize) -> Expr {
        Expr::sym(format!("h_{}", DIM_NAMES[d]))
    }

    /// The name of the spacing symbol for dimension `d`.
    pub fn spacing_symbol_name(d: usize) -> String {
        format!("h_{}", DIM_NAMES[d])
    }

    /// Total number of grid points.
    pub fn num_points(&self) -> usize {
        self.shape.iter().product()
    }

    /// Concrete numeric bindings for every spacing symbol this grid
    /// introduces (`h_x` → spacing(0), …). The map the CFL-stability
    /// and floating-point error analyses evaluate dt/h coefficient
    /// expressions against; callers add `dt` and solver scalars.
    pub fn spacing_bindings(&self) -> std::collections::BTreeMap<String, f64> {
        (0..self.ndim())
            .map(|d| (Grid::spacing_symbol_name(d), self.spacing(d)))
            .collect()
    }

    /// Physical coordinates of grid point `idx`.
    pub fn point_coords(&self, idx: &[usize]) -> Vec<f64> {
        idx.iter()
            .enumerate()
            .map(|(d, &i)| i as f64 * self.spacing(d))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spacing_matches_listing1() {
        // Listing 1: nx=ny=4, extent 2.0 -> dx = 2/(4-1)
        let g = Grid::new(&[4, 4], &[2.0, 2.0]);
        assert!((g.spacing(0) - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(g.ndim(), 2);
        assert_eq!(g.num_points(), 16);
    }

    #[test]
    fn spacing_symbols_are_named_per_dim() {
        let g = Grid::new(&[8, 8, 8], &[1.0, 1.0, 1.0]);
        assert_eq!(g.spacing_symbol(2), Expr::sym("h_z"));
    }

    #[test]
    fn point_coords() {
        let g = Grid::new(&[3], &[2.0]);
        assert_eq!(g.point_coords(&[2]), vec![2.0]);
        assert_eq!(g.point_coords(&[1]), vec![1.0]);
    }

    #[test]
    #[should_panic]
    fn zero_dim_rejected() {
        Grid::new(&[], &[]);
    }

    #[test]
    #[should_panic]
    fn four_dims_rejected() {
        Grid::new(&[2, 2, 2, 2], &[1.0, 1.0, 1.0, 1.0]);
    }
}
