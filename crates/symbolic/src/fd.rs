//! Finite-difference weight generation.
//!
//! Implements Fornberg's algorithm ("Generation of Finite Difference
//! Formulas on Arbitrarily Spaced Grids", Math. Comp. 51, 1988) for the
//! weights of the `m`-th derivative at an evaluation point `x0` given
//! arbitrary sample locations. Node locations are expressed in *half grid
//! steps* (see [`crate::expr`]) so both centered stencils (even offsets)
//! and staggered stencils (odd offsets) come out of the same machinery.

/// Compute finite-difference weights via Fornberg's recurrence.
///
/// * `m` — derivative order (`0` = interpolation).
/// * `x0` — evaluation point.
/// * `nodes` — sample locations (must be pairwise distinct).
///
/// Returns one weight per node such that
/// `f^(m)(x0) ≈ Σ w_i f(nodes[i])`, exact for polynomials of degree
/// `nodes.len() - 1`.
pub fn fd_weights(m: u32, x0: f64, nodes: &[f64]) -> Vec<f64> {
    let n = nodes.len();
    assert!(
        n > m as usize,
        "need more than {m} nodes for order-{m} derivative"
    );
    let m = m as usize;
    // delta[k][j] = weight of node j for the k-th derivative, updated
    // incrementally as nodes are introduced (Fornberg 1988, in-place form).
    let mut delta = vec![vec![0.0f64; n]; m + 1];
    delta[0][0] = 1.0;
    let mut c1 = 1.0f64;
    for i in 1..n {
        let xi = nodes[i];
        // Snapshot the previous node's column before it is overwritten:
        // the new node's weights are built from it.
        let old_last: Vec<f64> = (0..=m).map(|k| delta[k][i - 1]).collect();
        let mut c2 = 1.0f64;
        for j in 0..i {
            let c3 = xi - nodes[j];
            assert!(c3 != 0.0, "duplicate FD nodes");
            c2 *= c3;
            for k in (0..=m.min(i)).rev() {
                let prev = if k > 0 { delta[k - 1][j] } else { 0.0 };
                delta[k][j] = ((xi - x0) * delta[k][j] - k as f64 * prev) / c3;
            }
        }
        let c5 = nodes[i - 1] - x0;
        for k in (0..=m.min(i)).rev() {
            let prev = if k > 0 { old_last[k - 1] } else { 0.0 };
            delta[k][i] = c1 / c2 * (k as f64 * prev - c5 * old_last[k]);
        }
        c1 = c2;
    }
    delta[m].clone()
}

/// Node offsets (in half steps) for a centered stencil of spatial
/// discretization order `so` (even), derivative order `m`.
///
/// Uses radius `so/2` for first and second derivatives, matching Devito's
/// default: `so + 1` points.
pub fn centered_node_offsets(so: u32, m: u32) -> Vec<i32> {
    assert!(so >= 2 && so % 2 == 0, "space order must be even and >= 2");
    let r = (so / 2) as i32 + (m as i32 - 1).max(0) / 2;
    (-r..=r).map(|k| 2 * k).collect()
}

/// Node offsets (in half steps) for a staggered first-derivative stencil
/// of spatial order `so`: `so` points at odd half-step positions
/// `±1, ±3, …, ±(so-1)`.
pub fn staggered_node_offsets(so: u32) -> Vec<i32> {
    assert!(so >= 2 && so % 2 == 0, "space order must be even and >= 2");
    let r = so as i32 / 2;
    (-r..r).map(|k| 2 * k + 1).collect()
}

/// Weights for the centered `m`-th derivative of order `so`, paired with
/// their half-step offsets. The weights are in units of `h^-m` (the caller
/// multiplies by the appropriate spacing symbol power).
pub fn centered_weights(so: u32, m: u32) -> Vec<(i32, f64)> {
    let offs = centered_node_offsets(so, m);
    let xs: Vec<f64> = offs.iter().map(|&o| o as f64 / 2.0).collect();
    let w = fd_weights(m, 0.0, &xs);
    offs.into_iter().zip(w).collect()
}

/// Weights for the staggered first derivative of order `so`, paired with
/// their half-step offsets (odd). In units of `h^-1`.
pub fn staggered_weights(so: u32) -> Vec<(i32, f64)> {
    let offs = staggered_node_offsets(so);
    let xs: Vec<f64> = offs.iter().map(|&o| o as f64 / 2.0).collect();
    let w = fd_weights(1, 0.0, &xs);
    offs.into_iter().zip(w).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} != {b}");
    }

    #[test]
    fn second_derivative_so2_is_classic_three_point() {
        let w = centered_weights(2, 2);
        assert_eq!(w.len(), 3);
        approx(w[0].1, 1.0);
        approx(w[1].1, -2.0);
        approx(w[2].1, 1.0);
        assert_eq!(w[0].0, -2); // one full step left
    }

    #[test]
    fn first_derivative_so2_is_classic_central() {
        let w = centered_weights(2, 1);
        assert_eq!(w.len(), 3);
        approx(w[0].1, -0.5);
        approx(w[1].1, 0.0);
        approx(w[2].1, 0.5);
    }

    #[test]
    fn second_derivative_so4() {
        // classic: [-1/12, 4/3, -5/2, 4/3, -1/12]
        let w = centered_weights(4, 2);
        let expected = [-1.0 / 12.0, 4.0 / 3.0, -5.0 / 2.0, 4.0 / 3.0, -1.0 / 12.0];
        for (got, want) in w.iter().zip(expected) {
            approx(got.1, want);
        }
    }

    #[test]
    fn staggered_so2_is_two_point() {
        // f'(0) ~ f(1/2) - f(-1/2)
        let w = staggered_weights(2);
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, -1);
        assert_eq!(w[1].0, 1);
        approx(w[0].1, -1.0);
        approx(w[1].1, 1.0);
    }

    #[test]
    fn staggered_so4_matches_reference() {
        // classic 4th-order staggered: [1/24, -9/8, 9/8, -1/24]
        let w = staggered_weights(4);
        let expected = [1.0 / 24.0, -9.0 / 8.0, 9.0 / 8.0, -1.0 / 24.0];
        for (got, want) in w.iter().zip(expected) {
            approx(got.1, want);
        }
    }

    #[test]
    fn weights_sum_to_zero_for_derivatives() {
        for so in [2u32, 4, 8, 12, 16] {
            for m in [1u32, 2] {
                let s: f64 = centered_weights(so, m).iter().map(|(_, w)| w).sum();
                assert!(s.abs() < 1e-8, "so={so} m={m} sum={s}");
            }
            let s: f64 = staggered_weights(so).iter().map(|(_, w)| w).sum();
            assert!(s.abs() < 1e-8, "staggered so={so} sum={s}");
        }
    }

    #[test]
    fn weights_are_exact_on_polynomials() {
        // order-`so` stencil must differentiate x^k exactly for k <= so.
        for so in [2u32, 4, 8] {
            let w = centered_weights(so, 2);
            for k in 0..=so {
                let exact = if k == 2 { 2.0 } else { 0.0 };
                let got: f64 = w
                    .iter()
                    .map(|&(o, wt)| wt * (o as f64 / 2.0).powi(k as i32))
                    .sum();
                assert!(
                    (got - exact).abs() < 1e-6,
                    "so={so} k={k}: {got} vs {exact}"
                );
            }
        }
    }

    #[test]
    fn interpolation_weights_partition_unity() {
        // m = 0: interpolation weights sum to 1.
        let nodes = [-1.5, -0.5, 0.5, 1.5];
        let w = fd_weights(0, 0.0, &nodes);
        let s: f64 = w.iter().sum();
        approx(s, 1.0);
    }

    #[test]
    fn asymmetric_nodes_first_derivative() {
        // One-sided 2-point: f'(0) ~ f(1) - f(0)
        let w = fd_weights(1, 0.0, &[0.0, 1.0]);
        approx(w[0], -1.0);
        approx(w[1], 1.0);
    }

    #[test]
    #[should_panic]
    fn duplicate_nodes_panic() {
        fd_weights(1, 0.0, &[0.0, 0.0, 1.0]);
    }

    #[test]
    #[should_panic]
    fn too_few_nodes_panic() {
        fd_weights(2, 0.0, &[0.0, 1.0]);
    }
}
