//! Von Neumann stability arithmetic for explicit time updates.
//!
//! The CFL lint (`MPX019` in `mpix-analysis::fp`) reduces a linear,
//! constant-coefficient time update
//!
//! ```text
//! u[t+1, x] = Σ_δ c_δ · u[t, x+δ]  +  Σ_δ d_δ · u[t-1, x+δ]
//! ```
//!
//! to its amplification factor `z(θ)`: substituting the Fourier mode
//! `u[t, x] = z^t · e^{iθ·x}` turns the update into the quadratic
//! `z² = P(θ)·z + Q(θ)` with symbol sums `P(θ) = Σ c_δ e^{iθ·δ}`,
//! `Q(θ) = Σ d_δ e^{iθ·δ}`. The scheme is unstable iff `|z(θ)| > 1`
//! for some wavenumber θ. This module owns the *numeric* half of that
//! argument — symbol sums, quadratic roots, sampled maximization — on
//! tap tables whose coefficients are already evaluated to `f64`
//! (extraction from IR expressions lives in `mpix-analysis`, which
//! depends on this crate and not vice versa).
//!
//! Sampling θ over `{0, π/2, π}` per dimension makes the verdict
//! one-sided by construction: a sampled `|z| > 1` *proves* instability
//! (that mode is representable on any grid with ≥ 4 points per
//! dimension), while `|z| ≤ 1` everywhere sampled proves nothing. The
//! consuming lint only acts on the former, so coarse sampling costs
//! recall, never precision — the same contract as the interval lints.

/// Minimal complex arithmetic; enough for symbol sums and one
/// quadratic. (No external deps: the workspace vendors everything.)
#[derive(Clone, Copy, Debug, PartialEq)]
struct C {
    re: f64,
    im: f64,
}

impl C {
    const ZERO: C = C { re: 0.0, im: 0.0 };

    fn add(self, o: C) -> C {
        C {
            re: self.re + o.re,
            im: self.im + o.im,
        }
    }

    fn mul(self, o: C) -> C {
        C {
            re: self.re * o.re - self.im * o.im,
            im: self.re * o.im + self.im * o.re,
        }
    }

    fn scale(self, s: f64) -> C {
        C {
            re: self.re * s,
            im: self.im * s,
        }
    }

    fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Principal square root.
    fn sqrt(self) -> C {
        let r = self.abs();
        let re = ((r + self.re) / 2.0).max(0.0).sqrt();
        let im = ((r - self.re) / 2.0).max(0.0).sqrt();
        C {
            re,
            im: if self.im < 0.0 { -im } else { im },
        }
    }

    /// `e^{iφ}`.
    fn cis(phi: f64) -> C {
        C {
            re: phi.cos(),
            im: phi.sin(),
        }
    }
}

/// One stencil tap: index delta per dimension and its (numeric)
/// coefficient.
pub type Tap = (Vec<i32>, f64);

/// The symbol sum `Σ c_δ · e^{iθ·δ}` of a tap table at wavenumber θ.
fn symbol(taps: &[Tap], theta: &[f64]) -> C {
    taps.iter().fold(C::ZERO, |acc, (deltas, c)| {
        let phase: f64 = deltas
            .iter()
            .zip(theta)
            .map(|(&d, &th)| d as f64 * th)
            .sum();
        acc.add(C::cis(phase).scale(*c))
    })
}

/// Largest root magnitude of `z² = p·z + q` (the two-step
/// amplification polynomial); `q = 0` degenerates to the one-step
/// factor `z = p`.
fn max_root_mag(p: C, q: C) -> f64 {
    if q == C::ZERO {
        return p.abs();
    }
    // z = (p ± sqrt(p² + 4q)) / 2
    let disc = p.mul(p).add(q.scale(4.0)).sqrt();
    let a = p.add(disc).scale(0.5);
    let b = p.add(disc.scale(-1.0)).scale(0.5);
    a.abs().max(b.abs())
}

/// Maximum amplification-factor magnitude of the update over sampled
/// wavenumbers `θ ∈ {0, π/2, π}^ndim`. `curr` holds the taps of the
/// `t`-level field, `prev` the `t-1`-level taps (empty for first-order
/// in time). A return value `> 1 + tol` proves von Neumann
/// instability; a value `≤ 1` is *not* a stability proof (sampling).
pub fn max_amplification(curr: &[Tap], prev: &[Tap]) -> f64 {
    let ndim = curr
        .iter()
        .chain(prev)
        .map(|(d, _)| d.len())
        .max()
        .unwrap_or(0);
    if ndim == 0 {
        return max_root_mag(symbol(curr, &[]), symbol(prev, &[]));
    }
    let samples = [0.0, std::f64::consts::FRAC_PI_2, std::f64::consts::PI];
    let mut worst = 0.0f64;
    let mut theta = vec![0.0; ndim];
    let n_combos = samples.len().pow(ndim as u32);
    for combo in 0..n_combos {
        let mut c = combo;
        for th in theta.iter_mut() {
            *th = samples[c % samples.len()];
            c /= samples.len();
        }
        worst = worst.max(max_root_mag(symbol(curr, &theta), symbol(prev, &theta)));
    }
    worst
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FTCS heat equation in 1-D: `u[t+1] = (1-2r)u[t] + r(u[t,±1])`,
    /// stable iff `r ≤ 1/2`.
    fn ftcs(r: f64) -> Vec<Tap> {
        vec![(vec![0], 1.0 - 2.0 * r), (vec![1], r), (vec![-1], r)]
    }

    #[test]
    fn ftcs_diffusion_stability_threshold() {
        assert!(max_amplification(&ftcs(0.4), &[]) <= 1.0 + 1e-12);
        assert!(max_amplification(&ftcs(0.5), &[]) <= 1.0 + 1e-12);
        // r = 0.75: g(π) = 1 - 4r = -2.
        let g = max_amplification(&ftcs(0.75), &[]);
        assert!((g - 2.0).abs() < 1e-12, "{g}");
    }

    /// Leapfrog wave equation in 1-D with Courant number `c`:
    /// `u[t+1] = 2(1-c²)u[t] + c²(u[t,±1]) - u[t-1]`, stable iff c ≤ 1.
    fn leapfrog(c2: f64) -> (Vec<Tap>, Vec<Tap>) {
        (
            vec![(vec![0], 2.0 * (1.0 - c2)), (vec![1], c2), (vec![-1], c2)],
            vec![(vec![0], -1.0)],
        )
    }

    #[test]
    fn leapfrog_wave_stability_threshold() {
        let (c, p) = leapfrog(0.81); // Courant 0.9: |z| = 1 exactly.
        assert!(max_amplification(&c, &p) <= 1.0 + 1e-9);
        let (c, p) = leapfrog(1.44); // Courant 1.2: unstable at θ = π.
        assert!(max_amplification(&c, &p) > 1.2);
    }

    #[test]
    fn two_dimensional_sampling_reaches_the_corner_mode() {
        // 2-D FTCS: stable iff r_x + r_y ≤ 1/2; at r_x = r_y = 0.4 the
        // worst mode is θ = (π, π) with g = 1 - 8r = -2.2.
        let taps = vec![
            (vec![0, 0], 1.0 - 4.0 * 0.4),
            (vec![1, 0], 0.4),
            (vec![-1, 0], 0.4),
            (vec![0, 1], 0.4),
            (vec![0, -1], 0.4),
        ];
        let g = max_amplification(&taps, &[]);
        assert!((g - 2.2).abs() < 1e-12, "{g}");
    }

    #[test]
    fn complex_sqrt_and_roots() {
        // z² = -1 -> |z| = 1 for both roots.
        let g = max_root_mag(C::ZERO, C { re: -1.0, im: 0.0 });
        assert!((g - 1.0).abs() < 1e-12);
    }
}
