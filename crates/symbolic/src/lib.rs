//! # mpix-symbolic
//!
//! Symbolic mathematics layer for the `mpix` finite-difference compiler —
//! the analogue of the SymPy-based language Devito exposes to users.
//!
//! The crate provides:
//!
//! * [`Expr`] — an immutable symbolic expression tree with arithmetic
//!   operator overloading, canonical simplification and expansion.
//! * [`fd`] — finite-difference weight generation (Fornberg's algorithm),
//!   including staggered (half-node) stencils of arbitrary accuracy.
//! * [`Grid`] — the structured computational grid with physical extent and
//!   spacing symbols (`h_x`, `h_y`, …).
//! * [`Context`] / [`Field`] — the registry of grid functions
//!   (`Function` / `TimeFunction` in Devito terms), carrying halo width
//!   (space order), time-buffer depth (time order) and per-dimension
//!   staggering.
//! * [`struct@Eq`] and [`solve`] — symbolic equations and the linear solve that
//!   turns an implicit PDE statement into an explicit update stencil.
//!
//! The design follows the paper's front end (§II): users express PDEs with
//! `u.dt2`, `u.laplace`, etc.; everything below this crate is the compiler.
//!
//! ## Example
//!
//! ```
//! use mpix_symbolic::*;
//!
//! let mut ctx = Context::new();
//! let grid = Grid::new(&[4, 4], &[2.0, 2.0]);
//! let u = ctx.add_time_function("u", &grid, 2, 1); // space order 2, 1st order in time
//! // Heat equation: u.dt = u.laplace  (Listing 1 of the paper)
//! let eq = Eq::new(u.dt(), u.laplace());
//! let stencil = eq.solve_for(&u.forward(), &ctx).unwrap();
//! let lowered = discretize(&stencil, &ctx).unwrap();
//! assert!(lowered.rhs.is_lowered());
//! ```

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod cfl;
pub mod context;
pub mod eq;
pub mod expr;
pub mod fd;
pub mod grid;
pub mod simplify;
pub mod visit;

pub use context::{Context, Field, FieldHandle, FieldId, FieldKind, Stagger};
pub use eq::{discretize, solve, DiscretizeError, Eq, SolveError};
pub use expr::{Access, DerivDim, Expr, Symbol, UnaryFn};
pub use fd::{centered_node_offsets, fd_weights, staggered_node_offsets};
pub use grid::Grid;
pub use simplify::{expand, simplify};
