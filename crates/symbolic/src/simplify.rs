//! Canonical simplification and expansion of symbolic expressions.
//!
//! `simplify` establishes the canonical form documented on [`Expr`]:
//! flattened, constant-folded, like-term-collected `Add`/`Mul` nodes with a
//! deterministic child order. `expand` additionally distributes products
//! over sums, which the linear solver ([`crate::eq::solve`]) relies on.

use std::cmp::Ordering;

use crate::expr::Expr;

/// Simplify an expression to canonical form. Idempotent.
pub fn simplify(e: &Expr) -> Expr {
    match e {
        Expr::Const(_) | Expr::Sym(_) | Expr::Acc(_) => e.clone(),
        Expr::Add(xs) => simplify_add(xs),
        Expr::Mul(xs) => simplify_mul(xs),
        Expr::Pow(b, e) => simplify_pow(b, *e),
        Expr::Func(fx, b) => {
            let inner = simplify(b);
            match inner {
                Expr::Const(c) => Expr::Const(fx.apply(c)),
                other => Expr::Func(*fx, Box::new(other)),
            }
        }
        Expr::Deriv {
            expr,
            dim,
            order,
            accuracy,
        } => Expr::Deriv {
            expr: Box::new(simplify(expr)),
            dim: *dim,
            order: *order,
            accuracy: *accuracy,
        },
    }
}

fn simplify_pow(base: &Expr, exp: i32) -> Expr {
    let b = simplify(base);
    if exp == 0 {
        return Expr::Const(1.0);
    }
    if exp == 1 {
        return b;
    }
    match b {
        Expr::Const(c) => Expr::Const(c.powi(exp)),
        Expr::Pow(inner, e2) => simplify_pow(&inner, e2 * exp),
        other => Expr::Pow(Box::new(other), exp),
    }
}

fn simplify_add(children: &[Expr]) -> Expr {
    // Flatten and simplify children.
    let mut flat: Vec<Expr> = Vec::with_capacity(children.len());
    for c in children {
        match simplify(c) {
            Expr::Add(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    // Split each term into (coefficient, residual) and collect like terms.
    let mut constant = 0.0;
    let mut terms: Vec<(Expr, f64)> = Vec::new();
    'outer: for t in flat {
        if let Expr::Const(c) = t {
            constant += c;
            continue;
        }
        let (coeff, rest) = split_coefficient(t);
        for (r, c) in terms.iter_mut() {
            if *r == rest {
                *c += coeff;
                continue 'outer;
            }
        }
        terms.push((rest, coeff));
    }
    let mut out: Vec<Expr> = Vec::with_capacity(terms.len() + 1);
    if constant != 0.0 {
        out.push(Expr::Const(constant));
    }
    for (rest, coeff) in terms {
        if coeff == 0.0 {
            continue;
        }
        if coeff == 1.0 {
            out.push(rest);
        } else {
            out.push(attach_coefficient(coeff, rest));
        }
    }
    match out.len() {
        0 => Expr::Const(0.0),
        1 => out.pop().unwrap(),
        _ => {
            out.sort_by(|a, b| a.canon_cmp(b));
            Expr::Add(out)
        }
    }
}

/// Split `t` into a numeric coefficient and the remaining (canonical)
/// factor. `3*x*y` → `(3, x*y)`; `x` → `(1, x)`.
fn split_coefficient(t: Expr) -> (f64, Expr) {
    match t {
        Expr::Mul(xs) => {
            let mut coeff = 1.0;
            let mut rest: Vec<Expr> = Vec::with_capacity(xs.len());
            for x in xs {
                if let Expr::Const(c) = x {
                    coeff *= c;
                } else {
                    rest.push(x);
                }
            }
            let rest = match rest.len() {
                0 => Expr::Const(1.0),
                1 => rest.pop().unwrap(),
                _ => Expr::Mul(rest),
            };
            (coeff, rest)
        }
        other => (1.0, other),
    }
}

fn attach_coefficient(coeff: f64, rest: Expr) -> Expr {
    match rest {
        Expr::Const(c) => Expr::Const(coeff * c),
        Expr::Mul(mut xs) => {
            let mut v = vec![Expr::Const(coeff)];
            v.append(&mut xs);
            Expr::Mul(v)
        }
        other => Expr::Mul(vec![Expr::Const(coeff), other]),
    }
}

fn simplify_mul(children: &[Expr]) -> Expr {
    let mut flat: Vec<Expr> = Vec::with_capacity(children.len());
    for c in children {
        match simplify(c) {
            Expr::Mul(inner) => flat.extend(inner),
            other => flat.push(other),
        }
    }
    let mut constant = 1.0;
    // Collect powers of identical bases: base -> accumulated exponent.
    let mut bases: Vec<(Expr, i32)> = Vec::new();
    'outer: for f in flat {
        match f {
            Expr::Const(c) => {
                constant *= c;
            }
            other => {
                let (base, exp) = match other {
                    Expr::Pow(b, e) => (*b, e),
                    x => (x, 1),
                };
                for (b, e) in bases.iter_mut() {
                    if *b == base {
                        *e += exp;
                        continue 'outer;
                    }
                }
                bases.push((base, exp));
            }
        }
    }
    if constant == 0.0 {
        return Expr::Const(0.0);
    }
    let mut out: Vec<Expr> = Vec::with_capacity(bases.len() + 1);
    for (b, e) in bases {
        match e {
            0 => {}
            1 => out.push(b),
            e => out.push(Expr::Pow(Box::new(b), e)),
        }
    }
    out.sort_by(|a, b| a.canon_cmp(b));
    if constant != 1.0 || out.is_empty() {
        out.insert(0, Expr::Const(constant));
    }
    match out.len() {
        1 => out.pop().unwrap(),
        _ => Expr::Mul(out),
    }
}

/// Fully distribute products over sums and positive integer powers of sums,
/// then simplify. The result is a flat sum of monomial terms.
pub fn expand(e: &Expr) -> Expr {
    let e = simplify(e);
    let expanded = expand_inner(&e);
    simplify(&expanded)
}

fn expand_inner(e: &Expr) -> Expr {
    match e {
        Expr::Add(xs) => Expr::Add(xs.iter().map(expand_inner).collect()),
        Expr::Mul(xs) => {
            // Expand children first, then distribute pairwise.
            let parts: Vec<Expr> = xs.iter().map(expand_inner).collect();
            let mut acc: Vec<Expr> = vec![Expr::Const(1.0)];
            for p in parts {
                let terms: Vec<Expr> = match p {
                    Expr::Add(ts) => ts,
                    other => vec![other],
                };
                let mut next = Vec::with_capacity(acc.len() * terms.len());
                for a in &acc {
                    for t in &terms {
                        next.push(Expr::Mul(vec![a.clone(), t.clone()]));
                    }
                }
                acc = next;
            }
            Expr::Add(acc)
        }
        Expr::Pow(b, e2) if *e2 > 1 => {
            let base = expand_inner(b);
            if matches!(base, Expr::Add(_)) {
                let mut m = Vec::with_capacity(*e2 as usize);
                for _ in 0..*e2 {
                    m.push(base.clone());
                }
                expand_inner(&Expr::Mul(m))
            } else {
                Expr::Pow(Box::new(base), *e2)
            }
        }
        Expr::Pow(b, e2) => Expr::Pow(Box::new(expand_inner(b)), *e2),
        Expr::Func(fx, b) => Expr::Func(*fx, Box::new(expand_inner(b))),
        other => other.clone(),
    }
}

/// Collect the expression as a linear polynomial in `needle`, returning
/// `(a, b)` such that `expr == a*needle + b` and neither `a` nor `b`
/// contains `needle`. Returns `None` if the dependence is non-linear (the
/// needle appears inside a `Pow` or multiplied by itself).
pub fn collect_linear(expr: &Expr, needle: &Expr) -> Option<(Expr, Expr)> {
    let e = expand(expr);
    let terms: Vec<Expr> = match e {
        Expr::Add(ts) => ts,
        other => vec![other],
    };
    let mut coeff_terms: Vec<Expr> = Vec::new();
    let mut rest_terms: Vec<Expr> = Vec::new();
    for t in terms {
        match factor_out(&t, needle)? {
            Some(c) => coeff_terms.push(c),
            None => rest_terms.push(t),
        }
    }
    let a = simplify(&Expr::Add(coeff_terms));
    let b = simplify(&Expr::Add(rest_terms));
    Some((a, b))
}

/// If `term` contains `needle` as a degree-one factor, return
/// `Ok(Some(term / needle))`. If it does not contain it, `Ok(None)`.
/// Non-linear occurrences yield `None` at the outer level (propagated as
/// `Option` by the caller via `?`).
fn factor_out(term: &Expr, needle: &Expr) -> Option<Option<Expr>> {
    if term == needle {
        return Some(Some(Expr::Const(1.0)));
    }
    match term {
        Expr::Mul(xs) => {
            let mut found = false;
            let mut rest: Vec<Expr> = Vec::with_capacity(xs.len());
            for x in xs {
                if x == needle {
                    if found {
                        return None; // needle squared -> non-linear
                    }
                    found = true;
                } else if occurs_in(x, needle) {
                    return None; // nested occurrence (e.g. inside Pow)
                } else {
                    rest.push(x.clone());
                }
            }
            if found {
                Some(Some(simplify(&Expr::Mul(rest))))
            } else {
                Some(None)
            }
        }
        other => {
            if occurs_in(other, needle) {
                None
            } else {
                Some(None)
            }
        }
    }
}

fn occurs_in(hay: &Expr, needle: &Expr) -> bool {
    if hay == needle {
        return true;
    }
    match hay {
        Expr::Add(xs) | Expr::Mul(xs) => xs.iter().any(|x| occurs_in(x, needle)),
        Expr::Pow(b, _) => occurs_in(b, needle),
        Expr::Func(_, b) => occurs_in(b, needle),
        Expr::Deriv { expr, .. } => occurs_in(expr, needle),
        _ => false,
    }
}

/// Deterministic ordering helper re-exported for IR passes.
pub fn canon_order(a: &Expr, b: &Expr) -> Ordering {
    a.canon_cmp(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::FieldId;
    use crate::expr::Access;

    fn x() -> Expr {
        Expr::sym("x")
    }
    fn y() -> Expr {
        Expr::sym("y")
    }

    #[test]
    fn constant_folding() {
        let e = Expr::Add(vec![Expr::Const(1.0), Expr::Const(2.0), Expr::Const(3.0)]);
        assert_eq!(simplify(&e), Expr::Const(6.0));
        let m = Expr::Mul(vec![Expr::Const(2.0), Expr::Const(4.0)]);
        assert_eq!(simplify(&m), Expr::Const(8.0));
    }

    #[test]
    fn mul_by_zero_annihilates() {
        let e = Expr::Mul(vec![Expr::Const(0.0), x(), y()]);
        assert_eq!(simplify(&e), Expr::Const(0.0));
    }

    #[test]
    fn like_terms_collect() {
        // 2x + 3x -> 5x
        let e = Expr::Add(vec![
            Expr::Mul(vec![Expr::Const(2.0), x()]),
            Expr::Mul(vec![Expr::Const(3.0), x()]),
        ]);
        assert_eq!(simplify(&e), Expr::Mul(vec![Expr::Const(5.0), x()]));
    }

    #[test]
    fn powers_combine() {
        // x * x -> x^2, x^2 * x^-1 -> x
        let e = Expr::Mul(vec![x(), x()]);
        assert_eq!(simplify(&e), Expr::Pow(Box::new(x()), 2));
        let e2 = Expr::Mul(vec![
            Expr::Pow(Box::new(x()), 2),
            Expr::Pow(Box::new(x()), -1),
        ]);
        assert_eq!(simplify(&e2), x());
    }

    #[test]
    fn nested_pow_flattens() {
        let e = Expr::Pow(Box::new(Expr::Pow(Box::new(x()), 2)), 3);
        assert_eq!(simplify(&e), Expr::Pow(Box::new(x()), 6));
    }

    #[test]
    fn simplify_is_idempotent() {
        let e = Expr::Add(vec![
            Expr::Mul(vec![Expr::Const(2.0), x(), y()]),
            Expr::Mul(vec![y(), x()]),
            Expr::Const(0.0),
        ]);
        let s1 = simplify(&e);
        let s2 = simplify(&s1);
        assert_eq!(s1, s2);
    }

    #[test]
    fn expansion_distributes() {
        // (x+1)*(y+2) = x*y + 2x + y + 2
        let e = Expr::Mul(vec![
            Expr::Add(vec![x(), Expr::Const(1.0)]),
            Expr::Add(vec![y(), Expr::Const(2.0)]),
        ]);
        let ex = expand(&e);
        match &ex {
            Expr::Add(ts) => assert_eq!(ts.len(), 4, "{ex}"),
            other => panic!("expected Add, got {other}"),
        }
    }

    #[test]
    fn expansion_of_squared_sum() {
        // (x+y)^2 = x^2 + 2xy + y^2
        let e = Expr::Pow(Box::new(Expr::Add(vec![x(), y()])), 2);
        let ex = expand(&e);
        match &ex {
            Expr::Add(ts) => assert_eq!(ts.len(), 3, "{ex}"),
            other => panic!("expected Add, got {other}"),
        }
    }

    #[test]
    fn collect_linear_basic() {
        let u = Expr::Acc(Access {
            field: FieldId(0),
            time_offset: 1,
            offsets_h: vec![0, 0],
        });
        // 3*m*u + 7 - u  ->  a = 3m - 1, b = 7
        let m = Expr::sym("m");
        let e = Expr::Add(vec![
            Expr::Mul(vec![Expr::Const(3.0), m.clone(), u.clone()]),
            Expr::Const(7.0),
            Expr::Mul(vec![Expr::Const(-1.0), u.clone()]),
        ]);
        let (a, b) = collect_linear(&e, &u).unwrap();
        assert_eq!(b, Expr::Const(7.0));
        let expected_a = simplify(&Expr::Add(vec![
            Expr::Mul(vec![Expr::Const(3.0), m]),
            Expr::Const(-1.0),
        ]));
        assert_eq!(a, expected_a);
    }

    #[test]
    fn collect_linear_rejects_nonlinear() {
        let u = Expr::Acc(Access {
            field: FieldId(0),
            time_offset: 1,
            offsets_h: vec![0],
        });
        let e = Expr::Mul(vec![u.clone(), u.clone()]);
        assert!(collect_linear(&simplify(&e), &u).is_none());
    }

    #[test]
    fn canonical_ordering_sorts_constants_first() {
        let e = Expr::Add(vec![x(), Expr::Const(5.0)]);
        match simplify(&e) {
            Expr::Add(ts) => assert_eq!(ts[0], Expr::Const(5.0)),
            other => panic!("{other:?}"),
        }
    }
}
