//! Equations, finite-difference discretization, and the explicit-update
//! solver.
//!
//! `solve` mirrors Devito's `solve(eq, u.forward)`: the time derivative is
//! discretized, the equation is rearranged so the forward access stands
//! alone on the left, and the result becomes the explicit update stencil.
//! Spatial derivatives are lowered separately by [`discretize`], which
//! replaces every `Deriv` node by a weighted sum of shifted copies of its
//! sub-expression (the general rule that also covers the TTI rotated
//! Laplacian, where derivatives apply to products of fields).

use crate::context::{Context, Stagger};
use crate::expr::{Access, DerivDim, Expr};
use crate::fd;
use crate::grid::Grid;
use crate::simplify::{collect_linear, simplify};

/// A symbolic equation `lhs = rhs`.
#[derive(Clone, Debug, PartialEq)]
pub struct Eq {
    pub lhs: Expr,
    pub rhs: Expr,
}

/// Errors from the linear solver.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// The target does not appear, or appears non-linearly.
    NotLinear,
    /// The target is not a plain field access.
    TargetNotAccess,
    /// The coefficient of the target vanished.
    SingularCoefficient,
}

/// Errors from discretization.
#[derive(Debug, Clone, PartialEq)]
pub enum DiscretizeError {
    /// A derivative was requested along a dimension the field lacks.
    BadDimension,
    /// Mixed staggering inside a single derivative sub-expression.
    MixedStagger,
    /// A staggered (half-offset) derivative of order other than one.
    StaggeredHighOrder,
    /// After lowering, an access does not land on its field's sample
    /// lattice.
    OffLattice { field: u32, dim: usize },
    /// A time derivative outside what the field's time order supports.
    UnsupportedTimeDerivative,
}

impl Eq {
    pub fn new(lhs: Expr, rhs: Expr) -> Eq {
        Eq { lhs, rhs }
    }

    /// Residual form `lhs - rhs`.
    pub fn residual(&self) -> Expr {
        self.lhs.clone() - self.rhs.clone()
    }

    /// Devito's `solve(eq, target)`: discretize time derivatives, then
    /// rearrange the equation into an explicit update `target = …`.
    pub fn solve_for(&self, target: &Expr, ctx: &Context) -> Result<Eq, SolveError> {
        solve(&self.residual(), target, ctx)
    }
}

/// Solve `residual == 0` for `target` (a field access, typically
/// `u.forward()`), discretizing time derivatives in the process.
pub fn solve(residual: &Expr, target: &Expr, ctx: &Context) -> Result<Eq, SolveError> {
    let target_acc = match target {
        Expr::Acc(a) => a.clone(),
        _ => return Err(SolveError::TargetNotAccess),
    };
    let time_lowered = lower_time_derivs(residual, ctx).map_err(|_| SolveError::NotLinear)?;
    let (a, b) = collect_linear(&time_lowered, target).ok_or(SolveError::NotLinear)?;
    if a == Expr::Const(0.0) {
        return Err(SolveError::SingularCoefficient);
    }
    // target = -b / a
    let solution = simplify(&(Expr::Const(-1.0) * b * Expr::Pow(Box::new(a), -1)));
    let _ = target_acc;
    Ok(Eq::new(target.clone(), solution))
}

/// Replace time-`Deriv` nodes with finite differences:
/// * order 1 → forward difference `(e(t+1) - e(t)) / dt`
/// * order 2 → central difference `(e(t+1) - 2 e(t) + e(t-1)) / dt²`
#[allow(clippy::only_used_in_recursion)] // ctx reserved for staggered-time lowering
pub fn lower_time_derivs(e: &Expr, ctx: &Context) -> Result<Expr, DiscretizeError> {
    let out = match e {
        Expr::Deriv {
            expr,
            dim: DerivDim::Time,
            order,
            ..
        } => {
            let inner = lower_time_derivs(expr, ctx)?;
            let dt = Expr::sym("dt");
            match order {
                1 => (inner.shifted_time(1) - inner) * dt.pow(-1),
                2 => {
                    (inner.shifted_time(1) - 2.0 * inner.clone() + inner.shifted_time(-1))
                        * dt.pow(-2)
                }
                _ => return Err(DiscretizeError::UnsupportedTimeDerivative),
            }
        }
        Expr::Deriv {
            expr,
            dim,
            order,
            accuracy,
        } => Expr::Deriv {
            expr: Box::new(lower_time_derivs(expr, ctx)?),
            dim: *dim,
            order: *order,
            accuracy: *accuracy,
        },
        Expr::Add(xs) => Expr::Add(
            xs.iter()
                .map(|x| lower_time_derivs(x, ctx))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Mul(xs) => Expr::Mul(
            xs.iter()
                .map(|x| lower_time_derivs(x, ctx))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Pow(b, e2) => Expr::Pow(Box::new(lower_time_derivs(b, ctx)?), *e2),
        Expr::Func(fx, b) => Expr::Func(*fx, Box::new(lower_time_derivs(b, ctx)?)),
        other => other.clone(),
    };
    Ok(simplify(&out))
}

/// Fully discretize an equation: lower remaining time derivatives, then
/// every spatial derivative, using the *LHS field's* staggering as the
/// evaluation lattice. Validates that every final access lands on its
/// field's sample lattice.
pub fn discretize(eq: &Eq, ctx: &Context) -> Result<Eq, DiscretizeError> {
    let eval_stagger: Vec<Stagger> = match &eq.lhs {
        Expr::Acc(a) => ctx.field(a.field).stagger.clone(),
        _ => vec![Stagger::Node; max_ndim(&eq.rhs, ctx).unwrap_or(1)],
    };
    let lhs = lower_time_derivs(&eq.lhs, ctx)?;
    let rhs = lower_time_derivs(&eq.rhs, ctx)?;
    let rhs = lower_space_derivs(&rhs, ctx, &eval_stagger)?;
    let lhs = lower_space_derivs(&lhs, ctx, &eval_stagger)?;
    validate_lattice(&lhs, ctx, &eval_stagger)?;
    validate_lattice(&rhs, ctx, &eval_stagger)?;
    Ok(Eq::new(lhs, rhs))
}

fn max_ndim(e: &Expr, ctx: &Context) -> Option<usize> {
    match e {
        Expr::Acc(a) => Some(ctx.field(a.field).ndim()),
        Expr::Add(xs) | Expr::Mul(xs) => xs.iter().filter_map(|x| max_ndim(x, ctx)).max(),
        Expr::Pow(b, _) => max_ndim(b, ctx),
        Expr::Func(_, b) => max_ndim(b, ctx),
        Expr::Deriv { expr, .. } => max_ndim(expr, ctx),
        _ => None,
    }
}

/// Recursively replace spatial `Deriv` nodes (innermost first) by FD sums.
pub fn lower_space_derivs(
    e: &Expr,
    ctx: &Context,
    eval_stagger: &[Stagger],
) -> Result<Expr, DiscretizeError> {
    let out = match e {
        Expr::Deriv {
            expr,
            dim: DerivDim::Space(d),
            order,
            accuracy,
        } => {
            let inner = lower_space_derivs(expr, ctx, eval_stagger)?;
            apply_space_fd(&inner, *d, *order, *accuracy, ctx, eval_stagger)?
        }
        Expr::Deriv {
            dim: DerivDim::Time,
            ..
        } => return Err(DiscretizeError::UnsupportedTimeDerivative),
        Expr::Add(xs) => Expr::Add(
            xs.iter()
                .map(|x| lower_space_derivs(x, ctx, eval_stagger))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Mul(xs) => Expr::Mul(
            xs.iter()
                .map(|x| lower_space_derivs(x, ctx, eval_stagger))
                .collect::<Result<_, _>>()?,
        ),
        Expr::Pow(b, e2) => Expr::Pow(Box::new(lower_space_derivs(b, ctx, eval_stagger)?), *e2),
        Expr::Func(fx, b) => Expr::Func(*fx, Box::new(lower_space_derivs(b, ctx, eval_stagger)?)),
        other => other.clone(),
    };
    Ok(simplify(&out))
}

/// Apply the FD approximation of `d^order/dx_d^order` to an already
/// lowered sub-expression: `Σ_k w_k · shift(e, d, δ_k)`.
///
/// The node set (centered even offsets vs staggered odd offsets) is chosen
/// from the *parity* of the accessed samples relative to the evaluation
/// lattice; mixed parities inside one derivative are rejected.
fn apply_space_fd(
    inner: &Expr,
    d: usize,
    order: u32,
    accuracy: u32,
    ctx: &Context,
    eval_stagger: &[Stagger],
) -> Result<Expr, DiscretizeError> {
    if d >= eval_stagger.len() {
        return Err(DiscretizeError::BadDimension);
    }
    let parity = sub_expr_parity(inner, d, ctx, eval_stagger)?;
    let weights: Vec<(i32, f64)> = match parity {
        // Samples on the evaluation lattice: centered stencil.
        Some(0) | None => fd::centered_weights(accuracy, order),
        // Samples at half offsets: staggered stencil (first order only).
        Some(1) => {
            if order != 1 {
                return Err(DiscretizeError::StaggeredHighOrder);
            }
            fd::staggered_weights(accuracy)
        }
        _ => unreachable!(),
    };
    let h = Expr::sym(Grid::spacing_symbol_name(d)).pow(-(order as i32));
    // The sub-expression is evaluable exactly at shifts matching its access
    // parity (even shifts for on-lattice, odd for half-shifted samples) —
    // which is the node set chosen above, so each term shifts by the node
    // offset directly.
    let terms: Vec<Expr> = weights
        .iter()
        .map(|&(off, w)| Expr::Mul(vec![Expr::Const(w), inner.shifted_space(d, off)]))
        .collect();
    Ok(simplify(&(Expr::Add(terms) * h)))
}

/// Parity (0 = on-lattice, 1 = half-shifted) of all accesses in `e` along
/// dimension `d`, relative to the evaluation lattice. `None` when the
/// sub-expression reads no fields.
fn sub_expr_parity(
    e: &Expr,
    d: usize,
    ctx: &Context,
    eval_stagger: &[Stagger],
) -> Result<Option<i32>, DiscretizeError> {
    let mut parity: Option<i32> = None;
    let mut check = |a: &Access| -> Result<(), DiscretizeError> {
        let f = ctx.field(a.field);
        if d >= f.ndim() {
            return Err(DiscretizeError::BadDimension);
        }
        // Physical sample position minus evaluation position, in halves:
        // o + s_f - s_w; parity decides node set.
        let p = (a.offsets_h[d] + f.stagger[d].halves() - eval_stagger[d].halves()).rem_euclid(2);
        match parity {
            None => parity = Some(p),
            Some(q) if q == p => {}
            Some(_) => return Err(DiscretizeError::MixedStagger),
        }
        Ok(())
    };
    visit_accesses(e, &mut check)?;
    Ok(parity)
}

fn visit_accesses<E>(e: &Expr, f: &mut impl FnMut(&Access) -> Result<(), E>) -> Result<(), E> {
    match e {
        Expr::Acc(a) => f(a),
        Expr::Add(xs) | Expr::Mul(xs) => {
            for x in xs {
                visit_accesses(x, f)?;
            }
            Ok(())
        }
        Expr::Pow(b, _) => visit_accesses(b, f),
        Expr::Func(_, b) => visit_accesses(b, f),
        Expr::Deriv { expr, .. } => visit_accesses(expr, f),
        _ => Ok(()),
    }
}

/// Check that every access in a lowered expression lands on its field's
/// sample lattice relative to the evaluation lattice.
fn validate_lattice(
    e: &Expr,
    ctx: &Context,
    eval_stagger: &[Stagger],
) -> Result<(), DiscretizeError> {
    visit_accesses(e, &mut |a: &Access| {
        let f = ctx.field(a.field);
        for d in 0..f.ndim() {
            let rel = a.offsets_h[d] + eval_stagger[d].halves() - f.stagger[d].halves();
            if rel.rem_euclid(2) != 0 {
                return Err(DiscretizeError::OffLattice {
                    field: a.field.0,
                    dim: d,
                });
            }
        }
        Ok(())
    })
}

/// Convert a lowered access's half-step offsets to concrete array-index
/// deltas, given the evaluation lattice. Must be called only on validated
/// expressions.
pub fn access_index_deltas(a: &Access, ctx: &Context, eval_stagger: &[Stagger]) -> Vec<i32> {
    let f = ctx.field(a.field);
    (0..f.ndim())
        .map(|d| {
            let rel = a.offsets_h[d] + eval_stagger[d].halves() - f.stagger[d].halves();
            debug_assert_eq!(rel.rem_euclid(2), 0, "off-lattice access");
            rel.div_euclid(2)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::grid::Grid;

    fn setup() -> (Context, crate::context::FieldHandle) {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[2.0, 2.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        (ctx, u)
    }

    #[test]
    fn solve_diffusion_matches_hand_derivation() {
        // u.dt = u.laplace  with time_order 1 semantics via dt()
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[2.0, 2.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let eq = Eq::new(u.dt(), u.laplace());
        let st = eq.solve_for(&u.forward(), &ctx).unwrap();
        assert_eq!(st.lhs, u.forward());
        // stencil = u + dt * laplace(u); check structure after full lowering
        let lowered = discretize(&st, &ctx).unwrap();
        assert!(lowered.rhs.is_lowered());
        // 5 accesses in the 2D 5-point stencil (u + 4 neighbours sharing center)
        let mut n = 0;
        visit_accesses::<()>(&lowered.rhs, &mut |_| {
            n += 1;
            Ok(())
        })
        .unwrap();
        assert!(n >= 5, "expected at least 5 accesses, got {n}");
    }

    #[test]
    fn solve_wave_equation_second_order() {
        // m * u.dt2 - u.laplace = 0
        let (mut ctx, u) = {
            let mut ctx = Context::new();
            let g = Grid::new(&[8, 8], &[1.0, 1.0]);
            let u = ctx.add_time_function("u", &g, 4, 2);
            (ctx, u)
        };
        let m = ctx.add_function("m", &Grid::new(&[8, 8], &[1.0, 1.0]), 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = solve(&pde, &u.forward(), &ctx).unwrap();
        // RHS must reference u[t] and u[t-1] but not u[t+1]
        assert!(!st.rhs.contains_access(&match u.forward() {
            Expr::Acc(a) => a,
            _ => unreachable!(),
        }));
        assert!(st.rhs.references_field(u.id()));
        assert!(st.rhs.references_field(m.id()));
    }

    #[test]
    fn solve_rejects_missing_target() {
        let (ctx, u) = setup();
        let e = u.center(); // residual without u.forward
        assert!(matches!(
            solve(&e, &u.forward(), &ctx),
            Err(SolveError::NotLinear) | Err(SolveError::SingularCoefficient)
        ));
    }

    #[test]
    fn time_lowering_first_order() {
        let (ctx, u) = setup();
        let e = lower_time_derivs(&u.dt(), &ctx).unwrap();
        // (u[t+1] - u[t]) / dt : both time offsets appear
        let fwd = match u.forward() {
            Expr::Acc(a) => a,
            _ => unreachable!(),
        };
        let cur = match u.center() {
            Expr::Acc(a) => a,
            _ => unreachable!(),
        };
        assert!(e.contains_access(&fwd));
        assert!(e.contains_access(&cur));
    }

    #[test]
    fn time_lowering_second_order_has_three_levels() {
        let (ctx, u) = setup();
        let e = lower_time_derivs(&u.dt2(), &ctx).unwrap();
        for t in [-1, 0, 1] {
            let a = match u.at(t, &[0, 0]) {
                Expr::Acc(a) => a,
                _ => unreachable!(),
            };
            assert!(e.contains_access(&a), "missing t{t:+} in {e}");
        }
    }

    #[test]
    fn space_lowering_produces_shifted_accesses() {
        let (ctx, u) = setup();
        let lap = lower_space_derivs(&u.dx2(0), &ctx, &[Stagger::Node, Stagger::Node]).unwrap();
        assert!(lap.is_lowered());
        let left = match u.at(0, &[-1, 0]) {
            Expr::Acc(a) => a,
            _ => unreachable!(),
        };
        assert!(lap.contains_access(&left), "{lap}");
    }

    #[test]
    fn staggered_first_derivative_lands_on_lattice() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        // vx staggered in x; tau on nodes. d(vx)/dx evaluated on tau's lattice.
        let vx = ctx.add_staggered_time_function("vx", &g, 4, 1, &[Stagger::Half, Stagger::Node]);
        let tau = ctx.add_time_function("tau", &g, 4, 1);
        let eq = Eq::new(tau.forward(), vx.dx(0));
        let lowered = discretize(&eq, &ctx).unwrap();
        assert!(lowered.rhs.is_lowered());
        // All accesses of vx must land on half lattice relative to node eval.
        validate_lattice(&lowered.rhs, &ctx, &[Stagger::Node, Stagger::Node]).unwrap();
    }

    #[test]
    fn staggered_second_derivative_rejected() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let vx = ctx.add_staggered_time_function("vx", &g, 4, 1, &[Stagger::Half, Stagger::Node]);
        let tau = ctx.add_time_function("tau", &g, 4, 1);
        let eq = Eq::new(tau.forward(), vx.dx2(0));
        assert_eq!(
            discretize(&eq, &ctx).unwrap_err(),
            DiscretizeError::StaggeredHighOrder
        );
    }

    #[test]
    fn index_deltas_for_staggered_access() {
        let mut ctx = Context::new();
        let g = Grid::new(&[8], &[1.0]);
        let vx = ctx.add_staggered_time_function("vx", &g, 2, 1, &[Stagger::Half]);
        // Access vx at -1/2 relative to node eval: array delta -1... sample j
        // at physical j + 1/2; eval at node 0; offset -1 half -> position
        // -1/2 -> j = -1.
        let a = Access {
            field: vx.id(),
            time_offset: 0,
            offsets_h: vec![-1],
        };
        let deltas = access_index_deltas(&a, &ctx, &[Stagger::Node]);
        assert_eq!(deltas, vec![-1]);
        let b = Access {
            field: vx.id(),
            time_offset: 0,
            offsets_h: vec![1],
        };
        assert_eq!(access_index_deltas(&b, &ctx, &[Stagger::Node]), vec![0]);
    }

    #[test]
    fn nested_derivative_tti_style() {
        // d/dx( c * d/dx(u) ) lowers to a wide stencil.
        let mut ctx = Context::new();
        let g = Grid::new(&[16, 16], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let c = ctx.add_function("c", &g, 4);
        let inner = crate::context::deriv_of(c.center() * u.dx(0), 0, 1, 4);
        let lowered = lower_space_derivs(&inner, &ctx, &[Stagger::Node, Stagger::Node]).unwrap();
        assert!(lowered.is_lowered());
        // Must reach offset +2 full steps (nested so-4 first derivatives).
        let far = Access {
            field: u.id(),
            time_offset: 0,
            offsets_h: vec![8, 0],
        };
        assert!(lowered.contains_access(&far), "{lowered}");
    }
}
