//! Generic traversal, substitution and evaluation utilities used by the
//! compiler's IR passes and by tests.

use std::collections::BTreeSet;

use crate::context::FieldId;
use crate::expr::{Access, Expr, Symbol};

/// Pre-order walk over every node of a symbolic expression. The generic
/// traversal the collectors below (and the `mpix-analysis` lints) build
/// on, so callers match only on the node kinds they care about.
pub fn visit_expr(e: &Expr, f: &mut impl FnMut(&Expr)) {
    f(e);
    match e {
        Expr::Add(xs) | Expr::Mul(xs) => xs.iter().for_each(|x| visit_expr(x, f)),
        Expr::Pow(b, _) => visit_expr(b, f),
        Expr::Func(_, b) => visit_expr(b, f),
        Expr::Deriv { expr, .. } => visit_expr(expr, f),
        _ => {}
    }
}

/// Collect every access in the expression, in deterministic order,
/// de-duplicated.
pub fn collect_accesses(e: &Expr) -> Vec<Access> {
    let mut set: BTreeSet<Access> = BTreeSet::new();
    fn walk(e: &Expr, set: &mut BTreeSet<Access>) {
        match e {
            Expr::Acc(a) => {
                set.insert(a.clone());
            }
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().for_each(|x| walk(x, set)),
            Expr::Pow(b, _) => walk(b, set),
            Expr::Func(_, b) => walk(b, set),
            Expr::Deriv { expr, .. } => walk(expr, set),
            _ => {}
        }
    }
    walk(e, &mut set);
    set.into_iter().collect()
}

/// Collect every symbol name in the expression, deterministically.
pub fn collect_symbols(e: &Expr) -> Vec<Symbol> {
    let mut set: BTreeSet<Symbol> = BTreeSet::new();
    fn walk(e: &Expr, set: &mut BTreeSet<Symbol>) {
        match e {
            Expr::Sym(s) => {
                set.insert(s.clone());
            }
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().for_each(|x| walk(x, set)),
            Expr::Pow(b, _) => walk(b, set),
            Expr::Func(_, b) => walk(b, set),
            Expr::Deriv { expr, .. } => walk(expr, set),
            _ => {}
        }
    }
    walk(e, &mut set);
    set.into_iter().collect()
}

/// Fields referenced anywhere in the expression, deterministic order.
pub fn collect_fields(e: &Expr) -> Vec<FieldId> {
    let mut set: BTreeSet<FieldId> = BTreeSet::new();
    for a in collect_accesses(e) {
        set.insert(a.field);
    }
    set.into_iter().collect()
}

/// Replace every occurrence of symbol `name` by a constant.
pub fn substitute_symbol(e: &Expr, name: &str, value: f64) -> Expr {
    let out = match e {
        Expr::Sym(s) if s.name() == name => Expr::Const(value),
        Expr::Add(xs) => Expr::Add(
            xs.iter()
                .map(|x| substitute_symbol(x, name, value))
                .collect(),
        ),
        Expr::Mul(xs) => Expr::Mul(
            xs.iter()
                .map(|x| substitute_symbol(x, name, value))
                .collect(),
        ),
        Expr::Pow(b, e2) => Expr::Pow(Box::new(substitute_symbol(b, name, value)), *e2),
        Expr::Func(fx, b) => Expr::Func(*fx, Box::new(substitute_symbol(b, name, value))),
        Expr::Deriv {
            expr,
            dim,
            order,
            accuracy,
        } => Expr::Deriv {
            expr: Box::new(substitute_symbol(expr, name, value)),
            dim: *dim,
            order: *order,
            accuracy: *accuracy,
        },
        other => other.clone(),
    };
    crate::simplify::simplify(&out)
}

/// Rewrite every access through `f` (e.g. for index shifting in lowering).
pub fn map_accesses(e: &Expr, f: &impl Fn(&Access) -> Access) -> Expr {
    match e {
        Expr::Acc(a) => Expr::Acc(f(a)),
        Expr::Add(xs) => Expr::Add(xs.iter().map(|x| map_accesses(x, f)).collect()),
        Expr::Mul(xs) => Expr::Mul(xs.iter().map(|x| map_accesses(x, f)).collect()),
        Expr::Pow(b, e2) => Expr::Pow(Box::new(map_accesses(b, f)), *e2),
        Expr::Func(fx, b) => Expr::Func(*fx, Box::new(map_accesses(b, f))),
        Expr::Deriv {
            expr,
            dim,
            order,
            accuracy,
        } => Expr::Deriv {
            expr: Box::new(map_accesses(expr, f)),
            dim: *dim,
            order: *order,
            accuracy: *accuracy,
        },
        other => other.clone(),
    }
}

/// Numerically evaluate a lowered expression. `sym` resolves symbols,
/// `acc` resolves field accesses. Panics on `Deriv` nodes — evaluate only
/// lowered expressions.
pub fn eval_with(e: &Expr, sym: &impl Fn(&str) -> f64, acc: &impl Fn(&Access) -> f64) -> f64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Sym(s) => sym(s.name()),
        Expr::Acc(a) => acc(a),
        Expr::Add(xs) => xs.iter().map(|x| eval_with(x, sym, acc)).sum(),
        Expr::Mul(xs) => xs.iter().map(|x| eval_with(x, sym, acc)).product(),
        Expr::Pow(b, e2) => eval_with(b, sym, acc).powi(*e2),
        Expr::Func(fx, b) => fx.apply(eval_with(b, sym, acc)),
        Expr::Deriv { .. } => panic!("cannot numerically evaluate underived expression"),
    }
}

/// Structural size of the expression (number of nodes) — used by compiler
/// heuristics and tests.
pub fn node_count(e: &Expr) -> usize {
    match e {
        Expr::Add(xs) | Expr::Mul(xs) => 1 + xs.iter().map(node_count).sum::<usize>(),
        Expr::Pow(b, _) => 1 + node_count(b),
        Expr::Func(_, b) => 1 + node_count(b),
        Expr::Deriv { expr, .. } => 1 + node_count(expr),
        _ => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::context::Context;
    use crate::grid::Grid;

    #[test]
    fn collect_accesses_dedups() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        let e = u.center() * Expr::sym("a") + u.center() + u.forward();
        let accs = collect_accesses(&e);
        assert_eq!(accs.len(), 2);
    }

    #[test]
    fn collect_symbols_finds_all() {
        let e = Expr::sym("dt") * Expr::sym("h_x") + Expr::sym("dt");
        let syms = collect_symbols(&e);
        assert_eq!(syms.len(), 2);
    }

    #[test]
    fn substitution_folds_constants() {
        let e = Expr::sym("dt") * Expr::sym("x");
        let s = substitute_symbol(&e, "dt", 2.0);
        assert_eq!(s, Expr::Mul(vec![Expr::Const(2.0), Expr::sym("x")]));
        let s2 = substitute_symbol(&s, "x", 3.0);
        assert_eq!(s2, Expr::Const(6.0));
    }

    #[test]
    fn eval_with_matches_hand_computation() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4], &[1.0]);
        let u = ctx.add_time_function("u", &g, 2, 1);
        // 2*u[t,0] + dt^2
        let e = 2.0 * u.center() + Expr::sym("dt").pow(2);
        let v = eval_with(&e, &|s| if s == "dt" { 3.0 } else { 0.0 }, &|_| 5.0);
        assert_eq!(v, 19.0);
    }

    #[test]
    fn node_count_counts() {
        let e = Expr::sym("a") + Expr::sym("b");
        assert_eq!(node_count(&e), 3);
    }
}
