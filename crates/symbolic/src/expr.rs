//! Symbolic expression trees.
//!
//! Expressions are plain immutable trees. Spatial offsets are stored in
//! *half grid steps* so that staggered (half-node) positions are exactly
//! representable: an offset of `+2` is one full grid step, `+1` is half a
//! step. Staggered fields have their samples located at half positions;
//! the conversion to concrete array-index deltas happens during lowering
//! (see `mpix-ir`).

use std::cmp::Ordering;
use std::fmt;
use std::ops;

use crate::context::FieldId;

/// A named scalar symbol (e.g. `dt`, `h_x`, `damp_coeff`).
///
/// Symbols are compared by name; they are cheap to clone.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub String);

impl Symbol {
    pub fn new(name: impl Into<String>) -> Self {
        Symbol(name.into())
    }
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// A read or write access of a grid function at a relative position.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Access {
    /// Which field is accessed.
    pub field: FieldId,
    /// Offset along the time dimension relative to the current step `t`
    /// (`+1` = forward, `-1` = backward). Always 0 for time-invariant
    /// `Function`s.
    pub time_offset: i32,
    /// Spatial offsets in **half grid steps**, one per grid dimension.
    pub offsets_h: Vec<i32>,
}

impl Access {
    /// True if all spatial offsets are zero (the access is at the
    /// evaluation point).
    pub fn is_centered(&self) -> bool {
        self.offsets_h.iter().all(|&o| o == 0)
    }

    /// Shift the access by `delta_h` half-steps along `dim`.
    pub fn shifted(&self, dim: usize, delta_h: i32) -> Access {
        let mut a = self.clone();
        a.offsets_h[dim] += delta_h;
        a
    }
}

/// A unary elementary function applicable pointwise.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum UnaryFn {
    Sqrt,
    Sin,
    Cos,
    Exp,
    Abs,
}

impl UnaryFn {
    pub fn apply(self, x: f64) -> f64 {
        match self {
            UnaryFn::Sqrt => x.sqrt(),
            UnaryFn::Sin => x.sin(),
            UnaryFn::Cos => x.cos(),
            UnaryFn::Exp => x.exp(),
            UnaryFn::Abs => x.abs(),
        }
    }
    /// `f32` evaluation (matches the executor's arithmetic width).
    pub fn apply_f32(self, x: f32) -> f32 {
        match self {
            UnaryFn::Sqrt => x.sqrt(),
            UnaryFn::Sin => x.sin(),
            UnaryFn::Cos => x.cos(),
            UnaryFn::Exp => x.exp(),
            UnaryFn::Abs => x.abs(),
        }
    }
    pub fn name(self) -> &'static str {
        match self {
            UnaryFn::Sqrt => "sqrt",
            UnaryFn::Sin => "sin",
            UnaryFn::Cos => "cos",
            UnaryFn::Exp => "exp",
            UnaryFn::Abs => "abs",
        }
    }
}

/// The dimension a [`Expr::Deriv`] differentiates along.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub enum DerivDim {
    /// Time.
    Time,
    /// The `i`-th spatial dimension.
    Space(usize),
}

/// A symbolic expression.
///
/// Invariants after [`crate::simplify::simplify`]:
/// * `Add`/`Mul` children are flattened (no directly nested same-kind node),
///   sorted canonically, and contain at most one leading `Const`;
/// * neither `Add` nor `Mul` has fewer than two children;
/// * `Pow` exponents are non-zero and not one.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// A floating-point constant.
    Const(f64),
    /// A named scalar symbol.
    Sym(Symbol),
    /// A grid-function access.
    Acc(Access),
    /// Sum of the children.
    Add(Vec<Expr>),
    /// Product of the children.
    Mul(Vec<Expr>),
    /// Integer power (negative exponents express division).
    Pow(Box<Expr>, i32),
    /// A pointwise elementary function (`sqrt`, `sin`, …).
    Func(UnaryFn, Box<Expr>),
    /// A not-yet-discretized derivative of arbitrary order.
    ///
    /// `accuracy` is the spatial discretization order (SDO) for spatial
    /// derivatives; ignored for time derivatives (which use the field's
    /// intrinsic time order).
    Deriv {
        expr: Box<Expr>,
        dim: DerivDim,
        order: u32,
        accuracy: u32,
    },
}

impl Expr {
    pub fn zero() -> Expr {
        Expr::Const(0.0)
    }
    pub fn one() -> Expr {
        Expr::Const(1.0)
    }
    pub fn sym(name: impl Into<String>) -> Expr {
        Expr::Sym(Symbol::new(name))
    }

    /// True when the expression contains no [`Expr::Deriv`] nodes, i.e. is
    /// fully discretized and ready for the compiler's lowering stages.
    pub fn is_lowered(&self) -> bool {
        match self {
            Expr::Deriv { .. } => false,
            Expr::Const(_) | Expr::Sym(_) | Expr::Acc(_) => true,
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().all(|x| x.is_lowered()),
            Expr::Pow(b, _) => b.is_lowered(),
            Expr::Func(_, b) => b.is_lowered(),
        }
    }

    /// `self` raised to an integer power.
    pub fn pow(self, e: i32) -> Expr {
        crate::simplify::simplify(&Expr::Pow(Box::new(self), e))
    }

    /// Multiplicative inverse.
    pub fn recip(self) -> Expr {
        self.pow(-1)
    }

    /// Pointwise square root.
    pub fn sqrt(self) -> Expr {
        crate::simplify::simplify(&Expr::Func(UnaryFn::Sqrt, Box::new(self)))
    }
    /// Pointwise sine.
    pub fn sin(self) -> Expr {
        crate::simplify::simplify(&Expr::Func(UnaryFn::Sin, Box::new(self)))
    }
    /// Pointwise cosine.
    pub fn cos(self) -> Expr {
        crate::simplify::simplify(&Expr::Func(UnaryFn::Cos, Box::new(self)))
    }
    /// Pointwise exponential.
    pub fn exp(self) -> Expr {
        crate::simplify::simplify(&Expr::Func(UnaryFn::Exp, Box::new(self)))
    }
    /// Pointwise absolute value.
    pub fn abs(self) -> Expr {
        crate::simplify::simplify(&Expr::Func(UnaryFn::Abs, Box::new(self)))
    }

    /// Does this expression contain exactly this access as a leaf?
    pub fn contains_access(&self, a: &Access) -> bool {
        match self {
            Expr::Acc(b) => a == b,
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().any(|x| x.contains_access(a)),
            Expr::Pow(b, _) => b.contains_access(a),
            Expr::Func(_, b) => b.contains_access(a),
            Expr::Deriv { expr, .. } => expr.contains_access(a),
            _ => false,
        }
    }

    /// Does this expression read (or write) the given field anywhere?
    pub fn references_field(&self, f: FieldId) -> bool {
        match self {
            Expr::Acc(a) => a.field == f,
            Expr::Add(xs) | Expr::Mul(xs) => xs.iter().any(|x| x.references_field(f)),
            Expr::Pow(b, _) => b.references_field(f),
            Expr::Func(_, b) => b.references_field(f),
            Expr::Deriv { expr, .. } => expr.references_field(f),
            _ => false,
        }
    }

    /// Extract the constant value if this is a `Const`.
    pub fn as_const(&self) -> Option<f64> {
        match self {
            Expr::Const(c) => Some(*c),
            _ => None,
        }
    }

    /// Shift every access in the expression by `delta_h` half-steps along
    /// spatial dimension `dim`. Scalars are untouched. This is the core
    /// operation behind finite-difference discretization of arbitrary
    /// sub-expressions.
    pub fn shifted_space(&self, dim: usize, delta_h: i32) -> Expr {
        match self {
            Expr::Acc(a) => Expr::Acc(a.shifted(dim, delta_h)),
            Expr::Add(xs) => Expr::Add(xs.iter().map(|x| x.shifted_space(dim, delta_h)).collect()),
            Expr::Mul(xs) => Expr::Mul(xs.iter().map(|x| x.shifted_space(dim, delta_h)).collect()),
            Expr::Pow(b, e) => Expr::Pow(Box::new(b.shifted_space(dim, delta_h)), *e),
            Expr::Func(fx, b) => Expr::Func(*fx, Box::new(b.shifted_space(dim, delta_h))),
            Expr::Deriv {
                expr,
                dim: d,
                order,
                accuracy,
            } => Expr::Deriv {
                expr: Box::new(expr.shifted_space(dim, delta_h)),
                dim: *d,
                order: *order,
                accuracy: *accuracy,
            },
            other => other.clone(),
        }
    }

    /// Shift every access in the expression by `delta` steps in time.
    pub fn shifted_time(&self, delta: i32) -> Expr {
        match self {
            Expr::Acc(a) => {
                let mut a = a.clone();
                a.time_offset += delta;
                Expr::Acc(a)
            }
            Expr::Add(xs) => Expr::Add(xs.iter().map(|x| x.shifted_time(delta)).collect()),
            Expr::Mul(xs) => Expr::Mul(xs.iter().map(|x| x.shifted_time(delta)).collect()),
            Expr::Pow(b, e) => Expr::Pow(Box::new(b.shifted_time(delta)), *e),
            Expr::Func(fx, b) => Expr::Func(*fx, Box::new(b.shifted_time(delta))),
            Expr::Deriv {
                expr,
                dim,
                order,
                accuracy,
            } => Expr::Deriv {
                expr: Box::new(expr.shifted_time(delta)),
                dim: *dim,
                order: *order,
                accuracy: *accuracy,
            },
            other => other.clone(),
        }
    }

    /// A total, deterministic ordering key used to canonicalize `Add`/`Mul`
    /// child order. Constants sort first, then symbols, then accesses,
    /// then compounds.
    fn sort_class(&self) -> u8 {
        match self {
            Expr::Const(_) => 0,
            Expr::Sym(_) => 1,
            Expr::Acc(_) => 2,
            Expr::Pow(_, _) => 3,
            Expr::Mul(_) => 4,
            Expr::Add(_) => 5,
            Expr::Deriv { .. } => 6,
            Expr::Func(_, _) => 7,
        }
    }

    /// Canonical structural comparison (total order; NaN-free constants
    /// assumed).
    pub fn canon_cmp(&self, other: &Expr) -> Ordering {
        let c = self.sort_class().cmp(&other.sort_class());
        if c != Ordering::Equal {
            return c;
        }
        match (self, other) {
            (Expr::Const(a), Expr::Const(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Expr::Sym(a), Expr::Sym(b)) => a.cmp(b),
            (Expr::Acc(a), Expr::Acc(b)) => a.cmp(b),
            (Expr::Pow(a, ea), Expr::Pow(b, eb)) => a.canon_cmp(b).then_with(|| ea.cmp(eb)),
            (Expr::Func(fa, a), Expr::Func(fb, b)) => fa.cmp(fb).then_with(|| a.canon_cmp(b)),
            (Expr::Add(xs), Expr::Add(ys)) | (Expr::Mul(xs), Expr::Mul(ys)) => {
                for (x, y) in xs.iter().zip(ys.iter()) {
                    let c = x.canon_cmp(y);
                    if c != Ordering::Equal {
                        return c;
                    }
                }
                xs.len().cmp(&ys.len())
            }
            (
                Expr::Deriv {
                    expr: ea,
                    dim: da,
                    order: oa,
                    accuracy: aa,
                },
                Expr::Deriv {
                    expr: eb,
                    dim: db,
                    order: ob,
                    accuracy: ab,
                },
            ) => ea
                .canon_cmp(eb)
                .then_with(|| da.cmp(db))
                .then_with(|| oa.cmp(ob))
                .then_with(|| aa.cmp(ab)),
            _ => Ordering::Equal,
        }
    }
}

// ---------------------------------------------------------------------------
// Operator overloading: Expr {+,-,*,/} Expr and f64 on either side.
// Results are simplified eagerly, which keeps user-built trees small.
// ---------------------------------------------------------------------------

impl ops::Add for Expr {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        crate::simplify::simplify(&Expr::Add(vec![self, rhs]))
    }
}
impl ops::Sub for Expr {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        crate::simplify::simplify(&Expr::Add(vec![
            self,
            Expr::Mul(vec![Expr::Const(-1.0), rhs]),
        ]))
    }
}
impl ops::Mul for Expr {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        crate::simplify::simplify(&Expr::Mul(vec![self, rhs]))
    }
}
impl ops::Div for Expr {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        crate::simplify::simplify(&Expr::Mul(vec![self, Expr::Pow(Box::new(rhs), -1)]))
    }
}
impl ops::Neg for Expr {
    type Output = Expr;
    fn neg(self) -> Expr {
        crate::simplify::simplify(&Expr::Mul(vec![Expr::Const(-1.0), self]))
    }
}

impl ops::Add<f64> for Expr {
    type Output = Expr;
    fn add(self, rhs: f64) -> Expr {
        self + Expr::Const(rhs)
    }
}
impl ops::Sub<f64> for Expr {
    type Output = Expr;
    fn sub(self, rhs: f64) -> Expr {
        self - Expr::Const(rhs)
    }
}
impl ops::Mul<f64> for Expr {
    type Output = Expr;
    fn mul(self, rhs: f64) -> Expr {
        self * Expr::Const(rhs)
    }
}
impl ops::Div<f64> for Expr {
    type Output = Expr;
    fn div(self, rhs: f64) -> Expr {
        self / Expr::Const(rhs)
    }
}
impl ops::Add<Expr> for f64 {
    type Output = Expr;
    fn add(self, rhs: Expr) -> Expr {
        Expr::Const(self) + rhs
    }
}
impl ops::Sub<Expr> for f64 {
    type Output = Expr;
    fn sub(self, rhs: Expr) -> Expr {
        Expr::Const(self) - rhs
    }
}
impl ops::Mul<Expr> for f64 {
    type Output = Expr;
    fn mul(self, rhs: Expr) -> Expr {
        Expr::Const(self) * rhs
    }
}
impl ops::Div<Expr> for f64 {
    type Output = Expr;
    fn div(self, rhs: Expr) -> Expr {
        Expr::Const(self) / rhs
    }
}

// ---------------------------------------------------------------------------
// Display
// ---------------------------------------------------------------------------

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Const(c) => {
                if *c == c.trunc() && c.abs() < 1e15 {
                    write!(f, "{}", *c as i64)
                } else {
                    write!(f, "{c}")
                }
            }
            Expr::Sym(s) => write!(f, "{}", s.0),
            Expr::Acc(a) => {
                write!(f, "F{}[t{:+}", a.field.0, a.time_offset)?;
                for o in &a.offsets_h {
                    if o % 2 == 0 {
                        write!(f, ",{:+}", o / 2)?;
                    } else {
                        write!(f, ",{:+}/2", o)?;
                    }
                }
                write!(f, "]")
            }
            Expr::Add(xs) => {
                write!(f, "(")?;
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " + ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
            Expr::Mul(xs) => {
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        write!(f, "*")?;
                    }
                    write!(f, "{x}")?;
                }
                Ok(())
            }
            Expr::Pow(b, e) => write!(f, "({b})^{e}"),
            Expr::Func(fx, b) => write!(f, "{}({b})", fx.name()),
            Expr::Deriv {
                expr, dim, order, ..
            } => match dim {
                DerivDim::Time => write!(f, "d{order}/dt{order}({expr})"),
                DerivDim::Space(d) => write!(f, "d{order}/dx{d}({expr})"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_ordering_and_equality() {
        assert_eq!(Symbol::new("dt"), Symbol::new("dt"));
        assert!(Symbol::new("a") < Symbol::new("b"));
    }

    #[test]
    fn access_shift() {
        let a = Access {
            field: FieldId(0),
            time_offset: 0,
            offsets_h: vec![0, 0],
        };
        let b = a.shifted(1, 2);
        assert_eq!(b.offsets_h, vec![0, 2]);
        assert!(a.is_centered());
        assert!(!b.is_centered());
    }

    #[test]
    fn operator_overloading_builds_simplified_trees() {
        let x = Expr::sym("x");
        let e = x.clone() + x.clone();
        // 2*x after like-term collection
        assert_eq!(e, Expr::Mul(vec![Expr::Const(2.0), Expr::sym("x")]));
        let z = x.clone() - x;
        assert_eq!(z, Expr::Const(0.0));
    }

    #[test]
    fn division_becomes_negative_power() {
        let x = Expr::sym("x");
        let y = Expr::sym("y");
        let e = x / y;
        match e {
            Expr::Mul(xs) => {
                assert!(xs.iter().any(|t| matches!(t, Expr::Pow(_, -1))));
            }
            other => panic!("expected Mul, got {other:?}"),
        }
    }

    #[test]
    fn shifted_space_moves_all_accesses() {
        let a = Expr::Acc(Access {
            field: FieldId(3),
            time_offset: 0,
            offsets_h: vec![0, 0, 0],
        });
        let e = a.clone() * Expr::sym("c") + a;
        let s = e.shifted_space(2, 4);
        // every access offset along z must now be +4 halves (= 2 steps)
        fn check(e: &Expr) {
            match e {
                Expr::Acc(a) => assert_eq!(a.offsets_h[2], 4),
                Expr::Add(xs) | Expr::Mul(xs) => xs.iter().for_each(check),
                Expr::Pow(b, _) => check(b),
                _ => {}
            }
        }
        check(&s);
    }

    #[test]
    fn display_is_readable() {
        let a = Expr::Acc(Access {
            field: FieldId(0),
            time_offset: 1,
            offsets_h: vec![2, -2],
        });
        let s = format!("{a}");
        assert!(s.contains("t+1"), "{s}");
        assert!(s.contains("+1") && s.contains("-1"), "{s}");
    }

    #[test]
    fn canon_cmp_is_total_and_consistent() {
        let items = vec![
            Expr::Const(1.0),
            Expr::sym("a"),
            Expr::sym("b"),
            Expr::Acc(Access {
                field: FieldId(0),
                time_offset: 0,
                offsets_h: vec![0],
            }),
        ];
        for x in &items {
            assert_eq!(x.canon_cmp(x), Ordering::Equal);
            for y in &items {
                let xy = x.canon_cmp(y);
                let yx = y.canon_cmp(x);
                assert_eq!(xy, yx.reverse());
            }
        }
    }
}
