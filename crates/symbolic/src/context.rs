//! Field registry: the analogue of Devito's `Function` / `TimeFunction`.
//!
//! A [`Context`] owns the metadata for every grid function appearing in a
//! set of equations. [`FieldHandle`]s are the user-facing objects offering
//! the symbolic accessors of the paper's Listing 1 (`u.dt`, `u.laplace`,
//! `u.forward`, …).

use crate::expr::{Access, DerivDim, Expr};
use crate::grid::Grid;
use crate::simplify::simplify;

/// Identifier of a field within its [`Context`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct FieldId(pub u32);

/// Whether a field carries time buffers.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FieldKind {
    /// Time-invariant grid data (model parameters, damping masks, …).
    Function,
    /// Time-varying data with `time_order + 1` rotating buffers.
    TimeFunction,
}

/// Per-dimension staggering of a field's sample positions.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum Stagger {
    /// Samples at integer grid nodes.
    #[default]
    Node,
    /// Samples at half-step positions (`x + 1/2`).
    Half,
}

impl Stagger {
    /// Offset of the sample position in half steps (0 or 1).
    pub fn halves(self) -> i32 {
        match self {
            Stagger::Node => 0,
            Stagger::Half => 1,
        }
    }
}

/// Metadata describing one grid function.
#[derive(Clone, Debug)]
pub struct Field {
    pub id: FieldId,
    pub name: String,
    pub kind: FieldKind,
    /// Global grid shape this field is defined on (the `data` region).
    pub shape: Vec<usize>,
    /// Spatial discretization order; also the default allocated halo
    /// width per side, as in Devito (the paper: "assuming u has an SDO of
    /// 2, it has, by default, a halo of size 2").
    pub space_order: u32,
    /// Temporal discretization order; `time_order + 1` buffers are kept.
    /// Zero for [`FieldKind::Function`].
    pub time_order: u32,
    /// Per-dimension staggering.
    pub stagger: Vec<Stagger>,
}

impl Field {
    /// Number of rotating time buffers this field needs.
    pub fn time_buffers(&self) -> usize {
        match self.kind {
            FieldKind::Function => 1,
            FieldKind::TimeFunction => self.time_order as usize + 1,
        }
    }

    /// Allocated halo width per side, per dimension.
    pub fn halo(&self) -> u32 {
        self.space_order
    }

    /// Number of spatial dimensions.
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }
}

/// Registry of fields participating in a set of equations.
#[derive(Clone, Debug, Default)]
pub struct Context {
    fields: Vec<Field>,
}

impl Context {
    pub fn new() -> Context {
        Context::default()
    }

    /// Register a time-invariant `Function` (model parameter).
    pub fn add_function(&mut self, name: &str, grid: &Grid, space_order: u32) -> FieldHandle {
        self.add_field(name, grid, space_order, 0, FieldKind::Function, None)
    }

    /// Register a `TimeFunction` with `time_order + 1` rotating buffers.
    pub fn add_time_function(
        &mut self,
        name: &str,
        grid: &Grid,
        space_order: u32,
        time_order: u32,
    ) -> FieldHandle {
        assert!(time_order >= 1, "time functions need time_order >= 1");
        self.add_field(
            name,
            grid,
            space_order,
            time_order,
            FieldKind::TimeFunction,
            None,
        )
    }

    /// Register a staggered `TimeFunction` (elastic/viscoelastic grids).
    pub fn add_staggered_time_function(
        &mut self,
        name: &str,
        grid: &Grid,
        space_order: u32,
        time_order: u32,
        stagger: &[Stagger],
    ) -> FieldHandle {
        assert_eq!(stagger.len(), grid.ndim());
        self.add_field(
            name,
            grid,
            space_order,
            time_order,
            FieldKind::TimeFunction,
            Some(stagger.to_vec()),
        )
    }

    fn add_field(
        &mut self,
        name: &str,
        grid: &Grid,
        space_order: u32,
        time_order: u32,
        kind: FieldKind,
        stagger: Option<Vec<Stagger>>,
    ) -> FieldHandle {
        assert!(
            space_order >= 2 && space_order % 2 == 0,
            "space order must be even, >= 2"
        );
        assert!(
            self.fields.iter().all(|f| f.name != name),
            "duplicate field name {name:?}"
        );
        let id = FieldId(self.fields.len() as u32);
        let field = Field {
            id,
            name: name.to_string(),
            kind,
            shape: grid.shape.clone(),
            space_order,
            time_order,
            stagger: stagger.unwrap_or_else(|| vec![Stagger::Node; grid.ndim()]),
        };
        self.fields.push(field.clone());
        FieldHandle { meta: field }
    }

    /// Look up a field by id.
    pub fn field(&self, id: FieldId) -> &Field {
        &self.fields[id.0 as usize]
    }

    /// Look up a field by name.
    pub fn field_by_name(&self, name: &str) -> Option<&Field> {
        self.fields.iter().find(|f| f.name == name)
    }

    /// All registered fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Handle for an already-registered field.
    pub fn handle(&self, id: FieldId) -> FieldHandle {
        FieldHandle {
            meta: self.fields[id.0 as usize].clone(),
        }
    }
}

/// User-facing handle providing the symbolic accessors of the DSL.
#[derive(Clone, Debug)]
pub struct FieldHandle {
    meta: Field,
}

impl FieldHandle {
    pub fn id(&self) -> FieldId {
        self.meta.id
    }
    pub fn name(&self) -> &str {
        &self.meta.name
    }
    pub fn meta(&self) -> &Field {
        &self.meta
    }
    pub fn ndim(&self) -> usize {
        self.meta.ndim()
    }
    pub fn space_order(&self) -> u32 {
        self.meta.space_order
    }

    /// Access at time offset `t_off` and spatial offsets (in *full* grid
    /// steps) `offsets`.
    pub fn at(&self, t_off: i32, offsets: &[i32]) -> Expr {
        assert_eq!(offsets.len(), self.meta.ndim());
        Expr::Acc(Access {
            field: self.meta.id,
            time_offset: t_off,
            offsets_h: offsets.iter().map(|&o| 2 * o).collect(),
        })
    }

    /// Access at time offset `t_off` with spatial offsets given directly
    /// in half steps.
    pub fn at_halves(&self, t_off: i32, offsets_h: &[i32]) -> Expr {
        assert_eq!(offsets_h.len(), self.meta.ndim());
        Expr::Acc(Access {
            field: self.meta.id,
            time_offset: t_off,
            offsets_h: offsets_h.to_vec(),
        })
    }

    /// The field at the current time step and evaluation point: `u`.
    pub fn center(&self) -> Expr {
        self.at(0, &vec![0; self.meta.ndim()])
    }

    /// `u.forward` — the field at `t + 1`.
    pub fn forward(&self) -> Expr {
        self.at(1, &vec![0; self.meta.ndim()])
    }

    /// `u.backward` — the field at `t - 1`.
    pub fn backward(&self) -> Expr {
        self.at(-1, &vec![0; self.meta.ndim()])
    }

    /// `u.dt` — first time derivative (forward difference on lowering).
    pub fn dt(&self) -> Expr {
        self.assert_time("dt");
        Expr::Deriv {
            expr: Box::new(self.center()),
            dim: DerivDim::Time,
            order: 1,
            accuracy: self.meta.time_order,
        }
    }

    /// `u.dt2` — second time derivative (central difference on lowering).
    pub fn dt2(&self) -> Expr {
        self.assert_time("dt2");
        assert!(
            self.meta.time_order >= 2,
            "dt2 requires time_order >= 2 on field {:?}",
            self.meta.name
        );
        Expr::Deriv {
            expr: Box::new(self.center()),
            dim: DerivDim::Time,
            order: 2,
            accuracy: self.meta.time_order,
        }
    }

    /// First spatial derivative along dimension `d` at the field's
    /// spatial order.
    pub fn dx(&self, d: usize) -> Expr {
        self.deriv(d, 1)
    }

    /// Second spatial derivative along dimension `d`.
    pub fn dx2(&self, d: usize) -> Expr {
        self.deriv(d, 2)
    }

    /// Spatial derivative of arbitrary order along dimension `d`.
    pub fn deriv(&self, d: usize, order: u32) -> Expr {
        assert!(d < self.meta.ndim(), "dimension {d} out of range");
        Expr::Deriv {
            expr: Box::new(self.center()),
            dim: DerivDim::Space(d),
            order,
            accuracy: self.meta.space_order,
        }
    }

    /// `u.laplace` — sum of second derivatives over all spatial dims.
    pub fn laplace(&self) -> Expr {
        let terms: Vec<Expr> = (0..self.meta.ndim()).map(|d| self.dx2(d)).collect();
        simplify(&Expr::Add(terms))
    }

    fn assert_time(&self, what: &str) {
        assert!(
            self.meta.kind == FieldKind::TimeFunction,
            "{what} on non-time function {:?}",
            self.meta.name
        );
    }
}

/// Sample a field at a *different* lattice by averaging the two bracketing
/// samples along every dimension where the field's staggering disagrees
/// with the target lattice — the standard staggered-grid treatment of
/// material parameters (e.g. buoyancy `1/ρ` averaged onto the `v_x`
/// half-lattice, shear modulus averaged onto edge midpoints).
pub fn averaged_at(f: &FieldHandle, target: &[Stagger]) -> Expr {
    let meta = f.meta();
    assert_eq!(target.len(), meta.ndim());
    let diff: Vec<usize> = (0..meta.ndim())
        .filter(|&d| meta.stagger[d] != target[d])
        .collect();
    if diff.is_empty() {
        return f.center();
    }
    let k = diff.len();
    let mut terms = Vec::with_capacity(1 << k);
    for mask in 0..(1usize << k) {
        let mut off = vec![0i32; meta.ndim()];
        for (bit, &d) in diff.iter().enumerate() {
            // The bracketing samples sit half a step either side of the
            // target position: offset ±1 in half-steps.
            off[d] = if (mask >> bit) & 1 == 1 { 1 } else { -1 };
        }
        terms.push(f.at_halves(0, &off));
    }
    simplify(&Expr::Mul(vec![
        Expr::Const(1.0 / (1 << k) as f64),
        Expr::Add(terms),
    ]))
}

/// Free-standing derivative of an arbitrary expression (for e.g. the TTI
/// rotated Laplacian, which differentiates products of fields).
pub fn deriv_of(expr: Expr, d: usize, order: u32, accuracy: u32) -> Expr {
    Expr::Deriv {
        expr: Box::new(expr),
        dim: DerivDim::Space(d),
        order,
        accuracy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid2() -> Grid {
        Grid::new(&[4, 4], &[2.0, 2.0])
    }

    #[test]
    fn time_buffers_follow_time_order() {
        let mut ctx = Context::new();
        let g = grid2();
        let u = ctx.add_time_function("u", &g, 2, 2);
        assert_eq!(ctx.field(u.id()).time_buffers(), 3);
        let v = ctx.add_time_function("v", &g, 2, 1);
        assert_eq!(ctx.field(v.id()).time_buffers(), 2);
        let m = ctx.add_function("m", &g, 2);
        assert_eq!(ctx.field(m.id()).time_buffers(), 1);
    }

    #[test]
    #[should_panic]
    fn duplicate_names_rejected() {
        let mut ctx = Context::new();
        let g = grid2();
        ctx.add_function("m", &g, 2);
        ctx.add_function("m", &g, 2);
    }

    #[test]
    #[should_panic]
    fn odd_space_order_rejected() {
        let mut ctx = Context::new();
        ctx.add_function("m", &grid2(), 3);
    }

    #[test]
    fn forward_backward_accessors() {
        let mut ctx = Context::new();
        let u = ctx.add_time_function("u", &grid2(), 2, 2);
        match u.forward() {
            Expr::Acc(a) => assert_eq!(a.time_offset, 1),
            _ => panic!(),
        }
        match u.backward() {
            Expr::Acc(a) => assert_eq!(a.time_offset, -1),
            _ => panic!(),
        }
    }

    #[test]
    fn laplace_has_one_term_per_dim() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4, 4], &[1.0, 1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        match u.laplace() {
            Expr::Add(ts) => assert_eq!(ts.len(), 3),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    #[should_panic]
    fn dt2_requires_second_order_time() {
        let mut ctx = Context::new();
        let u = ctx.add_time_function("u", &grid2(), 2, 1);
        u.dt2();
    }

    #[test]
    fn staggered_fields_record_position() {
        let mut ctx = Context::new();
        let g = Grid::new(&[4, 4], &[1.0, 1.0]);
        let vx = ctx.add_staggered_time_function("vx", &g, 4, 1, &[Stagger::Half, Stagger::Node]);
        assert_eq!(ctx.field(vx.id()).stagger[0], Stagger::Half);
        assert_eq!(ctx.field(vx.id()).stagger[1], Stagger::Node);
    }

    #[test]
    fn halo_defaults_to_space_order() {
        // Matches the paper §III d: SDO 2 -> halo of size 2.
        let mut ctx = Context::new();
        let u = ctx.add_time_function("u", &grid2(), 2, 1);
        assert_eq!(ctx.field(u.id()).halo(), 2);
    }
}
