//! Property tests on the symbolic algebra: simplification and expansion
//! must preserve numeric value; FD weights must satisfy their defining
//! moment conditions for arbitrary valid node sets.

use mpix_symbolic::{expand, fd_weights, simplify, Expr};
use proptest::prelude::*;

/// A random expression over two symbols and constants.
fn expr_strategy() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![
        (-4.0f64..4.0).prop_map(|c| Expr::Const((c * 8.0).round() / 8.0)),
        Just(Expr::sym("x")),
        Just(Expr::sym("y")),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Expr::Add),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Expr::Mul),
            (inner, 1..3i32).prop_map(|(b, e)| Expr::Pow(Box::new(b), e)),
        ]
    })
}

fn eval(e: &Expr, x: f64, y: f64) -> f64 {
    mpix_symbolic::visit::eval_with(e, &|s| if s == "x" { x } else { y } as f32 as f64, &|_| 0.0)
}

fn close(a: f64, b: f64) -> bool {
    if !a.is_finite() || !b.is_finite() {
        return true; // overflow cases are out of scope
    }
    (a - b).abs() <= 1e-6 * a.abs().max(b.abs()).max(1.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn simplify_preserves_value(e in expr_strategy(), x in -2.0f64..2.0, y in -2.0f64..2.0) {
        let s = simplify(&e);
        prop_assert!(
            close(eval(&e, x, y), eval(&s, x, y)),
            "simplify changed value: {} -> {} at x={x}, y={y}: {} vs {}",
            e, s, eval(&e, x, y), eval(&s, x, y)
        );
    }

    #[test]
    fn expand_preserves_value(e in expr_strategy(), x in -2.0f64..2.0, y in -2.0f64..2.0) {
        let ex = expand(&e);
        prop_assert!(
            close(eval(&e, x, y), eval(&ex, x, y)),
            "expand changed value: {} -> {} at x={x}, y={y}",
            e, ex
        );
    }

    #[test]
    fn simplify_is_idempotent(e in expr_strategy()) {
        let s1 = simplify(&e);
        let s2 = simplify(&s1);
        prop_assert_eq!(&s1, &s2, "not idempotent: {} -> {} -> {}", e, s1, s2);
    }

    #[test]
    fn arithmetic_ops_match_f64(a in -3.0f64..3.0, b in -3.0f64..3.0) {
        let (ea, eb) = (Expr::Const(a), Expr::Const(b));
        prop_assert!(close(eval(&(ea.clone() + eb.clone()), 0.0, 0.0), a + b));
        prop_assert!(close(eval(&(ea.clone() - eb.clone()), 0.0, 0.0), a - b));
        prop_assert!(close(eval(&(ea.clone() * eb.clone()), 0.0, 0.0), a * b));
        if b.abs() > 1e-6 {
            prop_assert!(close(eval(&(ea / eb), 0.0, 0.0), a / b));
        }
    }

    #[test]
    fn fd_weights_satisfy_moment_conditions(
        m in 0u32..3,
        extra in 1usize..4,
        x0 in -1.0f64..1.0,
    ) {
        // Random distinct nodes around x0.
        let n = m as usize + extra + 1;
        let nodes: Vec<f64> = (0..n).map(|i| i as f64 - (n as f64) / 2.0).collect();
        let w = fd_weights(m, x0, &nodes);
        // Moment conditions: sum w_i (x_i - x0)^k = k! [k == m] for k <= deg.
        for k in 0..n.min(m as usize + extra) {
            let got: f64 = w
                .iter()
                .zip(&nodes)
                .map(|(wi, xi)| wi * (xi - x0).powi(k as i32))
                .sum();
            let want = if k == m as usize {
                (1..=k).product::<usize>() as f64
            } else {
                0.0
            };
            prop_assert!(
                (got - want).abs() < 1e-6 * w.iter().map(|v| v.abs()).sum::<f64>().max(1.0),
                "m={m} k={k}: {got} vs {want}"
            );
        }
    }
}

mod func_props {
    use mpix_symbolic::{expand, simplify, Expr, UnaryFn};
    use proptest::prelude::*;

    fn eval(e: &Expr, x: f64) -> f64 {
        mpix_symbolic::visit::eval_with(e, &|_| x, &|_| 0.0)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]
        #[test]
        fn func_simplify_preserves_value(
            f in prop_oneof![
                Just(UnaryFn::Sin), Just(UnaryFn::Cos), Just(UnaryFn::Exp), Just(UnaryFn::Abs)
            ],
            x in -2.0f64..2.0,
            c in -2.0f64..2.0,
        ) {
            // f(c * x + 1) through simplify and expand.
            let e = Expr::Func(
                f,
                Box::new(Expr::Add(vec![
                    Expr::Mul(vec![Expr::Const(c), Expr::sym("x")]),
                    Expr::Const(1.0),
                ])),
            );
            let direct = f.apply(c * x + 1.0);
            let via_simplify = eval(&simplify(&e), x);
            let via_expand = eval(&expand(&e), x);
            prop_assert!((direct - via_simplify).abs() < 1e-12);
            prop_assert!((direct - via_expand).abs() < 1e-12);
        }

        #[test]
        fn func_of_constant_folds(c in 0.0f64..4.0) {
            let e = Expr::Const(c).sqrt();
            prop_assert_eq!(e, Expr::Const(c.sqrt()));
        }
    }

    #[test]
    fn trig_identity_numerically() {
        // sin²+cos² == 1 through the full expression machinery.
        let x = Expr::sym("x");
        let e = x.clone().sin().pow(2) + x.cos().pow(2);
        for v in [-1.3f64, 0.0, 0.7, 2.9] {
            let r = mpix_symbolic::visit::eval_with(&e, &|_| v, &|_| 0.0);
            assert!((r - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn solve_keeps_functions_of_known_fields() {
        // m·u_tt = sqrt(k)·u is linear in u.forward even with the sqrt.
        use mpix_symbolic::{solve, Context, Grid};
        let mut ctx = Context::new();
        let g = Grid::new(&[8, 8], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        let k = ctx.add_function("k", &g, 2);
        let pde = u.dt2() - k.center().sqrt() * u.center();
        let st = solve(&pde, &u.forward(), &ctx).unwrap();
        assert!(st.rhs.references_field(k.id()));
        let s = format!("{}", st.rhs);
        assert!(s.contains("sqrt"), "{s}");
    }
}
