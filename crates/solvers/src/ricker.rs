//! The Ricker wavelet — the standard seismic source time signature
//! (paper §IV-C, reference 31).

/// Sample a Ricker wavelet of peak frequency `f0` (Hz) at `nt` steps of
/// `dt` seconds. The wavelet is shifted by `1/f0` so it starts near zero.
///
/// `r(t) = (1 - 2 π² f0² τ²) · exp(-π² f0² τ²)`, `τ = t - 1/f0`.
pub fn ricker_wavelet(f0: f64, dt: f64, nt: usize) -> Vec<f32> {
    assert!(f0 > 0.0 && dt > 0.0);
    (0..nt)
        .map(|i| {
            let tau = i as f64 * dt - 1.0 / f0;
            let a = (std::f64::consts::PI * f0 * tau).powi(2);
            ((1.0 - 2.0 * a) * (-a).exp()) as f32
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_is_at_shift_time() {
        let f0 = 10.0;
        let dt = 0.001;
        let w = ricker_wavelet(f0, dt, 400);
        let peak = w
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        let t_peak = peak as f64 * dt;
        assert!((t_peak - 0.1).abs() < 2.0 * dt, "peak at {t_peak}");
        assert!((w[peak] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn wavelet_decays_to_zero() {
        let w = ricker_wavelet(10.0, 0.001, 1000);
        assert!(w.last().unwrap().abs() < 1e-6);
        assert!(w[0].abs() < 1e-3, "start {}", w[0]);
    }

    #[test]
    fn zero_mean_within_tolerance() {
        // The Ricker wavelet integrates to ~0.
        let dt = 0.0005;
        let w = ricker_wavelet(8.0, dt, 2000);
        let integral: f64 = w.iter().map(|&v| v as f64 * dt).sum();
        assert!(integral.abs() < 1e-3, "integral {integral}");
    }

    #[test]
    fn has_two_negative_side_lobes() {
        let w = ricker_wavelet(10.0, 0.001, 400);
        let min = w.iter().cloned().fold(f32::INFINITY, f32::min);
        assert!(min < -0.3 && min > -0.5, "side lobe {min}");
    }
}
