//! Visco-elastic propagator (paper §IV-B.4, Appendix A.4; Robertsson et
//! al. 1994, single relaxation mode).
//!
//! Extends the elastic velocity–stress system with six memory variables
//! `r_ij`, giving the largest working set of the four kernels (34 arrays
//! in this formulation vs. the paper's 36 — the paper also grids the two
//! relaxation-time ratios, which we fold into scalars) and 15 update
//! stencils per step. Staggering matches the elastic kernel.
//!
//! Update order per time step (three clusters):
//! 1. velocities from old stresses,
//! 2. memory variables from fresh velocities and old memory,
//! 3. stresses from fresh velocities and fresh memory variables.

use mpix_core::{Operator, Workspace};
use mpix_symbolic::context::{averaged_at, deriv_of};
use mpix_symbolic::{Context, Eq, Expr, FieldHandle, Stagger};

use crate::model::ModelSpec;

use Stagger::{Half, Node};

/// Relaxation parameters of Equation 4 / Table II.
#[derive(Clone, Copy, Debug)]
pub struct Relaxation {
    /// P-wave strain relaxation time ratio `τεp/τσ`.
    pub t_ep_ratio: f64,
    /// S-wave strain relaxation time ratio `τεs/τσ`.
    pub t_es_ratio: f64,
    /// Stress relaxation time `τσ`.
    pub t_s: f64,
}

impl Default for Relaxation {
    fn default() -> Self {
        Relaxation {
            t_ep_ratio: 1.14,
            t_es_ratio: 1.17,
            t_s: 0.6,
        }
    }
}

/// Build the viscoelastic operator at spatial order `so` (3-D only).
pub fn operator(spec: &ModelSpec, so: u32) -> Operator {
    assert_eq!(spec.shape.len(), 3, "viscoelastic kernel is 3-D");
    let grid = spec.grid();
    let mut ctx = Context::new();
    let vx = ctx.add_staggered_time_function("vx", &grid, so, 1, &[Half, Node, Node]);
    let vy = ctx.add_staggered_time_function("vy", &grid, so, 1, &[Node, Half, Node]);
    let vz = ctx.add_staggered_time_function("vz", &grid, so, 1, &[Node, Node, Half]);
    let txx = ctx.add_time_function("txx", &grid, so, 1);
    let tyy = ctx.add_time_function("tyy", &grid, so, 1);
    let tzz = ctx.add_time_function("tzz", &grid, so, 1);
    let txy = ctx.add_staggered_time_function("txy", &grid, so, 1, &[Half, Half, Node]);
    let txz = ctx.add_staggered_time_function("txz", &grid, so, 1, &[Half, Node, Half]);
    let tyz = ctx.add_staggered_time_function("tyz", &grid, so, 1, &[Node, Half, Half]);
    let rxx = ctx.add_time_function("rxx", &grid, so, 1);
    let ryy = ctx.add_time_function("ryy", &grid, so, 1);
    let rzz = ctx.add_time_function("rzz", &grid, so, 1);
    let rxy = ctx.add_staggered_time_function("rxy", &grid, so, 1, &[Half, Half, Node]);
    let rxz = ctx.add_staggered_time_function("rxz", &grid, so, 1, &[Half, Node, Half]);
    let ryz = ctx.add_staggered_time_function("ryz", &grid, so, 1, &[Node, Half, Half]);
    let b = ctx.add_function("b", &grid, so);
    let pi = ctx.add_function("pi", &grid, so); // relaxation modulus π (≈ λ+2μ)
    let mu = ctx.add_function("mu", &grid, so); // relaxation modulus μ
    let damp = ctx.add_function("damp", &grid, so);

    // Relaxation ratios as runtime scalar symbols.
    let tep = Expr::sym("t_ep"); // τεp/τσ
    let tes = Expr::sym("t_es"); // τεs/τσ
    let its = Expr::sym("inv_t_s"); // 1/τσ

    let d_fwd = |f: &FieldHandle, dim: usize| deriv_of(f.forward(), dim, 1, so);
    let stag = |f: &FieldHandle| ctx.field(f.id()).stagger.clone();

    // Cluster 1: velocities (Eq. 4a) with sponge damping; node-centred
    // parameters averaged onto each staggered lattice.
    let eq_vx = Eq::new(
        vx.dt(),
        averaged_at(&b, &stag(&vx))
            * (deriv_of(txx.center(), 0, 1, so)
                + deriv_of(txy.center(), 1, 1, so)
                + deriv_of(txz.center(), 2, 1, so))
            - averaged_at(&damp, &stag(&vx)) * vx.center(),
    );
    let eq_vy = Eq::new(
        vy.dt(),
        averaged_at(&b, &stag(&vy))
            * (deriv_of(txy.center(), 0, 1, so)
                + deriv_of(tyy.center(), 1, 1, so)
                + deriv_of(tyz.center(), 2, 1, so))
            - averaged_at(&damp, &stag(&vy)) * vy.center(),
    );
    let eq_vz = Eq::new(
        vz.dt(),
        averaged_at(&b, &stag(&vz))
            * (deriv_of(txz.center(), 0, 1, so)
                + deriv_of(tyz.center(), 1, 1, so)
                + deriv_of(tzz.center(), 2, 1, so))
            - averaged_at(&damp, &stag(&vz)) * vz.center(),
    );

    let div_v = d_fwd(&vx, 0) + d_fwd(&vy, 1) + d_fwd(&vz, 2);

    // Cluster 2: memory variables (Eq. 4d/4e) from fresh velocities.
    // ṙ_ii = -(1/τσ)(r_ii + (π τεp/τσ - 2μ τεs/τσ) ∂k vk + 2μ τεs/τσ ∂i vi)
    let diag_r = |r: &FieldHandle, v: &FieldHandle, dim: usize| -> Eq {
        Eq::new(
            r.dt(),
            Expr::Const(-1.0)
                * its.clone()
                * (r.center()
                    + (pi.center() * tep.clone() - 2.0 * mu.center() * tes.clone())
                        * div_v.clone()
                    + 2.0 * mu.center() * tes.clone() * d_fwd(v, dim)),
        )
    };
    // ṙ_ij = -(1/τσ)(r_ij + μ τεs/τσ (∂i vj + ∂j vi))
    let shear_r = |r: &FieldHandle, va: &FieldHandle, da: usize, vb: &FieldHandle, db: usize| {
        Eq::new(
            r.dt(),
            Expr::Const(-1.0)
                * its.clone()
                * (r.center()
                    + averaged_at(&mu, &stag(r)) * tes.clone() * (d_fwd(va, da) + d_fwd(vb, db))),
        )
    };
    let eq_rxx = diag_r(&rxx, &vx, 0);
    let eq_ryy = diag_r(&ryy, &vy, 1);
    let eq_rzz = diag_r(&rzz, &vz, 2);
    let eq_rxy = shear_r(&rxy, &vx, 1, &vy, 0);
    let eq_rxz = shear_r(&rxz, &vx, 2, &vz, 0);
    let eq_ryz = shear_r(&ryz, &vy, 2, &vz, 1);

    // Cluster 3: stresses (Eq. 4b/4c) from fresh velocities and memory.
    // σ̇_ii = π τεp/τσ ∂k vk + 2μ τεs/τσ (∂i vi - ∂k vk) + r_ii(t+1)
    let diag_t = |t: &FieldHandle, v: &FieldHandle, dim: usize, r: &FieldHandle| -> Eq {
        Eq::new(
            t.dt(),
            pi.center() * tep.clone() * div_v.clone()
                + 2.0 * mu.center() * tes.clone() * (d_fwd(v, dim) - div_v.clone())
                + r.forward()
                - damp.center() * t.center(),
        )
    };
    let shear_t = |t: &FieldHandle,
                   va: &FieldHandle,
                   da: usize,
                   vb: &FieldHandle,
                   db: usize,
                   r: &FieldHandle| {
        Eq::new(
            t.dt(),
            averaged_at(&mu, &stag(t)) * tes.clone() * (d_fwd(va, da) + d_fwd(vb, db))
                + r.forward()
                - averaged_at(&damp, &stag(t)) * t.center(),
        )
    };
    let eq_txx = diag_t(&txx, &vx, 0, &rxx);
    let eq_tyy = diag_t(&tyy, &vy, 1, &ryy);
    let eq_tzz = diag_t(&tzz, &vz, 2, &rzz);
    let eq_txy = shear_t(&txy, &vx, 1, &vy, 0, &rxy);
    let eq_txz = shear_t(&txz, &vx, 2, &vz, 0, &rxz);
    let eq_tyz = shear_t(&tyz, &vy, 2, &vz, 1, &ryz);

    let pairs: Vec<(Eq, Expr)> = vec![
        (eq_vx, vx.forward()),
        (eq_vy, vy.forward()),
        (eq_vz, vz.forward()),
        (eq_rxx, rxx.forward()),
        (eq_ryy, ryy.forward()),
        (eq_rzz, rzz.forward()),
        (eq_rxy, rxy.forward()),
        (eq_rxz, rxz.forward()),
        (eq_ryz, ryz.forward()),
        (eq_txx, txx.forward()),
        (eq_tyy, tyy.forward()),
        (eq_tzz, tzz.forward()),
        (eq_txy, txy.forward()),
        (eq_txz, txz.forward()),
        (eq_tyz, tyz.forward()),
    ];
    let eqs: Vec<Eq> = pairs
        .into_iter()
        .map(|(eq, fwd)| eq.solve_for(&fwd, &ctx).expect("explicit update"))
        .collect();
    Operator::build(ctx, grid, eqs).expect("viscoelastic operator builds")
}

/// Seed moduli, buoyancy, damping; relaxation ratios go in as scalars via
/// [`apply_scalars`].
pub fn init_workspace(spec: &ModelSpec, ws: &mut Workspace) {
    let rho = spec.rho;
    let mu = rho * spec.vs * spec.vs;
    let pi = rho * spec.vp * spec.vp;
    spec.fill_constant(ws, "b", 1.0 / rho);
    spec.fill_constant(ws, "pi", pi);
    spec.fill_constant(ws, "mu", mu);
    spec.fill_damping(ws, "damp");
}

/// The runtime scalars the operator expects.
pub fn apply_scalars(rel: &Relaxation) -> Vec<(String, f32)> {
    vec![
        ("t_ep".to_string(), rel.t_ep_ratio as f32),
        ("t_es".to_string(), rel.t_es_ratio as f32),
        ("inv_t_s".to_string(), (1.0 / rel.t_s) as f32),
    ]
}

/// Initial value ranges the precision certificate assumes.
pub fn fp_ranges(spec: &ModelSpec) -> Vec<(&'static str, f64, f64)> {
    let w = crate::fp_profile::WAVE_AMP;
    let a = crate::fp_profile::around;
    let rho = spec.rho;
    let mu = rho * spec.vs * spec.vs;
    let pi = rho * spec.vp * spec.vp;
    let (dlo, dhi) = crate::fp_profile::damp_range(spec);
    let mut out: Vec<(&'static str, f64, f64)> = [
        "vx", "vy", "vz", "txx", "tyy", "tzz", "txy", "txz", "tyz", "rxx", "ryy", "rzz", "rxy",
        "rxz", "ryz",
    ]
    .iter()
    .map(|&n| (n, -w, w))
    .collect();
    for (n, v) in [("b", 1.0 / rho), ("pi", pi), ("mu", mu)] {
        let (lo, hi) = a(v);
        out.push((n, lo, hi));
    }
    out.push(("damp", dlo, dhi));
    out
}

pub const MAIN_FIELD: &str = "txx";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::elastic::seed_pressure_source;
    use mpix_core::ApplyOptions;
    use mpix_dmp::HaloMode;

    fn small_spec() -> ModelSpec {
        ModelSpec::new(&[8, 8, 8]).with_nbl(2)
    }

    fn opts(spec: &ModelSpec, nt: i64) -> ApplyOptions {
        let dt = 0.3 * spec.spacing / (spec.vp * 3.0f64.sqrt());
        let rel = Relaxation::default();
        let mut o = ApplyOptions::default().with_nt(nt).with_dt(dt);
        for (k, v) in apply_scalars(&rel) {
            o = o.with_scalar(&k, v);
        }
        o
    }

    #[test]
    fn fifteen_stencils_two_clusters() {
        let op = operator(&small_spec(), 4);
        // Paper: "requiring a total of 15 stencils to update the fields".
        let stores: usize = op
            .clusters()
            .iter()
            .map(|c| {
                c.stmts
                    .iter()
                    .filter(|s| matches!(s, mpix_ir::cluster::Stmt::Store { .. }))
                    .count()
            })
            .sum();
        assert_eq!(stores, 15);
        // Velocities first; the r and τ updates fuse into one nest (τ
        // reads r[t+1] at the same point, which is scalarizable).
        assert_eq!(op.clusters().len(), 2, "v cluster + fused r/τ cluster");
        // Exchanges: 6 stresses before cluster 0, 3 fresh velocities
        // before cluster 1.
        assert_eq!(op.halo_plan().per_cluster[0].len(), 6);
        assert_eq!(op.halo_plan().per_cluster[1].len(), 3);
    }

    #[test]
    fn working_set_is_largest_of_all_kernels() {
        let spec = small_spec();
        let visco = operator(&spec, 4).op_counts().working_set();
        let elastic = crate::elastic::operator(&spec, 4).op_counts().working_set();
        let acoustic = crate::acoustic::operator(&spec, 4)
            .op_counts()
            .working_set();
        assert!(visco > elastic && elastic > acoustic);
        // 15 wavefields x 2 buffers + b, pi, mu, damp = 34 streams.
        assert_eq!(visco, 34);
    }

    /// Run the viscoelastic kernel with a caller-chosen `1/τσ`.
    fn run_with_its(spec: &ModelSpec, nt: i64, inv_t_s: f32) -> Vec<f32> {
        let op = operator(spec, 4);
        let rel = Relaxation::default();
        let s2 = spec.clone();
        let o = ApplyOptions::default()
            .with_nt(nt)
            .with_dt(0.3 * spec.spacing / (spec.vp * 3.0f64.sqrt()))
            .with_scalar("t_ep", rel.t_ep_ratio as f32)
            .with_scalar("t_es", rel.t_es_ratio as f32)
            .with_scalar("inv_t_s", inv_t_s);
        op.run(
            &o,
            move |ws| {
                init_workspace(&s2, ws);
                seed_pressure_source(&s2, ws, 1.0);
            },
            |ws| ws.gather("txx"),
        )
        .results
        .remove(0)
    }

    #[test]
    fn frozen_memory_variables_reduce_to_elastic() {
        // With 1/τσ = 0 the memory variables stay zero, and the system is
        // exactly elastic with effective moduli λ' = π·tεp − 2μ·tεs and
        // μ' = μ·tεs. Cross-check against the elastic kernel.
        let spec = small_spec();
        let rel = Relaxation::default();
        let visco = run_with_its(&spec, 5, 0.0);

        let eo = crate::elastic::operator(&spec, 4);
        let s3 = spec.clone();
        let o = ApplyOptions::default()
            .with_nt(5)
            .with_dt(0.3 * spec.spacing / (spec.vp * 3.0f64.sqrt()));
        let elastic = eo
            .run(
                &o,
                move |ws| {
                    let rho = s3.rho;
                    let mu_v = rho * s3.vs * s3.vs;
                    let pi_v = rho * s3.vp * s3.vp;
                    s3.fill_constant(ws, "b", 1.0 / rho);
                    s3.fill_constant(
                        ws,
                        "lam",
                        pi_v * rel.t_ep_ratio - 2.0 * mu_v * rel.t_es_ratio,
                    );
                    s3.fill_constant(ws, "mu", mu_v * rel.t_es_ratio);
                    s3.fill_damping(ws, "damp");
                    seed_pressure_source(&s3, ws, 1.0);
                },
                |ws| ws.gather("txx"),
            )
            .results
            .remove(0);
        for (a, b) in visco.iter().zip(&elastic) {
            assert!(
                (a - b).abs() <= 1e-4 * b.abs().max(1.0),
                "frozen visco != matched elastic: {a} vs {b}"
            );
        }
    }

    #[test]
    fn memory_variables_relax_the_stress() {
        // Same moduli, relaxation on vs off: the memory variables must
        // dissipate stress amplitude over time.
        let spec = small_spec();
        let nt = 30;
        let relaxed = run_with_its(&spec, nt, (1.0 / 0.6) as f32);
        let frozen = run_with_its(&spec, nt, 0.0);
        assert!(relaxed.iter().all(|v| v.is_finite()));
        let sum = |g: &Vec<f32>| g.iter().map(|v| v.abs() as f64).sum::<f64>();
        assert!(
            sum(&relaxed) < sum(&frozen),
            "viscoelastic must attenuate: {} !< {}",
            sum(&relaxed),
            sum(&frozen)
        );
    }

    #[test]
    fn serial_vs_distributed_equivalence() {
        let spec = small_spec();
        let op = operator(&spec, 4);
        let s2 = spec.clone();
        let o = opts(&spec, 3);
        let init = move |ws: &mut Workspace| {
            init_workspace(&s2, ws);
            seed_pressure_source(&s2, ws, 1.0);
        };
        let serial = op.run(&o, &init, |ws| ws.gather("txx")).results.remove(0);
        for mode in [HaloMode::Basic, HaloMode::Diagonal] {
            let out = op
                .run(&o.clone().with_mode(mode).with_ranks(8), &init, |ws| {
                    ws.gather("txx")
                })
                .results;
            for (a, b) in out[0].iter().zip(&serial) {
                assert!(
                    (a - b).abs() <= 2e-5 * b.abs().max(1.0),
                    "{mode:?}: {a} vs {b}"
                );
            }
        }
    }
}
