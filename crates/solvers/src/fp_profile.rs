//! Certificate assumptions for the shipped solvers.
//!
//! The static floating-point analysis (`mpix-analysis::fp`) produces
//! *conditional* bounds: they hold for runs whose scalars and initial
//! field values stay inside declared ranges. This module is the single
//! place those declarations live for the shipped kernels, so the
//! `mpix-lint --fp-certs` export and the empirical validation in
//! `tests/fp_certs.rs` certify against the same assumptions. Each
//! solver module contributes its own `fp_ranges` (next to its
//! `init_workspace`, so the two cannot drift apart silently); this
//! module assembles them with the scalar bindings.
//!
//! The crate deliberately exposes plain data (names and `f64` ranges)
//! rather than analysis types: solvers stay independent of
//! `mpix-analysis`, and any consumer can translate names to `FieldId`s
//! through the operator's own context.

use std::collections::BTreeMap;

use crate::model::ModelSpec;
use crate::propagator::KernelKind;
use crate::viscoelastic::Relaxation;

/// Value assumptions one precision certificate is conditional on.
#[derive(Clone, Debug)]
pub struct FpProfile {
    /// Runtime scalar bindings: `dt`, `h_*`, solver scalars.
    pub scalars: BTreeMap<String, f64>,
    /// `(field, lo, hi)` ranges the *initial* data must lie in.
    pub fields: Vec<(&'static str, f64, f64)>,
}

/// Wavefield amplitude the certificates assume at t = 0. Runs seeding
/// larger initial data void the certificate (linear PDEs: rescale
/// instead).
pub const WAVE_AMP: f64 = 1.0;

/// A tight interval around a nominal material value: wide enough to
/// contain the f32 the workspace actually stores, no wider.
pub(crate) fn around(v: f64) -> (f64, f64) {
    let w = v.abs() * 1e-6 + 1e-9;
    (v - w, v + w)
}

/// The sponge damping profile spans `[0, damping_at(corner)]`.
pub(crate) fn damp_range(spec: &ModelSpec) -> (f64, f64) {
    let corner = vec![0usize; spec.shape.len()];
    (0.0, spec.damping_at(&corner) * (1.0 + 1e-6))
}

/// Assemble the certificate assumptions for one shipped kernel at the
/// time step it actually runs with.
pub fn fp_profile(kind: KernelKind, spec: &ModelSpec, dt: f64) -> FpProfile {
    let mut scalars = spec.grid().spacing_bindings();
    scalars.insert("dt".to_string(), dt);
    let fields = match kind {
        KernelKind::Acoustic => crate::acoustic::fp_ranges(spec),
        KernelKind::Tti => crate::tti::fp_ranges(spec),
        KernelKind::Elastic => crate::elastic::fp_ranges(spec),
        KernelKind::Viscoelastic => {
            // The relaxation ratios enter as runtime scalars; certify
            // against the exact f32 values the runtime will pass.
            for (k, v) in crate::viscoelastic::apply_scalars(&Relaxation::default()) {
                scalars.insert(k, v as f64);
            }
            crate::viscoelastic::fp_ranges(spec)
        }
    };
    FpProfile { scalars, fields }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_cover_every_field_of_their_operator() {
        for kind in KernelKind::all() {
            let shape: &[usize] = match kind {
                KernelKind::Acoustic => &[12, 12],
                _ => &[8, 8, 8],
            };
            let spec = ModelSpec::new(shape).with_nbl(2);
            let p = crate::Propagator::build(kind, spec, 4);
            let profile = fp_profile(kind, &p.spec, p.dt);
            for f in p.op.ctx().fields() {
                assert!(
                    profile.fields.iter().any(|(n, _, _)| *n == f.name),
                    "{}: field {} missing from fp profile",
                    kind.name(),
                    f.name
                );
            }
            assert!(profile.scalars.contains_key("dt"));
            assert!(profile.scalars.contains_key("h_x"));
            for (_, lo, hi) in &profile.fields {
                assert!(lo < hi);
            }
        }
    }
}
