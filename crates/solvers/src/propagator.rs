//! A uniform wrapper over the four kernels, used by examples, the
//! benchmark harness and the performance model.

use mpix_core::{ApplyOptions, Operator, Workspace};
use mpix_dmp::SparsePoints;

use crate::model::ModelSpec;
use crate::ricker::ricker_wavelet;
use crate::viscoelastic::Relaxation;
use crate::{acoustic, elastic, tti, viscoelastic};

/// The four wave-propagator kernels of the paper's evaluation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum KernelKind {
    Acoustic,
    Tti,
    Elastic,
    Viscoelastic,
}

impl KernelKind {
    pub fn all() -> [KernelKind; 4] {
        [
            KernelKind::Acoustic,
            KernelKind::Tti,
            KernelKind::Elastic,
            KernelKind::Viscoelastic,
        ]
    }

    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Acoustic => "acoustic",
            KernelKind::Tti => "tti",
            KernelKind::Elastic => "elastic",
            KernelKind::Viscoelastic => "viscoelastic",
        }
    }
}

/// A compiled propagator plus the model/runtime configuration needed to
/// run it.
pub struct Propagator {
    pub kind: KernelKind,
    pub spec: ModelSpec,
    /// The compiled operator, shared: serve jobs clone this `Arc` so
    /// many concurrent jobs run one build (compiled artifacts are
    /// additionally shared content-addressed, see `mpix_core::serve`).
    pub op: std::sync::Arc<Operator>,
    pub so: u32,
    pub dt: f64,
}

impl Propagator {
    /// Compile the chosen kernel for a model at spatial order `so`.
    pub fn build(kind: KernelKind, spec: ModelSpec, so: u32) -> Propagator {
        let op = match kind {
            KernelKind::Acoustic => acoustic::operator(&spec, so),
            KernelKind::Tti => tti::operator(&spec, so),
            KernelKind::Elastic => elastic::operator(&spec, so),
            KernelKind::Viscoelastic => viscoelastic::operator(&spec, so),
        };
        let dt = match kind {
            KernelKind::Acoustic => spec.stable_dt(0.4),
            KernelKind::Tti => spec.stable_dt(0.2),
            KernelKind::Elastic | KernelKind::Viscoelastic => {
                0.3 * spec.spacing / (spec.vp * 3.0f64.sqrt())
            }
        };
        Propagator {
            kind,
            spec,
            op: std::sync::Arc::new(op),
            so,
            dt,
        }
    }

    /// Seed the rank's model-parameter fields.
    pub fn init(&self, ws: &mut Workspace) {
        match self.kind {
            KernelKind::Acoustic => acoustic::init_workspace(&self.spec, ws),
            KernelKind::Tti => tti::init_workspace(&self.spec, ws),
            KernelKind::Elastic => elastic::init_workspace(&self.spec, ws),
            KernelKind::Viscoelastic => viscoelastic::init_workspace(&self.spec, ws),
        }
    }

    /// The representative output wavefield.
    pub fn main_field(&self) -> &'static str {
        match self.kind {
            KernelKind::Acoustic => acoustic::MAIN_FIELD,
            KernelKind::Tti => tti::MAIN_FIELD,
            KernelKind::Elastic => elastic::MAIN_FIELD,
            KernelKind::Viscoelastic => viscoelastic::MAIN_FIELD,
        }
    }

    /// Fields a Ricker point source is injected into.
    pub fn source_fields(&self) -> Vec<&'static str> {
        match self.kind {
            KernelKind::Acoustic => vec!["u"],
            KernelKind::Tti => vec!["u", "v"],
            KernelKind::Elastic | KernelKind::Viscoelastic => vec!["txx", "tyy", "tzz"],
        }
    }

    /// Default apply options for `nt` steps (stable dt, kernel scalars).
    pub fn apply_options(&self, nt: i64) -> ApplyOptions {
        let mut o = ApplyOptions::default()
            .with_nt(nt)
            .with_dt(self.dt)
            .with_label(&format!("{}-so{}", self.kind.name(), self.so));
        if self.kind == KernelKind::Viscoelastic {
            for (k, v) in viscoelastic::apply_scalars(&Relaxation::default()) {
                o = o.with_scalar(&k, v);
            }
        }
        o
    }

    /// Register a centred Ricker source on a workspace (paper §IV-C).
    pub fn add_ricker_source(&self, ws: &mut Workspace, f0: f64, nt: usize) {
        let signal = ricker_wavelet(f0, self.dt, nt);
        let spacing = vec![self.spec.spacing; self.spec.shape.len()];
        let center = self.spec.center_coords();
        // Inject dt²/m-scaled for the second-order kernels, dt-scaled for
        // the first-order systems.
        let scale = match self.kind {
            KernelKind::Acoustic | KernelKind::Tti => (self.dt * self.dt / self.spec.m()) as f32,
            _ => self.dt as f32,
        };
        for f in self.source_fields() {
            let pts = SparsePoints::new(vec![center.clone()], spacing.clone());
            ws.add_injection(f, pts, signal.clone(), vec![scale]);
        }
    }

    /// Number of grid points updated per time step (all stores, padded
    /// domain) — the numerator of the paper's GPts/s metric.
    pub fn points_per_step(&self) -> u64 {
        let domain: u64 = self.spec.padded_shape().iter().map(|&s| s as u64).product();
        let stores: u64 = self
            .op
            .clusters()
            .iter()
            .map(|c| {
                c.stmts
                    .iter()
                    .filter(|s| matches!(s, mpix_ir::cluster::Stmt::Store { .. }))
                    .count() as u64
            })
            .sum();
        domain * stores
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_four_kernels_compile_at_so4() {
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(2);
        for kind in KernelKind::all() {
            let p = Propagator::build(kind, spec.clone(), 4);
            assert!(p.op.op_counts().flops() > 0, "{kind:?}");
            assert!(p.dt > 0.0);
        }
    }

    #[test]
    fn field_counts_match_paper_ordering() {
        // acoustic 5 < tti < elastic 22 < viscoelastic 34 working sets.
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
        let ws: Vec<usize> = KernelKind::all()
            .iter()
            .map(|&k| {
                Propagator::build(k, spec.clone(), 4)
                    .op
                    .op_counts()
                    .working_set()
            })
            .collect();
        assert_eq!(ws[0], 5);
        assert!(ws[1] > ws[0]);
        assert_eq!(ws[2], 22);
        assert_eq!(ws[3], 34);
    }

    #[test]
    fn ricker_source_excites_every_kernel() {
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(2);
        for kind in KernelKind::all() {
            let p = Propagator::build(kind, spec.clone(), 4);
            let nt = 6;
            let opts = p.apply_options(nt);
            let pref = &p;
            let g =
                p.op.run(
                    &opts,
                    move |ws| {
                        pref.init(ws);
                        pref.add_ricker_source(ws, 20.0, nt as usize);
                    },
                    |ws| ws.gather(pref.main_field()),
                )
                .results
                .remove(0);
            assert!(g.iter().all(|v| v.is_finite()), "{kind:?} blew up");
            assert!(
                g.iter().map(|v| v.abs()).sum::<f32>() > 0.0,
                "{kind:?} silent"
            );
        }
    }

    #[test]
    fn points_per_step_counts_stencils() {
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
        let ac = Propagator::build(KernelKind::Acoustic, spec.clone(), 4);
        assert_eq!(ac.points_per_step(), 512);
        let el = Propagator::build(KernelKind::Elastic, spec.clone(), 4);
        assert_eq!(el.points_per_step(), 512 * 9);
        let ve = Propagator::build(KernelKind::Viscoelastic, spec, 4);
        assert_eq!(ve.points_per_step(), 512 * 15);
    }
}
