//! Isotropic acoustic wave propagator (paper §IV-B.1, Appendix A.1).
//!
//! `m·∂²u/∂t² − ∇²u + damp·∂u/∂t = source` — a single scalar PDE whose
//! discretization is the classic star ("Jacobi") stencil. Memory-bound,
//! low operational intensity; working set of 5 arrays (3 time buffers of
//! `u` + `m` + `damp`), matching the paper's field count.

use mpix_core::{Operator, Workspace};
use mpix_symbolic::Context;

use crate::model::ModelSpec;

/// Build the acoustic operator at spatial order `so`.
pub fn operator(spec: &ModelSpec, so: u32) -> Operator {
    let grid = spec.grid();
    let mut ctx = Context::new();
    let u = ctx.add_time_function("u", &grid, so, 2);
    let m = ctx.add_function("m", &grid, so);
    let damp = ctx.add_function("damp", &grid, so);
    // m u_tt - ∇²u + damp u_t = 0
    let pde = m.center() * u.dt2() - u.laplace() + damp.center() * u.dt();
    let stencil = mpix_symbolic::solve(&pde, &u.forward(), &ctx).expect("linear in u.forward");
    Operator::build(ctx, grid, vec![stencil]).expect("acoustic operator builds")
}

/// Seed model parameters (`m`, `damp`) on a rank's workspace.
pub fn init_workspace(spec: &ModelSpec, ws: &mut Workspace) {
    spec.fill_constant(ws, "m", spec.m());
    spec.fill_damping(ws, "damp");
}

/// Initial value ranges the precision certificate assumes: the
/// wavefield within ±[`crate::fp_profile::WAVE_AMP`], materials exactly
/// as [`init_workspace`] writes them.
pub fn fp_ranges(spec: &ModelSpec) -> Vec<(&'static str, f64, f64)> {
    let w = crate::fp_profile::WAVE_AMP;
    let (mlo, mhi) = crate::fp_profile::around(spec.m());
    let (dlo, dhi) = crate::fp_profile::damp_range(spec);
    vec![("u", -w, w), ("m", mlo, mhi), ("damp", dlo, dhi)]
}

/// The wavefield updated by this propagator.
pub const MAIN_FIELD: &str = "u";

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_core::ApplyOptions;
    use mpix_dmp::HaloMode;

    #[test]
    fn working_set_matches_paper_five_fields() {
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
        let op = operator(&spec, 8);
        // Streams: u[t], u[t-1], m, damp read; u[t+1] written -> 5.
        assert_eq!(op.op_counts().working_set(), 5);
    }

    #[test]
    fn single_halo_exchange_per_step() {
        let spec = ModelSpec::new(&[8, 8, 8]).with_nbl(0);
        let op = operator(&spec, 8);
        assert_eq!(op.halo_plan().exchanges_per_step(), 1);
        assert_eq!(op.halo_plan().per_cluster[0][0].radius, vec![4, 4, 4]);
    }

    #[test]
    fn point_source_propagates_spherically_distributed() {
        let spec = ModelSpec::new(&[12, 12, 12]).with_nbl(2);
        let op = operator(&spec, 4);
        let dt = spec.stable_dt(0.4);
        let opts = ApplyOptions::default().with_nt(8).with_dt(dt);
        let c = spec.padded_shape()[0] / 2;
        let spec2 = spec.clone();
        let out = op.run(
            &opts.with_ranks(8),
            move |ws| {
                init_workspace(&spec2, ws);
                ws.field_data_mut("u", 0).set_global(&[c, c, c], 1.0);
                ws.field_data_mut("u", -1).set_global(&[c, c, c], 1.0);
            },
            |ws| ws.gather("u"),
        );
        let g = &out.results[0];
        assert!(g.iter().all(|v| v.is_finite()));
        let n = spec.padded_shape()[0];
        // Symmetry: the field must be mirror-symmetric around the center.
        let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
        let a = g[idx(c - 3, c, c)];
        let b = g[idx(c + 3, c, c)];
        let d = g[idx(c, c - 3, c)];
        assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        assert!((a - d).abs() < 1e-5, "{a} vs {d}");
        assert!(a.abs() > 0.0, "wave has not reached radius 3");
    }

    #[test]
    fn serial_vs_distributed_equivalence_3d() {
        let spec = ModelSpec::new(&[10, 9, 8]).with_nbl(2);
        let op = operator(&spec, 4);
        let dt = spec.stable_dt(0.4);
        let opts = ApplyOptions::default().with_nt(5).with_dt(dt);
        let c = spec.padded_shape()[0] / 2;
        let s2 = spec.clone();
        let init = move |ws: &mut Workspace| {
            init_workspace(&s2, ws);
            ws.field_data_mut("u", 0).set_global(&[c, c, c], 1.0);
        };
        let serial = op.run(&opts, &init, |ws| ws.gather("u")).results.remove(0);
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            let opts = opts.clone().with_mode(mode).with_ranks(8);
            let out = op.run(&opts, &init, |ws| ws.gather("u"));
            for (a, b) in out.results[0].iter().zip(&serial) {
                assert!(
                    (a - b).abs() <= 1e-5 * b.abs().max(1.0),
                    "{mode:?}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn damping_layer_absorbs_energy() {
        // Same domain, sponge on vs off: after the wave has reached the
        // boundary layer, total |u| must be lower with the sponge.
        let run = |with_damp: bool| -> f32 {
            let spec = ModelSpec::new(&[10, 10]).with_nbl(6);
            let op = operator(&spec, 4);
            let dt = spec.stable_dt(0.4);
            let c = spec.padded_shape()[0] / 2;
            let s2 = spec.clone();
            let opts = ApplyOptions::default().with_nt(60).with_dt(dt);
            let g = op
                .run(
                    &opts,
                    move |ws| {
                        init_workspace(&s2, ws);
                        if !with_damp {
                            s2.fill_constant(ws, "damp", 0.0);
                        }
                        ws.field_data_mut("u", 0).set_global(&[c, c], 1.0);
                        ws.field_data_mut("u", -1).set_global(&[c, c], 1.0);
                    },
                    |ws| ws.gather("u"),
                )
                .results
                .remove(0);
            g.iter().map(|v| v.abs()).sum()
        };
        let without = run(false);
        let with = run(true);
        assert!(
            with < 0.9 * without,
            "damping layer must absorb: {with} !< {without}"
        );
    }
}
