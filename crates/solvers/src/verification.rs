//! Analytic verification of the acoustic propagator: standing-wave
//! eigenmodes of the wave equation on a box with homogeneous Dirichlet
//! boundaries.
//!
//! The mode `u(x, t) = Π_d sin(k_d x_d) · cos(ω t)` with `ω = c·|k|`
//! solves `u_tt = c² ∇²u` exactly. With grid points at `x_i = (i+1)h`,
//! `h = 1/(n+1)` and `k_d = π`, the mode vanishes exactly at the ghost
//! points the executor reads as zero. For SDO 2 this boundary treatment
//! is exactly consistent; wider stencils also read the *second* ghost
//! point, where the mode's odd extension is nonzero, so a boundary error
//! of size O(h) enters and propagates inward at wave speed `c`. The
//! error is therefore measured on the interior points the boundary
//! cannot have contaminated after `nt` steps, where pure dispersion
//! error remains — and must shrink with the spatial order.

use mpix_core::{ApplyOptions, Operator, Workspace};
use mpix_symbolic::{Context, Grid};

/// Build a bare acoustic operator (`m u_tt = ∇²u`, no damping term) on an
/// `n`-per-dim interior grid with spacing `1/(n+1)`.
pub fn standing_wave_operator(n: usize, nd: usize, so: u32) -> (Operator, f64) {
    let h = 1.0 / (n + 1) as f64;
    let shape = vec![n; nd];
    let extent: Vec<f64> = shape.iter().map(|&s| (s - 1) as f64 * h).collect();
    let grid = Grid::new(&shape, &extent);
    let mut ctx = Context::new();
    let u = ctx.add_time_function("u", &grid, so, 2);
    let m = ctx.add_function("m", &grid, so);
    let pde = m.center() * u.dt2() - u.laplace();
    let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
    (Operator::build(ctx, grid, vec![st]).unwrap(), h)
}

/// Evaluate the fundamental mode at interior grid point `idx`.
fn mode_at(idx: &[usize], h: f64) -> f64 {
    idx.iter()
        .map(|&i| (std::f64::consts::PI * (i + 1) as f64 * h).sin())
        .product()
}

/// Run the standing-wave problem for `nt` steps on `ranks` simulated
/// ranks; return the max-norm error against the analytic solution.
pub fn standing_wave_error(n: usize, nd: usize, so: u32, nt: usize, ranks: usize, c: f64) -> f64 {
    let (op, h) = standing_wave_operator(n, nd, so);
    let omega = c * std::f64::consts::PI * (nd as f64).sqrt();
    let dt = 0.2 * h / (c * (nd as f64).sqrt());
    let m_val = 1.0 / (c * c);
    let shape = vec![n; nd];
    let opts = ApplyOptions::default()
        .with_nt(nt as i64)
        .with_dt(dt)
        .with_ranks(ranks)
        .with_label("standing-wave");

    let seed = {
        let shape = shape.clone();
        move |ws: &mut Workspace| {
            let full: Vec<std::ops::Range<usize>> = shape.iter().map(|&s| 0..s).collect();
            ws.field_data_mut("m", 0)
                .fill_global_slice(&full, m_val as f32);
            let total: usize = shape.iter().product();
            let mut idx = vec![0usize; shape.len()];
            for lin in 0..total {
                let mut rem = lin;
                for d in (0..shape.len()).rev() {
                    idx[d] = rem % shape[d];
                    rem /= shape[d];
                }
                let a = mode_at(&idx, h);
                // u(0) and u(-dt): exact time history of the mode.
                ws.field_data_mut("u", 0).set_global(&idx, a as f32);
                ws.field_data_mut("u", -1)
                    .set_global(&idx, (a * (omega * dt).cos()) as f32);
            }
        }
    };
    let got = op.run(&opts, seed, |ws| ws.gather("u")).results;
    let g = &got[0];
    let t_final = nt as f64 * dt;
    let decay = (omega * t_final).cos();
    // Contamination depth: stencil radius + distance the boundary error
    // travels in nt steps (CFL 0.2 -> 0.2 points per step).
    let margin = (so as usize) / 2 + (0.2 * nt as f64).ceil() as usize + 1;
    let total: usize = shape.iter().product();
    let mut idx = vec![0usize; nd];
    let mut max_err = 0.0f64;
    let mut measured = 0usize;
    for lin in 0..total {
        let mut rem = lin;
        for d in (0..nd).rev() {
            idx[d] = rem % shape[d];
            rem /= shape[d];
        }
        if idx.iter().any(|&i| i < margin || i >= n - margin) {
            continue;
        }
        measured += 1;
        let exact = mode_at(&idx, h) * decay;
        max_err = max_err.max((g[lin] as f64 - exact).abs());
    }
    assert!(measured > 0, "margin {margin} leaves no interior on n={n}");
    max_err
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standing_wave_matches_analytic_2d() {
        let err = standing_wave_error(31, 2, 4, 24, 1, 1.5);
        assert!(err < 2e-3, "2-D standing wave error {err}");
    }

    #[test]
    fn standing_wave_matches_analytic_3d_distributed() {
        let err = standing_wave_error(17, 3, 4, 12, 8, 1.5);
        assert!(err < 5e-3, "3-D distributed standing wave error {err}");
    }

    #[test]
    fn interior_error_shrinks_with_spatial_order() {
        // Same grid and dt: interior dispersion error must not grow with
        // SDO (it collapses to time-integration error once spatial terms
        // are resolved).
        let e2 = standing_wave_error(31, 2, 2, 24, 1, 1.5);
        let e8 = standing_wave_error(31, 2, 8, 24, 1, 1.5);
        assert!(
            e8 <= e2 * 1.1,
            "so-8 interior error should not exceed so-2: {e8} vs {e2}"
        );
    }

    #[test]
    fn refinement_convergence_second_order() {
        // Halve h (and dt with it): so-2 error should drop ~4x; require 2x.
        let coarse = standing_wave_error(15, 2, 2, 12, 1, 1.5);
        let fine = standing_wave_error(31, 2, 2, 24, 1, 1.5);
        assert!(
            fine < coarse / 2.0,
            "no 2nd-order convergence: coarse {coarse}, fine {fine}"
        );
    }
}
