//! Isotropic elastic propagator (paper §IV-B.3, Appendix A.3).
//!
//! Virieux's velocity–stress formulation on a staggered grid: a coupled
//! vector (`v`) / symmetric-tensor (`τ`) system, first-order in time
//! (one history buffer per field, unlike the acoustic kernels' two).
//! Working set of 22 arrays in 3-D: 9 wavefield components × 2 buffers
//! + λ, μ, 1/ρ and the damping mask — matching the paper's field count.
//!
//! ```text
//! ∂v/∂t = (1/ρ) ∇·τ                                   (velocity update)
//! ∂τ/∂t = λ tr(∇v_fwd) I + μ (∇v_fwd + ∇v_fwdᵀ)       (stress update)
//! ```
//!
//! The stress update reads the *freshly computed* velocities, so the
//! compiler splits the system into two clusters with a halo exchange of
//! `v[t+1]` in between — the coupling the paper highlights for its
//! communication volume.

use mpix_core::{Operator, Workspace};
use mpix_symbolic::context::{averaged_at, deriv_of};
use mpix_symbolic::{Context, Eq, FieldHandle, Stagger};

use crate::model::ModelSpec;

use Stagger::{Half, Node};

/// Names of the nine wavefield components.
pub const V_FIELDS: [&str; 3] = ["vx", "vy", "vz"];
pub const T_FIELDS: [&str; 6] = ["txx", "tyy", "tzz", "txy", "txz", "tyz"];

/// Build the elastic operator at spatial order `so` (3-D only).
pub fn operator(spec: &ModelSpec, so: u32) -> Operator {
    assert_eq!(spec.shape.len(), 3, "elastic kernel is 3-D");
    let grid = spec.grid();
    let mut ctx = Context::new();
    // Velocities staggered along their own axis.
    let vx = ctx.add_staggered_time_function("vx", &grid, so, 1, &[Half, Node, Node]);
    let vy = ctx.add_staggered_time_function("vy", &grid, so, 1, &[Node, Half, Node]);
    let vz = ctx.add_staggered_time_function("vz", &grid, so, 1, &[Node, Node, Half]);
    // Diagonal stresses at nodes; shear stresses on edge midpoints.
    let txx = ctx.add_time_function("txx", &grid, so, 1);
    let tyy = ctx.add_time_function("tyy", &grid, so, 1);
    let tzz = ctx.add_time_function("tzz", &grid, so, 1);
    let txy = ctx.add_staggered_time_function("txy", &grid, so, 1, &[Half, Half, Node]);
    let txz = ctx.add_staggered_time_function("txz", &grid, so, 1, &[Half, Node, Half]);
    let tyz = ctx.add_staggered_time_function("tyz", &grid, so, 1, &[Node, Half, Half]);
    let b = ctx.add_function("b", &grid, so); // buoyancy 1/ρ
    let lam = ctx.add_function("lam", &grid, so);
    let mu = ctx.add_function("mu", &grid, so);
    let damp = ctx.add_function("damp", &grid, so);

    let d = |f: &FieldHandle, dim: usize| deriv_of(f.center(), dim, 1, so);
    let d_fwd = |f: &FieldHandle, dim: usize| deriv_of(f.forward(), dim, 1, so);
    // Node-centred material parameters are averaged onto each staggered
    // evaluation lattice (the classic staggered-grid treatment).
    let stag = |f: &FieldHandle| ctx.field(f.id()).stagger.clone();

    // Velocity updates (cluster 1): v_i += dt * b * Σ_j ∂_j τ_ij − damp v_i.
    let eq_vx = Eq::new(
        vx.dt(),
        averaged_at(&b, &stag(&vx)) * (d(&txx, 0) + d(&txy, 1) + d(&txz, 2))
            - averaged_at(&damp, &stag(&vx)) * vx.center(),
    );
    let eq_vy = Eq::new(
        vy.dt(),
        averaged_at(&b, &stag(&vy)) * (d(&txy, 0) + d(&tyy, 1) + d(&tyz, 2))
            - averaged_at(&damp, &stag(&vy)) * vy.center(),
    );
    let eq_vz = Eq::new(
        vz.dt(),
        averaged_at(&b, &stag(&vz)) * (d(&txz, 0) + d(&tyz, 1) + d(&tzz, 2))
            - averaged_at(&damp, &stag(&vz)) * vz.center(),
    );

    // Stress updates (cluster 2) read the fresh velocities v[t+1].
    let div_v = d_fwd(&vx, 0) + d_fwd(&vy, 1) + d_fwd(&vz, 2);
    let lam_e = lam.center();
    let mu_e = mu.center();
    let eq_txx = Eq::new(
        txx.dt(),
        lam_e.clone() * div_v.clone() + 2.0 * mu_e.clone() * d_fwd(&vx, 0),
    );
    let eq_tyy = Eq::new(
        tyy.dt(),
        lam_e.clone() * div_v.clone() + 2.0 * mu_e.clone() * d_fwd(&vy, 1),
    );
    let eq_tzz = Eq::new(
        tzz.dt(),
        lam_e.clone() * div_v.clone() + 2.0 * mu_e.clone() * d_fwd(&vz, 2),
    );
    let eq_txy = Eq::new(
        txy.dt(),
        averaged_at(&mu, &stag(&txy)) * (d_fwd(&vx, 1) + d_fwd(&vy, 0)),
    );
    let eq_txz = Eq::new(
        txz.dt(),
        averaged_at(&mu, &stag(&txz)) * (d_fwd(&vx, 2) + d_fwd(&vz, 0)),
    );
    let eq_tyz = Eq::new(
        tyz.dt(),
        averaged_at(&mu, &stag(&tyz)) * (d_fwd(&vy, 2) + d_fwd(&vz, 1)),
    );
    let _ = mu_e;

    let eqs: Vec<Eq> = [
        (eq_vx, vx.forward()),
        (eq_vy, vy.forward()),
        (eq_vz, vz.forward()),
        (eq_txx, txx.forward()),
        (eq_tyy, tyy.forward()),
        (eq_tzz, tzz.forward()),
        (eq_txy, txy.forward()),
        (eq_txz, txz.forward()),
        (eq_tyz, tyz.forward()),
    ]
    .into_iter()
    .map(|(eq, fwd)| eq.solve_for(&fwd, &ctx).expect("explicit update"))
    .collect();

    Operator::build(ctx, grid, eqs).expect("elastic operator builds")
}

/// Seed Lamé parameters, buoyancy and damping.
pub fn init_workspace(spec: &ModelSpec, ws: &mut Workspace) {
    let rho = spec.rho;
    let mu = rho * spec.vs * spec.vs;
    let lam = rho * spec.vp * spec.vp - 2.0 * mu;
    spec.fill_constant(ws, "b", 1.0 / rho);
    spec.fill_constant(ws, "lam", lam);
    spec.fill_constant(ws, "mu", mu);
    spec.fill_damping(ws, "damp");
}

/// Initial value ranges the precision certificate assumes.
pub fn fp_ranges(spec: &ModelSpec) -> Vec<(&'static str, f64, f64)> {
    let w = crate::fp_profile::WAVE_AMP;
    let a = crate::fp_profile::around;
    let rho = spec.rho;
    let mu = rho * spec.vs * spec.vs;
    let lam = rho * spec.vp * spec.vp - 2.0 * mu;
    let (dlo, dhi) = crate::fp_profile::damp_range(spec);
    let mut out: Vec<(&'static str, f64, f64)> =
        ["vx", "vy", "vz", "txx", "tyy", "tzz", "txy", "txz", "tyz"]
            .iter()
            .map(|&n| (n, -w, w))
            .collect();
    for (n, v) in [("b", 1.0 / rho), ("lam", lam), ("mu", mu)] {
        let (lo, hi) = a(v);
        out.push((n, lo, hi));
    }
    out.push(("damp", dlo, dhi));
    out
}

pub const MAIN_FIELD: &str = "txx";

/// A shared source initializer: a stress "explosion" at the centre.
pub fn seed_pressure_source(spec: &ModelSpec, ws: &mut Workspace, amp: f32) {
    let c: Vec<usize> = spec.padded_shape().iter().map(|&s| s / 2).collect();
    for f in ["txx", "tyy", "tzz"] {
        ws.field_data_mut(f, 0).set_global(&c, amp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_core::ApplyOptions;
    use mpix_dmp::HaloMode;

    fn small_spec() -> ModelSpec {
        ModelSpec::new(&[8, 8, 8]).with_nbl(2)
    }

    fn stable_dt(spec: &ModelSpec) -> f64 {
        0.3 * spec.spacing / (spec.vp * 3.0f64.sqrt())
    }

    #[test]
    fn working_set_matches_paper_22_fields() {
        let op = operator(&small_spec(), 4);
        // 9 components x (t and t+1) + b + lam + mu + damp = 22 streams.
        assert_eq!(op.op_counts().working_set(), 22);
    }

    #[test]
    fn two_clusters_with_fresh_velocity_exchange() {
        let op = operator(&small_spec(), 4);
        assert_eq!(op.clusters().len(), 2, "velocity + stress clusters");
        // Cluster 0 exchanges stresses at t; cluster 1 exchanges fresh
        // velocities at t+1.
        let c1: Vec<i32> = op.halo_plan().per_cluster[1]
            .iter()
            .map(|x| x.time_offset)
            .collect();
        assert!(c1.iter().all(|&t| t == 1), "{c1:?}");
        assert_eq!(c1.len(), 3, "three velocity components exchanged");
        assert_eq!(op.halo_plan().per_cluster[0].len(), 6, "six stresses");
    }

    #[test]
    fn explosion_source_stays_finite_and_symmetric() {
        let spec = small_spec();
        let op = operator(&spec, 4);
        let s2 = spec.clone();
        let opts = ApplyOptions::default().with_nt(6).with_dt(stable_dt(&spec));
        let g = op
            .run(
                &opts,
                move |ws| {
                    init_workspace(&s2, ws);
                    seed_pressure_source(&s2, ws, 1.0);
                },
                |ws| ws.gather("txx"),
            )
            .results
            .remove(0);
        assert!(g.iter().all(|v| v.is_finite()));
        let n = spec.padded_shape()[0];
        let c = n / 2;
        let idx = |i: usize, j: usize, k: usize| (i * n + j) * n + k;
        // x/y mirror symmetry of the P-wave in txx.
        let a = g[idx(c - 2, c, c)];
        let b = g[idx(c + 2, c, c)];
        // Staggered grids are mirror-symmetric only up to the half-cell
        // shift; allow a small relative tolerance on top of f32 noise.
        assert!((a - b).abs() <= 2e-4 * a.abs().max(1e-6), "{a} vs {b}");
        assert!(g.iter().map(|v| v.abs()).sum::<f32>() > 1.0);
    }

    #[test]
    fn serial_vs_distributed_equivalence() {
        let spec = small_spec();
        let op = operator(&spec, 4);
        let s2 = spec.clone();
        let opts = ApplyOptions::default().with_nt(4).with_dt(stable_dt(&spec));
        let init = move |ws: &mut Workspace| {
            init_workspace(&s2, ws);
            seed_pressure_source(&s2, ws, 1.0);
        };
        let serial = op
            .run(&opts, &init, |ws| (ws.gather("txx"), ws.gather("vx")))
            .results
            .remove(0);
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            let out = op
                .run(&opts.clone().with_mode(mode).with_ranks(8), &init, |ws| {
                    (ws.gather("txx"), ws.gather("vx"))
                })
                .results;
            for (a, b) in out[0].0.iter().zip(&serial.0) {
                assert!(
                    (a - b).abs() <= 2e-5 * b.abs().max(1.0),
                    "{mode:?} txx: {a} vs {b}"
                );
            }
            for (a, b) in out[0].1.iter().zip(&serial.1) {
                assert!(
                    (a - b).abs() <= 2e-5 * b.abs().max(1.0),
                    "{mode:?} vx: {a} vs {b}"
                );
            }
        }
    }
}
