//! Physical model setup: velocity models, the absorbing-boundary damping
//! layer, and stable time steps.
//!
//! The paper's problem setup (§IV-C) surrounds each domain with a
//! 40-point absorbing boundary condition (ABC) layer; we mirror that
//! with a configurable `nbl` and the standard quadratic damping profile.

use mpix_core::Workspace;
use mpix_symbolic::Grid;

/// A model specification: interior shape, boundary layer, velocities.
#[derive(Clone, Debug)]
pub struct ModelSpec {
    /// Interior (physical) shape, per dimension.
    pub shape: Vec<usize>,
    /// Absorbing boundary layer width (points per side).
    pub nbl: usize,
    /// P-wave velocity (km/s) — constant background.
    pub vp: f64,
    /// S-wave velocity (km/s) for elastic models.
    pub vs: f64,
    /// Density (g/cm³).
    pub rho: f64,
    /// Grid spacing (km per point).
    pub spacing: f64,
}

impl ModelSpec {
    pub fn new(shape: &[usize]) -> ModelSpec {
        ModelSpec {
            shape: shape.to_vec(),
            nbl: 4,
            vp: 1.5,
            vs: 0.75,
            rho: 1.0,
            spacing: 0.01,
        }
    }

    pub fn with_nbl(mut self, nbl: usize) -> Self {
        self.nbl = nbl;
        self
    }
    pub fn with_vp(mut self, vp: f64) -> Self {
        self.vp = vp;
        self
    }

    /// The padded computational shape (interior + 2·nbl per side), as in
    /// the paper: "domains 80 points bigger per side".
    pub fn padded_shape(&self) -> Vec<usize> {
        self.shape.iter().map(|&s| s + 2 * self.nbl).collect()
    }

    /// The computational grid over the padded domain.
    pub fn grid(&self) -> Grid {
        let shape = self.padded_shape();
        let extent: Vec<f64> = shape
            .iter()
            .map(|&s| (s - 1) as f64 * self.spacing)
            .collect();
        Grid::new(&shape, &extent)
    }

    /// Squared slowness `m = 1/vp²`.
    pub fn m(&self) -> f64 {
        1.0 / (self.vp * self.vp)
    }

    /// A stable time step via the CFL condition for 2nd-order-in-time
    /// explicit schemes: `dt = cfl · h / (vp · √ndim)`.
    pub fn stable_dt(&self, cfl: f64) -> f64 {
        cfl * self.spacing / (self.vp * (self.shape.len() as f64).sqrt())
    }

    /// Damping value at padded global index `idx` (quadratic ramp inside
    /// the boundary layer, zero in the interior).
    pub fn damping_at(&self, idx: &[usize]) -> f64 {
        let mut d: f64 = 0.0;
        for (dim, &i) in idx.iter().enumerate() {
            let n = self.shape[dim] + 2 * self.nbl;
            let lo = self.nbl as f64;
            let hi = (n - 1 - self.nbl) as f64;
            let x = i as f64;
            let dist = if x < lo {
                lo - x
            } else if x > hi {
                x - hi
            } else {
                0.0
            };
            if self.nbl > 0 {
                let r = dist / self.nbl as f64;
                d = d.max(self.damp_coeff() * r * r);
            }
        }
        d
    }

    /// Peak damping coefficient: tuned so the layer absorbs without
    /// destabilizing the explicit update.
    fn damp_coeff(&self) -> f64 {
        // ~ log(1/R) * 3 vp / (2 L), the classic sponge estimate.
        let l = (self.nbl.max(1)) as f64 * self.spacing;
        3.0 * self.vp * (1000.0f64).ln() / (2.0 * l)
    }

    /// Fill a named `Function` field with a constant over the padded
    /// domain.
    pub fn fill_constant(&self, ws: &mut Workspace, name: &str, value: f64) {
        let shape = self.padded_shape();
        let ranges: Vec<std::ops::Range<usize>> = shape.iter().map(|&s| 0..s).collect();
        ws.field_data_mut(name, 0)
            .fill_global_slice(&ranges, value as f32);
    }

    /// Fill the damping field from the ABC profile.
    pub fn fill_damping(&self, ws: &mut Workspace, name: &str) {
        let shape = self.padded_shape();
        // Iterate only this rank's owned region via global indices.
        let arr = ws.field_data_mut(name, 0);
        let nd = shape.len();
        let decomp = arr.decomp().clone();
        let coords = arr.coords().to_vec();
        let ranges: Vec<std::ops::Range<usize>> =
            (0..nd).map(|d| decomp.owned_range(d, coords[d])).collect();
        let mut idx: Vec<usize> = ranges.iter().map(|r| r.start).collect();
        loop {
            arr.set_global(&idx, self.damping_at(&idx) as f32);
            let mut d = nd;
            loop {
                if d == 0 {
                    return;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < ranges[d].end {
                    break;
                }
                idx[d] = ranges[d].start;
            }
        }
    }

    /// Physical coordinates of the padded-domain centre (source
    /// placement).
    pub fn center_coords(&self) -> Vec<f64> {
        self.padded_shape()
            .iter()
            .map(|&s| (s - 1) as f64 * self.spacing / 2.0)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn padded_shape_adds_layers_both_sides() {
        let m = ModelSpec::new(&[16, 16, 16]).with_nbl(4);
        assert_eq!(m.padded_shape(), vec![24, 24, 24]);
    }

    #[test]
    fn damping_zero_in_interior_positive_in_layer() {
        let m = ModelSpec::new(&[16, 16]).with_nbl(4);
        assert_eq!(m.damping_at(&[12, 12]), 0.0);
        assert!(m.damping_at(&[0, 12]) > 0.0);
        assert!(m.damping_at(&[0, 0]) >= m.damping_at(&[2, 12]));
        // Monotone toward the edge.
        assert!(m.damping_at(&[0, 12]) > m.damping_at(&[1, 12]));
    }

    #[test]
    fn stable_dt_scales_with_velocity() {
        let slow = ModelSpec::new(&[8, 8]).with_vp(1.0);
        let fast = ModelSpec::new(&[8, 8]).with_vp(4.0);
        assert!(slow.stable_dt(0.4) > fast.stable_dt(0.4));
    }

    #[test]
    fn no_boundary_layer_means_no_damping() {
        let m = ModelSpec::new(&[8, 8]).with_nbl(0);
        assert_eq!(m.damping_at(&[0, 0]), 0.0);
        assert_eq!(m.padded_shape(), vec![8, 8]);
    }
}
