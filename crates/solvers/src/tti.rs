//! Anisotropic acoustic (TTI) propagator (paper §IV-B.2, Appendix A.2).
//!
//! A coupled pseudo-acoustic system of two scalar PDEs with a *rotated*
//! anisotropic Laplacian: `D_z̄ = sinθcosφ ∂x + sinθsinφ ∂y + cosθ ∂z`,
//! `G_z̄z̄ = D_z̄(D_z̄ ·)` and the horizontal part `H₀ = ∇² − G_z̄z̄`.
//! The nested first derivatives blow the stencil up across three planes
//! (Fig. 6b) — this is the arithmetically most intense kernel, with the
//! highest computation-to-communication ratio.
//!
//! Trigonometric factors and `√(1+2δ)` are precomputed into `Function`
//! fields (`cost`, `sint`, `cosp`, `sinp`, `epsf`, `sqd`), as Devito's
//! TTI examples do.

use mpix_core::{Operator, Workspace};
use mpix_symbolic::context::deriv_of;
use mpix_symbolic::{Context, Eq, Expr};

use crate::model::ModelSpec;

/// Build the TTI operator at spatial order `so`.
///
/// Only 3-D models are supported (the rotation needs a z axis).
pub fn operator(spec: &ModelSpec, so: u32) -> Operator {
    assert_eq!(spec.shape.len(), 3, "TTI is a 3-D kernel");
    let grid = spec.grid();
    let mut ctx = Context::new();
    let u = ctx.add_time_function("u", &grid, so, 2);
    let v = ctx.add_time_function("v", &grid, so, 2);
    let m = ctx.add_function("m", &grid, so);
    let damp = ctx.add_function("damp", &grid, so);
    let cost = ctx.add_function("cost", &grid, so);
    let sint = ctx.add_function("sint", &grid, so);
    let cosp = ctx.add_function("cosp", &grid, so);
    let sinp = ctx.add_function("sinp", &grid, so);
    let epsf = ctx.add_function("epsf", &grid, so); // 1 + 2ε
    let sqd = ctx.add_function("sqd", &grid, so); // √(1+2δ)

    // Scratch wavefields holding the inner rotated derivative — the
    // cross-iteration redundancy elimination (CIRE) the paper's compiler
    // applies to TTI: `D_z̄(·)` is computed once into a temporary grid
    // array per field instead of re-expanding `G_z̄z̄ = D_z̄(D_z̄ ·)` into a
    // single enormous stencil. The temporaries are exchanged like any
    // other buffer (an extra halo exchange per step, as in Devito).
    let qu = ctx.add_time_function("qu", &grid, so, 1);
    let qv = ctx.add_time_function("qv", &grid, so, 1);

    let rot_z = |e: Expr| -> Expr {
        sint.center() * cosp.center() * deriv_of(e.clone(), 0, 1, so)
            + sint.center() * sinp.center() * deriv_of(e.clone(), 1, 1, so)
            + cost.center() * deriv_of(e, 2, 1, so)
    };
    // Cluster 1: qu = D_z̄ u[t], qv = D_z̄ v[t].
    let eq_qu = Eq::new(qu.forward(), rot_z(u.center()));
    let eq_qv = Eq::new(qv.forward(), rot_z(v.center()));

    // The outer application is the transpose form of the paper's Eq. 2
    // (G = D̄ᵀD̄): the trigonometric fields sit *inside* the derivative,
    // so they are read at stencil offsets (and their halos hoist out of
    // the time loop). For constant angles this equals D̄(D̄ ·) exactly.
    let rot_z_inner = |e: Expr| -> Expr {
        deriv_of(sint.center() * cosp.center() * e.clone(), 0, 1, so)
            + deriv_of(sint.center() * sinp.center() * e.clone(), 1, 1, so)
            + deriv_of(cost.center() * e, 2, 1, so)
    };
    let gzz_u = rot_z_inner(qu.forward());
    let gzz_v = rot_z_inner(qv.forward());
    let h0_u = u.laplace() - gzz_u.clone();

    // m u_tt + damp u_t = (1+2ε) H0(u) + √(1+2δ) Gzz(v)
    // m v_tt + damp v_t = √(1+2δ) H0(u) + Gzz(v)
    let pde_u = m.center() * u.dt2() + damp.center() * u.dt()
        - epsf.center() * h0_u.clone()
        - sqd.center() * gzz_v.clone();
    let pde_v = m.center() * v.dt2() + damp.center() * v.dt() - sqd.center() * h0_u - gzz_v;
    let st_u = mpix_symbolic::solve(&pde_u, &u.forward(), &ctx).expect("linear in u.forward");
    let st_v = mpix_symbolic::solve(&pde_v, &v.forward(), &ctx).expect("linear in v.forward");
    Operator::build(ctx, grid, vec![eq_qu, eq_qv, st_u, st_v]).expect("tti operator builds")
}

/// Constant background model: tilt and azimuth (radians) and Thomsen
/// anisotropy. Shared by [`init_workspace`] and [`fp_ranges`], so the
/// certified ranges cannot drift from the seeded values.
pub const THETA: f64 = 0.35;
pub const PHI: f64 = 0.25;
pub const EPSILON: f64 = 0.15;
pub const DELTA: f64 = 0.08;

/// Seed model parameters: constant tilt/azimuth/anisotropy background.
pub fn init_workspace(spec: &ModelSpec, ws: &mut Workspace) {
    spec.fill_constant(ws, "m", spec.m());
    spec.fill_damping(ws, "damp");
    spec.fill_constant(ws, "cost", THETA.cos());
    spec.fill_constant(ws, "sint", THETA.sin());
    spec.fill_constant(ws, "cosp", PHI.cos());
    spec.fill_constant(ws, "sinp", PHI.sin());
    spec.fill_constant(ws, "epsf", 1.0 + 2.0 * EPSILON);
    spec.fill_constant(ws, "sqd", (1.0 + 2.0 * DELTA).sqrt());
}

/// Initial value ranges the precision certificate assumes.
pub fn fp_ranges(spec: &ModelSpec) -> Vec<(&'static str, f64, f64)> {
    let w = crate::fp_profile::WAVE_AMP;
    let a = crate::fp_profile::around;
    let (mlo, mhi) = a(spec.m());
    let (dlo, dhi) = crate::fp_profile::damp_range(spec);
    let mut out = vec![
        ("u", -w, w),
        ("v", -w, w),
        ("m", mlo, mhi),
        ("damp", dlo, dhi),
    ];
    // The rotated-Laplacian temporaries hold first derivatives of the
    // wavefields: bounded by amplitude × the derivative stencil's
    // coefficient sum over the smallest spacing.
    let h_min = (0..spec.shape.len())
        .map(|d| spec.grid().spacing(d))
        .fold(f64::INFINITY, f64::min);
    let q = 4.0 * w / h_min;
    out.push(("qu", -q, q));
    out.push(("qv", -q, q));
    for (name, v) in [
        ("cost", THETA.cos()),
        ("sint", THETA.sin()),
        ("cosp", PHI.cos()),
        ("sinp", PHI.sin()),
        ("epsf", 1.0 + 2.0 * EPSILON),
        ("sqd", (1.0 + 2.0 * DELTA).sqrt()),
    ] {
        let (lo, hi) = a(v);
        out.push((name, lo, hi));
    }
    out
}

pub const MAIN_FIELD: &str = "u";

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_core::ApplyOptions;
    use mpix_dmp::HaloMode;

    fn small_spec() -> ModelSpec {
        ModelSpec::new(&[8, 8, 8]).with_nbl(2)
    }

    #[test]
    fn tti_has_highest_operational_intensity() {
        let spec = small_spec();
        let tti = operator(&spec, 4);
        let ac = crate::acoustic::operator(&spec, 4);
        // Margin re-anchored after the CSE dead-let fix: the rotated
        // Laplacian's repeated trig products now share one temp instead
        // of being recounted per use, so the honest ratio is ~1.45x,
        // not the ~2x the redundant counts used to show.
        assert!(
            tti.op_counts().oi() > 1.25 * ac.op_counts().oi(),
            "TTI OI {} vs acoustic {}",
            tti.op_counts().oi(),
            ac.op_counts().oi()
        );
        assert!(tti.op_counts().flops() > 3 * ac.op_counts().flops());
    }

    #[test]
    fn trig_fields_are_hoisted_exchanges() {
        // The rotated Laplacian reads cost/sint/... at stencil offsets;
        // they are time-invariant, so their exchanges hoist out of the
        // time loop (paper §III g).
        let op = operator(&small_spec(), 4);
        let hoisted: Vec<u32> = op.halo_plan().hoisted.iter().map(|x| x.field.0).collect();
        assert!(!hoisted.is_empty(), "expected hoisted Function exchanges");
        // u and v buffers are exchanged inside the loop.
        assert!(op.halo_plan().exchanges_per_step() >= 2);
    }

    #[test]
    fn wavefields_stay_finite_and_couple() {
        let spec = small_spec();
        let op = operator(&spec, 4);
        let dt = spec.stable_dt(0.25);
        let c = spec.padded_shape()[0] / 2;
        let s2 = spec.clone();
        let opts = ApplyOptions::default().with_nt(6).with_dt(dt);
        let (gu, gv) = op
            .run(
                &opts,
                move |ws| {
                    init_workspace(&s2, ws);
                    for f in ["u", "v"] {
                        ws.field_data_mut(f, 0).set_global(&[c, c, c], 1.0);
                        ws.field_data_mut(f, -1).set_global(&[c, c, c], 1.0);
                    }
                },
                |ws| (ws.gather("u"), ws.gather("v")),
            )
            .results
            .remove(0);
        assert!(gu.iter().all(|x| x.is_finite()));
        assert!(gv.iter().all(|x| x.is_finite()));
        // The coupled system must have spread energy into v.
        assert!(gv.iter().map(|x| x.abs()).sum::<f32>() > 0.0);
    }

    #[test]
    fn serial_vs_distributed_equivalence() {
        let spec = small_spec();
        let op = operator(&spec, 4);
        let dt = spec.stable_dt(0.25);
        let c = spec.padded_shape()[0] / 2;
        let s2 = spec.clone();
        let opts = ApplyOptions::default().with_nt(4).with_dt(dt);
        let init = move |ws: &mut Workspace| {
            init_workspace(&s2, ws);
            ws.field_data_mut("u", 0).set_global(&[c, c, c], 1.0);
        };
        let serial = op.run(&opts, &init, |ws| ws.gather("u")).results.remove(0);
        for mode in [HaloMode::Basic, HaloMode::Diagonal] {
            let out = op
                .run(&opts.clone().with_mode(mode).with_ranks(8), &init, |ws| {
                    ws.gather("u")
                })
                .results;
            for (a, b) in out[0].iter().zip(&serial) {
                assert!(
                    (a - b).abs() <= 2e-5 * b.abs().max(1.0),
                    "{mode:?}: {a} vs {b}"
                );
            }
        }
    }
}
