//! # mpix-solvers
//!
//! The four wave-propagator stencil kernels of the paper's evaluation
//! (§IV-B, Appendix A), built entirely on the symbolic DSL:
//!
//! * [`acoustic`] — isotropic acoustic: single scalar PDE, star stencil,
//!   memory-bound, 5-field working set.
//! * [`tti`] — anisotropic acoustic (TTI): coupled pseudo-acoustic
//!   system with a rotated Laplacian built from nested first
//!   derivatives; the most arithmetically intense kernel (12 fields).
//! * [`elastic`] — isotropic elastic (Virieux velocity–stress): coupled
//!   vector/tensor system on a staggered grid, first order in time,
//!   22-field working set.
//! * [`viscoelastic`] — Robertsson visco-elastic: adds memory variables,
//!   the largest working set (36 fields in 3-D).
//!
//! Support modules: [`ricker`] (the seismic source wavelet), [`model`]
//! (velocity models and the absorbing-boundary damping layer), and
//! [`propagator`] (a uniform wrapper the benchmarks drive).

// Numerical kernels index several arrays with one loop variable; the
// clippy suggestion (iterators + zip) hurts clarity in stencil code.
#![allow(clippy::needless_range_loop)]
#![allow(clippy::manual_is_multiple_of)]

pub mod acoustic;
pub mod elastic;
pub mod fp_profile;
pub mod model;
pub mod propagator;
pub mod ricker;
pub mod tti;
pub mod verification;
pub mod viscoelastic;

pub use fp_profile::{fp_profile, FpProfile};
pub use model::ModelSpec;
pub use propagator::{KernelKind, Propagator};
pub use ricker::ricker_wavelet;
