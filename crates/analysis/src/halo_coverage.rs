//! Pass 1: halo-coverage proofs.
//!
//! Re-derives the halo each cluster's stencil reads actually require —
//! from [`Cluster::reads`] offsets and program order — and checks the
//! compiler's [`HaloPlan`] against it in both directions:
//!
//! * **under-coverage** (Error): a nonzero-radius read of a buffer whose
//!   halo the plan never exchanges (or exchanges too narrowly) before
//!   the read, accounting for writes dirtying buffers between clusters.
//!   A missed exchange silently produces wrong numerics at rank
//!   boundaries — the exact failure mode the paper's drop/merge passes
//!   (§III g) risk introducing.
//! * **over-coverage** (Warning): an exchange the reference detector
//!   would drop, merge away, or emit narrower — wasteful bandwidth, not
//!   incorrectness.
//!
//! Soundness caveat: the under-coverage simulation trusts
//! [`Cluster::reads`] to enumerate every load; it shares that enumeration
//! with the compiler's own detector, so a bug in `visit_loads` itself is
//! out of scope (caught instead by the executor's numerics tests).

use std::collections::BTreeMap;

use mpix_ir::cluster::Cluster;
use mpix_ir::halo::{detect_halo_exchanges, HaloPlan, HaloXchg};
use mpix_symbolic::{Context, FieldId, FieldKind};
use mpix_trace::Diagnostic;

use crate::buf_name;

const PASS: &str = "halo-coverage";

/// Check `plan` against the halo requirements of `clusters`.
pub fn check_halo_coverage(
    ctx: &Context,
    clusters: &[Cluster],
    plan: &HaloPlan,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();

    if plan.per_cluster.len() != clusters.len() {
        diags.push(Diagnostic::error(
            PASS,
            "plan",
            format!(
                "plan has {} per-cluster exchange sets for {} clusters; \
                 every cluster needs a (possibly empty) set",
                plan.per_cluster.len(),
                clusters.len()
            ),
        ));
        return diags;
    }

    // Structural validity of every exchange in the plan.
    for (loc, x) in plan_entries(plan) {
        validate_xchg(ctx, &loc, x, &mut diags);
    }

    // Which fields any cluster writes. Buffer rotation cycles a
    // TimeFunction's buffers through the written slot, so a write at
    // *any* time offset stales a hoisted exchange of *every* buffer of
    // that field after the first step.
    let written: Vec<FieldId> = clusters
        .iter()
        .flat_map(|c| c.writes())
        .map(|(f, _)| f)
        .collect();

    // Coverage state. `clean` holds time-varying buffers whose halo is
    // valid at the current program point (exchanged, not rewritten
    // since); `invariant` holds time-invariant coverage that never
    // expires (hoisted Functions, plus hoisted TimeFunctions that are
    // never written).
    let mut clean: BTreeMap<(FieldId, i32), Vec<usize>> = BTreeMap::new();
    let mut invariant: BTreeMap<(FieldId, i32), Vec<usize>> = BTreeMap::new();

    // A radius of the wrong rank was already flagged by `validate_xchg`;
    // merging it would index past the short vec, so drop it from coverage.
    let well_formed =
        |x: &mpix_ir::halo::HaloXchg| x.radius.len() == ctx.field(x.field).shape.len();

    for x in &plan.hoisted {
        if !well_formed(x) {
            continue;
        }
        let key = (x.field, x.time_offset);
        match ctx.field(x.field).kind {
            FieldKind::Function => merge_cov(&mut invariant, key, &x.radius),
            FieldKind::TimeFunction => {
                if written.contains(&x.field) {
                    diags.push(Diagnostic::error(
                        PASS,
                        format!("hoisted / {}", buf_name(ctx, x.field, x.time_offset)),
                        "time-varying buffer is exchanged before the time loop but rewritten \
                         inside it: the hoisted halo goes stale after the first step"
                            .to_string(),
                    ));
                } else {
                    merge_cov(&mut invariant, key, &x.radius);
                }
            }
        }
    }

    for (ci, cl) in clusters.iter().enumerate() {
        // Exchanges scheduled immediately before this cluster.
        for x in &plan.per_cluster[ci] {
            if !well_formed(x) {
                continue;
            }
            let key = (x.field, x.time_offset);
            match ctx.field(x.field).kind {
                // A Function is never written inside the loop, so a
                // per-cluster exchange does cover it — permanently — but
                // repeats every time step for nothing.
                FieldKind::Function => {
                    merge_cov(&mut invariant, key, &x.radius);
                    diags.push(Diagnostic::warning(
                        PASS,
                        format!("cluster {ci} / {}", buf_name(ctx, x.field, x.time_offset)),
                        "time-invariant field exchanged every step; the hoisting pass \
                         should move this before the time loop"
                            .to_string(),
                    ));
                }
                FieldKind::TimeFunction => merge_cov(&mut clean, key, &x.radius),
            }
        }

        // Every nonzero-radius read must now be covered.
        for (f, toff, radius) in cl.reads() {
            if radius.iter().all(|&r| r == 0) {
                continue;
            }
            let key = (f, toff);
            let cov_inv = invariant.get(&key);
            let cov_clean = clean.get(&key);
            let covered = (0..radius.len()).all(|d| {
                let have = cov_inv
                    .map(|c| c[d])
                    .unwrap_or(0)
                    .max(cov_clean.map(|c| c[d]).unwrap_or(0));
                radius[d] <= have
            });
            if !covered {
                let have: Vec<usize> = (0..radius.len())
                    .map(|d| {
                        cov_inv
                            .map(|c| c[d])
                            .unwrap_or(0)
                            .max(cov_clean.map(|c| c[d]).unwrap_or(0))
                    })
                    .collect();
                diags.push(Diagnostic::error(
                    PASS,
                    format!("cluster {ci} / {}", buf_name(ctx, f, toff)),
                    format!(
                        "under-coverage: stencil reads radius {radius:?} but the plan \
                         provides only {have:?} at this point — off-rank points would be \
                         read from a stale or never-exchanged halo"
                    ),
                ));
            }
        }

        // Writes dirty their buffer's halo.
        for key in cl.writes() {
            clean.remove(&key);
        }
    }

    // Over-coverage: diff against the independently recomputed reference
    // plan. The simulation above is the ground truth for correctness;
    // the reference diff only reports waste.
    let reference = detect_halo_exchanges(clusters, ctx);
    diff_over_coverage(
        ctx,
        "hoisted",
        &plan.hoisted,
        &reference.hoisted,
        &mut diags,
    );
    for (ci, (given, want)) in plan
        .per_cluster
        .iter()
        .zip(&reference.per_cluster)
        .enumerate()
    {
        diff_over_coverage(ctx, &format!("cluster {ci}"), given, want, &mut diags);
    }

    diags
}

fn plan_entries(plan: &HaloPlan) -> impl Iterator<Item = (String, &HaloXchg)> {
    plan.hoisted
        .iter()
        .map(|x| ("hoisted".to_string(), x))
        .chain(
            plan.per_cluster
                .iter()
                .enumerate()
                .flat_map(|(ci, xs)| xs.iter().map(move |x| (format!("cluster {ci}"), x))),
        )
}

fn validate_xchg(ctx: &Context, loc: &str, x: &HaloXchg, diags: &mut Vec<Diagnostic>) {
    let field = ctx.field(x.field);
    let nd = field.shape.len();
    let location = format!("{loc} / {}", buf_name(ctx, x.field, x.time_offset));
    if x.radius.len() != nd {
        diags.push(Diagnostic::error(
            PASS,
            location,
            format!(
                "exchange radius has {} entries for a {nd}-dimensional field",
                x.radius.len()
            ),
        ));
        return;
    }
    let halo = field.halo() as usize;
    for (d, &r) in x.radius.iter().enumerate() {
        if r > halo {
            diags.push(Diagnostic::error(
                PASS,
                location.clone(),
                format!(
                    "exchange radius {r} in dimension {d} exceeds the field's allocated \
                     halo width {halo}: the runtime plan would read/write out of bounds"
                ),
            ));
        }
    }
}

fn merge_cov(
    map: &mut BTreeMap<(FieldId, i32), Vec<usize>>,
    key: (FieldId, i32),
    radius: &[usize],
) {
    let entry = map.entry(key).or_insert_with(|| vec![0; radius.len()]);
    for d in 0..radius.len().min(entry.len()) {
        entry[d] = entry[d].max(radius[d]);
    }
}

fn diff_over_coverage(
    ctx: &Context,
    loc: &str,
    given: &[HaloXchg],
    want: &[HaloXchg],
    diags: &mut Vec<Diagnostic>,
) {
    for g in given {
        let location = format!("{loc} / {}", buf_name(ctx, g.field, g.time_offset));
        match want
            .iter()
            .find(|w| w.field == g.field && w.time_offset == g.time_offset)
        {
            None => diags.push(Diagnostic::warning(
                PASS,
                location,
                "over-coverage: redundant exchange — the reference detector drops it \
                 (halo already clean or read only at the center)"
                    .to_string(),
            )),
            Some(w) => {
                if g.radius.len() == w.radius.len()
                    && g.radius.iter().zip(&w.radius).any(|(gr, wr)| gr > wr)
                {
                    diags.push(Diagnostic::warning(
                        PASS,
                        location,
                        format!(
                            "over-coverage: exchange radius {:?} is wider than the \
                             required {:?}",
                            g.radius, w.radius
                        ),
                    ));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::cluster::clusterize;
    use mpix_ir::lowering::lower_equations;
    use mpix_symbolic::Grid;

    fn artifacts() -> (Context, Vec<Cluster>, HaloPlan) {
        let mut ctx = Context::new();
        let g = Grid::new(&[32, 32], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let m = ctx.add_function("m", &g, 4);
        let pde = m.center() * u.dt2() - u.laplace();
        let st = mpix_symbolic::solve(&pde, &u.forward(), &ctx).unwrap();
        let cl = clusterize(&lower_equations(&[st], &ctx).unwrap());
        let plan = detect_halo_exchanges(&cl, &ctx);
        (ctx, cl, plan)
    }

    #[test]
    fn clean_plan_has_no_diagnostics() {
        let (ctx, cl, plan) = artifacts();
        assert!(check_halo_coverage(&ctx, &cl, &plan).is_empty());
    }

    #[test]
    fn deleted_exchange_is_under_coverage_error() {
        let (ctx, cl, mut plan) = artifacts();
        plan.per_cluster[0].clear();
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(
            diags.iter().any(|d| d.pass == PASS
                && d.severity == mpix_trace::Severity::Error
                && d.explanation.contains("under-coverage")),
            "{diags:?}"
        );
    }

    #[test]
    fn shrunk_radius_is_under_coverage_error() {
        let (ctx, cl, mut plan) = artifacts();
        plan.per_cluster[0][0].radius = vec![2, 1];
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(diags
            .iter()
            .any(|d| d.explanation.contains("under-coverage")));
    }

    #[test]
    fn widened_radius_is_over_coverage_warning() {
        // Legal widening (within the allocated halo of 4, wider than the
        // required stencil radius of 2) is a bandwidth warning.
        let (ctx, cl, mut plan) = artifacts();
        plan.per_cluster[0][0].radius = vec![3, 3];
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == mpix_trace::Severity::Warning
                    && d.explanation.contains("wider than the required")),
            "{diags:?}"
        );
    }

    #[test]
    fn radius_beyond_allocated_halo_is_error() {
        let (ctx, cl, mut plan) = artifacts();
        plan.per_cluster[0][0].radius = vec![5, 5]; // allocated halo is 4
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(
            diags.iter().any(|d| d.explanation.contains("exceeds")),
            "{diags:?}"
        );
    }

    #[test]
    fn hoisting_a_rewritten_time_buffer_is_error() {
        let (ctx, cl, mut plan) = artifacts();
        let x = plan.per_cluster[0][0].clone();
        plan.hoisted.push(HaloXchg {
            field: x.field,
            time_offset: x.time_offset,
            radius: x.radius,
        });
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == mpix_trace::Severity::Error
                    && d.explanation.contains("stale after the first step")),
            "{diags:?}"
        );
    }

    #[test]
    fn redundant_exchange_is_warning() {
        let (ctx, cl, mut plan) = artifacts();
        // Exchange a buffer nobody reads at a radius: u[t-1] is read at
        // the center only in the acoustic update.
        let f = plan.per_cluster[0][0].field;
        plan.per_cluster[0].push(HaloXchg {
            field: f,
            time_offset: -1,
            radius: vec![1, 1],
        });
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(
            diags
                .iter()
                .any(|d| d.severity == mpix_trace::Severity::Warning
                    && d.explanation.contains("redundant")),
            "{diags:?}"
        );
    }

    #[test]
    fn plan_length_mismatch_is_error() {
        let (ctx, cl, mut plan) = artifacts();
        plan.per_cluster.push(Vec::new());
        let diags = check_halo_coverage(&ctx, &cl, &plan);
        assert!(diags.iter().any(|d| d.explanation.contains("sets for")));
    }
}
