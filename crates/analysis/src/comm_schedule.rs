//! Pass 2: comm-schedule deadlock / tag-collision detection.
//!
//! Rather than re-deriving what the runtime *should* post, this pass
//! builds the **real** per-rank [`mpix_dmp::HaloPlan`]s on a P-rank
//! Cartesian topology (via [`mpix_comm::Universe`], which is fully
//! re-entrant) and then symbolically matches the collected schedules:
//!
//! * **step alignment** — every rank builds the same number of steps
//!   (the *basic* mode synchronizes per dimension: a rank waiting in a
//!   step its peer never enters is a deadlock);
//! * **send/recv matching** — within each step, every send `(src → dst,
//!   tag)` has exactly one posted receive `(dst ← src, tag)` of the same
//!   message length, and no receive goes unsatisfied (an orphan on
//!   either side blocks forever under synchronous semantics);
//! * **tag uniqueness** — per rank and step, send `(dst, tag)` and recv
//!   `(src, tag)` pairs are unique, so messages cannot cross-match;
//! * **geometry** — receive boxes stay inside the radius-`r` halo
//!   annulus, never touch the owned region, and no halo cell is received
//!   twice across the whole exchange;
//! * **coverage** — every globally-valid halo cell within radius `r` of
//!   the owned box is received by exactly one message (non-periodic
//!   boundaries: cells outside the global domain are exempt);
//! * **provenance** — each step only sends cells that are owned or were
//!   received in an *earlier* step (the proof obligation behind *basic*
//!   mode's corner propagation; sends and receives of the same step are
//!   concurrent, so same-step data cannot be forwarded).
//!
//! The matcher ([`match_schedule`]) is a pure function over collected
//! [`RankPlan`] rows, so the mutation corpus can corrupt a schedule
//! without spinning up ranks.
//!
//! A separate check ([`check_tag_windows`]) proves the executor's
//! per-buffer tag windows (`mpix_codegen::halo_tag_base`) are mutually
//! disjoint, wide enough for the mode's densest tag layout (`3^nd`
//! codes), and clear of the sparse-sampling tag space.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use mpix_codegen::halo_tag_base;
use mpix_comm::comm::RESERVED_TAG_BASE;
use mpix_comm::{CartComm, Tag, Universe};
use mpix_dmp::halo::HaloMode;
use mpix_dmp::regions::{box_len, for_each_index, BoxNd};
use mpix_dmp::{Decomposition, DistArray, HaloPlan};
use mpix_ir::halo::HaloPlan as IrHaloPlan;
use mpix_symbolic::{Context, FieldId};
use mpix_trace::Diagnostic;

use crate::buf_name;

const PASS: &str = "comm-schedule";

/// One message pair of a rank's schedule, as exposed by
/// `HaloPlan::step_view`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanRow {
    pub peer: usize,
    pub send_tag: Tag,
    pub recv_tag: Tag,
    pub send_box: BoxNd,
    pub recv_box: BoxNd,
}

/// The full schedule one rank builds for one `(mode, radius)` exchange.
#[derive(Clone, Debug)]
pub struct RankPlan {
    pub rank: usize,
    pub steps: Vec<Vec<PlanRow>>,
}

/// The topology/geometry a schedule was built for.
#[derive(Clone, Debug)]
pub struct ScheduleCtx {
    pub global: Vec<usize>,
    pub dims: Vec<usize>,
    pub halo: usize,
    pub radius: usize,
}

/// Distinct `(field, time offset, max radius)` exchange keys of a
/// compiler halo plan — hoisted and per-cluster alike. The runtime
/// exchanges one buffer at the max radius over dimensions, so that is
/// what the schedule checks use.
pub fn exchange_keys(plan: &IrHaloPlan) -> Vec<(FieldId, i32, usize)> {
    let mut keys: BTreeMap<(u32, i32), usize> = BTreeMap::new();
    for x in plan.hoisted.iter().chain(plan.per_cluster.iter().flatten()) {
        let r = x.radius.iter().copied().max().unwrap_or(0);
        let e = keys.entry((x.field.0, x.time_offset)).or_insert(0);
        *e = (*e).max(r);
    }
    keys.into_iter()
        .map(|((f, t), r)| (FieldId(f), t, r))
        .collect()
}

/// Prove the per-buffer tag windows are collision-free.
///
/// The executor gives each `(field, time offset)` buffer the 64-tag
/// window starting at [`halo_tag_base`]. Three obligations: distinct
/// buffers get distinct windows; the densest mode layout (`3^nd`
/// diagonal codes, `2*nd` basic face tags) fits inside 64 tags; and no
/// window reaches the sparse-sampling tag space at
/// `RESERVED_TAG_BASE / 2`.
pub fn check_tag_windows(
    ctx: &Context,
    keys: &[(FieldId, i32, usize)],
    nd: usize,
) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let width = (2 * nd).max(3usize.pow(nd as u32)) as u32;
    let mut bases: BTreeMap<u32, (FieldId, i32)> = BTreeMap::new();
    for &(f, toff, _) in keys {
        let base = halo_tag_base(f.0, toff);
        let loc = buf_name(ctx, f, toff);
        if width > 64 {
            diags.push(Diagnostic::error(
                PASS,
                loc.clone(),
                format!(
                    "tag window of 64 cannot hold the {width} tags a {nd}-dimensional \
                     diagonal exchange uses: messages from different buffers would \
                     cross-match"
                ),
            ));
        }
        if base + 64 > RESERVED_TAG_BASE / 2 {
            diags.push(Diagnostic::error(
                PASS,
                loc.clone(),
                format!(
                    "tag window {base}..{} overlaps the sparse-sampling tag space \
                     starting at {}",
                    base + 64,
                    RESERVED_TAG_BASE / 2
                ),
            ));
        }
        if let Some(&(g, gtoff)) = bases.get(&base) {
            diags.push(Diagnostic::error(
                PASS,
                loc,
                format!(
                    "tag base {base} collides with {}: concurrent exchanges of the two \
                     buffers would cross-match messages",
                    buf_name(ctx, g, gtoff)
                ),
            ));
        } else {
            bases.insert(base, (f, toff));
        }
    }
    diags
}

/// Build the real runtime `HaloPlan` on every rank of a
/// `global`/`dims` topology and collect each rank's schedule.
pub fn collect_schedules(
    global: &[usize],
    dims: &[usize],
    halo: usize,
    mode: HaloMode,
    radius: usize,
) -> Vec<RankPlan> {
    let p: usize = dims.iter().product();
    let decomp = Arc::new(Decomposition::new(global, dims));
    Universe::run(p, |comm| {
        let cart = CartComm::new(comm, dims);
        let rank = cart.rank();
        let coords: Vec<usize> = cart.coords().to_vec();
        let arr = DistArray::new(Arc::clone(&decomp), &coords, halo);
        let plan = HaloPlan::build(&cart, &arr, mode, radius, 0);
        let steps = (0..plan.num_steps())
            .map(|s| {
                plan.step_view(s)
                    .into_iter()
                    .map(|(peer, send_tag, recv_tag, send_box, recv_box)| PlanRow {
                        peer,
                        send_tag,
                        recv_tag,
                        send_box,
                        recv_box,
                    })
                    .collect()
            })
            .collect();
        RankPlan { rank, steps }
    })
}

fn cell_key(idx: &[usize], padded: &[usize]) -> usize {
    let mut k = 0;
    for (i, p) in idx.iter().zip(padded) {
        k = k * p + i;
    }
    k
}

fn fmt_cell(idx: &[usize]) -> String {
    format!("{idx:?}")
}

/// Symbolically match collected schedules: prove deadlock-freedom,
/// unique matching, exact halo coverage, and send provenance.
pub fn match_schedule(plans: &[RankPlan], sctx: &ScheduleCtx, location: &str) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let nd = sctx.global.len();
    let nranks: usize = sctx.dims.iter().product();
    let decomp = Decomposition::new(&sctx.global, &sctx.dims);
    let loc = |detail: String| format!("{location} / {detail}");

    if plans.len() != nranks {
        diags.push(Diagnostic::error(
            PASS,
            location.to_string(),
            format!(
                "{} rank schedules for a {nranks}-rank topology",
                plans.len()
            ),
        ));
        return diags;
    }
    let nsteps = plans.iter().map(|p| p.steps.len()).max().unwrap_or(0);
    if plans.iter().any(|p| p.steps.len() != nsteps) {
        diags.push(Diagnostic::error(
            PASS,
            location.to_string(),
            "ranks disagree on the number of exchange steps: a rank waiting in a step \
             its peer never enters deadlocks"
                .to_string(),
        ));
        return diags;
    }

    // --- message matching, step by step -------------------------------
    for step in 0..nsteps {
        // (src, dst, tag) -> message lengths, from both directions.
        let mut sends: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
        let mut recvs: BTreeMap<(usize, usize, Tag), Vec<usize>> = BTreeMap::new();
        for p in plans {
            let mut seen_send: BTreeSet<(usize, Tag)> = BTreeSet::new();
            let mut seen_recv: BTreeSet<(usize, Tag)> = BTreeSet::new();
            for row in &p.steps[step] {
                if row.peer >= nranks {
                    diags.push(Diagnostic::error(
                        PASS,
                        loc(format!("rank {} step {step}", p.rank)),
                        format!(
                            "peer {} does not exist on a {nranks}-rank topology",
                            row.peer
                        ),
                    ));
                    continue;
                }
                if !seen_send.insert((row.peer, row.send_tag)) {
                    diags.push(Diagnostic::error(
                        PASS,
                        loc(format!("rank {} step {step}", p.rank)),
                        format!(
                            "duplicate send (dst {}, tag {}): the receiver cannot tell \
                             the messages apart",
                            row.peer, row.send_tag
                        ),
                    ));
                }
                if !seen_recv.insert((row.peer, row.recv_tag)) {
                    diags.push(Diagnostic::error(
                        PASS,
                        loc(format!("rank {} step {step}", p.rank)),
                        format!(
                            "duplicate receive (src {}, tag {}): matching is ambiguous",
                            row.peer, row.recv_tag
                        ),
                    ));
                }
                sends
                    .entry((p.rank, row.peer, row.send_tag))
                    .or_default()
                    .push(box_len(&row.send_box));
                recvs
                    .entry((row.peer, p.rank, row.recv_tag))
                    .or_default()
                    .push(box_len(&row.recv_box));
            }
        }
        for (&(src, dst, tag), slens) in &sends {
            match recvs.get(&(src, dst, tag)) {
                None => diags.push(Diagnostic::error(
                    PASS,
                    loc(format!("step {step}")),
                    format!(
                        "send {src} -> {dst} (tag {tag}) has no matching posted receive: \
                         the send blocks forever (deadlock)"
                    ),
                )),
                Some(rlens) => {
                    if slens.len() != rlens.len() {
                        diags.push(Diagnostic::error(
                            PASS,
                            loc(format!("step {step}")),
                            format!(
                                "{} send(s) but {} receive(s) for {src} -> {dst} (tag {tag})",
                                slens.len(),
                                rlens.len()
                            ),
                        ));
                    } else if slens != rlens {
                        diags.push(Diagnostic::error(
                            PASS,
                            loc(format!("step {step}")),
                            format!(
                                "message length mismatch for {src} -> {dst} (tag {tag}): \
                                 sender packs {slens:?} values, receiver expects {rlens:?}"
                            ),
                        ));
                    }
                }
            }
        }
        for &(src, dst, tag) in recvs.keys() {
            if !sends.contains_key(&(src, dst, tag)) {
                diags.push(Diagnostic::error(
                    PASS,
                    loc(format!("step {step}")),
                    format!(
                        "receive posted on rank {dst} from {src} (tag {tag}) is never \
                         sent: the receive waits forever (deadlock)"
                    ),
                ));
            }
        }
    }

    // --- per-rank geometry: window, disjointness, provenance, coverage -
    for p in plans {
        let coords = CartComm::coords_of(&sctx.dims, p.rank);
        let local = decomp.local_shape(&coords);
        let padded: Vec<usize> = local.iter().map(|&n| n + 2 * sctx.halo).collect();
        let owned: BoxNd = local.iter().map(|&n| sctx.halo..sctx.halo + n).collect();
        // The halo annulus reachable at this radius.
        let window: BoxNd = local
            .iter()
            .map(|&n| sctx.halo - sctx.radius..sctx.halo + n + sctx.radius)
            .collect();
        let globally_valid = |idx: &[usize]| -> bool {
            idx.iter().enumerate().all(|(d, &i)| {
                let g = decomp.owned_range(d, coords[d]).start as i64 + i as i64 - sctx.halo as i64;
                g >= 0 && (g as usize) < sctx.global[d]
            })
        };
        let in_box = |idx: &[usize], b: &BoxNd| idx.iter().zip(b).all(|(&i, r)| r.contains(&i));

        let mut received: BTreeSet<usize> = BTreeSet::new();
        for (step, rows) in p.steps.iter().enumerate() {
            let mut step_recv: Vec<usize> = Vec::new();
            for (ri, row) in rows.iter().enumerate() {
                let rloc = loc(format!("rank {} step {step} msg {ri}", p.rank));
                if row.recv_box.len() != nd
                    || row.send_box.len() != nd
                    || row.recv_box.iter().zip(&padded).any(|(r, &pd)| r.end > pd)
                    || row.send_box.iter().zip(&padded).any(|(r, &pd)| r.end > pd)
                {
                    diags.push(Diagnostic::error(
                        PASS,
                        rloc,
                        format!(
                            "message boxes leave the padded allocation {padded:?}: \
                             send {:?}, recv {:?}",
                            row.send_box, row.recv_box
                        ),
                    ));
                    continue;
                }
                let mut flagged_owned = false;
                let mut flagged_window = false;
                for_each_index(&row.recv_box, |idx| {
                    if !flagged_owned && in_box(idx, &owned) {
                        diags.push(Diagnostic::error(
                            PASS,
                            rloc.clone(),
                            format!(
                                "receive box {:?} overwrites owned cell {}: remote data \
                                 clobbers this rank's computation",
                                row.recv_box,
                                fmt_cell(idx)
                            ),
                        ));
                        flagged_owned = true;
                    }
                    if !flagged_window && !in_box(idx, &window) {
                        diags.push(Diagnostic::error(
                            PASS,
                            rloc.clone(),
                            format!(
                                "receive box {:?} reaches cell {} outside the radius-{} \
                                 halo annulus",
                                row.recv_box,
                                fmt_cell(idx),
                                sctx.radius
                            ),
                        ));
                        flagged_window = true;
                    }
                    step_recv.push(cell_key(idx, &padded));
                });
                // Provenance: sent cells must be owned or already received
                // in an earlier step (same-step receives are concurrent).
                let mut flagged_prov = false;
                for_each_index(&row.send_box, |idx| {
                    if flagged_prov || in_box(idx, &owned) || !globally_valid(idx) {
                        return;
                    }
                    if !received.contains(&cell_key(idx, &padded)) {
                        diags.push(Diagnostic::error(
                            PASS,
                            rloc.clone(),
                            format!(
                                "send box {:?} forwards halo cell {} that was neither \
                                 owned nor received in an earlier step: corner \
                                 propagation would transmit garbage",
                                row.send_box,
                                fmt_cell(idx)
                            ),
                        ));
                        flagged_prov = true;
                    }
                });
            }
            let mut flagged_dup = false;
            for k in step_recv {
                if !received.insert(k) && !flagged_dup {
                    diags.push(Diagnostic::error(
                        PASS,
                        loc(format!("rank {} step {step}", p.rank)),
                        "a halo cell is received by two different messages: whichever \
                         unpacks last wins, making the result timing-dependent"
                            .to_string(),
                    ));
                    flagged_dup = true;
                }
            }
        }

        // Coverage: every globally-valid annulus cell must be received.
        let mut missing = 0usize;
        let mut example = None;
        for_each_index(&window, |idx| {
            if in_box(idx, &owned) || !globally_valid(idx) {
                return;
            }
            if !received.contains(&cell_key(idx, &padded)) {
                missing += 1;
                if example.is_none() {
                    example = Some(fmt_cell(idx));
                }
            }
        });
        if missing > 0 {
            diags.push(Diagnostic::error(
                PASS,
                loc(format!("rank {}", p.rank)),
                format!(
                    "{missing} halo cell(s) within radius {} are never received \
                     (first: {}): the stencil reads stale or uninitialized data at \
                     rank boundaries",
                    sctx.radius,
                    example.unwrap_or_default()
                ),
            ));
        }
    }

    diags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx2(global: [usize; 2], dims: [usize; 2], halo: usize, radius: usize) -> ScheduleCtx {
        ScheduleCtx {
            global: global.to_vec(),
            dims: dims.to_vec(),
            halo,
            radius,
        }
    }

    #[test]
    fn all_modes_match_on_2x2() {
        for mode in [HaloMode::Basic, HaloMode::Diagonal, HaloMode::Full] {
            let sctx = ctx2([16, 16], [2, 2], 2, 2);
            let plans = collect_schedules(&sctx.global, &sctx.dims, 2, mode, 2);
            let diags = match_schedule(&plans, &sctx, &format!("{mode:?}"));
            assert!(diags.is_empty(), "{mode:?}: {diags:?}");
        }
    }

    #[test]
    fn basic_matches_on_1d_and_4x1() {
        let sctx = ctx2([32, 8], [4, 1], 1, 1);
        let plans = collect_schedules(&sctx.global, &sctx.dims, 1, HaloMode::Basic, 1);
        assert!(match_schedule(&plans, &sctx, "t").is_empty());
    }

    #[test]
    fn deleted_row_is_deadlock() {
        let sctx = ctx2([16, 16], [2, 2], 2, 2);
        let mut plans = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Diagonal, 2);
        plans[0].steps[0].pop();
        let diags = match_schedule(&plans, &sctx, "t");
        assert!(
            diags.iter().any(|d| d.explanation.contains("deadlock")),
            "{diags:?}"
        );
    }

    #[test]
    fn corrupted_tag_is_detected() {
        let sctx = ctx2([16, 16], [2, 2], 2, 2);
        let mut plans = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Diagonal, 2);
        plans[1].steps[0][0].recv_tag += 1000;
        let diags = match_schedule(&plans, &sctx, "t");
        assert!(!diags.is_empty());
    }

    #[test]
    fn shrunk_recv_box_breaks_coverage_and_length() {
        let sctx = ctx2([16, 16], [2, 2], 2, 2);
        let mut plans = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Diagonal, 2);
        let row = &mut plans[0].steps[0][0];
        let r = row.recv_box[1].clone();
        row.recv_box[1] = r.start..r.end - 1;
        let diags = match_schedule(&plans, &sctx, "t");
        assert!(
            diags
                .iter()
                .any(|d| d.explanation.contains("length mismatch"))
                && diags
                    .iter()
                    .any(|d| d.explanation.contains("never received")),
            "{diags:?}"
        );
    }

    #[test]
    fn recv_box_into_owned_region_is_flagged() {
        let sctx = ctx2([16, 16], [2, 2], 2, 2);
        let mut plans = collect_schedules(&sctx.global, &sctx.dims, 2, HaloMode::Diagonal, 2);
        // Shift a halo-side receive box into the owned interior.
        let row = &mut plans[0].steps[0][0];
        row.recv_box = vec![4..6, 4..6];
        let diags = match_schedule(&plans, &sctx, "t");
        assert!(
            diags.iter().any(|d| d.explanation.contains("owned cell")),
            "{diags:?}"
        );
    }

    #[test]
    fn tag_windows_are_disjoint_and_collisions_detected() {
        let mut ctx = Context::new();
        let g = mpix_symbolic::Grid::new(&[16, 16], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 4, 2);
        let v = ctx.add_time_function("v", &g, 4, 2);
        let clean = vec![(u.id(), 0i32, 2usize), (v.id(), 1, 2)];
        assert!(check_tag_windows(&ctx, &clean, 2).is_empty());
        // Same field, time offsets 8 apart: rem_euclid folds them onto the
        // same window — exactly the collision the check must flag.
        let colliding = vec![(u.id(), 0, 2), (u.id(), 8, 2)];
        let diags = check_tag_windows(&ctx, &colliding, 2);
        assert!(
            diags.iter().any(|d| d.explanation.contains("collides")),
            "{diags:?}"
        );
    }
}
