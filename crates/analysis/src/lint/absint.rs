//! Abstract interpretation over cluster expressions and compiled
//! bytecode: a small interval domain plus def-use dataflow, detecting
//! the value- and lifetime-level bug classes (`MPX001`–`MPX008`) that
//! the geometric verification passes cannot see.
//!
//! The interval domain is deliberately coarse — constants are exact,
//! the solver scalars `dt` / `h_*` are known positive, everything else
//! is ⊤ — because the lints only act on *provable* facts: a divisor
//! flagged by `MPX002` is zero for every grid point and every runtime
//! parameter value, not merely possibly zero. Coarseness costs recall,
//! never precision, so a `deny` finding is always a real bug.

use std::collections::{BTreeMap, BTreeSet};

use mpix_codegen::bytecode::compile_cluster;
use mpix_ir::cluster::{Cluster, Stmt};
use mpix_ir::iexpr::{IExpr, IdxAccess};
use mpix_symbolic::{Context, FieldId, FieldKind, UnaryFn};

use super::LintFinding;

/// A closed interval over the extended reals; `[-∞, +∞]` is ⊤.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval {
    pub lo: f64,
    pub hi: f64,
}

/// `⊤`: no information. Shared with the error-domain analysis in
/// [`crate::fp`], which pairs these intervals with round-off bounds.
pub const TOP: Interval = Interval {
    lo: f64::NEG_INFINITY,
    hi: f64::INFINITY,
};

/// Strictly positive, unbounded: the abstraction of `dt` and `h_*`.
pub const POSITIVE: Interval = Interval {
    lo: f64::MIN_POSITIVE,
    hi: f64::INFINITY,
};

impl Interval {
    pub fn point(c: f64) -> Interval {
        Interval { lo: c, hi: c }
    }

    pub fn is_point(&self) -> Option<f64> {
        (self.lo == self.hi && self.lo.is_finite()).then_some(self.lo)
    }

    /// Provably zero at every point.
    pub fn is_zero(&self) -> bool {
        self.lo == 0.0 && self.hi == 0.0
    }

    /// Smallest interval containing both — the lattice join.
    pub fn union(self, o: Interval) -> Interval {
        Interval {
            lo: self.lo.min(o.lo),
            hi: self.hi.max(o.hi),
        }
    }

    /// Largest absolute value attained on the interval.
    pub fn mag(self) -> f64 {
        self.lo.abs().max(self.hi.abs())
    }

    /// Smallest absolute value attained on the interval (0 if it
    /// straddles zero).
    pub fn min_mag(self) -> f64 {
        if self.lo <= 0.0 && self.hi >= 0.0 {
            0.0
        } else {
            self.lo.abs().min(self.hi.abs())
        }
    }

    // `add`/`mul` shadow the operator-trait names deliberately: the
    // abstract domain is NaN-absorbing (NaN corners widen to ⊤), which
    // operator syntax would misleadingly present as plain arithmetic.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, o: Interval) -> Interval {
        let lo = self.lo + o.lo;
        let hi = self.hi + o.hi;
        if lo.is_nan() || hi.is_nan() {
            return TOP;
        }
        Interval { lo, hi }
    }

    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, o: Interval) -> Interval {
        let corners = [
            self.lo * o.lo,
            self.lo * o.hi,
            self.hi * o.lo,
            self.hi * o.hi,
        ];
        if corners.iter().any(|c| c.is_nan()) {
            return TOP;
        }
        Interval {
            lo: corners.iter().cloned().fold(f64::INFINITY, f64::min),
            hi: corners.iter().cloned().fold(f64::NEG_INFINITY, f64::max),
        }
    }

    pub fn pow(self, n: i32) -> Interval {
        if let Some(c) = self.is_point() {
            let v = c.powi(n);
            if v.is_finite() {
                return Interval::point(v);
            }
        }
        if self.lo > 0.0 {
            // Positive base: any integer power stays positive.
            return POSITIVE;
        }
        if n > 0 && n % 2 == 0 {
            return Interval {
                lo: 0.0,
                hi: f64::INFINITY,
            };
        }
        TOP
    }
}

/// Evaluation environment: per-point temps (cluster-local indices) and
/// hoisted parameters (operator-global indices).
struct Env {
    temps: Vec<Interval>,
    params: BTreeMap<usize, Interval>,
}

/// Evaluate an expression in the interval domain, emitting `MPX002` /
/// `MPX003` findings for provably-singular subexpressions on the way.
fn eval(e: &IExpr, env: &Env, loc: &str, out: &mut Vec<LintFinding>) -> Interval {
    match e {
        IExpr::Const(c) => {
            if !c.is_finite() {
                out.push(LintFinding::new(
                    "MPX003",
                    loc,
                    format!("non-finite constant {c} propagates NaN/inf into every point"),
                ));
                return TOP;
            }
            Interval::point(*c)
        }
        IExpr::Sym(s) => {
            if s == "dt" || s.starts_with("h_") {
                POSITIVE
            } else {
                TOP
            }
        }
        IExpr::Load(_) => TOP,
        IExpr::Temp(i) => env.temps.get(*i).copied().unwrap_or(TOP),
        IExpr::Param(i) => env.params.get(i).copied().unwrap_or(TOP),
        IExpr::Add(xs) => xs
            .iter()
            .map(|x| eval(x, env, loc, out))
            .fold(Interval::point(0.0), Interval::add),
        IExpr::Mul(xs) => xs
            .iter()
            .map(|x| eval(x, env, loc, out))
            .fold(Interval::point(1.0), Interval::mul),
        IExpr::Pow(b, n) => {
            let bi = eval(b, env, loc, out);
            if *n < 0 && bi.is_zero() {
                out.push(LintFinding::new(
                    "MPX002",
                    loc,
                    format!("reciprocal power ({b})^{n} has a provably zero base"),
                ));
                return TOP;
            }
            bi.pow(*n)
        }
        IExpr::Func(fx, b) => {
            let bi = eval(b, env, loc, out);
            match fx {
                UnaryFn::Sqrt => {
                    if bi.hi < 0.0 {
                        out.push(LintFinding::new(
                            "MPX003",
                            loc,
                            format!(
                                "sqrt of a provably negative value in [{}, {}]",
                                bi.lo, bi.hi
                            ),
                        ));
                        return TOP;
                    }
                    match bi.is_point() {
                        Some(c) if c >= 0.0 => Interval::point(c.sqrt()),
                        _ => Interval {
                            lo: 0.0,
                            hi: f64::INFINITY,
                        },
                    }
                }
                UnaryFn::Exp => match bi.is_point() {
                    Some(c) => Interval::point(c.exp()),
                    None => Interval {
                        lo: 0.0,
                        hi: f64::INFINITY,
                    },
                },
                UnaryFn::Abs => match bi.is_point() {
                    Some(c) => Interval::point(c.abs()),
                    None => Interval {
                        lo: 0.0,
                        hi: f64::INFINITY,
                    },
                },
                UnaryFn::Sin | UnaryFn::Cos => Interval { lo: -1.0, hi: 1.0 },
            }
        }
    }
}

/// Valid time-offset window for a field: `{0}` for `Function`s, the
/// rotation window `[2 - buffers, +1]` for `TimeFunction`s.
fn valid_time_window(ctx: &Context, f: FieldId) -> (i32, i32) {
    let fld = ctx.field(f);
    match fld.kind {
        FieldKind::Function => (0, 0),
        FieldKind::TimeFunction => (2 - fld.time_buffers() as i32, 1),
    }
}

/// `MPX006` on one access (load or store target).
fn check_access(
    ctx: &Context,
    a: &IdxAccess,
    loc: &str,
    seen: &mut BTreeSet<(FieldId, i32, Vec<i32>)>,
    out: &mut Vec<LintFinding>,
) {
    if !seen.insert((a.field, a.time_offset, a.deltas.clone())) {
        return;
    }
    let fld = ctx.field(a.field);
    let halo = fld.halo() as i32;
    for (d, &delta) in a.deltas.iter().enumerate() {
        if delta.abs() > halo {
            out.push(LintFinding::new(
                "MPX006",
                loc,
                format!(
                    "access {}[t{:+}] offset {delta:+} in dim {d} exceeds the allocated \
                     halo width {halo} — out-of-bounds at the domain edge",
                    fld.name, a.time_offset
                ),
            ));
        }
    }
    let (t_lo, t_hi) = valid_time_window(ctx, a.field);
    if a.time_offset < t_lo || a.time_offset > t_hi {
        out.push(LintFinding::new(
            "MPX006",
            loc,
            format!(
                "access {}[t{:+}] addresses a time buffer outside the valid \
                 rotation window [{t_lo:+}, {t_hi:+}]",
                fld.name, a.time_offset
            ),
        ));
    }
}

/// The cluster-level lints: `MPX001`–`MPX006`. See [`super::lint_operator`]
/// for the `assume_initialized` contract.
pub fn lint_clusters(
    ctx: &Context,
    clusters: &[Cluster],
    assume_initialized: Option<&BTreeSet<FieldId>>,
) -> Vec<LintFinding> {
    let mut out = Vec::new();
    let mut written: BTreeSet<(FieldId, i32)> = BTreeSet::new();
    // (field, toff) -> location of a store no later statement has read.
    let mut pending_store: BTreeMap<(FieldId, i32), String> = BTreeMap::new();
    let mut used_fields: BTreeSet<FieldId> = BTreeSet::new();
    let mut uninit_reported: BTreeSet<(FieldId, i32)> = BTreeSet::new();
    let mut oob_seen: BTreeSet<(FieldId, i32, Vec<i32>)> = BTreeSet::new();
    let mut env = Env {
        temps: Vec::new(),
        params: BTreeMap::new(),
    };

    for (ci, cl) in clusters.iter().enumerate() {
        env.temps = vec![TOP; cl.num_temps];
        for (pi, value) in &cl.params {
            let loc = format!("cluster {ci} / r{pi}");
            let iv = eval(value, &env, &loc, &mut out);
            env.params.insert(*pi, iv);
        }
        for (si, stmt) in cl.stmts.iter().enumerate() {
            let loc = format!("cluster {ci} / stmt {si}");
            // Reads first: a statement reads its RHS before any store lands.
            stmt.value().visit_loads(&mut |a: &IdxAccess| {
                used_fields.insert(a.field);
                check_access(ctx, a, &loc, &mut oob_seen, &mut out);
                let key = (a.field, a.time_offset);
                pending_store.remove(&key);
                let externally_init = match assume_initialized {
                    // Unknown init state: trust everything except the
                    // buffer being written this step — under rotation it
                    // holds values from two steps back until stored.
                    None => a.time_offset <= 0,
                    Some(set) => set.contains(&a.field),
                };
                if !written.contains(&key) && !externally_init && uninit_reported.insert(key) {
                    out.push(LintFinding::new(
                        "MPX001",
                        &loc,
                        format!(
                            "read of {} before any statement writes it — under buffer \
                             rotation this observes stale data from an earlier step",
                            crate::buf_name(ctx, a.field, a.time_offset)
                        ),
                    ));
                }
            });
            let iv = eval(stmt.value(), &env, &loc, &mut out);
            match stmt {
                Stmt::Let { temp, .. } => {
                    if let Some(t) = env.temps.get_mut(*temp) {
                        *t = iv;
                    }
                }
                Stmt::Store { target, .. } => {
                    used_fields.insert(target.field);
                    check_access(ctx, target, &loc, &mut oob_seen, &mut out);
                    let key = (target.field, target.time_offset);
                    if let Some(prev) = pending_store.insert(key, loc.clone()) {
                        out.push(LintFinding::new(
                            "MPX004",
                            prev,
                            format!(
                                "store to {} is overwritten at {loc} with no \
                                 intervening read — the first store is dead",
                                crate::buf_name(ctx, target.field, target.time_offset)
                            ),
                        ));
                    }
                    written.insert(key);
                }
            }
        }
    }

    for fld in ctx.fields() {
        if !used_fields.contains(&fld.id) {
            out.push(LintFinding::new(
                "MPX005",
                format!("field {}", fld.name),
                "registered field is neither read nor written by any cluster",
            ));
        }
    }
    out
}

/// The bytecode-level def-use lints: `MPX007` (temp read before any
/// `SetTemp`) and `MPX008` (a `SetTemp` no later op reads). Each cluster
/// is compiled through the same `compile_cluster` path the executor
/// uses, so what is linted is what runs.
pub fn lint_bytecode(clusters: &[Cluster]) -> Vec<LintFinding> {
    let mut out = Vec::new();
    for (ci, cl) in clusters.iter().enumerate() {
        let cc = compile_cluster(cl);
        let mut defined = vec![false; cc.num_temps];
        let mut reported = vec![false; cc.num_temps];
        let mut op_list = Vec::new();
        cc.visit_ops(|i, op, _depth| op_list.push((i, op)));
        for &(i, op) in &op_list {
            if let Some(t) = op.temp_read() {
                let t = t as usize;
                if !defined.get(t).copied().unwrap_or(false)
                    && !std::mem::replace(&mut reported[t], true)
                {
                    out.push(LintFinding::new(
                        "MPX007",
                        format!("cluster {ci} / op {i}"),
                        format!("tmp{t} is read before any SetTemp defines it"),
                    ));
                }
            }
            if let Some(t) = op.temp_written() {
                defined[t as usize] = true;
            }
        }
        // A SetTemp is dead when no op reads the slot before its next
        // redefinition (or the end of the program).
        for (k, &(i, op)) in op_list.iter().enumerate() {
            let Some(t) = op.temp_written() else { continue };
            let live = op_list[k + 1..]
                .iter()
                .take_while(|(_, o)| o.temp_written() != Some(t))
                .any(|(_, o)| o.temp_read() == Some(t));
            if !live {
                out.push(LintFinding::new(
                    "MPX008",
                    format!("cluster {ci} / op {i}"),
                    format!("SetTemp tmp{t} is never read afterwards — a dead store"),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use mpix_ir::cluster::Stmt;
    use mpix_symbolic::Grid;

    fn two_field_ctx() -> (Context, FieldId, FieldId) {
        let mut ctx = Context::new();
        let g = Grid::new(&[16, 16], &[1.0, 1.0]);
        let u = ctx.add_time_function("u", &g, 2, 2);
        let m = ctx.add_function("m", &g, 2);
        (ctx, u.id(), m.id())
    }

    fn load(f: FieldId, toff: i32, deltas: &[i32]) -> IExpr {
        IExpr::Load(IdxAccess {
            field: f,
            time_offset: toff,
            deltas: deltas.to_vec(),
        })
    }

    fn store(f: FieldId, toff: i32, value: IExpr) -> Stmt {
        Stmt::Store {
            target: IdxAccess {
                field: f,
                time_offset: toff,
                deltas: vec![0, 0],
            },
            value,
        }
    }

    fn codes(findings: &[LintFinding]) -> Vec<&str> {
        findings.iter().map(|f| f.code).collect()
    }

    #[test]
    fn zero_divisor_is_mpx002() {
        let (ctx, u, m) = two_field_ctx();
        let value = IExpr::Mul(vec![
            load(m, 0, &[0, 0]),
            IExpr::Pow(Box::new(IExpr::Const(0.0)), -1),
        ]);
        let cl = Cluster {
            stmts: vec![store(u, 1, value)],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        assert!(codes(&f).contains(&"MPX002"), "{f:?}");
    }

    #[test]
    fn sqrt_negative_and_nonfinite_are_mpx003() {
        let (ctx, u, m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![
                store(
                    u,
                    1,
                    IExpr::Func(UnaryFn::Sqrt, Box::new(IExpr::Const(-4.0))),
                ),
                store(u, 0, IExpr::Const(f64::NAN)),
                store(m, 0, IExpr::Const(1.0)),
            ],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        assert_eq!(
            codes(&f).iter().filter(|c| **c == "MPX003").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn sqrt_of_square_is_clean() {
        let (ctx, u, m) = two_field_ctx();
        let value = IExpr::Func(
            UnaryFn::Sqrt,
            Box::new(IExpr::Pow(Box::new(load(m, 0, &[0, 0])), 2)),
        );
        let cl = Cluster {
            stmts: vec![store(u, 1, value)],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        assert!(!codes(&f).contains(&"MPX003"), "{f:?}");
    }

    #[test]
    fn forward_read_before_write_is_mpx001() {
        let (ctx, u, m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![store(m, 0, load(u, 1, &[0, 0]))],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        assert!(codes(&f).contains(&"MPX001"), "{f:?}");
        // Reading u[t+1] after it is stored is fine.
        let cl2 = Cluster {
            stmts: vec![
                store(u, 1, load(u, 0, &[0, 0])),
                store(m, 0, load(u, 1, &[0, 0])),
            ],
            ..Default::default()
        };
        let f2 = lint_clusters(&ctx, &[cl2], None);
        assert!(!codes(&f2).contains(&"MPX001"), "{f2:?}");
    }

    #[test]
    fn assume_initialized_flags_missing_fields() {
        let (ctx, u, m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![store(
                u,
                1,
                load(m, 0, &[0, 0]).mul_dummy(load(u, 0, &[0, 0])),
            )],
            ..Default::default()
        };
        // Only u is declared initialized: the m read is flagged.
        let init: BTreeSet<FieldId> = [u].into_iter().collect();
        let f = lint_clusters(&ctx, std::slice::from_ref(&cl), Some(&init));
        assert!(codes(&f).contains(&"MPX001"), "{f:?}");
        // Both declared: clean.
        let both: BTreeSet<FieldId> = [u, m].into_iter().collect();
        let f2 = lint_clusters(&ctx, &[cl], Some(&both));
        assert!(!codes(&f2).contains(&"MPX001"), "{f2:?}");
    }

    #[test]
    fn overwritten_store_is_mpx004() {
        let (ctx, u, m) = two_field_ctx();
        let c1 = Cluster {
            stmts: vec![store(u, 1, load(u, 0, &[0, 0]))],
            ..Default::default()
        };
        let c2 = Cluster {
            stmts: vec![store(u, 1, load(m, 0, &[0, 0]))],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[c1.clone(), c2.clone()], None);
        assert!(codes(&f).contains(&"MPX004"), "{f:?}");
        // An intervening read keeps the first store live.
        let mid = Cluster {
            stmts: vec![store(m, 0, load(u, 1, &[0, 0]))],
            ..Default::default()
        };
        let f2 = lint_clusters(&ctx, &[c1, mid, c2], None);
        assert!(!codes(&f2).contains(&"MPX004"), "{f2:?}");
    }

    #[test]
    fn unused_field_is_mpx005() {
        let (ctx, u, _m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![store(u, 1, load(u, 0, &[0, 0]))],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        let m_unused: Vec<_> = f.iter().filter(|x| x.code == "MPX005").collect();
        assert_eq!(m_unused.len(), 1, "{f:?}");
        assert!(m_unused[0].location.contains('m'), "{f:?}");
    }

    #[test]
    fn oversized_offset_and_bad_buffer_are_mpx006() {
        let (ctx, u, m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![
                store(u, 1, load(u, 0, &[3, 0])),  // halo is 2
                store(m, 0, load(u, -2, &[0, 0])), // window is [-1, +1]
            ],
            ..Default::default()
        };
        let f = lint_clusters(&ctx, &[cl], None);
        assert_eq!(
            codes(&f).iter().filter(|c| **c == "MPX006").count(),
            2,
            "{f:?}"
        );
    }

    #[test]
    fn bytecode_undefined_temp_is_mpx007() {
        let (_ctx, u, _m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![store(u, 1, IExpr::Temp(0))],
            num_temps: 1,
            ..Default::default()
        };
        let f = lint_bytecode(&[cl]);
        assert!(codes(&f).contains(&"MPX007"), "{f:?}");
    }

    #[test]
    fn bytecode_dead_temp_is_mpx008() {
        let (_ctx, u, _m) = two_field_ctx();
        let cl = Cluster {
            stmts: vec![
                Stmt::Let {
                    temp: 0,
                    value: IExpr::Const(1.0),
                },
                store(u, 1, IExpr::Const(2.0)),
            ],
            num_temps: 1,
            ..Default::default()
        };
        let f = lint_bytecode(&[cl]);
        assert!(codes(&f).contains(&"MPX008"), "{f:?}");
        // A read keeps it live.
        let live = Cluster {
            stmts: vec![
                Stmt::Let {
                    temp: 0,
                    value: IExpr::Const(1.0),
                },
                store(u, 1, IExpr::Temp(0)),
            ],
            num_temps: 1,
            ..Default::default()
        };
        assert!(lint_bytecode(&[live]).is_empty());
    }

    // Tiny helper so the assume_initialized test reads naturally.
    trait MulDummy {
        fn mul_dummy(self, o: IExpr) -> IExpr;
    }
    impl MulDummy for IExpr {
        fn mul_dummy(self, o: IExpr) -> IExpr {
            IExpr::Mul(vec![self, o])
        }
    }
}
